//! Umbrella crate for the Anti-DOPE reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can `use antidope_repro::...`. See the individual
//! crates for documentation:
//!
//! * [`simcore`] — deterministic discrete-event engine
//! * [`dcmetrics`] — histograms, CDFs, energy/SLA accounting
//! * [`powercap`] — P-states, DVFS, RAPL, batteries, budgets
//! * [`netsim`] — requests, queues, token buckets, firewall, NLB
//! * [`workloads`] — EC service kernels, traces, attackers, DOPE
//! * [`profiler`] — online power attribution and adaptive suspect lists
//! * [`antidope`] — PDF + RPM/DPM, baselines, cluster simulator
//! * [`liveplane`] — live control-plane host: trace replay, mock sysfs,
//!   wall-clock daemon, sim/live parity

pub use antidope;
pub use dcmetrics;
pub use liveplane;
pub use netsim;
pub use powercap;
pub use profiler;
pub use simcore;
pub use workloads;

/// Convenience prelude for examples and tests.
pub mod prelude {
    pub use antidope::{
        run_experiment, run_matrix, ClusterConfig, ClusterSim, ExperimentConfig, FaultReport,
        RetryReport, SchemeKind, SimReport,
    };
    pub use antidope::{record_experiment, ControlTrace};
    pub use antidope::{HierarchicalBudget, PowerTopology, TopologyConfig, TopologyReport};
    pub use liveplane::{LiveDaemon, LiveSummary, ReplayClock, ReplayTelemetry};
    pub use netsim::RetryConfig;
    pub use powercap::BudgetLevel;
    pub use profiler::{AdaptiveSuspectList, PowerProfiler, ProfilerConfig, ProfilerReport};
    pub use simcore::faults::{CrashEvent, FaultConfig};
    pub use simcore::{SimDuration, SimTime};
    pub use workloads::{
        alibaba::{AlibabaTraceConfig, UtilizationTrace},
        attacker::{AttackTool, ConcentratingFloodSource, FloodSource, RotatingFloodSource},
        dope::{DopeAttacker, DopeConfig},
        normal::NormalUsers,
        service::{ServiceKind, ServiceMix},
        source::TrafficSource,
    };
}
