//! Determinism and conservation contract of the sharded parallel
//! engine.
//!
//! * Same seed + same shard layout ⇒ byte-identical [`SimReport`]s —
//!   parallel shard execution must leave no thread-scheduling residue.
//! * Across *different* shard counts the report is byte-identical
//!   outright: energy and latency are folded per node in global node
//!   order at finalize, so not even float-summation order depends on
//!   the layout. The per-field conservation assertions are kept
//!   alongside the byte comparison for their sharper failure messages.
//!
//! Cross-*engine* identity (shards = 1 vs > 1) is deliberately NOT
//! asserted: the sharded engine batches NLB load refreshes and feedback
//! delivery at slot boundaries, so it is a different (comparable, not
//! identical) model. `shards: 1` always dispatches to the original
//! event-driven engine, whose byte-identity the golden harness pins.

mod common;

use antidope_repro::prelude::*;
use proptest::prelude::*;

/// Run the standard scenario on the 16-node scaling cluster with the
/// given shard count.
fn run_sharded(
    shards: usize,
    scheme: SchemeKind,
    attack_rate: f64,
    duration_s: u64,
    seed: u64,
) -> SimReport {
    let mut cluster = ClusterConfig::scaled(BudgetLevel::Medium);
    cluster.shards = shards;
    let mut exp = ExperimentConfig::paper_window(cluster, scheme, seed);
    exp.duration = SimDuration::from_secs(duration_s);
    run_experiment(&exp, &common::scenario(attack_rate))
}

/// Relative difference, guarded against a zero denominator.
fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1e-9)
}

/// Assert the layout-independence contract between two reports of the
/// same experiment at different shard counts.
fn assert_conserved(base: &SimReport, other: &SimReport, label: &str) {
    assert_eq!(base.traffic.offered, other.traffic.offered, "{label}: offered");
    assert_eq!(
        base.traffic.firewall_blocked, other.traffic.firewall_blocked,
        "{label}: firewall_blocked"
    );
    assert_eq!(
        base.traffic.scheme_denied, other.traffic.scheme_denied,
        "{label}: scheme_denied"
    );
    assert_eq!(
        base.traffic.queue_rejected, other.traffic.queue_rejected,
        "{label}: queue_rejected"
    );
    assert_eq!(base.normal_sla, other.normal_sla, "{label}: normal SLA outcomes");
    assert_eq!(base.attack_sla, other.attack_sla, "{label}: attack SLA outcomes");
    assert_eq!(
        base.power.outage_at_s, other.power.outage_at_s,
        "{label}: outage instant"
    );
    assert_eq!(base.power.violations, other.power.violations, "{label}: violations");
    assert!(
        rel_diff(base.energy.load_j, other.energy.load_j) < 1e-9,
        "{label}: load energy drifted beyond rounding ({} vs {})",
        base.energy.load_j,
        other.energy.load_j
    );
    assert!(
        rel_diff(base.energy.utility_j, other.energy.utility_j) < 1e-9,
        "{label}: utility energy drifted beyond rounding ({} vs {})",
        base.energy.utility_j,
        other.energy.utility_j
    );
}

#[test]
fn same_seed_same_layout_byte_identical() {
    for shards in [1usize, 2, 4, 8] {
        let a = run_sharded(shards, SchemeKind::AntiDope, 400.0, 30, 77);
        let b = run_sharded(shards, SchemeKind::AntiDope, 400.0, 30, 77);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "shards={shards} not reproducible"
        );
        assert!(a.traffic.offered > 1_000, "scenario must carry real load");
    }
}

#[test]
fn counts_conserved_across_shard_counts() {
    for scheme in [SchemeKind::Capping, SchemeKind::AntiDope] {
        let base = run_sharded(2, scheme, 400.0, 30, 19);
        for shards in [4usize, 8] {
            let other = run_sharded(shards, scheme, 400.0, 30, 19);
            assert_conserved(&base, &other, &format!("{scheme} at {shards} shards"));
            // Per-node energy/latency folds make the full report
            // byte-identical across layouts, not merely conserved.
            assert_eq!(
                serde_json::to_string(&base).unwrap(),
                serde_json::to_string(&other).unwrap(),
                "{scheme}: report drifted at {shards} shards"
            );
        }
    }
}

#[test]
fn breaker_outage_instant_is_layout_independent() {
    // Unmanaged cluster, deep oversubscription, heavy flood, breaker
    // armed with a short trip delay: the outage must land at the same
    // slot regardless of how the nodes are sharded, because the breaker
    // sees the layout-independent boundary power aggregate.
    let run = |shards: usize| {
        let mut cluster = ClusterConfig::scaled(BudgetLevel::Low);
        cluster.shards = shards;
        cluster.breaker = true;
        // Derated feed + short delay: the flood's steady draw sits well
        // above the rating, so the overload is continuous and the trip
        // deterministic.
        cluster.breaker_rating_factor = 0.80;
        cluster.breaker_trip_delay = SimDuration::from_secs(10);
        let mut exp = ExperimentConfig::paper_window(cluster, SchemeKind::None, 23);
        exp.duration = SimDuration::from_secs(60);
        run_experiment(&exp, &common::scenario(900.0))
    };
    let base = run(2);
    assert!(
        base.power.outage_at_s.is_some(),
        "scenario must actually trip the breaker: {:?}",
        base.power
    );
    for shards in [4usize, 8] {
        let other = run(shards);
        assert_eq!(
            base.power.outage_at_s, other.power.outage_at_s,
            "outage moved at {shards} shards"
        );
        assert_conserved(&base, &other, &format!("outage run at {shards} shards"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    /// Conservation holds for arbitrary seeds and attack intensities,
    /// not just the calibrated cells above.
    #[test]
    fn prop_conservation_across_shard_counts(
        seed in 0u64..500,
        rate in 100.0f64..700.0,
    ) {
        let base = run_sharded(2, SchemeKind::AntiDope, rate, 20, seed);
        for shards in [4usize, 8] {
            let other = run_sharded(shards, SchemeKind::AntiDope, rate, 20, seed);
            prop_assert_eq!(base.traffic.offered, other.traffic.offered);
            prop_assert_eq!(base.traffic.firewall_blocked, other.traffic.firewall_blocked);
            prop_assert_eq!(base.traffic.queue_rejected, other.traffic.queue_rejected);
            prop_assert_eq!(
                base.normal_sla.total() + base.attack_sla.total(),
                other.normal_sla.total() + other.attack_sla.total()
            );
            prop_assert_eq!(base.power.outage_at_s, other.power.outage_at_s);
            prop_assert!(rel_diff(base.energy.load_j, other.energy.load_j) < 1e-9);
        }
    }
}
