//! Chaos drills: the fault-injection layer end to end.
//!
//! Three contracts, over full experiments:
//!
//! 1. **Graceful degradation** — Anti-DOPE under heavy sensor dropout
//!    still beats plain capping on tail latency, and a full telemetry
//!    blackout never lets cluster power past the breaker rating (the
//!    watchdog's uniform safe cap binds while the controller is blind).
//! 2. **Determinism under chaos** — the same `(seed, FaultConfig)` pair
//!    reproduces the report bit-for-bit, including every fault counter.
//! 3. **Conservation** — no request is double-counted or silently lost,
//!    whatever the fault layer kills mid-flight — including when the
//!    retry dataplane re-queues what a crash or thermal kill drained.
//! 4. **Layout invariance** — with faults *and* retries enabled, the
//!    sharded engine reproduces the report byte-for-byte at 1, 2, 4,
//!    and 8 shards (breaker pools excepted: they are shard-scoped by
//!    design and only promise per-layout determinism).

mod common;

use antidope_repro::prelude::*;
use common::{run_cell, run_chaos_cell, run_profiled_chaos_cell, scenario};
use proptest::prelude::*;

/// The acceptance gate: at Low-PB under a 390 req/s flood with 10% of
/// power samples lost, Anti-DOPE's hardened control plane must still
/// deliver the paper's headline ordering against capping.
#[test]
fn antidope_beats_capping_under_sensor_dropout() {
    let faults = FaultConfig {
        sensor_dropout_p: 0.10,
        ..FaultConfig::default()
    };
    let anti = run_chaos_cell(
        SchemeKind::AntiDope,
        BudgetLevel::Low,
        390.0,
        120,
        2019,
        faults.clone(),
    );
    let capping = run_chaos_cell(
        SchemeKind::Capping,
        BudgetLevel::Low,
        390.0,
        120,
        2019,
        faults,
    );
    assert!(
        capping.normal_latency.p90_ms > anti.normal_latency.p90_ms,
        "capping p90 {} must exceed Anti-DOPE p90 {} under 10% dropout",
        capping.normal_latency.p90_ms,
        anti.normal_latency.p90_ms
    );
    assert!(anti.availability() > 0.8, "{}", anti.oneline());
}

/// During a total telemetry blackout the watchdog falls back to the
/// uniform safe cap: cluster power stays below the breaker rating (no
/// outage) even though the controller is flying blind under attack.
#[test]
fn blackout_never_breaches_the_breaker() {
    let mut cluster = ClusterConfig::paper_rack(BudgetLevel::Medium);
    cluster.breaker = true;
    cluster.breaker_rating_factor = 1.05;
    cluster.breaker_trip_delay = SimDuration::from_secs(30);
    cluster.faults = Some(FaultConfig {
        blackouts: vec![(SimTime::from_secs(20), SimTime::from_secs(80))],
        ..FaultConfig::default()
    });
    let rating = 340.0 * 1.05; // Medium-PB supply × rating factor
    let mut exp = ExperimentConfig::paper_window(cluster, SchemeKind::AntiDope, 2019);
    exp.duration = SimDuration::from_secs(120);
    let report = run_experiment(&exp, &scenario(600.0));

    assert_eq!(
        report.power.outage_at_s, None,
        "watchdog must keep the breaker closed: {}",
        report.oneline()
    );
    let faults = report.faults.as_ref().expect("fault report");
    assert!(faults.degraded_slots > 0, "{faults:?}");
    // Inside the blackout (past a short grace for the safe cap's DVFS
    // transition to settle) every power sample respects the rating.
    let breaches: Vec<(f64, f64)> = report
        .power
        .series
        .iter()
        .filter(|&&(t, w)| (25.0..80.0).contains(&t) && w > rating)
        .copied()
        .collect();
    assert!(breaches.is_empty(), "power over rating during blackout: {breaches:?}");
}

/// Same seed + same fault plan ⇒ bit-identical report, with every fault
/// class active at once.
#[test]
fn chaos_runs_are_deterministic() {
    let faults = FaultConfig {
        sensor_dropout_p: 0.10,
        sensor_noise_w: 2.0,
        sensor_stuck_p: 0.01,
        sensor_stale_p: 0.05,
        blackouts: vec![(SimTime::from_secs(20), SimTime::from_secs(30))],
        actuator_loss_p: 0.10,
        actuator_delay_p: 0.10,
        actuator_stuck_p: 0.02,
        crashes: vec![CrashEvent {
            node: 2,
            at: SimTime::from_secs(15),
        }],
        crash_p: 0.001,
        reboot_after: SimDuration::from_secs(10),
        battery_fade: 0.2,
        charger_fails_at: Some(SimTime::from_secs(40)),
        ..FaultConfig::default()
    };
    let a = run_chaos_cell(
        SchemeKind::AntiDope,
        BudgetLevel::Medium,
        400.0,
        60,
        99,
        faults.clone(),
    );
    let b = run_chaos_cell(
        SchemeKind::AntiDope,
        BudgetLevel::Medium,
        400.0,
        60,
        99,
        faults,
    );
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "chaos run not deterministic"
    );
    // The plan actually fired across classes.
    let f = a.faults.expect("fault report");
    assert!(f.sensor_dropouts > 0, "{f:?}");
    assert!(f.crashes >= 1, "{f:?}");
    assert!(f.reboots >= 1, "{f:?}");
}

/// The online profiler is part of the deterministic replay surface: with
/// learning, hot-swapped suspect lists, *and* a multi-class fault plan
/// all active, the same seed still reproduces the report bit-for-bit —
/// including every profiler counter.
#[test]
fn profiled_chaos_runs_are_deterministic() {
    let faults = FaultConfig {
        sensor_dropout_p: 0.10,
        sensor_noise_w: 2.0,
        actuator_loss_p: 0.10,
        crashes: vec![CrashEvent {
            node: 1,
            at: SimTime::from_secs(15),
        }],
        reboot_after: SimDuration::from_secs(10),
        ..FaultConfig::default()
    };
    let a = run_profiled_chaos_cell(
        SchemeKind::AntiDope,
        BudgetLevel::Low,
        390.0,
        60,
        99,
        faults.clone(),
    );
    let b = run_profiled_chaos_cell(
        SchemeKind::AntiDope,
        BudgetLevel::Low,
        390.0,
        60,
        99,
        faults,
    );
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "profiled chaos run not deterministic"
    );
    // Both subsystems actually exercised their paths.
    let prof = a.profiler.expect("profiler report");
    assert!(prof.observations > 0, "{prof:?}");
    let f = a.faults.expect("fault report");
    assert!(f.sensor_dropouts > 0, "{f:?}");
    assert!(f.crashes >= 1, "{f:?}");
}

/// Enabling a no-op fault plan must not perturb the simulation: the
/// report matches the fault-free run byte-for-byte once the (all-zero)
/// fault block is removed.
#[test]
fn noop_plan_is_invisible() {
    let base = run_cell(SchemeKind::AntiDope, BudgetLevel::Medium, 400.0, 45, 7);
    let mut chaotic = run_chaos_cell(
        SchemeKind::AntiDope,
        BudgetLevel::Medium,
        400.0,
        45,
        7,
        FaultConfig::default(),
    );
    let f = chaotic.faults.take().expect("fault report");
    assert_eq!(f, FaultReport::default(), "no-op plan injected something: {f:?}");
    assert_eq!(
        serde_json::to_string(&base).unwrap(),
        serde_json::to_string(&chaotic).unwrap()
    );
}

/// Build the scaled 16-node cluster with a multi-class fault plan and a
/// retry policy, sharded `shards` ways. The breaker is disabled
/// (`breaker_cooldown: ZERO`) where byte identity across layouts is
/// asserted: circuit-breaker pools *are* shards, so their state is
/// layout-scoped by design.
fn sharded_chaos_exp(shards: usize, retry: RetryConfig) -> ExperimentConfig {
    let mut cluster = ClusterConfig::scaled(BudgetLevel::Medium);
    cluster.shards = shards;
    cluster.faults = Some(FaultConfig {
        sensor_dropout_p: 0.08,
        sensor_noise_w: 2.0,
        sensor_stuck_p: 0.01,
        sensor_stale_p: 0.05,
        // Long enough to outlast the staleness window, so the shard
        // watchdog actually engages (identically on every layout).
        blackouts: vec![(SimTime::from_secs(12), SimTime::from_secs(20))],
        actuator_loss_p: 0.05,
        crashes: vec![CrashEvent {
            node: 5,
            at: SimTime::from_secs(8),
        }],
        crash_p: 0.0005,
        reboot_after: SimDuration::from_secs(6),
        battery_fade: 0.1,
        ..FaultConfig::default()
    });
    cluster.retry = Some(retry);
    let mut exp = ExperimentConfig::paper_window(cluster, SchemeKind::AntiDope, 2019);
    exp.duration = SimDuration::from_secs(40);
    exp
}

/// Same seed + same fault plan + retries ⇒ byte-identical reports at
/// **any shard count**. A retry policy routes even `shards: 1` onto the
/// sharded engine, so all four layouts exercise the same dataplane:
/// per-node fault streams, per-node energy/latency folds, and the
/// boundary crash/reboot path must leave no layout residue.
#[test]
fn sharded_chaos_is_byte_identical_across_shard_counts() {
    let no_breaker = RetryConfig {
        breaker_cooldown: SimDuration::ZERO,
        ..RetryConfig::default()
    };
    let run = |shards: usize| {
        run_experiment(&sharded_chaos_exp(shards, no_breaker.clone()), &scenario(500.0))
    };
    let base = run(1);
    let f = base.faults.as_ref().expect("fault report");
    assert!(f.crashes >= 1, "{f:?}");
    assert!(f.reboots >= 1, "{f:?}");
    assert!(f.sensor_dropouts > 0, "{f:?}");
    assert!(
        f.shard_degraded_slots > 0,
        "the blackout outlasts the staleness window, so the shard \
         watchdog must engage: {f:?}"
    );
    let r = base.retry.as_ref().expect("retry report");
    assert!(r.attempts > 0, "crash must strand requests into the retry path: {r:?}");
    let base_s = serde_json::to_string(&base).unwrap();
    for shards in [2usize, 4, 8] {
        let other = run(shards);
        assert_eq!(
            base_s,
            serde_json::to_string(&other).unwrap(),
            "chaos report drifted at {shards} shards"
        );
    }
}

/// The acceptance gate for the resilience dataplane (the
/// `abl-resilience` ablation, pinned): a rack trip takes shard 1's four
/// nodes down for good mid-run. Without retries the NLB — no longer
/// oracle-notified of deaths — black-holes a quarter of the traffic for
/// the rest of the run; retry + circuit breaker must restore ≥ 90% of
/// legitimate goodput, clearing the no-retry arm by a real margin.
#[test]
fn retry_plus_breaker_restores_goodput_after_rack_loss() {
    let run = |retry: RetryConfig| {
        let mut cluster = ClusterConfig::scaled(BudgetLevel::Medium);
        cluster.shards = 4;
        cluster.faults = Some(FaultConfig {
            crashes: (4..8)
                .map(|node| CrashEvent {
                    node,
                    at: SimTime::from_secs(30),
                })
                .collect(),
            reboot_after: SimDuration::ZERO, // down for good
            ..FaultConfig::default()
        });
        cluster.retry = Some(retry);
        let mut exp = ExperimentConfig::paper_window(cluster, SchemeKind::AntiDope, 2019);
        exp.duration = SimDuration::from_secs(120);
        run_experiment(&exp, &scenario(390.0))
    };
    let bare = run(RetryConfig {
        max_attempts: 1,
        breaker_cooldown: SimDuration::ZERO,
        ..RetryConfig::default()
    });
    let hardened = run(RetryConfig {
        max_attempts: 4,
        ..RetryConfig::default()
    });

    let bare_goodput = bare.normal_sla.completion_rate();
    let hardened_goodput = hardened.normal_sla.completion_rate();
    assert!(
        hardened_goodput >= 0.90,
        "retry+breaker goodput {hardened_goodput:.3} below the 90% gate"
    );
    assert!(
        bare_goodput < hardened_goodput - 0.05,
        "no-retry arm ({bare_goodput:.3}) must trail retry+breaker \
         ({hardened_goodput:.3}) by a real margin"
    );
    let retry = hardened.retry.as_ref().expect("retry report");
    assert!(retry.breaker_trips > 0, "the dead pool must trip its breaker: {retry:?}");
    assert!(retry.rerouted > 0, "open breakers must steer dispatches: {retry:?}");
}

/// With the circuit breaker armed, pool state is intentionally
/// layout-scoped — cross-layout identity no longer holds — but each
/// layout must still be perfectly reproducible seed-for-seed.
#[test]
fn breaker_runs_are_deterministic_per_layout() {
    for shards in [2usize, 4] {
        let run = || {
            run_experiment(&sharded_chaos_exp(shards, RetryConfig::default()), &scenario(500.0))
        };
        let a = run();
        let b = run();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "breaker run not reproducible at {shards} shards"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, ..ProptestConfig::default()
    })]

    /// Request conservation under arbitrary fault mixes: every offered
    /// request is accounted for exactly once across the two SLA trackers,
    /// up to the bounded population that can still be in flight (or
    /// pending arrival) when the horizon cuts the run.
    #[test]
    fn requests_conserved_under_chaos(
        dropout in 0.0f64..0.3,
        loss in 0.0f64..0.3,
        crash_node in 0usize..4,
        crash_at in 5u64..25,
        reboot_s in 0u64..20,
        seed in 1u64..1_000,
    ) {
        let faults = FaultConfig {
            sensor_dropout_p: dropout,
            actuator_loss_p: loss,
            crashes: vec![CrashEvent {
                node: crash_node,
                at: SimTime::from_secs(crash_at),
            }],
            reboot_after: SimDuration::from_secs(reboot_s),
            ..FaultConfig::default()
        };
        let r = run_chaos_cell(
            SchemeKind::AntiDope,
            BudgetLevel::Low,
            390.0,
            30,
            seed,
            faults,
        );
        let accounted = r.normal_sla.total() + r.attack_sla.total();
        prop_assert!(accounted <= r.traffic.offered);
        // Unaccounted requests are exactly those still in flight at the
        // horizon and not past their client timeout: bounded by queue
        // capacity (4 nodes × 32) plus one pending arrival per source.
        let slack = 4 * 32 + 2;
        prop_assert!(
            r.traffic.offered - accounted <= slack,
            "offered {} vs accounted {}",
            r.traffic.offered,
            accounted
        );
    }

    /// The retry path never duplicates a request (each lands in exactly
    /// one SLA bucket, so the accounted total cannot exceed offered) and
    /// never loses one (the unaccounted remainder is bounded by what can
    /// legitimately be in flight, pending arrival, or parked in the
    /// retry queue when the horizon cuts the run).
    #[test]
    fn retries_never_duplicate_or_lose_requests(
        max_attempts in 2u8..5,
        crash_node in 0usize..16,
        crash_at in 5u64..20,
        timeout_ms in 50u64..500,
        seed in 1u64..1_000,
    ) {
        let mut cluster = ClusterConfig::scaled(BudgetLevel::Medium);
        cluster.shards = 4;
        cluster.faults = Some(FaultConfig {
            crashes: vec![CrashEvent {
                node: crash_node,
                at: SimTime::from_secs(crash_at),
            }],
            reboot_after: SimDuration::from_secs(5),
            ..FaultConfig::default()
        });
        cluster.retry = Some(RetryConfig {
            max_attempts,
            timeout: SimDuration::from_millis(timeout_ms),
            ..RetryConfig::default()
        });
        let mut exp = ExperimentConfig::paper_window(cluster, SchemeKind::AntiDope, seed);
        exp.duration = SimDuration::from_secs(30);
        let r = run_experiment(&exp, &scenario(400.0));

        let accounted = r.normal_sla.total() + r.attack_sla.total();
        prop_assert!(
            accounted <= r.traffic.offered,
            "retries duplicated work: accounted {} > offered {}",
            accounted,
            r.traffic.offered
        );
        let retry = r.retry.as_ref().expect("retry report");
        // Every recovered or exhausted request passed through at least
        // one scheduled retry (max_attempts ≥ 2 above).
        prop_assert!(retry.recovered + retry.exhausted <= retry.attempts);
        // Loss bound: in-flight queue slots (16 × 32), one pending
        // arrival per source, plus requests parked in the retry queue —
        // each of those consumed a scheduled attempt, so `attempts` is a
        // (pessimistic) ceiling on the parked population.
        let slack = 16 * 32 + 2 + retry.attempts;
        prop_assert!(
            r.traffic.offered - accounted <= slack,
            "requests lost: offered {} vs accounted {} (slack {})",
            r.traffic.offered,
            accounted,
            slack
        );
    }
}
