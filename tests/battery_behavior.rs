//! Fig 18 end-to-end: battery trajectories differ by scheme under the
//! same sustained DOPE attack.

mod common;

use antidope_repro::prelude::*;
use common::run_cell;

/// "Since the DOPE generates high and long power peaks, it exhausts the
/// battery" — Shaving drains to (near) empty under a sustained attack
/// longer than the 2-minute sustain rating.
#[test]
fn shaving_exhausts_battery_under_sustained_dope() {
    // Deficit arithmetic: Low-PB supplies 320 W against a ≤400 W
    // nameplate, so the worst-case shaving drain is 80 W and the
    // 2-minute (48 kJ) battery survives at least 600 s — exhaustion
    // needs an attack outlasting that.
    let r = run_cell(SchemeKind::Shaving, BudgetLevel::Low, 700.0, 700, 3);
    assert!(
        r.battery.min_soc < 0.2,
        "battery should be nearly drained: min_soc={} {}",
        r.battery.min_soc,
        r.oneline()
    );
    assert!(r.battery.discharged_j > 0.5 * r.battery.capacity_j);
}

/// "Our proposal mainly uses batteries as the transition medium" —
/// Anti-DOPE's battery dips but stays far from empty and recharges.
#[test]
fn antidope_battery_is_transition_medium_only() {
    let anti = run_cell(SchemeKind::AntiDope, BudgetLevel::Low, 700.0, 300, 3);
    let shaving = run_cell(SchemeKind::Shaving, BudgetLevel::Low, 700.0, 300, 3);
    assert!(
        anti.battery.min_soc > shaving.battery.min_soc + 0.3,
        "anti min_soc {} vs shaving {}",
        anti.battery.min_soc,
        shaving.battery.min_soc
    );
    assert!(
        anti.battery.discharged_j < 0.5 * shaving.battery.discharged_j,
        "anti discharged {} vs shaving {}",
        anti.battery.discharged_j,
        shaving.battery.discharged_j
    );
}

/// Capping never touches the battery at all.
#[test]
fn capping_leaves_battery_full() {
    let r = run_cell(SchemeKind::Capping, BudgetLevel::Low, 700.0, 120, 3);
    assert_eq!(r.battery.episodes, 0);
    assert_eq!(r.battery.discharged_j, 0.0);
    assert!((r.battery.final_soc - 1.0).abs() < 1e-9);
}

/// Fig 18's attack-switching scenario: the attack rotates kernels every
/// 2 minutes. In the paper Anti-DOPE discharges briefly at each change
/// (its testbed re-profiles on the fly); our PDF isolates the attack
/// *statically*, so the cluster never even sees a transient deficit —
/// a strictly stronger outcome we assert as "battery barely touched
/// while Shaving drains on the identical scenario" (divergence recorded
/// in EXPERIMENTS.md).
#[test]
fn attack_switching_battery_contrast() {
    let factory = |exp: &ExperimentConfig| {
        let horizon = SimTime::ZERO + exp.duration;
        let trace = UtilizationTrace::synthesize(&AlibabaTraceConfig::small(exp.seed));
        let mut sources: Vec<Box<dyn TrafficSource>> = vec![Box::new(NormalUsers::new(
            trace,
            ServiceMix::alios_normal(),
            common::NORMAL_PEAK_RATE,
            1_000,
            60,
            0,
            horizon,
            exp.seed,
        ))];
        // Rotate Colla-Filt → K-means → Word-Count every 120 s.
        let kinds = [
            ServiceKind::CollaFilt,
            ServiceKind::KMeans,
            ServiceKind::WordCount,
        ];
        for (i, kind) in kinds.iter().enumerate() {
            sources.push(Box::new(FloodSource::against_service(
                AttackTool::HttpLoad { rate: 700.0 },
                *kind,
                50_000 + i as u32 * 1_000,
                40,
                (1 + i as u64) << 40,
                SimTime::from_secs(5 + 120 * i as u64),
                SimTime::from_secs(5 + 120 * (i as u64 + 1)).min(horizon),
                exp.seed ^ (i as u64 + 1),
            )));
        }
        sources
    };
    let run = |scheme: SchemeKind| {
        let mut exp =
            ExperimentConfig::paper_window(ClusterConfig::paper_rack(BudgetLevel::Low), scheme, 13);
        exp.duration = SimDuration::from_secs(365);
        run_experiment(&exp, &factory)
    };
    let anti = run(SchemeKind::AntiDope);
    let shaving = run(SchemeKind::Shaving);
    assert!(
        shaving.battery.discharged_j > 5.0 * anti.battery.discharged_j.max(1.0),
        "shaving {} J vs anti {} J",
        shaving.battery.discharged_j,
        anti.battery.discharged_j
    );
    assert!(
        anti.battery.min_soc > 0.8,
        "transition-medium use must not drain: min_soc {}",
        anti.battery.min_soc
    );
    assert!(shaving.battery.min_soc < anti.battery.min_soc);
    // And the isolation is doing the work: the rotating attack landed on
    // the suspect pool.
    assert!(anti.traffic.to_suspect_pool > 10_000);
}
