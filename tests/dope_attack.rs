//! End-to-end DOPE attack behaviour: stealth, convergence, and the
//! operating region of Fig 11.

mod common;

use antidope_repro::prelude::*;

fn dope_factory(
    bots: u32,
    initial_rate: f64,
    max_rate: f64,
) -> impl Fn(&ExperimentConfig) -> Vec<Box<dyn TrafficSource>> {
    move |exp: &ExperimentConfig| {
        let horizon = SimTime::ZERO + exp.duration;
        let trace = UtilizationTrace::synthesize(&AlibabaTraceConfig::small(exp.seed));
        vec![
            Box::new(NormalUsers::new(
                trace,
                ServiceMix::alios_normal(),
                common::NORMAL_PEAK_RATE,
                1_000,
                60,
                0,
                horizon,
                exp.seed,
            )),
            Box::new(DopeAttacker::new(
                DopeConfig {
                    victim: ServiceKind::CollaFilt,
                    initial_rate,
                    bots,
                    max_rate,
                    ..DopeConfig::default()
                },
                50_000,
                1 << 40,
                SimTime::from_secs(2),
                horizon,
                exp.seed ^ 0xD09E,
            )),
        ]
    }
}

/// A stealthy DOPE attack (many bots, per-bot rate well under the 150
/// req/s firewall threshold) is never blocked by the firewall yet drives
/// power over the budget on an unmanaged cluster — the Fig 11 region.
#[test]
fn stealthy_dope_evades_firewall_and_violates_power() {
    let mut exp = ExperimentConfig::paper_window(
        ClusterConfig::paper_rack(BudgetLevel::Medium),
        SchemeKind::None,
        3,
    );
    exp.duration = SimDuration::from_secs(120);
    // 40 bots, ramping to at most 1200 rps aggregate = 30 rps per bot.
    let report = run_experiment(&exp, &dope_factory(40, 100.0, 1200.0));
    assert_eq!(
        report.traffic.firewall_blocked, 0,
        "stealthy attack must not be blocked: {:?}",
        report.traffic
    );
    assert!(
        report.power.violations > 10,
        "power must be violated: {}",
        report.oneline()
    );
}

/// A loud DOPE attack (few bots, so the probing overshoots the per-source
/// threshold) gets caught, backs off, and converges to a rate below the
/// detection limit — the Fig 12 algorithm closing the loop end-to-end.
#[test]
fn loud_dope_gets_caught_then_converges() {
    let mut exp = ExperimentConfig::paper_window(
        ClusterConfig::paper_rack(BudgetLevel::Medium),
        SchemeKind::None,
        5,
    );
    exp.duration = SimDuration::from_secs(180);
    // 4 bots ramping toward 2000 rps aggregate = 500 rps/bot: must trip
    // the 150 rps rule during probing.
    let report = run_experiment(&exp, &dope_factory(4, 200.0, 2000.0));
    assert!(
        report.traffic.firewall_blocked > 0,
        "probing should overshoot: {:?}",
        report.traffic
    );
    // After convergence the attack still lands requests (bot rotation +
    // backoff): attack completions continue to the end.
    assert!(report.attack_sla.on_time() + report.attack_sla.late() > 0);
}

/// Anti-DOPE contains the stealthy attack that the firewall cannot see.
#[test]
fn antidope_contains_stealthy_dope() {
    let run = |scheme: SchemeKind| {
        let mut exp = ExperimentConfig::paper_window(
            ClusterConfig::paper_rack(BudgetLevel::Medium),
            scheme,
            7,
        );
        exp.duration = SimDuration::from_secs(120);
        run_experiment(&exp, &dope_factory(40, 100.0, 1200.0))
    };
    let unmanaged = run(SchemeKind::None);
    let anti = run(SchemeKind::AntiDope);
    assert!(anti.power.violation_fraction < unmanaged.power.violation_fraction * 0.5);
    assert!(
        anti.normal_latency.p90_ms < 250.0,
        "normal users protected: {}",
        anti.oneline()
    );
}

/// The offline profiling step points the attacker at the heavy kernels
/// (the paper's attack recipe), and heavier kernels produce higher power
/// per request on the victim.
#[test]
fn offline_profiling_matches_online_power() {
    let ranked = DopeAttacker::offline_rank(2.4, 60.0);
    assert_eq!(ranked[0].0, ServiceKind::KMeans);
    // Verify online: flood with the top-ranked vs bottom-ranked kernel at
    // the same rate; the top-ranked one burns more energy.
    let run_kernel = |kind: ServiceKind| {
        let factory = move |exp: &ExperimentConfig| {
            let horizon = SimTime::ZERO + exp.duration;
            let v: Vec<Box<dyn TrafficSource>> = vec![Box::new(FloodSource::against_service(
                AttackTool::HttpLoad { rate: 200.0 },
                kind,
                50_000,
                40,
                1 << 40,
                SimTime::ZERO,
                horizon,
                exp.seed,
            ))];
            v
        };
        let mut exp = ExperimentConfig::paper_window(
            ClusterConfig::paper_rack(BudgetLevel::Normal),
            SchemeKind::None,
            9,
        );
        exp.duration = SimDuration::from_secs(60);
        run_experiment(&exp, &factory)
    };
    let heavy = run_kernel(ranked[0].0);
    let light = run_kernel(ranked[3].0);
    assert!(
        heavy.energy.utility_j > light.energy.utility_j * 1.3,
        "heavy {} vs light {}",
        heavy.energy.utility_j,
        light.energy.utility_j
    );
}
