//! Property tests over whole simulations: invariants that must hold for
//! *any* seed and any (sane) attack intensity, not just the calibrated
//! figures.

use antidope_repro::prelude::*;
use proptest::prelude::*;
use workloads::attacker::AttackTool;

fn run(scheme: SchemeKind, budget: BudgetLevel, rate: f64, seed: u64) -> SimReport {
    let builder = workloads::ScenarioBuilder::new()
        .with_normal_users(60.0, 40)
        .with_attack(
            AttackTool::HttpLoad { rate },
            ServiceKind::CollaFilt,
            40,
            2,
        );
    let factory =
        move |exp: &ExperimentConfig| builder.build(exp.seed, SimTime::ZERO + exp.duration);
    let mut exp = ExperimentConfig::paper_window(ClusterConfig::paper_rack(budget), scheme, seed);
    exp.duration = SimDuration::from_secs(20);
    antidope::run_experiment(&exp, &factory)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// Physical sanity for every scheme: power within the nameplate
    /// envelope, probabilities in range, accounting internally
    /// consistent.
    #[test]
    fn prop_reports_physically_sane(
        seed in 0u64..1000,
        rate in 50.0f64..900.0,
        scheme_ix in 0usize..4,
    ) {
        let scheme = SchemeKind::EVALUATED[scheme_ix];
        let r = run(scheme, BudgetLevel::Medium, rate, seed);
        prop_assert!(r.power.peak_w <= 400.0 + 1e-6, "peak {}", r.power.peak_w);
        prop_assert!(r.power.avg_w >= 0.0 && r.power.avg_w <= r.power.peak_w + 1e-6);
        prop_assert!((0.0..=1.0).contains(&r.availability()));
        prop_assert!((0.0..=1.0).contains(&r.traffic.drop_rate));
        prop_assert!((0.0..=1.0).contains(&r.battery.min_soc));
        prop_assert!(r.energy.utility_j >= 0.0);
        // Everything offered is accounted for: completions + drops +
        // still-in-flight-at-horizon (bounded by queue capacity).
        let accounted = r.normal_sla.total() + r.attack_sla.total();
        prop_assert!(accounted <= r.traffic.offered);
        prop_assert!(
            r.traffic.offered - accounted <= (4 * 32) as u64 + 8,
            "unaccounted {} exceeds in-flight bound",
            r.traffic.offered - accounted
        );
    }

    /// Anti-DOPE never violates the budget more than leaving the cluster
    /// unmanaged, at any attack intensity.
    #[test]
    fn prop_antidope_never_worse_on_power(
        seed in 0u64..1000,
        rate in 100.0f64..900.0,
    ) {
        let anti = run(SchemeKind::AntiDope, BudgetLevel::Medium, rate, seed);
        let none = run(SchemeKind::None, BudgetLevel::Medium, rate, seed);
        prop_assert!(
            anti.power.violation_fraction <= none.power.violation_fraction + 1e-9,
            "anti {} > none {}",
            anti.power.violation_fraction,
            none.power.violation_fraction
        );
    }

    /// Determinism holds across the whole parameter space, not just the
    /// calibrated scenarios.
    #[test]
    fn prop_deterministic_everywhere(
        seed in 0u64..1000,
        rate in 50.0f64..900.0,
        scheme_ix in 0usize..4,
    ) {
        let scheme = SchemeKind::EVALUATED[scheme_ix];
        let a = run(scheme, BudgetLevel::Low, rate, seed);
        let b = run(scheme, BudgetLevel::Low, rate, seed);
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}
