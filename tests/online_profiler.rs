//! The oracle-free story end-to-end: under a URL-rotating attack the
//! online power-attribution profiler must recover (nearly) the defense
//! quality of an impossible oracle suspect list, while a stale offline
//! list degrades toward Capping-like behaviour.

mod common;

use antidope_repro::antidope::pdf::{build_suspect_list, DEFAULT_SUSPECT_THRESHOLD};
use antidope_repro::antidope::scheme::{AntiDopeScheme, PowerScheme};
use antidope_repro::netsim::request::UrlId;
use antidope_repro::netsim::suspect::FlowClass;
use antidope_repro::prelude::*;
use antidope_repro::simcore::rng::SimRng;

const URL_BASE: u16 = 800;
const URL_SPACE: u16 = 6;
const ROTATION_S: u64 = 20;
const ATTACK_RATE: f64 = 390.0;
const SECS: u64 = 240;
const SEED: u64 = 2019;

fn rotating_attack(seed: u64, horizon: SimTime) -> RotatingFloodSource {
    RotatingFloodSource::against_service(
        ATTACK_RATE,
        ServiceKind::CollaFilt,
        URL_BASE,
        URL_SPACE,
        SimDuration::from_secs(ROTATION_S),
        50_000,
        40,
        1 << 40,
        SimTime::from_secs(5),
        horizon,
        seed ^ 0x707A7E,
    )
}

/// One arm of the provenance comparison: `"oracle"` (impossible
/// knowledge of every rotation URL), `"online"` (profiler learns at
/// runtime), or `"stale"` (offline service profiles only).
fn run_arm(arm: &str) -> SimReport {
    let mut cluster = ClusterConfig::paper_rack(BudgetLevel::Low);
    cluster.firewall = true;
    if arm == "online" {
        cluster.profiler = Some(ProfilerConfig::default());
    }
    let mut exp = ExperimentConfig::paper_window(cluster, SchemeKind::AntiDope, SEED);
    exp.duration = SimDuration::from_secs(SECS);
    let horizon = SimTime::ZERO + exp.duration;
    let attack = rotating_attack(exp.seed, horizon);
    let scheme: Box<dyn PowerScheme> = if arm == "oracle" {
        Box::new(AntiDopeScheme::with_oracle_profiles(
            &exp.cluster,
            attack.oracle_profiles(),
        ))
    } else {
        Box::new(AntiDopeScheme::new(&exp.cluster))
    };
    let trace = UtilizationTrace::synthesize(&AlibabaTraceConfig::small(exp.seed));
    let sources: Vec<Box<dyn TrafficSource>> = vec![
        Box::new(NormalUsers::new(
            trace,
            ServiceMix::alios_normal(),
            common::NORMAL_PEAK_RATE,
            1_000,
            60,
            0,
            horizon,
            exp.seed,
        )),
        Box::new(attack),
    ];
    ClusterSim::run_with_scheme(&exp, scheme, sources)
}

/// The acceptance criterion: at Low-PB under the rotating attack, the
/// online profiler restores legit p99 to within 10 % of the oracle run,
/// and isolates (nearly) the same traffic volume.
#[test]
fn online_profiler_restores_oracle_p99() {
    let oracle = run_arm("oracle");
    let online = run_arm("online");

    let (op99, np99) = (oracle.normal_latency.p99_ms, online.normal_latency.p99_ms);
    assert!(
        np99 <= op99 * 1.10,
        "online p99 {np99:.1} ms not within 10% of oracle {op99:.1} ms"
    );
    // The learned list routes the bulk of the flood into the suspect
    // pool, like the oracle does.
    assert!(
        online.traffic.to_suspect_pool as f64 >= 0.7 * oracle.traffic.to_suspect_pool as f64,
        "online isolated {} vs oracle {}",
        online.traffic.to_suspect_pool,
        oracle.traffic.to_suspect_pool
    );
    // The profiler actually learned the rotation: every hopped-to URL is
    // tracked and most are classified suspect by the end.
    let prof = online.profiler.expect("online arm reports profiler stats");
    assert!(prof.observations > 0, "no learning observations");
    assert!(
        prof.tracked_urls >= (URL_SPACE as u64) / 2,
        "tracked only {} URLs",
        prof.tracked_urls
    );
    assert!(
        prof.suspect_urls >= 2,
        "only {} suspect URLs learned",
        prof.suspect_urls
    );
    // Oracle / stale arms run without the profiler subsystem.
    assert!(oracle.profiler.is_none());
}

/// Without the profiler, the stale offline list never matches the
/// rotating URLs: the flood rides the innocent pool, PDF isolates
/// nothing, and the run degrades toward Capping-like behaviour —
/// sustained breaker-violation time and inflated mean latency.
#[test]
fn stale_offline_list_degrades_under_rotation() {
    let online = run_arm("online");
    let stale = run_arm("stale");

    // The stale list misses (almost all of) the flood.
    assert!(
        10 * stale.traffic.to_suspect_pool < online.traffic.to_suspect_pool,
        "stale isolated {} vs online {}",
        stale.traffic.to_suspect_pool,
        online.traffic.to_suspect_pool
    );
    // Unisolated flood at Low-PB: the breaker-violation time is
    // sustained, where the learned list keeps it marginal.
    assert!(
        stale.power.violation_fraction > 0.01,
        "expected sustained violations, got {}",
        stale.power.violation_fraction
    );
    assert!(
        stale.power.violation_fraction > online.power.violation_fraction,
        "stale {} vs online {}",
        stale.power.violation_fraction,
        online.power.violation_fraction
    );
    // Whole-cluster throttling inflates everyone's mean latency.
    assert!(
        stale.normal_latency.mean_ms > 1.4 * online.normal_latency.mean_ms,
        "stale mean {} vs online {}",
        stale.normal_latency.mean_ms,
        online.normal_latency.mean_ms
    );
}

mod convergence {
    use super::*;
    use proptest::prelude::*;

    /// Synthetic stationary traffic: each node hosts a random mix of the
    /// four service kernels; node power follows the same model the
    /// profiler inverts (exactly — this isolates estimator convergence
    /// from simulator noise).
    fn drive_stationary(seed: u64, ticks: u32) -> PowerProfiler {
        let cfg = ProfilerConfig::default();
        let mut engine = PowerProfiler::new(cfg.clone());
        let mut rng = SimRng::new(seed);
        for _ in 0..ticks {
            for _node in 0..4 {
                // 1–3 kernels per node, weights 1–4.
                let mut mix: Vec<(UrlId, u32)> = Vec::new();
                let k = 1 + rng.below(3) as usize;
                for _ in 0..k {
                    let kernel = ServiceKind::ALL[rng.below(4) as usize];
                    let weight = 1 + rng.below(4) as u32;
                    match mix.iter_mut().find(|(u, _)| *u == kernel.url()) {
                        Some((_, w)) => *w += weight,
                        None => mix.push((kernel.url(), weight)),
                    }
                }
                let total: u32 = mix.iter().map(|(_, w)| w).sum();
                let mixed_intensity: f64 = mix
                    .iter()
                    .map(|(u, w)| {
                        let kernel = ServiceKind::from_url(*u).expect("mix built from kernels");
                        kernel.profile().intensity * (*w as f64) / total as f64
                    })
                    .sum();
                let utilization = 0.25 + 0.75 * rng.unit_f64();
                let power = cfg.idle_w
                    + cfg.dynamic_scale_w * utilization.powf(cfg.util_exponent) * mixed_intensity;
                engine.observe_node(Some(power), utilization, true, &mix);
            }
            engine.end_tick();
        }
        engine
    }

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 16,
            ..ProptestConfig::default()
        })]

        /// Satellite guarantee: under stationary traffic the online
        /// classification converges to the oracle
        /// [`build_suspect_list`] labels within a bounded number of
        /// control ticks, for any seed.
        #[test]
        fn stationary_traffic_converges_to_oracle_labels(seed in 0u64..1_000_000) {
            let engine = drive_stationary(seed, 40);
            let oracle = build_suspect_list(DEFAULT_SUSPECT_THRESHOLD)
                .expect("default threshold is valid");
            for kernel in ServiceKind::ALL {
                let url = kernel.url();
                let want = if oracle.is_suspect(url) {
                    FlowClass::Suspect
                } else {
                    FlowClass::Innocent
                };
                prop_assert_eq!(
                    engine.list().classify(url),
                    want,
                    "kernel {} (intensity {}) misclassified after 40 ticks",
                    kernel.name(),
                    kernel.profile().intensity
                );
                // And the learned intensity is close to ground truth.
                let est = engine.estimate(url).expect("kernel was observed");
                prop_assert!(
                    (est - kernel.profile().intensity).abs() < 0.05,
                    "estimate {} vs true {}",
                    est,
                    kernel.profile().intensity
                );
            }
        }
    }
}
