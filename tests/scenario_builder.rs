//! Cross-crate check: ScenarioBuilder-produced populations drive the
//! full simulator, deterministically, with correctly-separated sources.

use antidope_repro::prelude::*;
use workloads::attacker::AttackTool;

#[test]
fn builder_scenario_runs_end_to_end() {
    let builder = workloads::ScenarioBuilder::new()
        .with_normal_users(80.0, 60)
        .with_attack(
            AttackTool::HttpLoad { rate: 390.0 },
            ServiceKind::CollaFilt,
            40,
            5,
        );
    let factory = move |exp: &ExperimentConfig| {
        builder.build(exp.seed, SimTime::ZERO + exp.duration)
    };
    let mut exp = ExperimentConfig::paper_window(
        ClusterConfig::paper_rack(BudgetLevel::Medium),
        SchemeKind::AntiDope,
        17,
    );
    exp.duration = SimDuration::from_secs(60);
    let a = antidope::run_experiment(&exp, &factory);
    let b = antidope::run_experiment(&exp, &factory);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "builder scenarios must be deterministic"
    );
    assert!(a.traffic.offered > 1000);
    assert!(a.traffic.to_suspect_pool > 0, "attack must hit the pool");
    assert_eq!(a.power.violations, 0);
}

#[test]
fn builder_switching_scenario() {
    // Attack windows rotate victims; the builder owns the bookkeeping.
    let builder = workloads::ScenarioBuilder::new()
        .with_normal_users(80.0, 60)
        .with_attack_window(
            AttackTool::HttpLoad { rate: 400.0 },
            ServiceKind::CollaFilt,
            40,
            5,
            30,
        )
        .with_attack_window(
            AttackTool::HttpLoad { rate: 400.0 },
            ServiceKind::KMeans,
            40,
            30,
            55,
        );
    let factory = move |exp: &ExperimentConfig| {
        builder.build(exp.seed, SimTime::ZERO + exp.duration)
    };
    let mut exp = ExperimentConfig::paper_window(
        ClusterConfig::paper_rack(BudgetLevel::Low),
        SchemeKind::Capping,
        19,
    );
    exp.duration = SimDuration::from_secs(60);
    let r = antidope::run_experiment(&exp, &factory);
    // Both attack phases produced load: attack outcomes from two kernels.
    assert!(r.attack_sla.total() > 1000);
    assert!(r.power.violations > 0);
}
