//! The attacker × defense co-evolution grid: the lab's acceptance
//! contract.
//!
//! * an ON/OFF burst flood slips the per-source firewall that bans the
//!   constant flood of the same aggregate rate — bursts shorter than
//!   the detection lag, sleeps that outlive a finite ban;
//! * a memory-resource flood defeats the DVFS-only arm but not the
//!   stacked CAPoW + Anti-DOPE arm;
//! * same-seed grid cells are byte-identical at shards 1/2/4/8.

use antidope::AdmissionConfig;
use antidope_repro::prelude::*;
use dope_bench::grid::{run_cell, run_cell_on, AttackRow, DefenseStack, GridConfig};
use workloads::scenario::{ScenarioBuilder, SeedPin};
use workloads::service::ServiceKind;
use workloads::vector::{AttackVectorSpec, Envelope, SourcePlan};

/// Run `spec` against an otherwise-idle perimeter: deflate firewall at
/// 150 req/s with finite 30 s bans, no power scheme, generous budget.
fn firewalled(spec: AttackVectorSpec) -> SimReport {
    let builder = ScenarioBuilder::new()
        .with_normal_users(80.0, 60)
        .pinned(1_000, 0, SeedPin::Raw)
        .with_vector(spec, 5);
    let mut cluster = ClusterConfig::paper_rack(BudgetLevel::Normal);
    cluster.admission = Some(AdmissionConfig {
        firewall_ban_s: Some(30.0),
        ..AdmissionConfig::default()
    });
    let mut exp = ExperimentConfig::paper_window(cluster, SchemeKind::None, 2019);
    exp.duration = SimDuration::from_secs(90);
    run_experiment(&exp, &move |e: &ExperimentConfig| {
        builder.build(e.seed, SimTime::ZERO + e.duration)
    })
}

/// Acceptance (a): the firewall that catches the constant flood is
/// evaded by the same volume reshaped into ON/OFF bursts from an
/// auto-sized botnet. The burst timing is engineered against the
/// perimeter's clocks: 4 s bursts mature their bans during the 36 s
/// sleep (detection lag 5 s), and the 30 s ban expires before the next
/// burst fires — so not one request is ever blocked.
#[test]
fn burst_envelope_evades_the_firewall_that_bans_constant() {
    let base = AttackVectorSpec::open_loop(ServiceKind::CollaFilt, 390.0);

    let constant = base.clone().sources(SourcePlan::Botnet { bots: 2 });
    let caught = firewalled(constant);
    assert!(
        caught.traffic.firewall_blocked > 0,
        "195 req/s per source must trip the 150 req/s rule"
    );

    let burst = base
        .envelope(Envelope::OnOffBurst {
            period: SimDuration::from_secs(40),
            duty: 0.1,
        })
        .sources(SourcePlan::EvadingBotnet {
            threshold_rps: 150.0,
        });
    let evaded = firewalled(burst);
    assert_eq!(
        evaded.traffic.firewall_blocked, 0,
        "burst botnet must never be blocked"
    );
    // Evasion is not abstinence: the flood still lands real volume
    // (~390 req/s × the ON fraction of the window, plus normal users).
    assert!(
        evaded.traffic.offered > 7_000,
        "evading flood landed only {} requests",
        evaded.traffic.offered
    );
}

/// Acceptance (b): the memory-bound resource shape (gamma 0.2 — DVFS
/// reclaims almost nothing) breaks uniform capping, while the stacked
/// arm (cost-to-serve pricing with the memory surcharge + Anti-DOPE)
/// holds the budget outright.
#[test]
fn memory_flood_defeats_dvfs_only_but_not_stacked() {
    let cfg = GridConfig::smoke(2019);
    let dvfs = run_cell(&cfg, AttackRow::Memory, DefenseStack::DvfsOnly);
    assert!(
        dvfs.violated(),
        "memory flood must breach the DVFS-only arm (peak {} W vs supply {} W)",
        dvfs.report.power.peak_w,
        dvfs.report.power.supply_w
    );

    let stacked = run_cell(&cfg, AttackRow::Memory, DefenseStack::Stacked);
    assert!(
        !stacked.violated(),
        "stacked arm must hold the budget (got {} violations)",
        stacked.report.power.violations
    );
    let denied: u64 = stacked
        .report
        .admission
        .as_ref()
        .expect("stacked arm reports per-stage verdicts")
        .stages
        .iter()
        .map(|s| s.denied)
        .sum();
    assert!(denied > 0, "cost-to-serve pricing never engaged");
}

/// Acceptance (c): one grid cell, same seed, shards 1/2/4/8 — the
/// report is byte-identical. A 2-rack topology routes every shard
/// count (including 1) through the sharded engine, whose reports are
/// layout-independent by contract.
#[test]
fn grid_cells_byte_identical_at_shards_1_2_4_8() {
    let run = |shards: usize| {
        let mut cfg = GridConfig::smoke(7);
        cfg.duration_s = 30;
        cfg.shards = shards;
        let cell = run_cell_on(&cfg, AttackRow::Rotating, DefenseStack::Stacked, &|c| {
            c.servers = 16;
            c.suspect_pool_size = 2;
            c.topology = Some(TopologyConfig {
                racks: 2,
                ..TopologyConfig::default()
            });
        });
        assert!(cell.report.traffic.offered > 500, "cell must carry load");
        serde_json::to_string(&cell.report).expect("report serializes")
    };
    let base = run(1);
    for shards in [2usize, 4, 8] {
        assert_eq!(base, run(shards), "report drifted at {shards} shards");
    }
}
