//! Cross-crate integration tests asserting the paper's *qualitative*
//! claims end-to-end: who wins, in which regime, and why.

mod common;

use antidope_repro::prelude::*;
use common::run_cell;

/// Section 6.3: "For the baseline [Normal-PB], all the service response
/// time under different power schemes is below 40 milliseconds and there
/// is no difference among the observed power schemes."
#[test]
fn normal_pb_all_schemes_equivalent_and_fast() {
    // A moderate DOPE flow (power stays adequate at Normal-PB, and the
    // suspect pool is not driven past capacity): the schemes must be
    // indistinguishable and fast.
    let mut means = Vec::new();
    for scheme in SchemeKind::EVALUATED {
        // 60 req/s of Colla-Filt: stealth-scale DOPE that stays inside
        // the suspect pool's service capacity (~110 req/s).
        let r = run_cell(scheme, BudgetLevel::Normal, 60.0, 60, 42);
        assert!(
            r.normal_latency.mean_ms < 40.0,
            "{}: mean {} ms",
            scheme,
            r.normal_latency.mean_ms
        );
        means.push(r.normal_latency.mean_ms);
    }
    let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = means.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        hi - lo < 25.0,
        "schemes should be close at Normal-PB: {means:?}"
    );
}

/// The headline: under-provisioned + DOPE, Anti-DOPE beats the power
/// baselines on both mean response time and p90 tail latency of
/// legitimate users (paper: 44 % shorter mean, 68.1 % better p90).
#[test]
fn antidope_beats_power_baselines_under_attack() {
    let seed = 7;
    let attack = 600.0;
    for budget in [BudgetLevel::Medium, BudgetLevel::Low] {
        let capping = run_cell(SchemeKind::Capping, budget, attack, 120, seed);
        let shaving = run_cell(SchemeKind::Shaving, budget, attack, 120, seed);
        let anti = run_cell(SchemeKind::AntiDope, budget, attack, 120, seed);
        assert!(
            anti.normal_latency.mean_ms < capping.normal_latency.mean_ms,
            "{budget}: anti {} !< capping {}",
            anti.normal_latency.mean_ms,
            capping.normal_latency.mean_ms
        );
        assert!(
            anti.normal_latency.p90_ms < capping.normal_latency.p90_ms,
            "{budget}: anti p90 {} !< capping p90 {}",
            anti.normal_latency.p90_ms,
            capping.normal_latency.p90_ms
        );
        assert!(
            anti.normal_latency.p90_ms < shaving.normal_latency.p90_ms * 1.05,
            "{budget}: anti p90 {} should not lose to shaving p90 {}",
            anti.normal_latency.p90_ms,
            shaving.normal_latency.p90_ms
        );
    }
}

/// Section 5.4 / 6.3: Token holds latency low only by abandoning most of
/// the traffic ("more than 60 % of the packages"), legitimate included.
#[test]
fn token_trades_drops_for_latency() {
    let token = run_cell(SchemeKind::Token, BudgetLevel::Low, 800.0, 90, 11);
    let capping = run_cell(SchemeKind::Capping, BudgetLevel::Low, 800.0, 90, 11);
    assert!(
        token.traffic.drop_rate > 0.5,
        "token drop rate {}",
        token.traffic.drop_rate
    );
    // Capping also sheds load once its throttled queues overflow, but
    // Token, whose *only* tool is shedding, must drop more.
    assert!(
        token.traffic.drop_rate > capping.traffic.drop_rate,
        "token {} !> capping {}",
        token.traffic.drop_rate,
        capping.traffic.drop_rate
    );
    // And its *served* latency is indeed short.
    assert!(token.normal_latency.mean_ms < capping.normal_latency.mean_ms);
    // But legitimate users pay in availability: the bucket cannot tell a
    // legitimate recommendation query from an attack one, so the heavy
    // fifth of legitimate traffic is shed alongside the attack.
    assert!(
        token.normal_sla.drop_rate() > 0.1,
        "legit drop rate {}",
        token.normal_sla.drop_rate()
    );
}

/// Fig 15-a: every managed scheme keeps sustained power near the budget;
/// unmanaged does not.
#[test]
fn managed_schemes_contain_power() {
    let unmanaged = run_cell(SchemeKind::None, BudgetLevel::Medium, 600.0, 90, 13);
    assert!(
        unmanaged.power.violation_fraction > 0.5,
        "unmanaged should violate persistently: {}",
        unmanaged.power.violation_fraction
    );
    for scheme in [SchemeKind::Capping, SchemeKind::AntiDope] {
        let r = run_cell(scheme, BudgetLevel::Medium, 600.0, 90, 13);
        assert!(
            r.power.violation_fraction < 0.35,
            "{}: violation fraction {}",
            scheme,
            r.power.violation_fraction
        );
    }
}

/// Fig 15-b / Section 6.2: Anti-DOPE's collateral damage on legitimate
/// users is bounded — availability stays high under attack.
#[test]
fn antidope_preserves_availability() {
    let r = run_cell(SchemeKind::AntiDope, BudgetLevel::Medium, 600.0, 120, 17);
    // The innocent 80 % of legitimate traffic is fully protected; the
    // ~20 % classified suspect shares the isolated pool with the attack
    // (the paper's accepted collateral, §5.4), so availability is
    // bounded below by roughly the innocent share.
    assert!(
        r.availability() > 0.72,
        "availability {} too low: {}",
        r.availability(),
        r.oneline()
    );
    // Attack traffic actually landed on the suspect pool.
    assert!(r.traffic.to_suspect_pool > 0);
}

/// Fig 19: at Normal-PB all schemes consume about the same energy; under
/// attack with low budgets, Capping consumes the least utility energy
/// (it blindly slows everything down).
#[test]
fn energy_orderings() {
    let seed = 23;
    // "Different schemes consume the same energy in the baseline case":
    // the baseline is normal operation (no DOPE).
    let base: Vec<f64> = SchemeKind::EVALUATED
        .iter()
        .map(|&s| {
            run_cell(s, BudgetLevel::Normal, 0.0, 60, seed)
                .energy
                .normalized_utility
        })
        .collect();
    let lo = base.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = base.iter().cloned().fold(0.0f64, f64::max);
    assert!(hi / lo < 1.5, "Normal-PB energies should be close: {base:?}");

    let capping = run_cell(SchemeKind::Capping, BudgetLevel::Low, 600.0, 90, seed);
    let anti = run_cell(SchemeKind::AntiDope, BudgetLevel::Low, 600.0, 90, seed);
    let shaving = run_cell(SchemeKind::Shaving, BudgetLevel::Low, 600.0, 90, seed);
    // Shaving carries the whole load on the UPS during violations, so
    // its meter reading inside a short window defers most of the cost to
    // battery debt; compare the debt-adjusted billed energy (drained
    // charge must be bought back at ~90 % round-trip efficiency).
    let adjusted = |r: &antidope::SimReport| {
        r.energy.utility_j + (1.0 - r.battery.final_soc) * r.battery.capacity_j / 0.9
    };
    // Shaving serves the full attack at nominal frequency on battery
    // power, so its adjusted bill is the largest; Capping saves by
    // slowing everything; Anti-DOPE saves by isolating (and shedding)
    // the attack. (Divergence note: the paper ranks Capping below
    // Anti-DOPE on energy; our bounded suspect queue gives Anti-DOPE an
    // extra saving through rejected attack work — see EXPERIMENTS.md.)
    assert!(
        adjusted(&capping) < adjusted(&shaving),
        "capping {} !< shaving {}",
        adjusted(&capping),
        adjusted(&shaving)
    );
    assert!(
        adjusted(&anti) < adjusted(&shaving),
        "anti {} !< shaving {}",
        adjusted(&anti),
        adjusted(&shaving)
    );
    // Anti-DOPE leans on the battery less than Shaving.
    assert!(
        anti.battery.discharged_j < shaving.battery.discharged_j,
        "anti battery {} vs shaving {}",
        anti.battery.discharged_j,
        shaving.battery.discharged_j
    );
}

/// Colla-Filt and K-means degrade service more than light traffic under
/// capping (Fig 8): attack with each kernel, compare p90 of normal users.
#[test]
fn heavy_kernels_hurt_more() {
    let run_kernel = |kind: ServiceKind| {
        let factory = move |exp: &ExperimentConfig| {
            let horizon = SimTime::ZERO + exp.duration;
            let trace = UtilizationTrace::synthesize(&AlibabaTraceConfig::small(exp.seed));
            let sources: Vec<Box<dyn TrafficSource>> = vec![
                Box::new(NormalUsers::new(
                    trace,
                    ServiceMix::alios_normal(),
                    common::NORMAL_PEAK_RATE,
                    1_000,
                    60,
                    0,
                    horizon,
                    exp.seed,
                )),
                Box::new(FloodSource::against_service(
                    AttackTool::HttpLoad { rate: 500.0 },
                    kind,
                    50_000,
                    40,
                    1 << 40,
                    SimTime::from_secs(5),
                    horizon,
                    exp.seed ^ 0x5EED,
                )),
            ];
            sources
        };
        let mut exp = ExperimentConfig::paper_window(
            ClusterConfig::paper_rack(BudgetLevel::Low),
            SchemeKind::Capping,
            31,
        );
        exp.duration = SimDuration::from_secs(90);
        run_experiment(&exp, &factory)
    };
    let colla = run_kernel(ServiceKind::CollaFilt);
    let text = run_kernel(ServiceKind::TextCont);
    assert!(
        colla.normal_latency.p90_ms > text.normal_latency.p90_ms,
        "colla p90 {} !> text p90 {}",
        colla.normal_latency.p90_ms,
        text.normal_latency.p90_ms
    );
    // The heavy kernel also forces deeper V/F cuts.
    assert!(colla.vf.mean_reduction_steps > text.vf.mean_reduction_steps);
}
