//! Shared scenario builders for the integration tests.
#![allow(dead_code)] // each test binary uses a subset of these helpers

use antidope_repro::prelude::*;

/// Standard peak arrival rate for the normal population (requests/s at
/// trace utilization 1.0).
pub const NORMAL_PEAK_RATE: f64 = 80.0;

/// Build the standard test scenario: AliOS normal users plus a
/// Colla-Filt http-load flood at `attack_rate` starting at t = 5 s,
/// spread over 40 bots (stealthy per-source rates). The source builders
/// themselves are the canonical ones in [`antidope::testutil`].
pub fn scenario(attack_rate: f64) -> impl Fn(&ExperimentConfig) -> Vec<Box<dyn TrafficSource>> {
    move |exp: &ExperimentConfig| {
        let horizon = SimTime::ZERO + exp.duration;
        let mut sources: Vec<Box<dyn TrafficSource>> =
            vec![antidope::testutil::normal_source(exp.seed, horizon, NORMAL_PEAK_RATE)];
        if attack_rate > 0.0 {
            sources.push(antidope::testutil::attack_source(
                exp.seed ^ 0x5EED,
                attack_rate,
                SimTime::from_secs(5),
                horizon,
            ));
        }
        sources
    }
}

/// Run one (scheme, budget) cell of the standard scenario.
pub fn run_cell(
    scheme: SchemeKind,
    budget: BudgetLevel,
    attack_rate: f64,
    duration_s: u64,
    seed: u64,
) -> SimReport {
    let mut exp = ExperimentConfig::paper_window(ClusterConfig::paper_rack(budget), scheme, seed);
    exp.duration = SimDuration::from_secs(duration_s);
    run_experiment(&exp, &scenario(attack_rate))
}

/// Like [`run_chaos_cell`], but with the online power-attribution
/// profiler enabled alongside the fault plan.
pub fn run_profiled_chaos_cell(
    scheme: SchemeKind,
    budget: BudgetLevel,
    attack_rate: f64,
    duration_s: u64,
    seed: u64,
    faults: FaultConfig,
) -> SimReport {
    let mut cluster = ClusterConfig::paper_rack(budget);
    cluster.faults = Some(faults);
    cluster.profiler = Some(ProfilerConfig::default());
    let mut exp = ExperimentConfig::paper_window(cluster, scheme, seed);
    exp.duration = SimDuration::from_secs(duration_s);
    run_experiment(&exp, &scenario(attack_rate))
}

/// Run one (scheme, budget) cell of the standard scenario with a fault
/// plan injected.
pub fn run_chaos_cell(
    scheme: SchemeKind,
    budget: BudgetLevel,
    attack_rate: f64,
    duration_s: u64,
    seed: u64,
    faults: FaultConfig,
) -> SimReport {
    let mut cluster = ClusterConfig::paper_rack(budget);
    cluster.faults = Some(faults);
    let mut exp = ExperimentConfig::paper_window(cluster, scheme, seed);
    exp.duration = SimDuration::from_secs(duration_s);
    run_experiment(&exp, &scenario(attack_rate))
}
