//! Golden-report regression harness.
//!
//! Three fixed-seed (scheme × budget) cells of the standard scenario are
//! serialized in full to `tests/golden/*.json`. The test fails on *any*
//! field drift — latency quantiles, energy joules, fault counters,
//! everything `SimReport` carries — which pins the simulator bit-for-bit
//! across refactors. The staged control-plane refactor (ISSUE 5) is
//! behavior-preserving by construction because these snapshots were
//! captured on the pre-refactor monolith and must stay byte-identical.
//!
//! Regenerating after an *intentional* behavior change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_report
//! ```
//!
//! then commit the rewritten `tests/golden/*.json` together with the
//! change that justifies them.

mod common;

use antidope_repro::prelude::*;
use common::{run_cell, run_profiled_chaos_cell};
use std::path::PathBuf;

/// One seed for every golden cell; picked once and never changed.
const GOLDEN_SEED: u64 = 2019;

/// Window length: long enough for the attack, throttling, battery and
/// (in the chaos cell) crash/reboot/blackout machinery to all fire.
const GOLDEN_DURATION_S: u64 = 90;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

/// Stable rendering: the multi-line `Debug` form with a trailing
/// newline, so drift diffs are per-field. `Debug` prints every field
/// and formats floats in shortest-round-trip form, which makes the
/// comparison bit-exact without depending on a serializer.
fn render(report: &SimReport) -> String {
    format!("{report:#?}\n")
}

fn check(name: &str, report: &SimReport) {
    let path = golden_path(name);
    let rendered = render(report);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nregenerate with UPDATE_GOLDEN=1 cargo test --test golden_report",
            path.display()
        )
    });
    assert!(
        golden == rendered,
        "golden report `{name}` drifted.\n\
         If the behavior change is intentional, regenerate with\n\
         UPDATE_GOLDEN=1 cargo test --test golden_report\n\
         and commit the diff. First divergence:\n{}",
        first_divergence(&golden, &rendered)
    );
}

/// Point at the first differing line so drift is diagnosable without a
/// manual diff of a multi-thousand-line JSON blob.
fn first_divergence(golden: &str, got: &str) -> String {
    for (i, (g, r)) in golden.lines().zip(got.lines()).enumerate() {
        if g != r {
            return format!("line {}:\n  golden: {g}\n  got:    {r}", i + 1);
        }
    }
    format!(
        "line count changed: golden {} lines, got {} lines",
        golden.lines().count(),
        got.lines().count()
    )
}

/// The full fault mix + online profiler used by the chaos golden cell:
/// every fault class fires, the watchdog engages during the blackout,
/// a node crashes and reboots, and the profiler learns throughout.
fn chaos_mix() -> FaultConfig {
    FaultConfig {
        sensor_dropout_p: 0.10,
        sensor_noise_w: 2.0,
        sensor_stuck_p: 0.01,
        sensor_stale_p: 0.05,
        blackouts: vec![(SimTime::from_secs(20), SimTime::from_secs(30))],
        actuator_loss_p: 0.10,
        actuator_delay_p: 0.10,
        actuator_stuck_p: 0.02,
        crashes: vec![CrashEvent {
            node: 2,
            at: SimTime::from_secs(15),
        }],
        reboot_after: SimDuration::from_secs(10),
        battery_fade: 0.2,
        charger_fails_at: Some(SimTime::from_secs(40)),
        ..FaultConfig::default()
    }
}

/// The clean Anti-DOPE path: PDF forwarding + RPM control + battery.
#[test]
fn golden_antidope_medium() {
    let report = run_cell(
        SchemeKind::AntiDope,
        BudgetLevel::Medium,
        600.0,
        GOLDEN_DURATION_S,
        GOLDEN_SEED,
    );
    check("antidope_medium", &report);
}

/// Uniform capping at the tightest budget: deep DVFS, no battery use.
#[test]
fn golden_capping_low() {
    let report = run_cell(
        SchemeKind::Capping,
        BudgetLevel::Low,
        390.0,
        GOLDEN_DURATION_S,
        GOLDEN_SEED,
    );
    check("capping_low", &report);
}

/// The hardened path end to end: every fault class + telemetry
/// filtering + watchdog + actuator read-back + online profiler.
#[test]
fn golden_antidope_low_chaos_profiled() {
    let report = run_profiled_chaos_cell(
        SchemeKind::AntiDope,
        BudgetLevel::Low,
        390.0,
        GOLDEN_DURATION_S,
        GOLDEN_SEED,
        chaos_mix(),
    );
    check("antidope_low_chaos_profiled", &report);
}
