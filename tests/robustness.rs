//! Failure-injection and edge-of-envelope robustness: pathological
//! populations, degenerate configurations, extreme parameters. The
//! simulator must stay sane (no panic, conserved accounting), never
//! merely "probably work".

use antidope_repro::prelude::*;
use netsim::request::{Request, RequestBuilder, SourceId, UrlId};
use workloads::source::TrafficSource;

/// A source emitting adversarially-shaped requests: alternating
/// microscopic (1 µs) and enormous (40 s) work items at a fixed rate.
struct PathologicalSource {
    builder: RequestBuilder,
    clock: SimTime,
    horizon: SimTime,
    n: u64,
}

impl TrafficSource for PathologicalSource {
    fn next_request(&mut self, now: SimTime) -> Option<Request> {
        if self.clock < now {
            self.clock = now;
        }
        self.clock += SimDuration::from_millis(50);
        if self.clock > self.horizon {
            return None;
        }
        self.n += 1;
        let huge = self.n.is_multiple_of(7);
        Some(self.builder.build(
            UrlId(if huge { 1 } else { 3 }),
            SourceId(77),
            self.clock,
            if huge { 96.0 } else { 2.4e-6 },
            if huge { 0.4 } else { 1.0 },
            if huge { 1.0 } else { 0.0 },
            if huge { 0.0 } else { 1.0 },
            false,
        ))
    }

    fn label(&self) -> &str {
        "pathological"
    }
}

fn pathological_factory(exp: &ExperimentConfig) -> Vec<Box<dyn TrafficSource>> {
    vec![Box::new(PathologicalSource {
        builder: RequestBuilder::new(),
        clock: SimTime::ZERO,
        horizon: SimTime::ZERO + exp.duration,
        n: 0,
    })]
}

#[test]
fn survives_pathological_work_distribution() {
    for scheme in [SchemeKind::Capping, SchemeKind::AntiDope, SchemeKind::Token] {
        let mut exp = ExperimentConfig::paper_window(
            ClusterConfig::paper_rack(BudgetLevel::Low),
            scheme,
            1,
        );
        exp.duration = SimDuration::from_secs(60);
        let r = antidope::run_experiment(&exp, &pathological_factory);
        assert!(r.traffic.offered > 1000, "{scheme}: {}", r.oneline());
        // Energy accounting stays physical.
        assert!(r.energy.load_j > 0.0 && r.energy.load_j.is_finite());
        assert!(r.power.peak_w <= 400.0 + 1e-6);
        // Tiny requests complete almost instantly; the report is sane.
        assert!(r.normal_latency.min_ms >= 0.0);
    }
}

#[test]
fn empty_population_is_fine() {
    let mut exp = ExperimentConfig::paper_window(
        ClusterConfig::paper_rack(BudgetLevel::Low),
        SchemeKind::AntiDope,
        2,
    );
    exp.duration = SimDuration::from_secs(30);
    let r = antidope::run_experiment(&exp, &|_: &ExperimentConfig| Vec::new());
    assert_eq!(r.traffic.offered, 0);
    assert_eq!(r.availability(), 1.0);
    // Idle rack: 4 × 40 W for 30 s.
    assert!((r.energy.load_j - 4.0 * 40.0 * 30.0).abs() < 10.0);
}

#[test]
fn monster_flood_causes_rejections_not_panics() {
    let builder = workloads::ScenarioBuilder::new().with_attack(
        workloads::attacker::AttackTool::HttpLoad { rate: 5000.0 },
        ServiceKind::KMeans,
        100,
        0,
    );
    let factory =
        move |exp: &ExperimentConfig| builder.build(exp.seed, SimTime::ZERO + exp.duration);
    let mut exp = ExperimentConfig::paper_window(
        ClusterConfig::paper_rack(BudgetLevel::Low),
        SchemeKind::Capping,
        3,
    );
    exp.duration = SimDuration::from_secs(30);
    let r = antidope::run_experiment(&exp, &factory);
    assert!(r.traffic.queue_rejected > 10_000, "{:?}", r.traffic);
    assert!(r.power.peak_w <= 400.0 + 1e-6);
}

#[test]
fn degenerate_configurations() {
    // Tiny battery.
    let mut c1 = ClusterConfig::paper_rack(BudgetLevel::Low);
    c1.battery_sustain = SimDuration::from_secs(1);
    // Control slot longer than several attack periods.
    let mut c2 = ClusterConfig::paper_rack(BudgetLevel::Low);
    c2.control_slot = SimDuration::from_secs(20);
    // Minimal cluster: 2 servers, 1 suspect.
    let mut c3 = ClusterConfig::paper_rack(BudgetLevel::Low);
    c3.servers = 2;
    c3.suspect_pool_size = 1;

    for (i, cluster) in [c1, c2, c3].into_iter().enumerate() {
        let builder = workloads::ScenarioBuilder::new()
            .with_normal_users(40.0, 20)
            .with_attack(
                workloads::attacker::AttackTool::HttpLoad { rate: 200.0 },
                ServiceKind::CollaFilt,
                20,
                2,
            );
        let factory =
            move |exp: &ExperimentConfig| builder.build(exp.seed, SimTime::ZERO + exp.duration);
        for scheme in [SchemeKind::Shaving, SchemeKind::AntiDope] {
            let mut exp = ExperimentConfig::paper_window(cluster.clone(), scheme, 5 + i as u64);
            exp.duration = SimDuration::from_secs(45);
            let r = antidope::run_experiment(&exp, &factory);
            assert!(r.traffic.offered > 100, "{scheme} cfg{i}: {}", r.oneline());
            assert!(r.battery.min_soc >= 0.0 && r.battery.min_soc <= 1.0);
        }
    }
}

#[test]
fn control_slot_shorter_than_dvfs_latency() {
    // Controller re-decides faster than the hardware settles: commands
    // re-target in flight; nothing deadlocks or oscillates unboundedly.
    let mut cluster = ClusterConfig::paper_rack(BudgetLevel::Low);
    cluster.control_slot = SimDuration::from_millis(5);
    cluster.dvfs_latency = SimDuration::from_millis(50);
    let builder = workloads::ScenarioBuilder::new()
        .with_normal_users(60.0, 20)
        .with_attack(
            workloads::attacker::AttackTool::HttpLoad { rate: 400.0 },
            ServiceKind::CollaFilt,
            40,
            1,
        );
    let factory =
        move |exp: &ExperimentConfig| builder.build(exp.seed, SimTime::ZERO + exp.duration);
    let mut exp = ExperimentConfig::paper_window(cluster, SchemeKind::Capping, 9);
    exp.duration = SimDuration::from_secs(20);
    let r = antidope::run_experiment(&exp, &factory);
    assert!(r.traffic.offered > 1000);
    assert!(r.vf.transitions < 100_000, "transition storm: {}", r.vf.transitions);
}
