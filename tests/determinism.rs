//! Bit-level reproducibility of full experiments — the property every
//! number in EXPERIMENTS.md rests on.

mod common;

use antidope_repro::prelude::*;
use common::run_cell;

#[test]
fn same_seed_same_report_every_scheme() {
    for scheme in SchemeKind::EVALUATED {
        let a = run_cell(scheme, BudgetLevel::Medium, 400.0, 45, 99);
        let b = run_cell(scheme, BudgetLevel::Medium, 400.0, 45, 99);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "{scheme} not deterministic"
        );
    }
}

#[test]
fn fig16_flood_cell_is_deterministic() {
    // A fig16-style cell — heavy Colla-Filt flood at the Low budget,
    // the regime that piles the deepest queues — must reproduce
    // bit-identically across runs. This pins the virtual-time queue's
    // completion schedule (heap order, µs ETAs, epoch protocol) into
    // the full-figure determinism contract.
    let a = run_cell(SchemeKind::AntiDope, BudgetLevel::Low, 390.0, 60, 16);
    let b = run_cell(SchemeKind::AntiDope, BudgetLevel::Low, 390.0, 60, 16);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "fig16 flood cell not deterministic"
    );
    // The cell actually exercises the flood path.
    assert!(a.traffic.offered > 10_000, "{:?}", a.traffic);
}

#[test]
fn different_seed_different_traffic() {
    let a = run_cell(SchemeKind::Capping, BudgetLevel::Medium, 400.0, 45, 1);
    let b = run_cell(SchemeKind::Capping, BudgetLevel::Medium, 400.0, 45, 2);
    assert_ne!(a.traffic.offered, b.traffic.offered);
}

#[test]
fn duration_composes() {
    // A 30 s run is a strict prefix of a 60 s run in offered traffic:
    // both see the same arrivals up to t = 30 s, so offered(60) >
    // offered(30) and the 30 s report's counts are all ≤ the 60 s ones.
    let short = run_cell(SchemeKind::Capping, BudgetLevel::Medium, 300.0, 30, 5);
    let long = run_cell(SchemeKind::Capping, BudgetLevel::Medium, 300.0, 60, 5);
    assert!(long.traffic.offered > short.traffic.offered);
    assert!(long.normal_sla.total() >= short.normal_sla.total());
    assert!(long.energy.utility_j > short.energy.utility_j);
}
