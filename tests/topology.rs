//! Contract of the `core::topology` subsystem.
//!
//! * **Allocator conservation** — over random topologies and demands,
//!   the hierarchical allocator never hands a level's children more
//!   than the parent holds, and never hands a child more than its own
//!   oversubscribed budget (proptest).
//! * **Energy conservation** — per-rack energy in the report sums
//!   *bit-exactly* to the cluster's load energy: the finalize fold
//!   defines one as the fold of the other.
//! * **Layout invariance** — a hierarchical run (topology + retry +
//!   rack-keyed circuit breakers) is byte-identical across shard
//!   counts 1/2/4/8.
//! * **Degenerate topology** — a single-rack topology in observe-only
//!   mode leaves the legacy engine's physics byte-identical to a flat
//!   (topology-less) run.
//! * **Headline scenario** — a rack-concentrated flood trips the
//!   target rack's breaker while the facility meter shows headroom;
//!   the hierarchical view localizes the attack to the right rack, and
//!   the per-rack guard defuses it with ≥ 90 % of legitimate goodput
//!   retained.

mod common;

use antidope_repro::prelude::*;
use proptest::prelude::*;

/// Nested-budget topology without extra oversubscription headroom, so
/// a concentrated flood can overload one rack while the facility idles.
fn tight_topology(racks: usize, pdus: usize, defend: bool) -> TopologyConfig {
    let mut t = TopologyConfig::with_racks(racks, pdus);
    t.rack_oversub = 1.0;
    t.pdu_oversub = 1.0;
    t.row_oversub = 1.0;
    t.defend = defend;
    t
}

/// 16-node cluster with a topology attached, running the standard
/// scenario on the sharded engine.
fn run_hierarchical(
    shards: usize,
    topo: TopologyConfig,
    attack_rate: f64,
    duration_s: u64,
    seed: u64,
) -> SimReport {
    let mut cluster = ClusterConfig::scaled(BudgetLevel::Medium);
    cluster.shards = shards;
    cluster.topology = Some(topo);
    let mut exp = ExperimentConfig::paper_window(cluster, SchemeKind::AntiDope, seed);
    exp.duration = SimDuration::from_secs(duration_s);
    run_experiment(&exp, &common::scenario(attack_rate))
}

#[test]
fn hierarchical_report_carries_topology() {
    let report = run_hierarchical(2, TopologyConfig::with_racks(4, 2), 300.0, 20, 7);
    let t = report.topology.as_ref().expect("topology must be reported");
    assert_eq!(t.racks, 4);
    assert_eq!(t.pdus, 2);
    assert_eq!(t.rows, 1);
    assert_eq!(t.rack_peak_w.len(), 4);
    assert!(t.rack_peak_w.iter().all(|&w| w > 0.0));
    assert_eq!(t.rack_energy_j.len(), 4);
}

#[test]
fn rack_energy_sums_exactly_to_cluster_energy() {
    for (racks, pdus, seed) in [(2, 1, 3u64), (4, 2, 11), (8, 4, 19)] {
        let report = run_hierarchical(4, TopologyConfig::with_racks(racks, pdus), 350.0, 30, seed);
        let t = report.topology.as_ref().expect("topology must be reported");
        let sum: f64 = t.rack_energy_j.iter().sum();
        // Bit-exact, not approximately: finalize *defines* load energy
        // as the fold of the per-rack sub-folds.
        assert_eq!(
            sum, report.energy.load_j,
            "racks={racks}: rack energy does not fold to cluster energy"
        );
        assert!(report.energy.load_j > 0.0, "run must carry real load");
    }
}

#[test]
fn hierarchical_run_is_byte_identical_across_shard_counts() {
    // Retry + breakers on: the circuit-breaker pools are rack-keyed
    // under a topology, so even the resilience dataplane must be
    // layout-invariant.
    let run = |shards: usize| {
        let mut cluster = ClusterConfig::scaled(BudgetLevel::Medium);
        cluster.shards = shards;
        cluster.topology = Some(TopologyConfig::with_racks(4, 2));
        cluster.retry = Some(RetryConfig::default());
        let mut exp = ExperimentConfig::paper_window(cluster, SchemeKind::AntiDope, 77);
        exp.duration = SimDuration::from_secs(30);
        run_experiment(&exp, &common::scenario(400.0))
    };
    let base = run(1);
    assert!(base.topology.is_some());
    assert!(base.traffic.offered > 1_000, "scenario must carry real load");
    for shards in [2usize, 4, 8] {
        let other = run(shards);
        assert_eq!(
            serde_json::to_string(&base).unwrap(),
            serde_json::to_string(&other).unwrap(),
            "hierarchical report drifted at {shards} shards"
        );
    }
}

#[test]
fn degenerate_single_rack_topology_leaves_physics_untouched() {
    // racks = 1 stays on the event-driven engine; with the guard off the
    // topology layer is a pure observer, so everything except the
    // topology block itself must match a flat run byte for byte.
    let run = |topo: Option<TopologyConfig>| {
        let mut cluster = ClusterConfig::paper_rack(BudgetLevel::Medium);
        cluster.topology = topo;
        let mut exp = ExperimentConfig::paper_window(cluster, SchemeKind::AntiDope, 42);
        exp.duration = SimDuration::from_secs(30);
        run_experiment(&exp, &common::scenario(400.0))
    };
    let flat = run(None);
    assert!(flat.topology.is_none());
    let mut observed = run(Some(tight_topology(1, 1, false)));
    let t = observed.topology.take().expect("topology must be reported");
    assert_eq!(t.racks, 1);
    assert_eq!(
        serde_json::to_string(&flat).unwrap(),
        serde_json::to_string(&observed).unwrap(),
        "single-rack observer changed the physics"
    );
}

// ---------------------------------------------------------------------
// Headline scenario: concentrating flood vs the hierarchy.
// ---------------------------------------------------------------------

const HEADLINE_SEED: u64 = 42;
const HEADLINE_RACKS: usize = 4;
const HEADLINE_RATE: f64 = 420.0;

fn headline_experiment(defend: bool) -> ExperimentConfig {
    let mut cluster = ClusterConfig::scaled(BudgetLevel::Low);
    cluster.topology = Some(tight_topology(HEADLINE_RACKS, 2, defend));
    let mut exp = ExperimentConfig::paper_window(cluster, SchemeKind::None, HEADLINE_SEED);
    exp.duration = SimDuration::from_secs(120);
    exp
}

fn headline_sources(
    attack_rate: f64,
) -> impl Fn(&ExperimentConfig) -> Vec<Box<dyn TrafficSource>> {
    move |exp: &ExperimentConfig| {
        let horizon = SimTime::ZERO + exp.duration;
        let trace = UtilizationTrace::synthesize(&AlibabaTraceConfig::small(exp.seed));
        let mut out: Vec<Box<dyn TrafficSource>> = vec![Box::new(NormalUsers::new(
            trace,
            ServiceMix::alios_normal(),
            80.0,
            1_000,
            60,
            0,
            horizon,
            exp.seed,
        ))];
        if attack_rate > 0.0 {
            out.push(Box::new(headline_attacker(attack_rate, exp)));
        }
        out
    }
}

fn headline_attacker(rate: f64, exp: &ExperimentConfig) -> ConcentratingFloodSource {
    ConcentratingFloodSource::against_service(
        rate,
        ServiceKind::CollaFilt,
        HEADLINE_RACKS,
        900,
        exp.duration, // never re-aims inside the window
        50_000,
        40,
        1 << 40,
        SimTime::from_secs(5),
        SimTime::ZERO + exp.duration,
        exp.seed ^ 0x5EED,
    )
}

#[test]
fn concentrated_flood_trips_rack_while_facility_has_headroom() {
    let exp = headline_experiment(false);
    // The attacker's aim is deterministic per seed: an identically-built
    // probe tells the test which rack must take the hit.
    let expected_target = headline_attacker(HEADLINE_RATE, &exp).target_rack();
    let report = run_experiment(&exp, &headline_sources(HEADLINE_RATE));
    let t = report.topology.as_ref().expect("topology must be reported");

    // The facility meter never sees the attack…
    assert_eq!(report.power.violations, 0, "facility budget never violated");
    assert_eq!(t.facility_breach_slots, 0, "facility headroom throughout");
    assert!(report.power.peak_w < report.power.supply_w);

    // …but the target rack's breaker trips, and only that rack's.
    let tripped: Vec<usize> = (0..t.racks)
        .filter(|&r| t.rack_trip_at_s[r].is_some())
        .collect();
    assert_eq!(tripped, vec![expected_target], "exactly the target rack trips");
    assert!(
        t.rack_breach_slots[expected_target] > 10,
        "sustained rack-level breach: {:?}",
        t.rack_breach_slots
    );

    // Hierarchical attribution localizes the flood to the same rack.
    assert_eq!(t.hottest_rack, expected_target, "attribution points at the target");
}

#[test]
fn rack_guard_defuses_the_flood_and_restores_goodput() {
    let clean = run_experiment(&headline_experiment(false), &headline_sources(0.0));
    let defended = run_experiment(&headline_experiment(true), &headline_sources(HEADLINE_RATE));
    let t = defended.topology.as_ref().expect("topology must be reported");

    // The guard engages and no breaker ever trips.
    assert!(t.guard_slots > 0, "guard must engage");
    assert!(
        t.rack_trip_at_s.iter().all(Option::is_none),
        "no breaker trips with the guard active: {:?}",
        t.rack_trip_at_s
    );
    assert_eq!(t.facility_breach_slots, 0);
    assert_eq!(defended.power.violations, 0);

    // ≥ 90 % of attack-free legitimate goodput is retained.
    let restored =
        defended.normal_sla.completion_rate() / clean.normal_sla.completion_rate().max(1e-9);
    assert!(
        restored >= 0.90,
        "goodput restored to {:.1}% (< 90%)",
        restored * 100.0
    );
}

// ---------------------------------------------------------------------
// Property tests.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// The hierarchical allocator conserves every level of the tree:
    /// children never receive more than the parent holds, no child
    /// exceeds its own oversubscribed budget, and no child receives
    /// more than it asked for.
    #[test]
    fn prop_allocation_conserves_every_level(
        servers in 4usize..48,
        racks_frac in 0.0f64..1.0,
        pdus_frac in 0.0f64..1.0,
        budget_w in 200.0f64..4_000.0,
        demand_scale in 0.0f64..3.0,
        seed in 0u64..1_000,
    ) {
        let racks = 1 + (racks_frac * (servers.min(12) - 1) as f64) as usize;
        let pdus = 1 + (pdus_frac * (racks - 1) as f64) as usize;
        let cfg = TopologyConfig::with_racks(racks, pdus);
        cfg.validate(servers).expect("generated topology is valid");
        let topo = PowerTopology::build(servers, budget_w, &cfg);

        // Pseudo-random per-rack demands up to 3× the average share.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut demand = Vec::with_capacity(racks);
        for _ in 0..racks {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            demand.push(u * demand_scale * budget_w / racks as f64);
        }

        let mut alloc = HierarchicalBudget::new();
        let rack_alloc = alloc.allocate(&topo, &demand).to_vec();

        // Per-child caps.
        for r in 0..racks {
            prop_assert!(rack_alloc[r] <= topo.rack_budget_w(r) + 1e-9);
            prop_assert!(rack_alloc[r] <= demand[r].max(0.0) + 1e-9);
            prop_assert!(rack_alloc[r] >= 0.0);
        }
        // Σ children ≤ parent, exactly, at every level of the tree.
        let pdu_alloc = alloc.pdu_alloc_w().to_vec();
        let row_alloc = alloc.row_alloc_w().to_vec();
        prop_assert!(row_alloc.iter().sum::<f64>() <= topo.facility_budget_w());
        let mut rack_cursor = 0usize;
        let mut racks_per_pdu = vec![0usize; topo.pdus()];
        for r in 0..racks {
            racks_per_pdu[pdu_of_rack(&topo, r)] += 1;
        }
        for (p, &count) in racks_per_pdu.iter().enumerate() {
            let s: f64 = rack_alloc[rack_cursor..rack_cursor + count].iter().sum();
            prop_assert!(
                s <= pdu_alloc[p],
                "pdu {}: children sum {} > alloc {}", p, s, pdu_alloc[p]
            );
            rack_cursor += count;
        }
        let pdus_sum: f64 = pdu_alloc.iter().sum();
        prop_assert!(pdus_sum <= row_alloc.iter().sum::<f64>() + 1e-9);
    }

    /// Per-rack energy folds to the cluster total for arbitrary seeds
    /// and rack counts, not just the calibrated cells above.
    #[test]
    fn prop_rack_energy_conserved(
        seed in 0u64..300,
        racks_pick in 0usize..3,
        rate in 100.0f64..600.0,
    ) {
        let (racks, pdus) = [(2, 1), (4, 2), (8, 2)][racks_pick];
        let report = run_hierarchical(
            4,
            TopologyConfig::with_racks(racks, pdus),
            rate,
            15,
            seed,
        );
        let t = report.topology.as_ref().expect("topology must be reported");
        prop_assert_eq!(t.rack_energy_j.len(), racks);
        let sum: f64 = t.rack_energy_j.iter().sum();
        prop_assert_eq!(sum, report.energy.load_j);
        // Every rack carried some load: the NLB spreads the normal
        // population over all URL classes.
        for (r, &j) in t.rack_energy_j.iter().enumerate() {
            prop_assert!(j > 0.0, "rack {} reported zero energy", r);
        }
    }
}

/// The PDU owning rack `r`: PDUs partition the *racks* near-evenly and
/// contiguously (the first `racks % pdus` PDUs own one extra rack),
/// mirroring `PowerTopology::build`'s `near_even(racks, pdus)` ranges.
fn pdu_of_rack(topo: &PowerTopology, r: usize) -> usize {
    let per = topo.racks() / topo.pdus();
    let extra = topo.racks() % topo.pdus();
    let boundary = extra * (per + 1);
    if r < boundary {
        r / (per + 1)
    } else {
        extra + (r - boundary) / per
    }
}
