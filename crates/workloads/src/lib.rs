//! # workloads — traffic and service models
//!
//! Everything that *generates* load in the reproduction:
//!
//! * [`service`] — the four BigDataBench-style EC service kernels of
//!   Table 1 (Colla-Filt, K-means, Word-Count, Text-Cont) with calibrated
//!   work, CPU-boundedness and power-character parameters, plus service
//!   mixes.
//! * [`normal`] — the `AliOS` normal-user model: a non-homogeneous
//!   Poisson arrival process modulated by a cluster utilization trace.
//! * [`alibaba`] — a synthetic generator with the statistical shape of
//!   the Alibaba cluster-trace-v2017 (12 h, diurnal, heavy-tailed) and a
//!   loader for the real CSV when available.
//! * [`attacker`] — the http-load / ApacheBench attack tools: open-loop
//!   rate-controlled floods spread over a configurable botnet.
//! * [`dope`] — the Fig-12 DOPE attack algorithm: probe the defense
//!   threshold, back off on detection, converge to the maximum
//!   undetected power injection.
//! * [`floods`] — the layered flood taxonomy of Fig 3 (SYN/UDP/ICMP vs
//!   HTTP/DNS/Slowloris) with measured power-intensity orderings.
//! * [`source`] — the [`TrafficSource`] abstraction all of the above
//!   implement, consumed by the cluster simulator.
//! * [`fanout`] — [`MergedSources`], a slot-ordered k-way merge over
//!   sources used by the sharded cluster engine to drain a control
//!   slot's arrivals up front while preserving the pull/feedback
//!   protocol.
//! * [`scenario`] — a composable [`ScenarioBuilder`] assembling standard
//!   populations with automatic id-space / address-pool bookkeeping.
//! * [`vector`] — the composable [`AttackVector`] algebra: base flood ⊗
//!   envelope ⊗ source plan ⊗ resource profile ⊗ target plan; the flood
//!   structs in [`attacker`] are thin facades over it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alibaba;
pub mod attacker;
pub mod dope;
pub mod fanout;
pub mod floods;
pub mod normal;
pub mod scenario;
pub mod service;
pub mod source;
pub mod vector;

pub use alibaba::{AlibabaTraceConfig, UtilizationTrace};
pub use attacker::{AttackTool, ConcentratingFloodSource, FloodSource, RotatingFloodSource};
pub use vector::{AttackVector, AttackVectorSpec, Envelope, ResourceProfile, SourcePlan, TargetPlan};
pub use dope::{DopeAttacker, DopeConfig, DopePhase};
pub use fanout::MergedSources;
pub use floods::{FloodKind, FloodLayer};
pub use normal::NormalUsers;
pub use scenario::{ScenarioBuilder, SeedPin};
pub use service::{ServiceKind, ServiceMix, ServiceProfile};
pub use source::{SourceEvent, TrafficSource};
