//! The EC service kernels of Table 1, with calibrated demand and power
//! parameters.
//!
//! Calibration targets the paper's measured *orderings*, which is what
//! every figure depends on:
//!
//! | kernel     | character          | intensity | γ (power-DVFS) | β (perf-DVFS) |
//! |------------|--------------------|-----------|----------------|---------------|
//! | Colla-Filt | compute-intensive  | highest   | high           | high          |
//! | K-means    | memory-intensive   | high      | low            | low           |
//! | Word-Count | disk-read heavy    | medium    | medium         | medium        |
//! | Text-Cont  | text delivery      | low       | medium         | low           |
//!
//! Consequences reproduced downstream: Colla-Filt trips power capping at
//! the lowest request rate (highest intensity, Fig 6-a); K-means costs
//! the most *energy per request* (long service time × high intensity,
//! Fig 5-b) and forces the deepest V/F cuts (low γ, Fig 6-b); Text-Cont
//! and volume floods are power-cheap (Fig 5-a).

use netsim::request::UrlId;
use rand::Rng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};
use simcore::SimDuration;

/// The four victim service kernels of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceKind {
    /// Collaborative filtering — recommender computation.
    CollaFilt,
    /// K-means classification — memory-intensive.
    KMeans,
    /// Word-Count — frequent disk reads of text files.
    WordCount,
    /// Text-Context — serves text content.
    TextCont,
}

impl ServiceKind {
    /// All kernels in Table 1 order.
    pub const ALL: [ServiceKind; 4] = [
        ServiceKind::CollaFilt,
        ServiceKind::KMeans,
        ServiceKind::WordCount,
        ServiceKind::TextCont,
    ];

    /// Table 1 display name.
    pub fn name(self) -> &'static str {
        match self {
            ServiceKind::CollaFilt => "Colla-Filt",
            ServiceKind::KMeans => "K-means",
            ServiceKind::WordCount => "Word-Count",
            ServiceKind::TextCont => "Text-Cont",
        }
    }

    /// The URL this kernel is served on in the EC application.
    pub fn url(self) -> UrlId {
        match self {
            ServiceKind::CollaFilt => UrlId(0),
            ServiceKind::KMeans => UrlId(1),
            ServiceKind::WordCount => UrlId(2),
            ServiceKind::TextCont => UrlId(3),
        }
    }

    /// Reverse lookup from URL.
    pub fn from_url(url: UrlId) -> Option<ServiceKind> {
        ServiceKind::ALL.into_iter().find(|k| k.url() == url)
    }

    /// Calibrated profile for this kernel.
    pub fn profile(self) -> ServiceProfile {
        match self {
            ServiceKind::CollaFilt => ServiceProfile {
                kind: self,
                mean_work_gcycles: 0.0840, // 35 ms on a 2.4 GHz core
                work_cv: 0.25,
                beta: 0.95,
                intensity: 0.98,
                gamma: 0.90,
            },
            ServiceKind::KMeans => ServiceProfile {
                kind: self,
                mean_work_gcycles: 0.1080, // 45 ms — longest service time
                work_cv: 0.30,
                beta: 0.40,
                intensity: 0.92,
                gamma: 0.35,
            },
            ServiceKind::WordCount => ServiceProfile {
                kind: self,
                mean_work_gcycles: 0.0600, // 25 ms
                work_cv: 0.40,
                beta: 0.55,
                intensity: 0.78,
                gamma: 0.60,
            },
            ServiceKind::TextCont => ServiceProfile {
                kind: self,
                mean_work_gcycles: 0.0192, // 8 ms
                work_cv: 0.35,
                beta: 0.30,
                intensity: 0.35,
                gamma: 0.55,
            },
        }
    }
}

impl std::fmt::Display for ServiceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Calibrated per-kernel demand and power character.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceProfile {
    /// Which kernel this profiles.
    pub kind: ServiceKind,
    /// Mean per-request compute demand at nominal frequency, G-cycles.
    pub mean_work_gcycles: f64,
    /// Coefficient of variation of the (log-normal) work distribution.
    pub work_cv: f64,
    /// CPU-boundedness: service-rate sensitivity to frequency, `[0, 1]`.
    pub beta: f64,
    /// Power intensity exerted while in service, `[0, 1]`.
    pub intensity: f64,
    /// DVFS sensitivity of the dynamic power, `[0, 1]`.
    pub gamma: f64,
}

impl ServiceProfile {
    /// Mean service time on one nominal-frequency core.
    pub fn mean_service_time(&self, core_ghz: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.mean_work_gcycles / core_ghz)
    }

    /// Sample a per-request work demand (log-normal around the mean).
    pub fn sample_work(&self, rng: &mut impl Rng) -> f64 {
        // For LogNormal with mean m and cv c: sigma² = ln(1 + c²),
        // mu = ln(m) − sigma²/2.
        let sigma2 = (1.0 + self.work_cv * self.work_cv).ln();
        let mu = self.mean_work_gcycles.ln() - sigma2 / 2.0;
        let dist = LogNormal::new(mu, sigma2.sqrt()).expect("valid lognormal");
        dist.sample(rng).max(1e-6)
    }

    /// Rough per-request dynamic energy at nominal frequency on the
    /// paper's 100 W / 40 W node: intensity × headroom × service time.
    /// Used for offline profiling and token-bucket cost estimates.
    pub fn energy_estimate_j(&self, core_ghz: f64, headroom_w: f64) -> f64 {
        self.intensity * headroom_w * self.mean_service_time(core_ghz).as_secs_f64()
    }
}

/// A probability mix over service kernels (what a user population asks
/// for).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceMix {
    entries: Vec<(ServiceKind, f64)>,
}

impl ServiceMix {
    /// Build from `(kind, weight)` pairs; weights are normalized.
    pub fn new(entries: &[(ServiceKind, f64)]) -> Self {
        assert!(!entries.is_empty());
        let total: f64 = entries.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0, "mix weights must sum positive");
        ServiceMix {
            entries: entries
                .iter()
                .map(|&(k, w)| (k, w / total))
                .collect(),
        }
    }

    /// A single-kernel mix.
    pub fn pure(kind: ServiceKind) -> Self {
        ServiceMix::new(&[(kind, 1.0)])
    }

    /// The AliOS normal-user mix: overwhelmingly light page/text traffic
    /// with a thin stream of heavy recommendation / classification /
    /// file-scan requests — matching e-commerce browsing, where most
    /// clicks are page views. The heavy share (20 %) is what bounds
    /// Anti-DOPE's collateral damage: only these requests ride the
    /// suspect pool during an attack (Fig 15-b's "slightly worse").
    pub fn alios_normal() -> Self {
        ServiceMix::new(&[
            (ServiceKind::TextCont, 0.80),
            (ServiceKind::WordCount, 0.10),
            (ServiceKind::KMeans, 0.06),
            (ServiceKind::CollaFilt, 0.04),
        ])
    }

    /// The normalized weight of `kind` in this mix.
    pub fn weight(&self, kind: ServiceKind) -> f64 {
        self.entries
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, w)| *w)
            .unwrap_or(0.0)
    }

    /// Draw a kernel.
    pub fn sample(&self, rng: &mut impl Rng) -> ServiceKind {
        let mut u: f64 = rng.gen_range(0.0..1.0);
        for &(k, w) in &self.entries {
            if u < w {
                return k;
            }
            u -= w;
        }
        self.entries.last().expect("non-empty").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::rng::SimRng;

    #[test]
    fn urls_are_distinct_and_reversible() {
        for k in ServiceKind::ALL {
            assert_eq!(ServiceKind::from_url(k.url()), Some(k));
        }
        assert_eq!(ServiceKind::from_url(UrlId(99)), None);
    }

    #[test]
    fn paper_orderings_hold() {
        let cf = ServiceKind::CollaFilt.profile();
        let km = ServiceKind::KMeans.profile();
        let wc = ServiceKind::WordCount.profile();
        let tc = ServiceKind::TextCont.profile();

        // Fig 5-a: Colla-Filt has the highest power intensity.
        assert!(cf.intensity > km.intensity);
        assert!(km.intensity > wc.intensity);
        assert!(wc.intensity > tc.intensity);

        // Fig 6-b: K-means the least DVFS-sensitive power.
        assert!(km.gamma < wc.gamma && km.gamma < cf.gamma && km.gamma < tc.gamma);

        // Fig 5-b: K-means costs the most energy per request.
        let energies: Vec<f64> = ServiceKind::ALL
            .iter()
            .map(|k| k.profile().energy_estimate_j(2.4, 60.0))
            .collect();
        let km_energy = km.energy_estimate_j(2.4, 60.0);
        assert!(energies.iter().all(|&e| e <= km_energy));

        // Colla-Filt is the most CPU-bound.
        assert!(cf.beta > km.beta && cf.beta > wc.beta && cf.beta > tc.beta);
    }

    #[test]
    fn mean_service_times_reasonable() {
        // Baseline responses should be well under the paper's 40 ms mean.
        for k in ServiceKind::ALL {
            let t = k.profile().mean_service_time(2.4);
            assert!(t.as_millis() <= 45, "{k}: {t}");
            assert!(t.as_millis() >= 5, "{k}: {t}");
        }
    }

    #[test]
    fn sample_work_matches_mean() {
        let mut rng = SimRng::new(42);
        let p = ServiceKind::CollaFilt.profile();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| p.sample_work(&mut rng)).sum::<f64>() / n as f64;
        let rel = (mean - p.mean_work_gcycles).abs() / p.mean_work_gcycles;
        assert!(rel < 0.02, "sampled mean {mean} vs {}", p.mean_work_gcycles);
    }

    #[test]
    fn sample_work_positive() {
        let mut rng = SimRng::new(7);
        let p = ServiceKind::TextCont.profile();
        for _ in 0..1000 {
            assert!(p.sample_work(&mut rng) > 0.0);
        }
    }

    #[test]
    fn mix_normalizes_and_samples() {
        let mix = ServiceMix::new(&[(ServiceKind::CollaFilt, 2.0), (ServiceKind::TextCont, 2.0)]);
        assert!((mix.weight(ServiceKind::CollaFilt) - 0.5).abs() < 1e-12);
        assert_eq!(mix.weight(ServiceKind::KMeans), 0.0);
        let mut rng = SimRng::new(3);
        let n = 10_000;
        let cf = (0..n)
            .filter(|_| mix.sample(&mut rng) == ServiceKind::CollaFilt)
            .count();
        let frac = cf as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "frac={frac}");
    }

    #[test]
    fn alios_mix_mostly_light() {
        let mix = ServiceMix::alios_normal();
        assert!(mix.weight(ServiceKind::TextCont) >= 0.75);
        let total: f64 = ServiceKind::ALL.iter().map(|&k| mix.weight(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pure_mix_always_samples_kind() {
        let mix = ServiceMix::pure(ServiceKind::KMeans);
        let mut rng = SimRng::new(5);
        for _ in 0..100 {
            assert_eq!(mix.sample(&mut rng), ServiceKind::KMeans);
        }
    }
}
