//! Composable scenario builder.
//!
//! Examples, tests, and the experiment harness all assemble the same
//! population shapes — an AliOS background plus zero or more attacks —
//! with slightly different knobs. [`ScenarioBuilder`] centralizes that
//! assembly, owns the id-space and address-pool bookkeeping (each source
//! gets disjoint request-id and client-address ranges automatically),
//! and produces a fresh, deterministic `Vec<Box<dyn TrafficSource>>`
//! per call, which is exactly what sweep runners need.

use crate::alibaba::{AlibabaTraceConfig, UtilizationTrace};
use crate::attacker::{AttackTool, FloodSource};
use crate::dope::{DopeAttacker, DopeConfig};
use crate::floods::FloodKind;
use crate::normal::NormalUsers;
use crate::service::{ServiceKind, ServiceMix};
use crate::source::TrafficSource;
use crate::vector::AttackVectorSpec;
use simcore::SimTime;

/// One ingredient of a scenario.
#[derive(Debug, Clone)]
enum Ingredient {
    Normal {
        peak_rate: f64,
        clients: u32,
        mix: ServiceMix,
        trace: Option<UtilizationTrace>,
    },
    ServiceAttack {
        tool: AttackTool,
        victim: ServiceKind,
        bots: u32,
        start: SimTime,
        stop: Option<SimTime>,
    },
    Flood {
        kind: FloodKind,
        rate: f64,
        bots: u32,
        start_s: u64,
        stop_s: Option<u64>,
    },
    Dope {
        config: DopeConfig,
        start_s: u64,
    },
    Vector {
        spec: AttackVectorSpec,
        start: SimTime,
        stop: Option<SimTime>,
    },
}

/// How a pinned ingredient derives its RNG seed from the run seed
/// passed to [`ScenarioBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedPin {
    /// The default placement: `seed ^ ((index + 1) · φ64)` — disjoint
    /// streams per ingredient without caller bookkeeping.
    #[default]
    Derived,
    /// The run seed verbatim (legacy builders that predate the derived
    /// placement and whose byte-exact output tests depend on).
    Raw,
    /// The run seed xor a fixed constant (legacy `seed ^ 0x5EED`-style
    /// stream separation).
    Xor(u64),
}

/// Placement overrides for one ingredient: any field left `None` keeps
/// the automatic index-derived value. Pins exist so the historical
/// hand-rolled builders (`antidope::testutil`, the bench scenarios)
/// could collapse onto this one assembly path without moving a single
/// byte of any golden report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Pin {
    addr_base: Option<u32>,
    id_base: Option<u64>,
    seed: SeedPin,
}

/// Builds deterministic source populations.
///
/// ```
/// use workloads::ScenarioBuilder;
/// use workloads::attacker::AttackTool;
/// use workloads::service::ServiceKind;
/// use simcore::SimTime;
///
/// let builder = ScenarioBuilder::new()
///     .with_normal_users(80.0, 60)
///     .with_attack(AttackTool::HttpLoad { rate: 390.0 },
///                  ServiceKind::CollaFilt, 40, 5);
/// // Each build() mints a fresh, identical population: ideal for sweeps.
/// let sources = builder.build(42, SimTime::from_secs(600));
/// assert_eq!(sources.len(), 2);
/// assert!(sources[1].is_attacker());
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    ingredients: Vec<(Ingredient, Pin)>,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioBuilder {
    /// Empty scenario.
    pub fn new() -> Self {
        ScenarioBuilder {
            ingredients: Vec::new(),
        }
    }

    fn push(mut self, ing: Ingredient) -> Self {
        self.ingredients.push((ing, Pin::default()));
        self
    }

    /// Pin the most recently added ingredient to an explicit placement:
    /// client-address base, request-id base, and seed derivation.
    ///
    /// # Panics
    ///
    /// Panics when nothing has been added yet.
    pub fn pinned(mut self, addr_base: u32, id_base: u64, seed: SeedPin) -> Self {
        let (_, pin) = self
            .ingredients
            .last_mut()
            .expect("pinned() needs an ingredient to pin");
        *pin = Pin {
            addr_base: Some(addr_base),
            id_base: Some(id_base),
            seed,
        };
        self
    }

    /// Add the standard AliOS background population.
    pub fn with_normal_users(self, peak_rate: f64, clients: u32) -> Self {
        self.push(Ingredient::Normal {
            peak_rate,
            clients,
            mix: ServiceMix::alios_normal(),
            trace: None,
        })
    }

    /// Add a normal population with an explicit mix and utilization
    /// trace (e.g. one loaded from the real Alibaba CSV).
    pub fn with_normal_traced(
        self,
        peak_rate: f64,
        clients: u32,
        mix: ServiceMix,
        trace: UtilizationTrace,
    ) -> Self {
        self.push(Ingredient::Normal {
            peak_rate,
            clients,
            mix,
            trace: Some(trace),
        })
    }

    /// Add an attack-tool flood on a service kernel from `start_s` to
    /// the horizon.
    pub fn with_attack(
        self,
        tool: AttackTool,
        victim: ServiceKind,
        bots: u32,
        start_s: u64,
    ) -> Self {
        self.push(Ingredient::ServiceAttack {
            tool,
            victim,
            bots,
            start: SimTime::from_secs(start_s),
            stop: None,
        })
    }

    /// Add a time-bounded attack (for switching scenarios).
    pub fn with_attack_window(
        self,
        tool: AttackTool,
        victim: ServiceKind,
        bots: u32,
        start_s: u64,
        stop_s: u64,
    ) -> Self {
        self.push(Ingredient::ServiceAttack {
            tool,
            victim,
            bots,
            start: SimTime::from_secs(start_s),
            stop: Some(SimTime::from_secs(stop_s)),
        })
    }

    /// Add an attack-tool flood over an explicit sub-second window
    /// (`None` stop runs to the horizon).
    pub fn with_attack_spanning(
        self,
        tool: AttackTool,
        victim: ServiceKind,
        bots: u32,
        start: SimTime,
        stop: Option<SimTime>,
    ) -> Self {
        self.push(Ingredient::ServiceAttack {
            tool,
            victim,
            bots,
            start,
            stop,
        })
    }

    /// Add a layered flood (Fig 3 taxonomy).
    pub fn with_flood(self, kind: FloodKind, rate: f64, bots: u32, start_s: u64) -> Self {
        self.push(Ingredient::Flood {
            kind,
            rate,
            bots,
            start_s,
            stop_s: None,
        })
    }

    /// Add the adaptive Fig-12 DOPE attacker.
    pub fn with_dope(self, config: DopeConfig, start_s: u64) -> Self {
        self.push(Ingredient::Dope { config, start_s })
    }

    /// Add a composed [`AttackVectorSpec`] (envelope × sources ×
    /// resources × target), active from `start_s` to the horizon.
    pub fn with_vector(self, spec: AttackVectorSpec, start_s: u64) -> Self {
        self.push(Ingredient::Vector {
            spec,
            start: SimTime::from_secs(start_s),
            stop: None,
        })
    }

    /// Number of ingredients added so far.
    pub fn len(&self) -> usize {
        self.ingredients.len()
    }

    /// True when nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.ingredients.is_empty()
    }

    /// The `(addr_base, id_base, sub_seed)` placement ingredient
    /// `index` will build with under run seed `seed` — the automatic
    /// index-derived values unless the ingredient was [`pinned`].
    ///
    /// Exposed so harnesses that replay an ingredient out-of-band (e.g.
    /// the co-evolution grid rebuilding an attack vector to read its
    /// move plan) can mint a byte-identical copy.
    ///
    /// [`pinned`]: ScenarioBuilder::pinned
    pub fn placement(&self, index: usize, seed: u64) -> (u32, u64, u64) {
        let pin = self
            .ingredients
            .get(index)
            .map(|(_, p)| *p)
            .unwrap_or_default();
        let addr_base = pin
            .addr_base
            .unwrap_or(1_000 + index as u32 * 10_000);
        let id_base = pin.id_base.unwrap_or((index as u64 + 1) << 40);
        let sub_seed = match pin.seed {
            SeedPin::Derived => seed ^ ((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            SeedPin::Raw => seed,
            SeedPin::Xor(x) => seed ^ x,
        };
        (addr_base, id_base, sub_seed)
    }

    /// Materialize fresh sources for one run. Each ingredient gets a
    /// disjoint request-id space (`index << 40`) and client-address
    /// range, and a seed derived from `(seed, index)` — unless pinned
    /// to an explicit placement (see [`ScenarioBuilder::pinned`]).
    pub fn build(&self, seed: u64, horizon: SimTime) -> Vec<Box<dyn TrafficSource>> {
        self.ingredients
            .iter()
            .enumerate()
            .map(|(i, (ing, _))| self.build_one(i, ing, seed, horizon))
            .collect()
    }

    fn build_one(
        &self,
        index: usize,
        ing: &Ingredient,
        seed: u64,
        horizon: SimTime,
    ) -> Box<dyn TrafficSource> {
        let (addr_base, id_base, sub_seed) = self.placement(index, seed);
        match ing {
            Ingredient::Normal {
                peak_rate,
                clients,
                mix,
                trace,
            } => {
                let trace = trace
                    .clone()
                    .unwrap_or_else(|| UtilizationTrace::synthesize(&AlibabaTraceConfig::small(seed)));
                Box::new(NormalUsers::new(
                    trace,
                    mix.clone(),
                    *peak_rate,
                    addr_base,
                    *clients,
                    id_base,
                    horizon,
                    sub_seed,
                ))
            }
            Ingredient::ServiceAttack {
                tool,
                victim,
                bots,
                start,
                stop,
            } => {
                let stop = stop.unwrap_or(horizon).min(horizon);
                Box::new(FloodSource::against_service(
                    *tool,
                    *victim,
                    addr_base,
                    *bots,
                    id_base,
                    *start,
                    stop,
                    sub_seed,
                ))
            }
            Ingredient::Flood {
                kind,
                rate,
                bots,
                start_s,
                stop_s,
            } => {
                let stop = stop_s
                    .map(SimTime::from_secs)
                    .unwrap_or(horizon)
                    .min(horizon);
                Box::new(FloodSource::flood(
                    *kind,
                    *rate,
                    addr_base,
                    *bots,
                    id_base,
                    SimTime::from_secs(*start_s),
                    stop,
                    sub_seed,
                ))
            }
            Ingredient::Dope { config, start_s } => Box::new(DopeAttacker::new(
                config.clone(),
                addr_base,
                id_base,
                SimTime::from_secs(*start_s),
                horizon,
                sub_seed,
            )),
            Ingredient::Vector { spec, start, stop } => {
                let stop = stop.unwrap_or(horizon).min(horizon);
                Box::new(spec.build(addr_base, id_base, *start, stop, sub_seed))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn horizon() -> SimTime {
        SimTime::from_secs(30)
    }

    #[test]
    fn builds_all_ingredient_kinds() {
        let b = ScenarioBuilder::new()
            .with_normal_users(50.0, 20)
            .with_attack(AttackTool::HttpLoad { rate: 100.0 }, ServiceKind::CollaFilt, 10, 2)
            .with_flood(FloodKind::SynFlood, 1000.0, 50, 0)
            .with_dope(DopeConfig::default(), 1);
        assert_eq!(b.len(), 4);
        let sources = b.build(7, horizon());
        assert_eq!(sources.len(), 4);
        assert!(!sources[0].is_attacker());
        assert!(sources[1].is_attacker());
        assert!(sources[2].is_attacker());
        assert!(sources[3].is_attacker());
    }

    #[test]
    fn id_spaces_are_disjoint() {
        let b = ScenarioBuilder::new()
            .with_normal_users(100.0, 10)
            .with_attack(AttackTool::HttpLoad { rate: 200.0 }, ServiceKind::KMeans, 10, 0);
        let mut sources = b.build(3, horizon());
        let mut ids = HashSet::new();
        let mut addrs: Vec<HashSet<u32>> = vec![HashSet::new(), HashSet::new()];
        for (i, src) in sources.iter_mut().enumerate() {
            let mut last = SimTime::ZERO;
            for _ in 0..200 {
                let Some(r) = src.next_request(last) else { break };
                assert!(ids.insert(r.id), "duplicate id {:?}", r.id);
                addrs[i].insert(r.source.0);
                last = r.arrival;
            }
        }
        assert!(addrs[0].is_disjoint(&addrs[1]), "client pools overlap");
    }

    #[test]
    fn build_is_deterministic_and_repeatable() {
        let b = ScenarioBuilder::new()
            .with_normal_users(80.0, 20)
            .with_attack(AttackTool::HttpLoad { rate: 100.0 }, ServiceKind::CollaFilt, 5, 1);
        let collect = |mut v: Vec<Box<dyn TrafficSource>>| {
            let mut out = Vec::new();
            for src in v.iter_mut() {
                let mut last = SimTime::ZERO;
                for _ in 0..100 {
                    let Some(r) = src.next_request(last) else { break };
                    last = r.arrival;
                    out.push((r.id, r.arrival));
                }
            }
            out
        };
        let a = collect(b.build(9, horizon()));
        let c = collect(b.build(9, horizon()));
        assert_eq!(a, c);
        let d = collect(b.build(10, horizon()));
        assert_ne!(a, d);
    }

    #[test]
    fn attack_window_bounds_arrivals() {
        let b = ScenarioBuilder::new().with_attack_window(
            AttackTool::HttpLoad { rate: 500.0 },
            ServiceKind::WordCount,
            10,
            5,
            10,
        );
        let mut sources = b.build(1, horizon());
        let mut last = SimTime::ZERO;
        while let Some(r) = sources[0].next_request(last) {
            assert!(r.arrival >= SimTime::from_secs(5));
            assert!(r.arrival < SimTime::from_secs(10));
            last = r.arrival;
        }
    }

    #[test]
    fn empty_builder_builds_nothing() {
        let b = ScenarioBuilder::new();
        assert!(b.is_empty());
        assert!(b.build(1, horizon()).is_empty());
    }
}
