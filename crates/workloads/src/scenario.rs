//! Composable scenario builder.
//!
//! Examples, tests, and the experiment harness all assemble the same
//! population shapes — an AliOS background plus zero or more attacks —
//! with slightly different knobs. [`ScenarioBuilder`] centralizes that
//! assembly, owns the id-space and address-pool bookkeeping (each source
//! gets disjoint request-id and client-address ranges automatically),
//! and produces a fresh, deterministic `Vec<Box<dyn TrafficSource>>`
//! per call, which is exactly what sweep runners need.

use crate::alibaba::{AlibabaTraceConfig, UtilizationTrace};
use crate::attacker::{AttackTool, FloodSource};
use crate::dope::{DopeAttacker, DopeConfig};
use crate::floods::FloodKind;
use crate::normal::NormalUsers;
use crate::service::{ServiceKind, ServiceMix};
use crate::source::TrafficSource;
use simcore::SimTime;

/// One ingredient of a scenario.
#[derive(Debug, Clone)]
enum Ingredient {
    Normal {
        peak_rate: f64,
        clients: u32,
        mix: ServiceMix,
        trace: Option<UtilizationTrace>,
    },
    ServiceAttack {
        tool: AttackTool,
        victim: ServiceKind,
        bots: u32,
        start_s: u64,
        stop_s: Option<u64>,
    },
    Flood {
        kind: FloodKind,
        rate: f64,
        bots: u32,
        start_s: u64,
        stop_s: Option<u64>,
    },
    Dope {
        config: DopeConfig,
        start_s: u64,
    },
}

/// Builds deterministic source populations.
///
/// ```
/// use workloads::ScenarioBuilder;
/// use workloads::attacker::AttackTool;
/// use workloads::service::ServiceKind;
/// use simcore::SimTime;
///
/// let builder = ScenarioBuilder::new()
///     .with_normal_users(80.0, 60)
///     .with_attack(AttackTool::HttpLoad { rate: 390.0 },
///                  ServiceKind::CollaFilt, 40, 5);
/// // Each build() mints a fresh, identical population: ideal for sweeps.
/// let sources = builder.build(42, SimTime::from_secs(600));
/// assert_eq!(sources.len(), 2);
/// assert!(sources[1].is_attacker());
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    ingredients: Vec<Ingredient>,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioBuilder {
    /// Empty scenario.
    pub fn new() -> Self {
        ScenarioBuilder {
            ingredients: Vec::new(),
        }
    }

    /// Add the standard AliOS background population.
    pub fn with_normal_users(mut self, peak_rate: f64, clients: u32) -> Self {
        self.ingredients.push(Ingredient::Normal {
            peak_rate,
            clients,
            mix: ServiceMix::alios_normal(),
            trace: None,
        });
        self
    }

    /// Add a normal population with an explicit mix and utilization
    /// trace (e.g. one loaded from the real Alibaba CSV).
    pub fn with_normal_traced(
        mut self,
        peak_rate: f64,
        clients: u32,
        mix: ServiceMix,
        trace: UtilizationTrace,
    ) -> Self {
        self.ingredients.push(Ingredient::Normal {
            peak_rate,
            clients,
            mix,
            trace: Some(trace),
        });
        self
    }

    /// Add an attack-tool flood on a service kernel from `start_s` to
    /// the horizon.
    pub fn with_attack(
        mut self,
        tool: AttackTool,
        victim: ServiceKind,
        bots: u32,
        start_s: u64,
    ) -> Self {
        self.ingredients.push(Ingredient::ServiceAttack {
            tool,
            victim,
            bots,
            start_s,
            stop_s: None,
        });
        self
    }

    /// Add a time-bounded attack (for switching scenarios).
    pub fn with_attack_window(
        mut self,
        tool: AttackTool,
        victim: ServiceKind,
        bots: u32,
        start_s: u64,
        stop_s: u64,
    ) -> Self {
        self.ingredients.push(Ingredient::ServiceAttack {
            tool,
            victim,
            bots,
            start_s,
            stop_s: Some(stop_s),
        });
        self
    }

    /// Add a layered flood (Fig 3 taxonomy).
    pub fn with_flood(mut self, kind: FloodKind, rate: f64, bots: u32, start_s: u64) -> Self {
        self.ingredients.push(Ingredient::Flood {
            kind,
            rate,
            bots,
            start_s,
            stop_s: None,
        });
        self
    }

    /// Add the adaptive Fig-12 DOPE attacker.
    pub fn with_dope(mut self, config: DopeConfig, start_s: u64) -> Self {
        self.ingredients.push(Ingredient::Dope { config, start_s });
        self
    }

    /// Number of ingredients added so far.
    pub fn len(&self) -> usize {
        self.ingredients.len()
    }

    /// True when nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.ingredients.is_empty()
    }

    /// Materialize fresh sources for one run. Each ingredient gets a
    /// disjoint request-id space (`index << 40`) and client-address
    /// range, and a seed derived from `(seed, index)`.
    pub fn build(&self, seed: u64, horizon: SimTime) -> Vec<Box<dyn TrafficSource>> {
        self.ingredients
            .iter()
            .enumerate()
            .map(|(i, ing)| self.build_one(i, ing, seed, horizon))
            .collect()
    }

    fn build_one(
        &self,
        index: usize,
        ing: &Ingredient,
        seed: u64,
        horizon: SimTime,
    ) -> Box<dyn TrafficSource> {
        let id_base = (index as u64 + 1) << 40;
        let addr_base = 1_000 + index as u32 * 10_000;
        let sub_seed = seed ^ ((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match ing {
            Ingredient::Normal {
                peak_rate,
                clients,
                mix,
                trace,
            } => {
                let trace = trace
                    .clone()
                    .unwrap_or_else(|| UtilizationTrace::synthesize(&AlibabaTraceConfig::small(seed)));
                Box::new(NormalUsers::new(
                    trace,
                    mix.clone(),
                    *peak_rate,
                    addr_base,
                    *clients,
                    id_base,
                    horizon,
                    sub_seed,
                ))
            }
            Ingredient::ServiceAttack {
                tool,
                victim,
                bots,
                start_s,
                stop_s,
            } => {
                let stop = stop_s
                    .map(SimTime::from_secs)
                    .unwrap_or(horizon)
                    .min(horizon);
                Box::new(FloodSource::against_service(
                    *tool,
                    *victim,
                    addr_base,
                    *bots,
                    id_base,
                    SimTime::from_secs(*start_s),
                    stop,
                    sub_seed,
                ))
            }
            Ingredient::Flood {
                kind,
                rate,
                bots,
                start_s,
                stop_s,
            } => {
                let stop = stop_s
                    .map(SimTime::from_secs)
                    .unwrap_or(horizon)
                    .min(horizon);
                Box::new(FloodSource::flood(
                    *kind,
                    *rate,
                    addr_base,
                    *bots,
                    id_base,
                    SimTime::from_secs(*start_s),
                    stop,
                    sub_seed,
                ))
            }
            Ingredient::Dope { config, start_s } => Box::new(DopeAttacker::new(
                config.clone(),
                addr_base,
                id_base,
                SimTime::from_secs(*start_s),
                horizon,
                sub_seed,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn horizon() -> SimTime {
        SimTime::from_secs(30)
    }

    #[test]
    fn builds_all_ingredient_kinds() {
        let b = ScenarioBuilder::new()
            .with_normal_users(50.0, 20)
            .with_attack(AttackTool::HttpLoad { rate: 100.0 }, ServiceKind::CollaFilt, 10, 2)
            .with_flood(FloodKind::SynFlood, 1000.0, 50, 0)
            .with_dope(DopeConfig::default(), 1);
        assert_eq!(b.len(), 4);
        let sources = b.build(7, horizon());
        assert_eq!(sources.len(), 4);
        assert!(!sources[0].is_attacker());
        assert!(sources[1].is_attacker());
        assert!(sources[2].is_attacker());
        assert!(sources[3].is_attacker());
    }

    #[test]
    fn id_spaces_are_disjoint() {
        let b = ScenarioBuilder::new()
            .with_normal_users(100.0, 10)
            .with_attack(AttackTool::HttpLoad { rate: 200.0 }, ServiceKind::KMeans, 10, 0);
        let mut sources = b.build(3, horizon());
        let mut ids = HashSet::new();
        let mut addrs: Vec<HashSet<u32>> = vec![HashSet::new(), HashSet::new()];
        for (i, src) in sources.iter_mut().enumerate() {
            let mut last = SimTime::ZERO;
            for _ in 0..200 {
                let Some(r) = src.next_request(last) else { break };
                assert!(ids.insert(r.id), "duplicate id {:?}", r.id);
                addrs[i].insert(r.source.0);
                last = r.arrival;
            }
        }
        assert!(addrs[0].is_disjoint(&addrs[1]), "client pools overlap");
    }

    #[test]
    fn build_is_deterministic_and_repeatable() {
        let b = ScenarioBuilder::new()
            .with_normal_users(80.0, 20)
            .with_attack(AttackTool::HttpLoad { rate: 100.0 }, ServiceKind::CollaFilt, 5, 1);
        let collect = |mut v: Vec<Box<dyn TrafficSource>>| {
            let mut out = Vec::new();
            for src in v.iter_mut() {
                let mut last = SimTime::ZERO;
                for _ in 0..100 {
                    let Some(r) = src.next_request(last) else { break };
                    last = r.arrival;
                    out.push((r.id, r.arrival));
                }
            }
            out
        };
        let a = collect(b.build(9, horizon()));
        let c = collect(b.build(9, horizon()));
        assert_eq!(a, c);
        let d = collect(b.build(10, horizon()));
        assert_ne!(a, d);
    }

    #[test]
    fn attack_window_bounds_arrivals() {
        let b = ScenarioBuilder::new().with_attack_window(
            AttackTool::HttpLoad { rate: 500.0 },
            ServiceKind::WordCount,
            10,
            5,
            10,
        );
        let mut sources = b.build(1, horizon());
        let mut last = SimTime::ZERO;
        while let Some(r) = sources[0].next_request(last) {
            assert!(r.arrival >= SimTime::from_secs(5));
            assert!(r.arrival < SimTime::from_secs(10));
            last = r.arrival;
        }
    }

    #[test]
    fn empty_builder_builds_nothing() {
        let b = ScenarioBuilder::new();
        assert!(b.is_empty());
        assert!(b.build(1, horizon()).is_empty());
    }
}
