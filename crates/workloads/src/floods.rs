//! The layered flood taxonomy of Figure 3.
//!
//! The paper measures the power profile of "typical network flood
//! targeting different layers with widely used tools" and finds that
//! application-layer attacks (HTTP flood, DNS flood) drive far higher
//! power than network-layer volume attacks (SYN/UDP/ICMP), because only
//! app-layer requests reach the task-intensive service code. Each flood
//! kind here carries the per-"request" demand parameters that reproduce
//! that ordering: network-layer packets cost microseconds of kernel CPU;
//! app-layer queries invoke the full EC service stack.

use netsim::request::UrlId;
use serde::{Deserialize, Serialize};

/// Which protocol layer a flood targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FloodLayer {
    /// L3/L4 volume attacks: exhaust connectivity, not CPU.
    Network,
    /// L7 attacks: exercise the application and burn server resources.
    Application,
}

/// The flood kinds measured in Fig 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FloodKind {
    /// HTTP GET flood against the EC application (http-load / AB style).
    HttpFlood,
    /// DNS query flood against the resolver tier.
    DnsFlood,
    /// Slowloris-style connection-exhaustion attack.
    Slowloris,
    /// TCP SYN flood.
    SynFlood,
    /// UDP datagram flood.
    UdpFlood,
    /// ICMP echo flood.
    IcmpFlood,
}

/// Per-"request" demand a flood packet/query places on a victim node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FloodParams {
    /// URL (service endpoint) the traffic resolves to. Network-layer
    /// floods use a reserved kernel-path pseudo-URL.
    pub url: UrlId,
    /// Compute demand per packet/query, G-cycles.
    pub work_gcycles: f64,
    /// CPU-boundedness of the handling path.
    pub beta: f64,
    /// Power intensity while handling.
    pub intensity: f64,
    /// DVFS power sensitivity.
    pub gamma: f64,
}

/// Pseudo-URL for kernel-path (network-layer) processing.
pub const KERNEL_PATH_URL: UrlId = UrlId(100);
/// Pseudo-URL for the DNS resolver tier.
pub const DNS_URL: UrlId = UrlId(101);
/// Pseudo-URL for connection-table handling (Slowloris).
pub const CONN_TABLE_URL: UrlId = UrlId(102);

impl FloodKind {
    /// All kinds, app layer first (Fig 3 legend order).
    pub const ALL: [FloodKind; 6] = [
        FloodKind::HttpFlood,
        FloodKind::DnsFlood,
        FloodKind::Slowloris,
        FloodKind::SynFlood,
        FloodKind::UdpFlood,
        FloodKind::IcmpFlood,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FloodKind::HttpFlood => "HTTP-Flood",
            FloodKind::DnsFlood => "DNS-Flood",
            FloodKind::Slowloris => "Slowloris",
            FloodKind::SynFlood => "SYN-Flood",
            FloodKind::UdpFlood => "UDP-Flood",
            FloodKind::IcmpFlood => "ICMP-Flood",
        }
    }

    /// Target layer.
    pub fn layer(self) -> FloodLayer {
        match self {
            FloodKind::HttpFlood | FloodKind::DnsFlood | FloodKind::Slowloris => {
                FloodLayer::Application
            }
            _ => FloodLayer::Network,
        }
    }

    /// Per-request demand parameters.
    ///
    /// HTTP floods hit the heavy EC endpoints (the Word-Count URL by
    /// default — a GET-able page that reads files; the DOPE attacker
    /// upgrades to Colla-Filt after profiling). Network-layer packets
    /// cost ~2 µs of kernel CPU each.
    pub fn params(self) -> FloodParams {
        match self {
            FloodKind::HttpFlood => FloodParams {
                url: crate::service::ServiceKind::WordCount.url(),
                work_gcycles: crate::service::ServiceKind::WordCount
                    .profile()
                    .mean_work_gcycles,
                beta: 0.55,
                intensity: 0.78,
                gamma: 0.60,
            },
            FloodKind::DnsFlood => FloodParams {
                url: DNS_URL,
                work_gcycles: 0.024, // 10 ms of resolver work
                beta: 0.70,
                intensity: 0.70,
                gamma: 0.65,
            },
            FloodKind::Slowloris => FloodParams {
                url: CONN_TABLE_URL,
                work_gcycles: 0.0048, // 2 ms of connection handling
                beta: 0.40,
                intensity: 0.45,
                gamma: 0.50,
            },
            FloodKind::SynFlood => FloodParams {
                url: KERNEL_PATH_URL,
                work_gcycles: 0.000012, // ~5 µs of kernel CPU
                beta: 0.90,
                intensity: 0.25,
                gamma: 0.80,
            },
            FloodKind::UdpFlood => FloodParams {
                url: KERNEL_PATH_URL,
                work_gcycles: 0.000007,
                beta: 0.90,
                intensity: 0.20,
                gamma: 0.80,
            },
            FloodKind::IcmpFlood => FloodParams {
                url: KERNEL_PATH_URL,
                work_gcycles: 0.000005,
                beta: 0.90,
                intensity: 0.15,
                gamma: 0.80,
            },
        }
    }

    /// A characteristic tool rate for the Fig 3 "maximum attack force"
    /// scenario, requests or packets per second.
    pub fn typical_max_rate(self) -> f64 {
        match self {
            FloodKind::HttpFlood => 1_000.0,
            FloodKind::DnsFlood => 2_000.0,
            FloodKind::Slowloris => 500.0,
            FloodKind::SynFlood => 50_000.0,
            FloodKind::UdpFlood => 80_000.0,
            FloodKind::IcmpFlood => 80_000.0,
        }
    }

    /// Steady-state power-injection estimate against one 100 W node:
    /// `rate × work/2.4GHz × intensity × headroom`, capped at headroom.
    /// Orders the Fig 3 curves without running a simulation.
    pub fn power_injection_estimate_w(self, rate: f64, headroom_w: f64) -> f64 {
        let p = self.params();
        let busy = (rate * p.work_gcycles / 2.4).min(1.0);
        busy * p.intensity * headroom_w
    }
}

impl std::fmt::Display for FloodKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layers_assigned() {
        assert_eq!(FloodKind::HttpFlood.layer(), FloodLayer::Application);
        assert_eq!(FloodKind::DnsFlood.layer(), FloodLayer::Application);
        assert_eq!(FloodKind::SynFlood.layer(), FloodLayer::Network);
        assert_eq!(FloodKind::UdpFlood.layer(), FloodLayer::Network);
        assert_eq!(FloodKind::IcmpFlood.layer(), FloodLayer::Network);
    }

    #[test]
    fn fig3_ordering_app_layer_hotter() {
        // At each tool's own max rate, app-layer floods inject more power
        // than network-layer floods (the central Fig 3 observation).
        let headroom = 60.0;
        let power = |k: FloodKind| k.power_injection_estimate_w(k.typical_max_rate(), headroom);
        let http = power(FloodKind::HttpFlood);
        let dns = power(FloodKind::DnsFlood);
        for net in [FloodKind::SynFlood, FloodKind::UdpFlood, FloodKind::IcmpFlood] {
            assert!(
                http > 1.5 * power(net),
                "HTTP {http} vs {net} {}",
                power(net)
            );
            assert!(dns > 1.5 * power(net));
        }
        // HTTP and DNS saturate the service: close to full headroom.
        assert!(http > 0.7 * headroom);
    }

    #[test]
    fn network_floods_touch_kernel_path() {
        for k in [FloodKind::SynFlood, FloodKind::UdpFlood, FloodKind::IcmpFlood] {
            assert_eq!(k.params().url, KERNEL_PATH_URL);
            assert!(k.params().work_gcycles < 1e-4);
        }
    }

    #[test]
    fn http_flood_targets_real_service() {
        let p = FloodKind::HttpFlood.params();
        assert_eq!(p.url, crate::service::ServiceKind::WordCount.url());
    }

    #[test]
    fn power_estimate_monotone_in_rate() {
        let k = FloodKind::HttpFlood;
        let lo = k.power_injection_estimate_w(10.0, 60.0);
        let hi = k.power_injection_estimate_w(100.0, 60.0);
        assert!(hi > lo);
        // And saturates at busy=1.
        let cap = k.power_injection_estimate_w(1e9, 60.0);
        assert!((cap - 0.78 * 60.0).abs() < 1e-9);
    }

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<_> =
            FloodKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), FloodKind::ALL.len());
    }
}
