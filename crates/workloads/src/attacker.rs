//! Attack-tool models: http-load and ApacheBench (Table 1's DoS rows).
//!
//! * [`AttackTool::HttpLoad`] — open-loop: fires requests at a constant
//!   aggregate rate regardless of responses, spread over a botnet of
//!   client addresses ("manipulates a group of recruited agents", §2).
//! * [`AttackTool::ApacheBench`] — closed-loop: holds `concurrency`
//!   requests outstanding; a new one is sent only when one completes
//!   (AB's `-c` flag). Closed-loop attacks self-throttle when the victim
//!   slows down — one reason open-loop floods are the more dangerous
//!   power weapon.
//!
//! The three flood structs here are thin facades over the composable
//! [`AttackVector`] engine (see
//! [`crate::vector`]): each pins one historical combination of the four
//! strategy axes and preserves its exact construction signature, labels,
//! RNG draw order, and byte-for-byte arrival streams.

use crate::floods::FloodKind;
use crate::service::ServiceKind;
use crate::source::{SourceEvent, TrafficSource};
use crate::vector::AttackVector;
use netsim::request::{Request, UrlId};
use simcore::{SimDuration, SimTime};

pub use crate::vector::AttackTool;

/// A configurable attack traffic source: constant envelope, fixed
/// target, victim resource profile (the legacy Fig 5 shape).
pub struct FloodSource {
    inner: AttackVector,
}

impl FloodSource {
    /// Attack a victim service kernel.
    #[allow(clippy::too_many_arguments)]
    pub fn against_service(
        tool: AttackTool,
        victim: ServiceKind,
        source_base: u32,
        bots: u32,
        id_base: u64,
        start: SimTime,
        stop: SimTime,
        seed: u64,
    ) -> Self {
        FloodSource {
            inner: AttackVector::against_service(
                tool,
                victim,
                source_base,
                bots,
                id_base,
                start,
                stop,
                seed,
            ),
        }
    }

    /// Launch one of the Fig 3 flood kinds.
    #[allow(clippy::too_many_arguments)]
    pub fn flood(
        kind: FloodKind,
        rate: f64,
        source_base: u32,
        bots: u32,
        id_base: u64,
        start: SimTime,
        stop: SimTime,
        seed: u64,
    ) -> Self {
        FloodSource {
            inner: AttackVector::flood(kind, rate, source_base, bots, id_base, start, stop, seed),
        }
    }

    /// Aggregate rate for open-loop tools.
    pub fn rate(&self) -> Option<f64> {
        self.inner.rate()
    }

    /// Per-bot rate for open-loop tools (what the firewall sees).
    pub fn per_bot_rate(&self) -> Option<f64> {
        self.inner.per_bot_rate()
    }

    /// Blocked events observed so far.
    pub fn blocked_seen(&self) -> u64 {
        self.inner.blocked_seen()
    }
}

impl TrafficSource for FloodSource {
    fn next_request(&mut self, now: SimTime) -> Option<Request> {
        self.inner.next_request(now)
    }

    fn label(&self) -> &str {
        self.inner.label()
    }

    fn feedback(&mut self, now: SimTime, event: SourceEvent) {
        self.inner.feedback(now, event);
    }

    fn is_attacker(&self) -> bool {
        true
    }
}

/// An *adaptive* open-loop attacker that rotates the URL it floods.
///
/// A static suspect list (offline-profiled, or handed to the defense as
/// an oracle) pins specific URLs; an attacker that registers — or simply
/// discovers — many heavy endpoints can hop between them faster than any
/// offline profile refreshes. Every `period` this source re-rolls its
/// URL uniformly from `[url_base, url_base + url_space)`, keeping the
/// *work character* of the victim kernel (the request is just as
/// power-hungry) while the *name* the defense keys on keeps moving.
///
/// The rotation schedule draws from the dedicated
/// [`simcore::rng::streams::ATTACK_ROTATION`] stream, independent of the
/// arrival / work-jitter stream, so changing the rotation period never
/// perturbs the arrival process of an otherwise-identical run.
pub struct RotatingFloodSource {
    inner: AttackVector,
}

impl RotatingFloodSource {
    /// Open-loop flood at `rate` req/s with the work character of
    /// `victim`, rotating over `url_space` URLs starting at `url_base`
    /// every `period`.
    #[allow(clippy::too_many_arguments)]
    pub fn against_service(
        rate: f64,
        victim: ServiceKind,
        url_base: u16,
        url_space: u16,
        period: SimDuration,
        source_base: u32,
        bots: u32,
        id_base: u64,
        start: SimTime,
        stop: SimTime,
        seed: u64,
    ) -> Self {
        RotatingFloodSource {
            inner: AttackVector::against_service(
                AttackTool::HttpLoad { rate },
                victim,
                source_base,
                bots,
                id_base,
                start,
                stop,
                seed,
            )
            .with_rotation(url_base, url_space, period, seed),
        }
    }

    /// The URL range the attacker rotates over.
    pub fn url_range(&self) -> std::ops::Range<u16> {
        self.inner
            .url_range()
            .expect("rotating source always has a URL range")
    }

    /// The URL currently being flooded.
    pub fn current_url(&self) -> UrlId {
        self.inner.current_url()
    }

    /// Completed rotations so far.
    pub fn rotations(&self) -> u64 {
        self.inner.moves()
    }

    /// Ground-truth `(url, intensity)` profile of *every* URL this
    /// attacker may ever flood. Handing this to a defense is
    /// deliberately unrealistic — it is the "impossible knowledge"
    /// oracle upper bound the online profiler is measured against.
    pub fn oracle_profiles(&self) -> Vec<(UrlId, f64)> {
        self.inner.oracle_profiles()
    }
}

impl TrafficSource for RotatingFloodSource {
    fn next_request(&mut self, now: SimTime) -> Option<Request> {
        self.inner.next_request(now)
    }

    fn label(&self) -> &str {
        self.inner.label()
    }

    fn feedback(&mut self, now: SimTime, event: SourceEvent) {
        self.inner.feedback(now, event);
    }

    fn is_attacker(&self) -> bool {
        true
    }
}

/// An open-loop attacker that concentrates its flood on one rack.
///
/// A topology-aware NLB gives every URL a deterministic home rack
/// (`url mod racks` — see `netsim`'s `RackPlacement`). An attacker who
/// has mapped that affinity (timing probes, or simply knowing the hash)
/// can pick URLs from a single congruence class and land its entire
/// power budget on one rack: the *rack* breaker overloads while the
/// *facility* meter still shows headroom — the hierarchical blind spot
/// this repo's Anti-DOPE extension closes. Every `period` the attacker
/// re-aims at a different rack, hopping ahead of any per-rack manual
/// mitigation.
///
/// The retarget schedule draws from the dedicated
/// [`simcore::rng::streams::ATTACK_FOCUS`] stream, independent of the
/// arrival / work-jitter stream, so re-aiming more or less often never
/// perturbs the arrival process of an otherwise-identical run.
pub struct ConcentratingFloodSource {
    inner: AttackVector,
}

impl ConcentratingFloodSource {
    /// Open-loop flood at `rate` req/s with the work character of
    /// `victim`, aimed at one of `racks` racks at a time (re-aimed every
    /// `period`). URLs are drawn from `[url_base, url_base + racks)` so
    /// each rack has exactly one URL in its congruence class.
    #[allow(clippy::too_many_arguments)]
    pub fn against_service(
        rate: f64,
        victim: ServiceKind,
        racks: usize,
        url_base: u16,
        period: SimDuration,
        source_base: u32,
        bots: u32,
        id_base: u64,
        start: SimTime,
        stop: SimTime,
        seed: u64,
    ) -> Self {
        ConcentratingFloodSource {
            inner: AttackVector::against_service(
                AttackTool::HttpLoad { rate },
                victim,
                source_base,
                bots,
                id_base,
                start,
                stop,
                seed,
            )
            .with_concentration(racks, url_base, period, seed),
        }
    }

    /// The URL homed on `rack`: the one member of `rack`'s congruence
    /// class within the attacker's URL range.
    pub fn url_for(&self, rack: usize) -> UrlId {
        self.inner
            .url_for(rack)
            .expect("concentrating source always has a rack range")
    }

    /// The rack currently under fire.
    pub fn target_rack(&self) -> usize {
        self.inner
            .target_rack()
            .expect("concentrating source always has a target")
    }

    /// Completed retargets so far.
    pub fn retargets(&self) -> u64 {
        self.inner.moves()
    }

    /// Ground-truth `(url, intensity)` profile of every URL this
    /// attacker may ever flood (one per rack) — the oracle upper bound
    /// for defenses, as with [`RotatingFloodSource::oracle_profiles`].
    pub fn oracle_profiles(&self) -> Vec<(UrlId, f64)> {
        self.inner.oracle_profiles()
    }
}

impl TrafficSource for ConcentratingFloodSource {
    fn next_request(&mut self, now: SimTime) -> Option<Request> {
        self.inner.next_request(now)
    }

    fn label(&self) -> &str {
        self.inner.label()
    }

    fn feedback(&mut self, now: SimTime, event: SourceEvent) {
        self.inner.feedback(now, event);
    }

    fn is_attacker(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::request::SourceId;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    #[test]
    fn http_load_rate_is_calibrated() {
        let mut f = FloodSource::against_service(
            AttackTool::HttpLoad { rate: 200.0 },
            ServiceKind::CollaFilt,
            5000,
            20,
            1 << 40,
            s(0),
            s(60),
            1,
        );
        let mut count = 0;
        let mut last = SimTime::ZERO;
        while let Some(r) = f.next_request(last) {
            assert!(r.is_attack);
            assert_eq!(r.url, ServiceKind::CollaFilt.url());
            last = r.arrival;
            count += 1;
        }
        // 200 rps × 60 s = 12000 ± sampling noise.
        assert!((11_000..13_000).contains(&count), "count={count}");
    }

    #[test]
    fn bots_rotate_evenly() {
        let mut f = FloodSource::against_service(
            AttackTool::HttpLoad { rate: 100.0 },
            ServiceKind::KMeans,
            7000,
            10,
            0,
            s(0),
            s(30),
            2,
        );
        let mut counts = std::collections::HashMap::new();
        let mut last = SimTime::ZERO;
        for _ in 0..1000 {
            let Some(r) = f.next_request(last) else { break };
            *counts.entry(r.source.0).or_insert(0u32) += 1;
            last = r.arrival;
        }
        assert_eq!(counts.len(), 10);
        let max = *counts.values().max().unwrap();
        let min = *counts.values().min().unwrap();
        assert!(max - min <= 1, "unbalanced: {min}..{max}");
        assert_eq!(f.per_bot_rate(), Some(10.0));
    }

    #[test]
    fn stops_at_horizon() {
        let mut f = FloodSource::against_service(
            AttackTool::HttpLoad { rate: 1000.0 },
            ServiceKind::WordCount,
            0,
            5,
            0,
            s(10),
            s(20),
            3,
        );
        // Before start: first arrival lands at/after start.
        let r = f.next_request(s(0)).unwrap();
        assert!(r.arrival >= s(10));
        let mut last = r.arrival;
        while let Some(r) = f.next_request(last) {
            assert!(r.arrival < s(20));
            last = r.arrival;
        }
        assert!(f.next_request(s(25)).is_none());
    }

    #[test]
    fn apache_bench_respects_concurrency() {
        let mut f = FloodSource::against_service(
            AttackTool::ApacheBench { concurrency: 3 },
            ServiceKind::CollaFilt,
            0,
            3,
            0,
            s(0),
            s(100),
            4,
        );
        assert!(f.next_request(s(0)).is_some());
        assert!(f.next_request(s(0)).is_some());
        assert!(f.next_request(s(0)).is_some());
        // Window full: dormant.
        assert!(f.next_request(s(1)).is_none());
        // A completion frees a slot.
        f.feedback(s(2), SourceEvent::Completed(SourceId(0)));
        let r = f.next_request(s(2)).unwrap();
        assert_eq!(r.arrival, s(2));
        assert!(f.next_request(s(2)).is_none());
    }

    #[test]
    fn apache_bench_blocked_frees_slot() {
        let mut f = FloodSource::against_service(
            AttackTool::ApacheBench { concurrency: 1 },
            ServiceKind::KMeans,
            0,
            1,
            0,
            s(0),
            s(100),
            5,
        );
        assert!(f.next_request(s(0)).is_some());
        assert!(f.next_request(s(0)).is_none());
        f.feedback(s(1), SourceEvent::Blocked(SourceId(0)));
        assert_eq!(f.blocked_seen(), 1);
        assert!(f.next_request(s(1)).is_some());
    }

    #[test]
    fn flood_kind_construction() {
        let mut f = FloodSource::flood(
            FloodKind::SynFlood,
            10_000.0,
            0,
            100,
            0,
            s(0),
            s(10),
            6,
        );
        let r = f.next_request(s(0)).unwrap();
        assert_eq!(r.url, crate::floods::KERNEL_PATH_URL);
        assert!(r.work_gcycles < 1e-4);
        assert!(f.is_attacker());
        assert_eq!(f.label(), "SYN-Flood");
    }

    fn rotating(period_s: u64, url_space: u16, seed: u64) -> RotatingFloodSource {
        RotatingFloodSource::against_service(
            200.0,
            ServiceKind::CollaFilt,
            800,
            url_space,
            SimDuration::from_secs(period_s),
            5000,
            20,
            1 << 41,
            s(0),
            s(60),
            seed,
        )
    }

    #[test]
    fn rotation_hops_within_range() {
        let mut f = rotating(5, 8, 11);
        let mut seen = std::collections::HashSet::new();
        let mut last = SimTime::ZERO;
        while let Some(r) = f.next_request(last) {
            assert!(r.is_attack);
            assert!(
                (800..808).contains(&r.url.0),
                "url {} outside rotation range",
                r.url.0
            );
            seen.insert(r.url.0);
            last = r.arrival;
        }
        // 60 s / 5 s period = 11 rotations; repeats are avoided, so
        // several distinct URLs must appear.
        assert_eq!(f.rotations(), 11);
        assert!(seen.len() >= 3, "only {} distinct URLs", seen.len());
    }

    #[test]
    fn rotation_is_deterministic_per_seed() {
        let mut a = rotating(2, 16, 9);
        let mut b = rotating(2, 16, 9);
        let mut last = SimTime::ZERO;
        loop {
            let (ra, rb) = (a.next_request(last), b.next_request(last));
            assert_eq!(ra, rb);
            match ra {
                Some(r) => last = r.arrival,
                None => break,
            }
        }
        assert_eq!(a.rotations(), b.rotations());
    }

    #[test]
    fn rotation_never_repeats_in_place() {
        let mut f = rotating(1, 2, 3);
        let mut prev = f.current_url();
        let mut last = SimTime::ZERO;
        while let Some(r) = f.next_request(last) {
            if r.url != prev {
                prev = r.url;
            }
            last = r.arrival;
        }
        // With a 2-URL space and in-place repeats forbidden, every one of
        // the 59 rotations flips the URL.
        assert_eq!(f.rotations(), 59);
    }

    #[test]
    fn oracle_profiles_cover_the_whole_range() {
        let f = rotating(5, 8, 1);
        let profiles = f.oracle_profiles();
        assert_eq!(profiles.len(), 8);
        let expect = ServiceKind::CollaFilt.profile().intensity;
        for (url, intensity) in &profiles {
            assert!(f.url_range().contains(&url.0));
            assert!((intensity - expect).abs() < 1e-12);
        }
        assert!(f.is_attacker());
        assert!(f.label().starts_with("rotating-http-load"));
    }

    #[test]
    fn single_url_space_is_static() {
        let mut f = rotating(5, 1, 2);
        let url = f.current_url();
        let mut last = SimTime::ZERO;
        while let Some(r) = f.next_request(last) {
            assert_eq!(r.url, url);
            last = r.arrival;
        }
    }

    fn concentrating(period_s: u64, racks: usize, seed: u64) -> ConcentratingFloodSource {
        ConcentratingFloodSource::against_service(
            200.0,
            ServiceKind::CollaFilt,
            racks,
            900,
            SimDuration::from_secs(period_s),
            5000,
            20,
            1 << 42,
            s(0),
            s(60),
            seed,
        )
    }

    #[test]
    fn concentration_stays_in_target_congruence_class() {
        let mut f = concentrating(10, 4, 7);
        let mut last = SimTime::ZERO;
        let mut by_target = std::collections::HashMap::new();
        while let Some(r) = f.next_request(last) {
            // Retargeting runs before the request is built, so every
            // request's URL homes on the rack currently under fire.
            assert_eq!(r.url.0 as usize % 4, f.target_rack());
            *by_target.entry(f.target_rack()).or_insert(0u32) += 1;
            last = r.arrival;
        }
        // 60 s / 10 s period = 5 retargets; in-place repeats forbidden.
        assert_eq!(f.retargets(), 5);
        assert!(by_target.len() >= 2, "never re-aimed");
    }

    #[test]
    fn concentration_is_deterministic_per_seed() {
        let mut a = concentrating(5, 8, 13);
        let mut b = concentrating(5, 8, 13);
        let mut last = SimTime::ZERO;
        loop {
            let (ra, rb) = (a.next_request(last), b.next_request(last));
            assert_eq!(ra, rb);
            match ra {
                Some(r) => last = r.arrival,
                None => break,
            }
        }
        assert_eq!(a.retargets(), b.retargets());
        assert_eq!(a.target_rack(), b.target_rack());
    }

    #[test]
    fn concentration_oracle_covers_every_rack() {
        let f = concentrating(10, 5, 1);
        let profiles = f.oracle_profiles();
        assert_eq!(profiles.len(), 5);
        let expect = ServiceKind::CollaFilt.profile().intensity;
        let classes: std::collections::HashSet<usize> =
            profiles.iter().map(|(u, _)| u.0 as usize % 5).collect();
        assert_eq!(classes.len(), 5, "one URL per rack congruence class");
        for (url, intensity) in &profiles {
            assert!((900..905).contains(&url.0), "url {} outside range", url.0);
            assert!((intensity - expect).abs() < 1e-12);
        }
        assert!(f.is_attacker());
        assert!(f.label().starts_with("concentrating-http-load"));
    }

    #[test]
    fn single_rack_concentration_is_static() {
        let mut f = concentrating(5, 1, 2);
        let url = f.url_for(0);
        let mut last = SimTime::ZERO;
        while let Some(r) = f.next_request(last) {
            assert_eq!(r.url, url);
            last = r.arrival;
        }
        assert_eq!(f.target_rack(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = || {
            FloodSource::against_service(
                AttackTool::HttpLoad { rate: 50.0 },
                ServiceKind::TextCont,
                0,
                4,
                0,
                s(0),
                s(60),
                9,
            )
        };
        let mut a = mk();
        let mut b = mk();
        for _ in 0..50 {
            assert_eq!(a.next_request(s(0)), b.next_request(s(0)));
        }
    }
}
