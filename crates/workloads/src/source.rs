//! The [`TrafficSource`] abstraction.
//!
//! A traffic source is a pull-based generator of timestamped requests.
//! The cluster simulator asks each source for its next request, schedules
//! an arrival event at the returned timestamp, and — for adaptive sources
//! like the DOPE attacker — feeds back what the perimeter defenses did.

use netsim::request::{Request, SourceId};
use simcore::SimTime;

/// Feedback events a source can observe (what a real client sees).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceEvent {
    /// A request from this client address was dropped at the perimeter
    /// (firewall ban) — the signal the DOPE algorithm backs off on.
    Blocked(SourceId),
    /// A request was admitted past the perimeter but shed inside the
    /// data center (admission control or an overloaded server) — a 503,
    /// not a detection.
    Rejected(SourceId),
    /// A request completed normally.
    Completed(SourceId),
}

/// A pull-based request generator.
pub trait TrafficSource {
    /// The next request at or after `now`, or `None` when the source has
    /// finished (its arrival field carries the exact instant).
    fn next_request(&mut self, now: SimTime) -> Option<Request>;

    /// Human-readable label for reports.
    fn label(&self) -> &str;

    /// Observe perimeter/completion feedback. Default: ignore.
    fn feedback(&mut self, _now: SimTime, _event: SourceEvent) {}

    /// True if this source models an attacker (ground truth for metrics).
    fn is_attacker(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::request::{RequestBuilder, UrlId};

    /// A trivial fixed-schedule source used to exercise the trait's
    /// default methods.
    struct OneShot {
        fired: bool,
    }

    impl TrafficSource for OneShot {
        fn next_request(&mut self, now: SimTime) -> Option<Request> {
            if self.fired {
                return None;
            }
            self.fired = true;
            Some(RequestBuilder::new().build(
                UrlId(0),
                SourceId(1),
                now,
                1.0,
                0.5,
                0.5,
                0.5,
                false,
            ))
        }

        fn label(&self) -> &str {
            "one-shot"
        }
    }

    #[test]
    fn default_trait_methods() {
        let mut s = OneShot { fired: false };
        assert!(!s.is_attacker());
        s.feedback(SimTime::ZERO, SourceEvent::Blocked(SourceId(1))); // no-op
        assert!(s.next_request(SimTime::ZERO).is_some());
        assert!(s.next_request(SimTime::ZERO).is_none());
        assert_eq!(s.label(), "one-shot");
    }
}
