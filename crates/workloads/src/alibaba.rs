//! Alibaba-cluster-trace-shaped utilization traces.
//!
//! The paper drives its evaluation with the Alibaba cluster trace
//! (cluster-trace-v2017: ~1.3 k machines, 12 hours of container CPU
//! utilization). The trace is not redistributable inside this repository,
//! so we provide two equivalent inputs (DESIGN.md, substitution table):
//!
//! 1. [`UtilizationTrace::synthesize`] — a generator matched to the
//!    published statistics of the trace: mean CPU utilization in the
//!    30–40 % band, a mild intra-day (half-diurnal) swing across the 12 h
//!    window, AR(1)-correlated noise, heavy-tailed per-machine baselines,
//!    and occasional correlated bursts.
//! 2. [`UtilizationTrace::from_csv`] — a loader for the real
//!    `server_usage.csv` schema (`timestamp,machine_id,cpu_percent`), if
//!    the user drops the actual trace next to the binary.
//!
//! Either way the output is the same object: the cluster-aggregate
//! utilization as a step function of time, which the normal-user model
//! turns into a request arrival rate.

use rand::Rng;
use serde::{Deserialize, Serialize};
use simcore::rng::SimRng;
use simcore::{SimDuration, SimTime};

/// Configuration for the synthetic trace generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlibabaTraceConfig {
    /// Number of machines aggregated.
    pub machines: usize,
    /// Total trace span.
    pub duration: SimDuration,
    /// Sampling interval.
    pub interval: SimDuration,
    /// Cluster mean utilization target, `(0, 1)`.
    pub mean_util: f64,
    /// Peak-to-mean swing of the intra-day pattern, e.g. 0.35.
    pub diurnal_amplitude: f64,
    /// AR(1) coefficient of the per-interval noise, `[0, 1)`.
    pub noise_ar1: f64,
    /// Std-dev of the noise innovations.
    pub noise_sigma: f64,
    /// Per-interval probability of a correlated burst.
    pub burst_prob: f64,
    /// Multiplicative burst magnitude (added fraction of mean).
    pub burst_magnitude: f64,
    /// Master seed.
    pub seed: u64,
}

impl AlibabaTraceConfig {
    /// The paper's setting: 1.3 k machines over 12 hours, 30 s samples.
    pub fn paper_default() -> Self {
        AlibabaTraceConfig {
            machines: 1300,
            duration: SimDuration::from_secs(12 * 3600),
            interval: SimDuration::from_secs(30),
            mean_util: 0.35,
            diurnal_amplitude: 0.35,
            noise_ar1: 0.8,
            noise_sigma: 0.03,
            burst_prob: 0.01,
            burst_magnitude: 0.25,
            seed: 2019,
        }
    }

    /// A small, fast variant for unit tests and examples: 40 machines,
    /// 10 minutes, 1 s samples.
    pub fn small(seed: u64) -> Self {
        AlibabaTraceConfig {
            machines: 40,
            duration: SimDuration::from_secs(600),
            interval: SimDuration::from_secs(1),
            mean_util: 0.35,
            diurnal_amplitude: 0.3,
            noise_ar1: 0.7,
            noise_sigma: 0.04,
            burst_prob: 0.02,
            burst_magnitude: 0.3,
            seed,
        }
    }
}

/// A cluster-aggregate utilization step function in `[0, 1]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UtilizationTrace {
    interval: SimDuration,
    values: Vec<f64>,
}

impl UtilizationTrace {
    /// Wrap raw interval values (each clamped into `[0, 1]`).
    pub fn from_values(interval: SimDuration, values: Vec<f64>) -> Self {
        assert!(!interval.is_zero() && !values.is_empty());
        UtilizationTrace {
            interval,
            values: values.into_iter().map(|v| v.clamp(0.0, 1.0)).collect(),
        }
    }

    /// Generate a synthetic trace with the published Alibaba shape.
    pub fn synthesize(config: &AlibabaTraceConfig) -> Self {
        let intervals = (config.duration / config.interval).max(1) as usize;
        let mut rng = SimRng::new(config.seed);

        // Heavy-tailed per-machine baselines around the target mean:
        // most machines modest, a few hot (log-normal, then rescaled).
        let mut baselines: Vec<f64> = (0..config.machines)
            .map(|_| {
                let z: f64 = sample_standard_normal(&mut rng);
                (0.25 * z).exp()
            })
            .collect();
        let base_mean: f64 = baselines.iter().sum::<f64>() / baselines.len() as f64;
        for b in &mut baselines {
            *b *= config.mean_util / base_mean;
        }

        // Cluster-level AR(1) noise and bursts (correlated across
        // machines — load is driven by shared external demand).
        let mut values = Vec::with_capacity(intervals);
        let mut noise = 0.0f64;
        let mut burst_left = 0usize;
        for i in 0..intervals {
            let phase = i as f64 / intervals as f64;
            // Half a diurnal cycle over a 12 h window: trough → peak.
            let diurnal = 1.0 + config.diurnal_amplitude * (std::f64::consts::PI * phase).sin();
            noise = config.noise_ar1 * noise
                + config.noise_sigma * sample_standard_normal(&mut rng);
            if burst_left == 0 && rng.gen_range(0.0..1.0) < config.burst_prob {
                burst_left = rng.gen_range(2..10);
            }
            let burst = if burst_left > 0 {
                burst_left -= 1;
                config.burst_magnitude
            } else {
                0.0
            };
            let mean_machine: f64 = baselines.iter().sum::<f64>() / baselines.len() as f64;
            let util = mean_machine * diurnal * (1.0 + noise + burst);
            values.push(util.clamp(0.0, 1.0));
        }
        UtilizationTrace {
            interval: config.interval,
            values,
        }
    }

    /// Load the real trace from `server_usage.csv`-style content:
    /// `timestamp_seconds,machine_id,cpu_percent` per line (header rows
    /// and blank lines skipped). Utilization is averaged over machines
    /// per `interval` bucket.
    pub fn from_csv(content: &str, interval: SimDuration) -> Result<Self, String> {
        let mut buckets: Vec<(f64, u64)> = Vec::new();
        for (lineno, line) in content.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split(',');
            let (Some(ts), Some(_mid), Some(cpu)) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!("line {}: expected 3+ columns", lineno + 1));
            };
            let Ok(ts) = ts.trim().parse::<f64>() else {
                if lineno == 0 {
                    continue; // header
                }
                return Err(format!("line {}: bad timestamp {ts:?}", lineno + 1));
            };
            let cpu: f64 = cpu
                .trim()
                .parse()
                .map_err(|_| format!("line {}: bad cpu {cpu:?}", lineno + 1))?;
            let bucket = (ts / interval.as_secs_f64()) as usize;
            if buckets.len() <= bucket {
                buckets.resize(bucket + 1, (0.0, 0));
            }
            buckets[bucket].0 += cpu / 100.0;
            buckets[bucket].1 += 1;
        }
        if buckets.is_empty() {
            return Err("no data rows".to_string());
        }
        let values: Vec<f64> = buckets
            .iter()
            .map(|&(sum, n)| if n == 0 { 0.0 } else { sum / n as f64 })
            .collect();
        Ok(UtilizationTrace::from_values(interval, values))
    }

    /// Sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always false by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total span covered.
    pub fn duration(&self) -> SimDuration {
        self.interval * self.values.len() as u64
    }

    /// Utilization at time `t` (wraps around for simulations longer than
    /// the trace — a 12 h trace tiles a multi-day run).
    pub fn value_at(&self, t: SimTime) -> f64 {
        let idx = (t.as_micros() / self.interval.as_micros()) as usize % self.values.len();
        self.values[idx]
    }

    /// Trace mean.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Trace peak.
    pub fn peak(&self) -> f64 {
        self.values.iter().cloned().fold(0.0, f64::max)
    }

    /// Raw values (read-only).
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Standard normal via Box–Muller on the deterministic [`SimRng`].
fn sample_standard_normal(rng: &mut SimRng) -> f64 {
    let u1: f64 = 1.0 - rng.unit_f64(); // (0, 1]
    let u2: f64 = rng.unit_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_mean_matches_target() {
        let t = UtilizationTrace::synthesize(&AlibabaTraceConfig::paper_default());
        assert_eq!(t.len(), 1440);
        let mean = t.mean();
        // Diurnal factor averages ~1 + 2A/π; verify the mean lands in the
        // published 30–50 % band.
        assert!((0.30..=0.50).contains(&mean), "mean={mean}");
        assert!(t.peak() <= 1.0);
        assert!(t.values().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn synthetic_is_deterministic() {
        let a = UtilizationTrace::synthesize(&AlibabaTraceConfig::small(7));
        let b = UtilizationTrace::synthesize(&AlibabaTraceConfig::small(7));
        assert_eq!(a.values(), b.values());
        let c = UtilizationTrace::synthesize(&AlibabaTraceConfig::small(8));
        assert_ne!(a.values(), c.values());
    }

    #[test]
    fn diurnal_shape_present() {
        let t = UtilizationTrace::synthesize(&AlibabaTraceConfig::paper_default());
        // Mid-trace (phase π/2) should on average exceed the edges.
        let n = t.len();
        let edge: f64 = t.values()[..n / 8].iter().sum::<f64>() / (n / 8) as f64;
        let mid: f64 =
            t.values()[3 * n / 8..5 * n / 8].iter().sum::<f64>() / (n / 4) as f64;
        assert!(mid > edge * 1.1, "mid={mid} edge={edge}");
    }

    #[test]
    fn synthetic_noise_is_temporally_correlated() {
        // DESIGN.md claims the generator matches the trace's
        // autocorrelation (AR(1) noise): verify lag-1 autocorrelation of
        // the detrended series is strongly positive and decays by lag 8.
        let t = UtilizationTrace::synthesize(&AlibabaTraceConfig::paper_default());
        let v = t.values();
        let n = v.len();
        // Detrend with a centered moving average (kills the diurnal).
        let w = 31;
        let detrended: Vec<f64> = (w..n - w)
            .map(|i| {
                let local: f64 = v[i - w..=i + w].iter().sum::<f64>() / (2 * w + 1) as f64;
                v[i] - local
            })
            .collect();
        let mean = detrended.iter().sum::<f64>() / detrended.len() as f64;
        let var: f64 = detrended.iter().map(|x| (x - mean).powi(2)).sum();
        let acf = |lag: usize| -> f64 {
            let m = detrended.len() - lag;
            let cov: f64 = (0..m)
                .map(|i| (detrended[i] - mean) * (detrended[i + lag] - mean))
                .sum();
            cov / var
        };
        let r1 = acf(1);
        let r8 = acf(8);
        assert!(r1 > 0.4, "lag-1 autocorrelation too weak: {r1}");
        assert!(r8 < r1, "autocorrelation must decay: r1={r1} r8={r8}");
    }

    #[test]
    fn value_at_wraps() {
        let tr = UtilizationTrace::from_values(
            SimDuration::from_secs(10),
            vec![0.1, 0.2, 0.3],
        );
        assert_eq!(tr.value_at(SimTime::from_secs(0)), 0.1);
        assert_eq!(tr.value_at(SimTime::from_secs(15)), 0.2);
        assert_eq!(tr.value_at(SimTime::from_secs(29)), 0.3);
        assert_eq!(tr.value_at(SimTime::from_secs(30)), 0.1); // wrap
        assert_eq!(tr.duration(), SimDuration::from_secs(30));
    }

    #[test]
    fn from_values_clamps() {
        let tr = UtilizationTrace::from_values(SimDuration::from_secs(1), vec![-0.5, 1.5]);
        assert_eq!(tr.values(), &[0.0, 1.0]);
    }

    #[test]
    fn csv_roundtrip() {
        let csv = "\
timestamp,machine_id,cpu
0,m1,40
0,m2,60
30,m1,20
30,m2,40
60,m1,10
";
        let tr = UtilizationTrace::from_csv(csv, SimDuration::from_secs(30)).unwrap();
        assert_eq!(tr.len(), 3);
        assert!((tr.values()[0] - 0.5).abs() < 1e-12);
        assert!((tr.values()[1] - 0.3).abs() < 1e-12);
        assert!((tr.values()[2] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(UtilizationTrace::from_csv("", SimDuration::from_secs(1)).is_err());
        assert!(
            UtilizationTrace::from_csv("1,2\n", SimDuration::from_secs(1)).is_err()
        );
        assert!(UtilizationTrace::from_csv(
            "0,m1,notanumber\n",
            SimDuration::from_secs(1)
        )
        .is_err());
    }

    #[test]
    fn csv_skips_comments_and_blanks() {
        let csv = "# comment\n\n0,m1,50\n";
        let tr = UtilizationTrace::from_csv(csv, SimDuration::from_secs(1)).unwrap();
        assert!((tr.values()[0] - 0.5).abs() < 1e-12);
    }
}
