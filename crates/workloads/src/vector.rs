//! Composable attack vectors: base flood ⊗ envelope ⊗ source plan ⊗
//! resource profile ⊗ target plan.
//!
//! The three historical flood structs ([`crate::attacker::FloodSource`],
//! [`crate::attacker::RotatingFloodSource`],
//! [`crate::attacker::ConcentratingFloodSource`]) each re-implemented the
//! same bot scheduling, work jitter, and arrival clock. [`AttackVector`]
//! owns that machinery once and makes each strategy axis a first-class
//! value:
//!
//! * [`Envelope`] — *when* the flood fires: constant, ID2T-style ON/OFF
//!   bursts (`burst.duration`/`burst.sleep`), or a low-and-slow ramp.
//!   Every envelope is normalized to conserve expected request volume
//!   against its constant-rate equivalent over the attack window, so
//!   comparing envelopes compares *shape*, never *budget*.
//! * [`SourcePlan`] — *who* fires it: a single address, a fixed botnet,
//!   or a botnet auto-sized so the per-bot **peak** rate stays strictly
//!   below a deflate-style firewall threshold (the Fig 11 evasion
//!   region).
//! * [`ResourceProfile`] — *what* each request burns: the victim's CPU
//!   profile, or a memory/IO-heavy profile (low `gamma`) whose dynamic
//!   power DVFS cannot reclaim — the Memory-DoS lever against
//!   capping-only defenses.
//! * [`TargetPlan`] — *where* it lands: one URL, a rotating URL set, or
//!   one rack's URL congruence class at a time.
//!
//! Determinism contract: arrivals and work jitter draw from
//! `SimRng::new(seed)` exactly as the legacy structs did; target moves
//! draw from the dedicated [`streams::ATTACK_ROTATION`] /
//! [`streams::ATTACK_FOCUS`] named streams. Envelopes are draw-free
//! (they only reshape the arrival clock via exponential thinning), so
//! switching envelope never perturbs any other stream.

use crate::floods::FloodKind;
use crate::service::ServiceKind;
use crate::source::{SourceEvent, TrafficSource};
use netsim::request::{Request, RequestBuilder, SourceId, UrlId};
use simcore::rng::{streams, SimRng};
use simcore::{RngFactory, SimDuration, SimTime};

/// Which tool generates the attack traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackTool {
    /// Open-loop flood at `rate` requests/s aggregate.
    HttpLoad {
        /// Aggregate request rate, requests/s.
        rate: f64,
    },
    /// Closed-loop with `concurrency` outstanding requests.
    ApacheBench {
        /// Maximum outstanding requests.
        concurrency: u32,
    },
}

pub(crate) fn tool_name(tool: AttackTool) -> &'static str {
    match tool {
        AttackTool::HttpLoad { .. } => "http-load",
        AttackTool::ApacheBench { .. } => "ab",
    }
}

/// Demand parameters for the attack's requests.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Demand {
    pub(crate) url: UrlId,
    pub(crate) mean_work: f64,
    pub(crate) beta: f64,
    pub(crate) intensity: f64,
    pub(crate) gamma: f64,
}

/// *When* the flood fires: the temporal shape of the open-loop arrival
/// rate. Each envelope multiplies the base rate by a piecewise-constant
/// factor with mean 1 over the attack window, so expected request
/// volume is conserved against the constant-rate equivalent — bursty
/// arrivals, same totals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Envelope {
    /// The legacy shape: a homogeneous Poisson process at the base rate.
    Constant,
    /// ID2T-style ON/OFF bursting: every `period`, fire for
    /// `duty · period` at `rate / duty`, then sleep. Short bursts inside
    /// the firewall's detection lag, with sleeps that outlive a finite
    /// ban, slip the whole volume past a deflate-style perimeter.
    OnOffBurst {
        /// Full burst cycle (ON + sleep).
        period: SimDuration,
        /// Fraction of the period spent firing, in `(0, 1]`.
        duty: f64,
    },
    /// Low-and-slow: the rate ramps linearly from 0 to 2× the base rate
    /// across the attack window (mean 1×), staying under rate triggers
    /// for the first half while the budget debt accumulates.
    LowAndSlow,
}

impl Envelope {
    fn validate(&self) {
        if let Envelope::OnOffBurst { period, duty } = self {
            assert!(!period.is_zero(), "burst period must be positive");
            assert!(
                *duty > 0.0 && *duty <= 1.0,
                "burst duty must be in (0, 1], got {duty}"
            );
        }
    }

    /// Peak rate multiplier (what a per-poll-window rate check sees at
    /// the worst moment).
    pub fn peak_factor(&self) -> f64 {
        match self {
            Envelope::Constant => 1.0,
            Envelope::OnOffBurst { duty, .. } => 1.0 / duty,
            Envelope::LowAndSlow => 2.0,
        }
    }

    /// The rate factor at `elapsed` seconds into a `window`-second
    /// attack, and the number of seconds until that factor next changes.
    /// Factors are piecewise-constant; the low-and-slow ramp discretizes
    /// into 1 s steps at the midpoint value, which integrates the linear
    /// ramp *exactly* (midpoint rule is exact for affine functions).
    fn segment(&self, elapsed: f64, window: f64) -> (f64, f64) {
        match *self {
            Envelope::Constant => (1.0, window - elapsed),
            Envelope::OnOffBurst { period, duty } => {
                let p = period.as_secs_f64();
                let on = duty * p;
                let pos = elapsed % p;
                if pos < on {
                    (1.0 / duty, on - pos)
                } else {
                    (0.0, p - pos)
                }
            }
            Envelope::LowAndSlow => {
                let k = elapsed.floor();
                let seg_end = (k + 1.0).min(window);
                let mid = (k + seg_end) / 2.0;
                (2.0 * mid / window, seg_end - elapsed)
            }
        }
    }

    /// Expected number of arrivals over an attack window of `window`
    /// seconds at base rate `rate` — the volume-conservation invariant:
    /// equal to `rate · window` whenever the window closes an integer
    /// number of burst periods (and always, for the other shapes).
    pub fn expected_volume(&self, rate: f64, window: SimDuration) -> f64 {
        let w = window.as_secs_f64();
        match *self {
            Envelope::Constant | Envelope::LowAndSlow => rate * w,
            Envelope::OnOffBurst { period, duty } => {
                let p = period.as_secs_f64();
                let on = duty * p;
                let full = (w / p).floor();
                let tail = (w - full * p).min(on);
                rate * (full * p + tail / duty)
            }
        }
    }
}

/// *Who* fires the flood: how many bot addresses the aggregate rate is
/// spread over. The per-source rate is what a deflate-style firewall
/// rate-thresholds; spreading is the classic evasion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SourcePlan {
    /// One address carries the whole aggregate.
    Single,
    /// A fixed-size botnet, round-robin scheduled.
    Botnet {
        /// Number of bot addresses.
        bots: u32,
    },
    /// A botnet auto-sized so the per-bot **peak** rate (base rate ×
    /// envelope peak factor) stays strictly below `threshold_rps` — the
    /// smallest army that never crosses the deflate trigger.
    EvadingBotnet {
        /// The firewall threshold to stay under, requests/s per source.
        threshold_rps: f64,
    },
}

impl SourcePlan {
    /// Resolve to a concrete bot count for an open-loop rate under an
    /// envelope (closed-loop tools pass their concurrency as `rate`).
    pub fn bots(&self, rate: f64, envelope: Envelope) -> u32 {
        match *self {
            SourcePlan::Single => 1,
            SourcePlan::Botnet { bots } => {
                assert!(bots >= 1, "botnet needs at least one bot");
                bots
            }
            SourcePlan::EvadingBotnet { threshold_rps } => {
                assert!(
                    threshold_rps > 0.0,
                    "evasion threshold must be positive, got {threshold_rps}"
                );
                let peak = rate * envelope.peak_factor();
                // floor(peak/thr) + 1 bots ⇒ peak/bots < thr strictly,
                // even when peak is an exact multiple of the threshold.
                (peak / threshold_rps).floor() as u32 + 1
            }
        }
    }
}

/// *What* each request burns: the per-request demand character.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResourceProfile {
    /// Inherit the victim kernel's profile (the legacy behaviour).
    Cpu,
    /// Memory/IO-bound power: low CPU-boundedness (`beta` 0.15 — DVFS
    /// barely slows service), full power intensity, and `gamma` 0.2 —
    /// only 20 % of the dynamic power follows the V/F curve, so a
    /// capping defense that drops to the floor P-state still eats ~86 %
    /// of the heat. The Memory-DoS lever.
    MemoryBound,
    /// Explicit demand character.
    Custom {
        /// CPU-boundedness of the service rate, `[0, 1]`.
        beta: f64,
        /// Power intensity while in service, `[0, 1]`.
        intensity: f64,
        /// DVFS sensitivity of the dynamic power, `[0, 1]`.
        gamma: f64,
    },
}

impl ResourceProfile {
    fn apply(&self, demand: &mut Demand) {
        match *self {
            ResourceProfile::Cpu => {}
            ResourceProfile::MemoryBound => {
                demand.beta = 0.15;
                demand.intensity = 1.0;
                demand.gamma = 0.2;
            }
            ResourceProfile::Custom {
                beta,
                intensity,
                gamma,
            } => {
                demand.beta = beta;
                demand.intensity = intensity;
                demand.gamma = gamma;
            }
        }
    }

    fn tag(&self) -> &'static str {
        match self {
            ResourceProfile::Cpu => "",
            ResourceProfile::MemoryBound => "mem-",
            ResourceProfile::Custom { .. } => "custom-",
        }
    }
}

/// *Where* the flood lands: the URL the requests name over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TargetPlan {
    /// The victim kernel's own URL, fixed for the run.
    Fixed,
    /// Re-roll the URL uniformly from `[url_base, url_base + url_space)`
    /// every `period` (never in place when more than one is available).
    Rotating {
        /// First URL of the rotation range.
        url_base: u16,
        /// Number of URLs rotated over.
        url_space: u16,
        /// Rotation period.
        period: SimDuration,
    },
    /// Aim the whole flood at one rack's URL congruence class at a time,
    /// re-aiming every `period` (see `netsim`'s `RackPlacement`).
    Concentrating {
        /// Number of racks in the topology (`url mod racks` homes a URL).
        racks: usize,
        /// First URL of the per-rack range `[url_base, url_base + racks)`.
        url_base: u16,
        /// Retarget period.
        period: SimDuration,
    },
}

/// Runtime state of a [`TargetPlan`]: the move schedule and its
/// dedicated RNG stream.
enum MoveState {
    Fixed,
    Rotating {
        url_base: u16,
        url_space: u16,
        period: SimDuration,
        next: SimTime,
        rng: SimRng,
        moves: u64,
    },
    Concentrating {
        racks: usize,
        url_base: u16,
        target: usize,
        period: SimDuration,
        next: SimTime,
        rng: SimRng,
        moves: u64,
    },
}

/// The unified attack source: one bot-scheduling / arrival-clock /
/// work-jitter engine under every composition of the four axes. The
/// legacy flood structs are thin wrappers over this type.
pub struct AttackVector {
    tool: AttackTool,
    demand: Demand,
    envelope: Envelope,
    /// Botnet addresses `[source_base, source_base + bots)`.
    source_base: u32,
    bots: u32,
    bot_cursor: u32,
    builder: RequestBuilder,
    rng: SimRng,
    clock: SimTime,
    start: SimTime,
    stop: SimTime,
    /// Closed-loop state: outstanding request count.
    outstanding: u32,
    label: String,
    blocked_seen: u64,
    moves: MoveState,
    /// Carry-over of the unit-rate exponential being thinned across
    /// envelope segments (non-constant envelopes only).
    pending_exp: Option<f64>,
}

impl AttackVector {
    /// The legacy `FloodSource` shape: constant envelope, fixed target,
    /// victim resource profile, explicit bot count.
    #[allow(clippy::too_many_arguments)]
    pub fn against_service(
        tool: AttackTool,
        victim: ServiceKind,
        source_base: u32,
        bots: u32,
        id_base: u64,
        start: SimTime,
        stop: SimTime,
        seed: u64,
    ) -> Self {
        let p = victim.profile();
        Self::assemble(
            tool,
            Demand {
                url: victim.url(),
                mean_work: p.mean_work_gcycles,
                beta: p.beta,
                intensity: p.intensity,
                gamma: p.gamma,
            },
            source_base,
            bots,
            id_base,
            start,
            stop,
            seed,
            format!("{}@{}", tool_name(tool), victim.name()),
        )
    }

    /// Launch one of the Fig 3 flood kinds (legacy `FloodSource::flood`).
    #[allow(clippy::too_many_arguments)]
    pub fn flood(
        kind: FloodKind,
        rate: f64,
        source_base: u32,
        bots: u32,
        id_base: u64,
        start: SimTime,
        stop: SimTime,
        seed: u64,
    ) -> Self {
        let p = kind.params();
        Self::assemble(
            AttackTool::HttpLoad { rate },
            Demand {
                url: p.url,
                mean_work: p.work_gcycles,
                beta: p.beta,
                intensity: p.intensity,
                gamma: p.gamma,
            },
            source_base,
            bots,
            id_base,
            start,
            stop,
            seed,
            kind.name().to_string(),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        tool: AttackTool,
        demand: Demand,
        source_base: u32,
        bots: u32,
        id_base: u64,
        start: SimTime,
        stop: SimTime,
        seed: u64,
        label: String,
    ) -> Self {
        assert!(bots >= 1);
        assert!(stop > start);
        if let AttackTool::HttpLoad { rate } = tool {
            assert!(rate > 0.0);
        }
        AttackVector {
            tool,
            demand,
            envelope: Envelope::Constant,
            source_base,
            bots,
            bot_cursor: 0,
            builder: RequestBuilder::starting_at(id_base),
            rng: SimRng::new(seed),
            clock: start,
            start,
            stop,
            outstanding: 0,
            label,
            blocked_seen: 0,
            moves: MoveState::Fixed,
            pending_exp: None,
        }
    }

    /// Attach a rotating target plan (legacy `RotatingFloodSource`
    /// construction order: label prefix, then the initial URL drawn from
    /// the [`streams::ATTACK_ROTATION`] stream).
    pub(crate) fn with_rotation(
        mut self,
        url_base: u16,
        url_space: u16,
        period: SimDuration,
        seed: u64,
    ) -> Self {
        assert!(url_space >= 1, "need at least one URL to rotate over");
        assert!(
            url_base.checked_add(url_space).is_some(),
            "URL range overflows u16"
        );
        assert!(!period.is_zero(), "rotation period must be positive");
        self.label = format!("rotating-{}", self.label);
        let mut rng = RngFactory::new(seed).stream(streams::ATTACK_ROTATION);
        self.demand.url = UrlId(url_base + rng.below(url_space as u64) as u16);
        self.moves = MoveState::Rotating {
            url_base,
            url_space,
            period,
            next: self.start + period,
            rng,
            moves: 0,
        };
        self
    }

    /// Attach a concentrating target plan (legacy
    /// `ConcentratingFloodSource` construction order: label prefix, then
    /// the initial rack drawn from the [`streams::ATTACK_FOCUS`] stream).
    pub(crate) fn with_concentration(
        mut self,
        racks: usize,
        url_base: u16,
        period: SimDuration,
        seed: u64,
    ) -> Self {
        assert!(racks >= 1, "need at least one rack to aim at");
        assert!(
            url_base.checked_add(racks as u16).is_some(),
            "URL range overflows u16"
        );
        assert!(!period.is_zero(), "retarget period must be positive");
        self.label = format!("concentrating-{}", self.label);
        let mut rng = RngFactory::new(seed).stream(streams::ATTACK_FOCUS);
        let target = rng.below(racks as u64) as usize;
        self.moves = MoveState::Concentrating {
            racks,
            url_base,
            target,
            period,
            next: self.start + period,
            rng,
            moves: 0,
        };
        self.demand.url = Self::rack_url(url_base, racks, target);
        self
    }

    /// Reshape the arrival process. Constant stays bit-identical to the
    /// legacy clock; other envelopes thin a unit-rate exponential across
    /// the piecewise-constant rate segments (one draw per arrival either
    /// way, same stream).
    pub fn with_envelope(mut self, envelope: Envelope) -> Self {
        envelope.validate();
        self.envelope = envelope;
        self
    }

    /// Override the per-request demand character.
    pub fn with_resources(mut self, profile: ResourceProfile) -> Self {
        profile.apply(&mut self.demand);
        self
    }

    /// Replace the report label.
    pub fn with_label(mut self, label: String) -> Self {
        self.label = label;
        self
    }

    /// Aggregate rate for open-loop tools.
    pub fn rate(&self) -> Option<f64> {
        match self.tool {
            AttackTool::HttpLoad { rate } => Some(rate),
            AttackTool::ApacheBench { .. } => None,
        }
    }

    /// Per-bot *average* rate for open-loop tools.
    pub fn per_bot_rate(&self) -> Option<f64> {
        self.rate().map(|r| r / self.bots as f64)
    }

    /// Per-bot **peak** rate: what a per-poll-window rate check sees at
    /// the envelope's worst moment.
    pub fn per_bot_peak_rate(&self) -> Option<f64> {
        self.per_bot_rate().map(|r| r * self.envelope.peak_factor())
    }

    /// Number of bot addresses.
    pub fn bots(&self) -> u32 {
        self.bots
    }

    /// Blocked events observed so far.
    pub fn blocked_seen(&self) -> u64 {
        self.blocked_seen
    }

    /// The attack window `[start, stop)`.
    pub fn window(&self) -> (SimTime, SimTime) {
        (self.start, self.stop)
    }

    /// The URL currently being flooded.
    pub fn current_url(&self) -> UrlId {
        self.demand.url
    }

    /// Completed target moves (rotations / retargets) so far.
    pub fn moves(&self) -> u64 {
        match &self.moves {
            MoveState::Fixed => 0,
            MoveState::Rotating { moves, .. } | MoveState::Concentrating { moves, .. } => *moves,
        }
    }

    /// The URL range a rotating plan hops over (`None` otherwise).
    pub fn url_range(&self) -> Option<std::ops::Range<u16>> {
        match &self.moves {
            MoveState::Rotating {
                url_base,
                url_space,
                ..
            } => Some(*url_base..*url_base + *url_space),
            _ => None,
        }
    }

    /// The rack currently under fire (`None` unless concentrating).
    pub fn target_rack(&self) -> Option<usize> {
        match &self.moves {
            MoveState::Concentrating { target, .. } => Some(*target),
            _ => None,
        }
    }

    /// The one URL of `rack`'s congruence class within a concentrating
    /// plan's range (`None` otherwise).
    pub fn url_for(&self, rack: usize) -> Option<UrlId> {
        match &self.moves {
            MoveState::Concentrating {
                racks, url_base, ..
            } => Some(Self::rack_url(*url_base, *racks, rack)),
            _ => None,
        }
    }

    fn rack_url(url_base: u16, racks: usize, rack: usize) -> UrlId {
        let base = url_base as usize;
        let offset = (racks - base % racks + rack) % racks;
        UrlId((base + offset) as u16)
    }

    /// Ground-truth `(url, intensity)` profile of every URL this vector
    /// may ever flood — the "impossible knowledge" oracle upper bound a
    /// defense can be measured against.
    pub fn oracle_profiles(&self) -> Vec<(UrlId, f64)> {
        match &self.moves {
            MoveState::Fixed => vec![(self.demand.url, self.demand.intensity)],
            MoveState::Rotating {
                url_base,
                url_space,
                ..
            } => (*url_base..*url_base + *url_space)
                .map(|u| (UrlId(u), self.demand.intensity))
                .collect(),
            MoveState::Concentrating {
                racks, url_base, ..
            } => (0..*racks)
                .map(|r| (Self::rack_url(*url_base, *racks, r), self.demand.intensity))
                .collect(),
        }
    }

    /// The deterministic target-move schedule `(instant, new url)` this
    /// vector will follow up to `horizon`, starting with the initial
    /// target. Consumes the vector (it spends the move stream): build a
    /// fresh twin with the same seed to plan the regret bookkeeping of a
    /// run without perturbing the vector that runs.
    pub fn planned_moves(mut self, horizon: SimTime) -> Vec<(SimTime, UrlId)> {
        let mut out = vec![(self.start, self.current_url())];
        loop {
            let due = match &self.moves {
                MoveState::Fixed => break,
                MoveState::Rotating { next, .. } | MoveState::Concentrating { next, .. } => *next,
            };
            if due >= horizon || due >= self.stop {
                break;
            }
            self.advance_moves(due);
            out.push((due, self.current_url()));
        }
        out
    }

    fn advance_moves(&mut self, t: SimTime) {
        match &mut self.moves {
            MoveState::Fixed => {}
            MoveState::Rotating {
                url_base,
                url_space,
                period,
                next,
                rng,
                moves,
            } => {
                while t >= *next {
                    let mut pick = *url_base + rng.below(*url_space as u64) as u16;
                    // With more than one URL available, never "rotate"
                    // in place.
                    while *url_space > 1 && UrlId(pick) == self.demand.url {
                        pick = *url_base + rng.below(*url_space as u64) as u16;
                    }
                    self.demand.url = UrlId(pick);
                    *moves += 1;
                    *next += *period;
                }
            }
            MoveState::Concentrating {
                racks,
                url_base,
                target,
                period,
                next,
                rng,
                moves,
            } => {
                while t >= *next {
                    let mut pick = rng.below(*racks as u64) as usize;
                    // With more than one rack available, never re-aim in
                    // place.
                    while *racks > 1 && pick == *target {
                        pick = rng.below(*racks as u64) as usize;
                    }
                    *target = pick;
                    self.demand.url = Self::rack_url(*url_base, *racks, pick);
                    *moves += 1;
                    *next += *period;
                }
            }
        }
    }

    fn build(&mut self, arrival: SimTime) -> Request {
        // Deterministic round-robin over the botnet: every agent behaves
        // identically "like a normal user at the networking level".
        let bot = SourceId(self.source_base + self.bot_cursor % self.bots);
        self.bot_cursor = self.bot_cursor.wrapping_add(1);
        // Work jitter: ±20 % uniform (attack tools replay fixed queries).
        let work = self.demand.mean_work * self.rng.range_f64(0.8, 1.2);
        self.builder.build(
            self.demand.url,
            bot,
            arrival,
            work,
            self.demand.beta,
            self.demand.intensity,
            self.demand.gamma,
            true,
        )
    }

    /// Advance the arrival clock past the next envelope-shaped arrival.
    /// Returns `false` when the next arrival falls beyond the horizon.
    fn advance_arrival(&mut self, rate: f64) -> bool {
        if let Envelope::Constant = self.envelope {
            // Bit-identical to the legacy FloodSource clock.
            let gap = self.rng.exp(rate);
            self.clock += SimDuration::from_secs_f64(gap.max(1e-9));
            return self.clock < self.stop;
        }
        // Thin one unit-rate exponential across the piecewise-constant
        // rate segments: within a segment of factor f the residual `e`
        // is consumed at `rate · f` per second; sleep segments (f = 0)
        // cost nothing and the clock jumps over them.
        let window = self.stop.since(self.start).as_secs_f64();
        let mut e = self.pending_exp.take().unwrap_or_else(|| self.rng.exp(1.0));
        loop {
            if self.clock >= self.stop {
                // Remember the partially-consumed draw so a late horizon
                // extension could resume; mostly it keeps the accounting
                // exact: one draw per delivered arrival.
                self.pending_exp = Some(e);
                return false;
            }
            let elapsed = self.clock.since(self.start).as_secs_f64();
            let (factor, span) = self.envelope.segment(elapsed, window);
            if factor <= 0.0 {
                self.clock += SimDuration::from_secs_f64(span.max(1e-9));
                continue;
            }
            let lambda = rate * factor;
            let dt = e / lambda;
            if dt <= span {
                self.clock += SimDuration::from_secs_f64(dt.max(1e-9));
                return self.clock < self.stop;
            }
            e -= span * lambda;
            self.clock += SimDuration::from_secs_f64(span.max(1e-9));
        }
    }
}

impl TrafficSource for AttackVector {
    fn next_request(&mut self, now: SimTime) -> Option<Request> {
        if now >= self.stop {
            return None;
        }
        // Move the target on the generated arrival clock (simulated
        // time), not on how often the driver polls this source.
        let t = now.max(self.clock);
        self.advance_moves(t);
        match self.tool {
            AttackTool::HttpLoad { rate } => {
                if self.clock < now.max(self.start) {
                    self.clock = now.max(self.start);
                }
                if !self.advance_arrival(rate) {
                    return None;
                }
                Some(self.build(self.clock))
            }
            AttackTool::ApacheBench { concurrency } => {
                if self.outstanding >= concurrency {
                    return None; // dormant until a completion feeds back
                }
                self.outstanding += 1;
                let arrival = now.max(self.start);
                if arrival >= self.stop {
                    return None;
                }
                Some(self.build(arrival))
            }
        }
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn feedback(&mut self, _now: SimTime, event: SourceEvent) {
        match event {
            SourceEvent::Completed(_) => {
                if matches!(self.tool, AttackTool::ApacheBench { .. }) {
                    self.outstanding = self.outstanding.saturating_sub(1);
                }
            }
            SourceEvent::Blocked(_) => {
                self.blocked_seen += 1;
                if matches!(self.tool, AttackTool::ApacheBench { .. }) {
                    // A blocked request also frees an AB slot.
                    self.outstanding = self.outstanding.saturating_sub(1);
                }
            }
            SourceEvent::Rejected(_) => {
                // A 503 is not a detection; it only frees an AB slot.
                if matches!(self.tool, AttackTool::ApacheBench { .. }) {
                    self.outstanding = self.outstanding.saturating_sub(1);
                }
            }
        }
    }

    fn is_attacker(&self) -> bool {
        true
    }
}

/// A declarative attack-vector recipe: the four strategy axes plus the
/// victim, buildable any number of times (sweep cells mint fresh,
/// identical populations per call).
#[derive(Debug, Clone, PartialEq)]
pub struct AttackVectorSpec {
    /// The attack tool (open- or closed-loop).
    pub tool: AttackTool,
    /// The victim service kernel (work character and default URL).
    pub victim: ServiceKind,
    /// Temporal shape.
    pub envelope: Envelope,
    /// Source spreading.
    pub plan: SourcePlan,
    /// Per-request demand character.
    pub profile: ResourceProfile,
    /// URL movement.
    pub target: TargetPlan,
}

impl AttackVectorSpec {
    /// An open-loop flood on `victim` at `rate` req/s: constant
    /// envelope, single source, victim resources, fixed target.
    pub fn open_loop(victim: ServiceKind, rate: f64) -> Self {
        AttackVectorSpec {
            tool: AttackTool::HttpLoad { rate },
            victim,
            envelope: Envelope::Constant,
            plan: SourcePlan::Single,
            profile: ResourceProfile::Cpu,
            target: TargetPlan::Fixed,
        }
    }

    /// Set the envelope.
    pub fn envelope(mut self, envelope: Envelope) -> Self {
        self.envelope = envelope;
        self
    }

    /// Set the source plan.
    pub fn sources(mut self, plan: SourcePlan) -> Self {
        self.plan = plan;
        self
    }

    /// Set the resource profile.
    pub fn resources(mut self, profile: ResourceProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Set the target plan.
    pub fn target(mut self, target: TargetPlan) -> Self {
        self.target = target;
        self
    }

    /// A stable human-readable name composed from the axes, e.g.
    /// `burst-botnet-mem-http-load@Colla-Filt`.
    pub fn name(&self) -> String {
        let env = match self.envelope {
            Envelope::Constant => "",
            Envelope::OnOffBurst { .. } => "burst-",
            Envelope::LowAndSlow => "lowslow-",
        };
        let plan = match self.plan {
            SourcePlan::Single => "",
            SourcePlan::Botnet { .. } => "botnet-",
            SourcePlan::EvadingBotnet { .. } => "evader-",
        };
        let tgt = match self.target {
            TargetPlan::Fixed => "",
            TargetPlan::Rotating { .. } => "rotating-",
            TargetPlan::Concentrating { .. } => "concentrating-",
        };
        format!(
            "{env}{plan}{}{tgt}{}@{}",
            self.profile.tag(),
            tool_name(self.tool),
            self.victim.name()
        )
    }

    /// Materialize the vector over the id/address/seed placement the
    /// caller owns (see `ScenarioBuilder` for the automatic bookkeeping).
    pub fn build(
        &self,
        source_base: u32,
        id_base: u64,
        start: SimTime,
        stop: SimTime,
        seed: u64,
    ) -> AttackVector {
        let rate_like = match self.tool {
            AttackTool::HttpLoad { rate } => rate,
            AttackTool::ApacheBench { concurrency } => concurrency as f64,
        };
        let bots = self.plan.bots(rate_like, self.envelope);
        let v = AttackVector::against_service(
            self.tool,
            self.victim,
            source_base,
            bots,
            id_base,
            start,
            stop,
            seed,
        );
        let v = match self.target {
            TargetPlan::Fixed => v,
            TargetPlan::Rotating {
                url_base,
                url_space,
                period,
            } => v.with_rotation(url_base, url_space, period, seed),
            TargetPlan::Concentrating {
                racks,
                url_base,
                period,
            } => v.with_concentration(racks, url_base, period, seed),
        };
        v.with_envelope(self.envelope)
            .with_resources(self.profile)
            .with_label(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    fn count_arrivals(v: &mut AttackVector) -> u64 {
        let mut count = 0;
        let mut last = SimTime::ZERO;
        while let Some(r) = v.next_request(last) {
            last = r.arrival;
            count += 1;
        }
        count
    }

    #[test]
    fn constant_envelope_is_bit_identical_to_legacy_clock() {
        let mk = |env: Option<Envelope>| {
            let v = AttackVector::against_service(
                AttackTool::HttpLoad { rate: 200.0 },
                ServiceKind::CollaFilt,
                5000,
                20,
                1 << 40,
                s(0),
                s(60),
                1,
            );
            match env {
                Some(e) => v.with_envelope(e),
                None => v,
            }
        };
        let mut plain = mk(None);
        let mut explicit = mk(Some(Envelope::Constant));
        let mut last = SimTime::ZERO;
        loop {
            let (a, b) = (plain.next_request(last), explicit.next_request(last));
            assert_eq!(a, b);
            match a {
                Some(r) => last = r.arrival,
                None => break,
            }
        }
    }

    #[test]
    fn burst_envelope_conserves_volume() {
        let env = Envelope::OnOffBurst {
            period: SimDuration::from_secs(10),
            duty: 0.2,
        };
        // 120 s window = 12 full periods: expected volume is exact.
        assert!((env.expected_volume(100.0, SimDuration::from_secs(120)) - 12_000.0).abs() < 1e-6);
        let mut v = AttackVector::against_service(
            AttackTool::HttpLoad { rate: 100.0 },
            ServiceKind::CollaFilt,
            0,
            10,
            0,
            s(0),
            s(120),
            7,
        )
        .with_envelope(env);
        let count = count_arrivals(&mut v) as f64;
        // Poisson(12000): ±4σ ≈ ±438.
        assert!((count - 12_000.0).abs() < 450.0, "count={count}");
    }

    #[test]
    fn burst_arrivals_fall_only_in_on_windows() {
        let mut v = AttackVector::against_service(
            AttackTool::HttpLoad { rate: 50.0 },
            ServiceKind::KMeans,
            0,
            5,
            0,
            s(0),
            s(100),
            3,
        )
        .with_envelope(Envelope::OnOffBurst {
            period: SimDuration::from_secs(20),
            duty: 0.25,
        });
        let mut last = SimTime::ZERO;
        while let Some(r) = v.next_request(last) {
            let pos = r.arrival.as_secs_f64() % 20.0;
            assert!(pos <= 5.0 + 1e-6, "arrival at cycle position {pos}");
            last = r.arrival;
        }
    }

    #[test]
    fn lowslow_ramp_conserves_volume_and_backloads() {
        let mut v = AttackVector::against_service(
            AttackTool::HttpLoad { rate: 100.0 },
            ServiceKind::CollaFilt,
            0,
            10,
            0,
            s(0),
            s(120),
            11,
        )
        .with_envelope(Envelope::LowAndSlow);
        let mut first_half = 0u64;
        let mut second_half = 0u64;
        let mut last = SimTime::ZERO;
        while let Some(r) = v.next_request(last) {
            if r.arrival < s(60) {
                first_half += 1;
            } else {
                second_half += 1;
            }
            last = r.arrival;
        }
        let total = (first_half + second_half) as f64;
        assert!((total - 12_000.0).abs() < 450.0, "total={total}");
        // Linear 0→2× ramp puts 25 % of the volume in the first half.
        let share = first_half as f64 / total;
        assert!((share - 0.25).abs() < 0.03, "first-half share {share}");
    }

    #[test]
    fn evading_botnet_peaks_below_threshold() {
        let spec = AttackVectorSpec::open_loop(ServiceKind::CollaFilt, 600.0)
            .envelope(Envelope::OnOffBurst {
                period: SimDuration::from_secs(10),
                duty: 0.5,
            })
            .sources(SourcePlan::EvadingBotnet {
                threshold_rps: 150.0,
            });
        let v = spec.build(0, 0, s(0), s(60), 1);
        // Peak 1200 rps ⇒ 9 bots; per-bot peak 133.3 < 150 strictly.
        assert_eq!(v.bots(), 9);
        let peak = v.per_bot_peak_rate().unwrap();
        assert!(peak < 150.0, "peak per bot {peak}");
    }

    #[test]
    fn spec_build_is_deterministic_and_named() {
        let spec = AttackVectorSpec::open_loop(ServiceKind::CollaFilt, 200.0)
            .envelope(Envelope::LowAndSlow)
            .resources(ResourceProfile::MemoryBound)
            .target(TargetPlan::Rotating {
                url_base: 700,
                url_space: 8,
                period: SimDuration::from_secs(5),
            });
        assert_eq!(spec.name(), "lowslow-mem-rotating-http-load@Colla-Filt");
        let collect = |mut v: AttackVector| {
            let mut out = Vec::new();
            let mut last = SimTime::ZERO;
            while let Some(r) = v.next_request(last) {
                last = r.arrival;
                out.push((r.id, r.url, r.arrival));
            }
            out
        };
        let a = collect(spec.build(100, 0, s(0), s(30), 5));
        let b = collect(spec.build(100, 0, s(0), s(30), 5));
        assert_eq!(a, b);
        let c = collect(spec.build(100, 0, s(0), s(30), 6));
        assert_ne!(a, c);
    }

    #[test]
    fn memory_profile_rewrites_demand() {
        let spec = AttackVectorSpec::open_loop(ServiceKind::CollaFilt, 100.0)
            .resources(ResourceProfile::MemoryBound);
        let mut v = spec.build(0, 0, s(0), s(10), 2);
        let r = v.next_request(s(0)).unwrap();
        assert!((r.beta - 0.15).abs() < 1e-12);
        assert!((r.intensity - 1.0).abs() < 1e-12);
        assert!((r.gamma - 0.2).abs() < 1e-12);
    }

    #[test]
    fn planned_moves_match_the_run() {
        let spec = AttackVectorSpec::open_loop(ServiceKind::CollaFilt, 300.0).target(
            TargetPlan::Rotating {
                url_base: 640,
                url_space: 6,
                period: SimDuration::from_secs(7),
            },
        );
        let plan = spec.build(0, 0, s(0), s(60), 9).planned_moves(s(60));
        // Initial target + 8 rotations (t = 7, 14, …, 56).
        assert_eq!(plan.len(), 9);
        // Replay the actual run and check every arrival's URL agrees
        // with the plan in force at the poll instant (moves take effect
        // at the poll that generates the arrival, matching the legacy
        // rotation semantics: the switch lags the drawn arrival by at
        // most one request).
        let mut v = spec.build(0, 0, s(0), s(60), 9);
        let mut last = SimTime::ZERO;
        while let Some(r) = v.next_request(last) {
            let planned = plan
                .iter()
                .rev()
                .find(|(at, _)| *at <= last)
                .map(|(_, u)| *u)
                .unwrap();
            assert_eq!(r.url, planned, "polled at {last:?}");
            last = r.arrival;
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 64,
            ..proptest::prelude::ProptestConfig::default()
        })]

        /// Volume conservation for every envelope, any window: the
        /// deterministic integral of the piecewise-constant rate factor
        /// over the attack window (no arrival noise) equals
        /// `expected_volume`, and whenever the window closes an integer
        /// number of burst periods (always, for the other shapes) it
        /// equals the constant-rate volume — bursty arrivals, same
        /// totals.
        #[test]
        fn prop_envelopes_conserve_volume(
            duty in 0.05f64..1.0,
            period_s in 1u64..30,
            rate in 20.0f64..300.0,
            window_s in 1u64..180,
            env_ix in 0usize..3,
        ) {
            use proptest::prelude::prop_assert;
            let env = match env_ix {
                0 => Envelope::Constant,
                1 => Envelope::OnOffBurst {
                    period: SimDuration::from_secs(period_s),
                    duty,
                },
                _ => Envelope::LowAndSlow,
            };
            let w = window_s as f64;
            let mut t = 0.0;
            let mut volume = 0.0;
            while t < w - 1e-12 {
                let (factor, span) = env.segment(t, w);
                let span = span.min(w - t).max(1e-12);
                volume += factor * span;
                t += span;
            }
            let expected = env.expected_volume(rate, SimDuration::from_secs(window_s));
            prop_assert!(
                (volume * rate - expected).abs() < 1e-6 * expected.max(1.0),
                "integrated {} vs expected {}", volume * rate, expected
            );
            let whole_periods = match env {
                Envelope::OnOffBurst { .. } => window_s % period_s == 0,
                _ => true,
            };
            if whole_periods {
                prop_assert!(
                    (volume * rate - rate * w).abs() < 1e-6 * rate * w,
                    "volume {} not conserved vs constant {}", volume * rate, rate * w
                );
            }
        }
    }

    #[test]
    fn envelope_validation_rejects_bad_duty() {
        let r = std::panic::catch_unwind(|| {
            AttackVector::against_service(
                AttackTool::HttpLoad { rate: 10.0 },
                ServiceKind::KMeans,
                0,
                1,
                0,
                s(0),
                s(10),
                1,
            )
            .with_envelope(Envelope::OnOffBurst {
                period: SimDuration::from_secs(10),
                duty: 0.0,
            })
        });
        assert!(r.is_err());
    }
}
