//! Slot-ordered fan-out over a set of [`TrafficSource`]s.
//!
//! The single-threaded cluster engine drives each source through its own
//! `Pull` events on the global event queue. The sharded engine instead
//! drains arrivals for a whole control slot up front (phase A of the
//! slot cycle) before handing them to the dataplane shards, so it needs
//! the same pull/feedback protocol — one outstanding request per source,
//! re-armed by feedback — expressed as an iterator-style merge.
//!
//! [`MergedSources`] peeks at most one pending request per source and
//! yields arrivals in global time order (ties broken by source index),
//! clamped to never run backwards. A source that returns `None` goes
//! dormant until feedback wakes it, exactly like the `pending_pull`
//! guard in the event-driven engine.

use crate::source::{SourceEvent, TrafficSource};
use netsim::request::Request;
use simcore::time::SimTime;

/// A k-way merge over traffic sources yielding arrivals in time order.
pub struct MergedSources {
    sources: Vec<Box<dyn TrafficSource>>,
    /// One peeked `(delivery_time, request)` per source; `Some` means a
    /// pull is outstanding (mirrors the engine's `pending_pull` flag).
    peeked: Vec<Option<(SimTime, Request)>>,
    /// When to issue the next pull for a source with no peeked request.
    /// `None` means dormant: the source returned `None` and only
    /// feedback can re-arm it.
    wake: Vec<Option<SimTime>>,
}

impl MergedSources {
    /// Wrap `sources`; every source is armed for a pull at time zero.
    pub fn new(sources: Vec<Box<dyn TrafficSource>>) -> Self {
        let n = sources.len();
        MergedSources {
            sources,
            peeked: (0..n).map(|_| None).collect(),
            wake: vec![Some(SimTime::ZERO); n],
        }
    }

    /// Number of wrapped sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True when no sources were supplied.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Execute any armed pulls, filling `peeked` where possible.
    fn fill(&mut self) {
        for i in 0..self.sources.len() {
            if self.peeked[i].is_some() {
                continue;
            }
            let Some(at) = self.wake[i] else { continue };
            self.wake[i] = None;
            // Delivery never runs backwards: a request generated in
            // the past is delivered "now" (the event-driven engine
            // schedules `Arrive` at `req.arrival.max(now)`). A `None`
            // source stays dormant until feedback re-arms it.
            if let Some(req) = self.sources[i].next_request(at) {
                self.peeked[i] = Some((req.arrival.max(at), req));
            }
        }
    }

    /// The next arrival with delivery time `<= limit`, or `None` when
    /// every source is beyond the limit, dormant, or exhausted.
    ///
    /// Consuming an arrival re-arms its source at the delivery time, so
    /// a fast source can yield many arrivals within one slot.
    pub fn next_arrival_up_to(&mut self, limit: SimTime) -> Option<(usize, SimTime, Request)> {
        self.fill();
        let mut best: Option<(usize, SimTime)> = None;
        for (i, slot) in self.peeked.iter().enumerate() {
            if let Some((t, _)) = slot {
                if *t <= limit && best.is_none_or(|(_, bt)| *t < bt) {
                    best = Some((i, *t));
                }
            }
        }
        let (i, t) = best?;
        let (_, req) = self.peeked[i].take().expect("peeked arrival vanished");
        self.wake[i] = Some(t);
        Some((i, t, req))
    }

    /// Deliver perimeter/completion feedback to source `i` at `now`,
    /// waking it if it was dormant.
    pub fn feedback(&mut self, now: SimTime, i: usize, event: SourceEvent) {
        self.sources[i].feedback(now, event);
        if self.peeked[i].is_none() && self.wake[i].is_none() {
            self.wake[i] = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::request::{RequestBuilder, SourceId, UrlId};
    use simcore::time::SimDuration;

    /// Emits `count` requests spaced `gap` apart starting at `start`.
    struct Ticker {
        next: SimTime,
        gap: SimDuration,
        left: usize,
        src: SourceId,
        wait_feedback: bool,
        waiting: bool,
    }

    impl TrafficSource for Ticker {
        fn next_request(&mut self, now: SimTime) -> Option<Request> {
            if self.left == 0 || self.waiting {
                return None;
            }
            self.left -= 1;
            if self.wait_feedback {
                self.waiting = true;
            }
            let at = self.next.max(now);
            self.next = at + self.gap;
            Some(
                RequestBuilder::new().build(UrlId(0), self.src, at, 1.0, 0.5, 0.5, 0.5, false),
            )
        }

        fn label(&self) -> &str {
            "ticker"
        }

        fn feedback(&mut self, _now: SimTime, _event: SourceEvent) {
            self.waiting = false;
        }
    }

    fn ticker(start: u64, gap: u64, count: usize, src: u32) -> Box<dyn TrafficSource> {
        Box::new(Ticker {
            next: SimTime::from_secs(start),
            gap: SimDuration::from_secs(gap),
            left: count,
            src: SourceId(src),
            wait_feedback: false,
            waiting: false,
        })
    }

    #[test]
    fn merges_in_time_order_with_index_ties() {
        let mut m = MergedSources::new(vec![
            ticker(2, 4, 3, 0), // 2, 6, 10
            ticker(0, 3, 3, 1), // 0, 3, 6
        ]);
        assert_eq!(m.len(), 2);
        let mut got = Vec::new();
        while let Some((i, t, _)) = m.next_arrival_up_to(SimTime::from_secs(7)) {
            got.push((t.as_secs(), i));
        }
        // Tie at t=6 resolves to the lower source index.
        assert_eq!(got, vec![(0, 1), (2, 0), (3, 1), (6, 0), (6, 1)]);
        // The rest arrive once the limit moves.
        let (i, t, _) = m.next_arrival_up_to(SimTime::from_secs(60)).unwrap();
        assert_eq!((t.as_secs(), i), (10, 0));
        assert!(m.next_arrival_up_to(SimTime::from_secs(60)).is_none());
    }

    #[test]
    fn dormant_source_wakes_on_feedback() {
        let mut m = MergedSources::new(vec![Box::new(Ticker {
            next: SimTime::ZERO,
            gap: SimDuration::from_secs(1),
            left: 2,
            src: SourceId(9),
            wait_feedback: true,
            waiting: false,
        })]);
        let (_, t0, req) = m.next_arrival_up_to(SimTime::from_secs(100)).unwrap();
        assert_eq!(t0, SimTime::ZERO);
        // Closed loop: no second arrival until feedback.
        assert!(m.next_arrival_up_to(SimTime::from_secs(100)).is_none());
        m.feedback(
            SimTime::from_secs(5),
            0,
            SourceEvent::Completed(req.source),
        );
        let (_, t1, _) = m.next_arrival_up_to(SimTime::from_secs(100)).unwrap();
        assert!(t1 >= SimTime::from_secs(5), "re-pull happens at wake time");
    }
}
