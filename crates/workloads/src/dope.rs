//! The DOPE attack algorithm (Figure 12).
//!
//! "The adversary can first select partial high-power request types
//! through numerous offline analysis ... After that, it can launch DOPE
//! attacks with selective traffic types. [The algorithm] gradually
//! increases the request number to the bottom limit of the deployed
//! defense systems. During the process, it repeatedly adjusts its request
//! number until an effective DOPE without being detected by network
//! protection approaches."
//!
//! Concretely: multiplicative-increase probing of the aggregate rate,
//! spread over a botnet so each agent stays inconspicuous; on any
//! perimeter block, back off below the last safe rate, rotate the burned
//! agents, and hold — converged inside the Fig 11 operating region
//! (enough requests to violate the power budget, few enough per source to
//! stay under the DoS threshold).

use crate::service::ServiceKind;
use crate::source::{SourceEvent, TrafficSource};
use netsim::request::{Request, RequestBuilder, SourceId};
use simcore::rng::SimRng;
use simcore::{SimDuration, SimTime};

/// Attack phase for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DopePhase {
    /// Growing the rate each adjustment period.
    Probing,
    /// Detected at least once; holding below the discovered threshold.
    Converged,
}

/// DOPE attacker configuration.
#[derive(Debug, Clone)]
pub struct DopeConfig {
    /// Victim service (pick with [`DopeAttacker::offline_rank`]).
    pub victim: ServiceKind,
    /// Initial aggregate rate, requests/s.
    pub initial_rate: f64,
    /// Multiplicative growth per adjustment while undetected.
    pub growth: f64,
    /// Multiplicative backoff applied to the last safe rate on detection.
    pub backoff: f64,
    /// How often the attacker re-evaluates.
    pub adjust_period: SimDuration,
    /// Botnet size (concurrent agents).
    pub bots: u32,
    /// Upper bound on the aggregate rate (attacker capacity).
    pub max_rate: f64,
}

impl Default for DopeConfig {
    fn default() -> Self {
        DopeConfig {
            victim: ServiceKind::CollaFilt,
            initial_rate: 20.0,
            growth: 1.4,
            backoff: 0.8,
            adjust_period: SimDuration::from_secs(10),
            bots: 40,
            max_rate: 5_000.0,
        }
    }
}

impl DopeConfig {
    /// Run the offline-profiling step and target the top-ranked kernel —
    /// the paper's full attack recipe in one call.
    pub fn auto(core_ghz: f64, headroom_w: f64) -> Self {
        let victim = DopeAttacker::offline_rank(core_ghz, headroom_w)[0].0;
        DopeConfig {
            victim,
            ..DopeConfig::default()
        }
    }
}

/// One entry of the attack's self-recorded rate history (Fig 12 trace).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateAdjustment {
    /// When the adjustment happened.
    pub at: SimTime,
    /// Aggregate rate after the adjustment.
    pub rate: f64,
    /// Whether the period leading here saw a perimeter block.
    pub detected: bool,
}

/// The adaptive DOPE attacker.
pub struct DopeAttacker {
    config: DopeConfig,
    rate: f64,
    last_safe_rate: f64,
    phase: DopePhase,
    /// Blocks observed since the last adjustment.
    blocks_since_adjust: u64,
    next_adjust: SimTime,
    /// Current botnet generation (rotated when agents are burned).
    generation: u32,
    source_base: u32,
    builder: RequestBuilder,
    rng: SimRng,
    clock: SimTime,
    start: SimTime,
    stop: SimTime,
    bot_cursor: u32,
    history: Vec<RateAdjustment>,
    label: String,
}

impl DopeAttacker {
    /// Build an attacker active over `[start, stop)`.
    pub fn new(
        config: DopeConfig,
        source_base: u32,
        id_base: u64,
        start: SimTime,
        stop: SimTime,
        seed: u64,
    ) -> Self {
        assert!(config.initial_rate > 0.0 && config.growth > 1.0);
        assert!(config.backoff > 0.0 && config.backoff < 1.0);
        assert!(config.bots >= 1 && config.max_rate >= config.initial_rate);
        let label = format!("dope@{}", config.victim.name());
        DopeAttacker {
            rate: config.initial_rate,
            last_safe_rate: config.initial_rate,
            phase: DopePhase::Probing,
            blocks_since_adjust: 0,
            next_adjust: start + config.adjust_period,
            generation: 0,
            source_base,
            builder: RequestBuilder::starting_at(id_base),
            rng: SimRng::new(seed),
            clock: start,
            start,
            stop,
            bot_cursor: 0,
            history: Vec::new(),
            config,
            label,
        }
    }

    /// Offline profiling step: rank kernels by estimated per-request
    /// energy on the victim node (highest first) — the list the adversary
    /// builds "through numerous offline analysis".
    pub fn offline_rank(core_ghz: f64, headroom_w: f64) -> Vec<(ServiceKind, f64)> {
        let mut ranked: Vec<(ServiceKind, f64)> = ServiceKind::ALL
            .iter()
            .map(|&k| (k, k.profile().energy_estimate_j(core_ghz, headroom_w)))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        ranked
    }

    /// Current aggregate rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Rate each individual agent shows the firewall.
    pub fn per_bot_rate(&self) -> f64 {
        self.rate / self.config.bots as f64
    }

    /// Current phase.
    pub fn phase(&self) -> DopePhase {
        self.phase
    }

    /// The adjustment history (Fig 12's rate-vs-time staircase).
    pub fn history(&self) -> &[RateAdjustment] {
        &self.history
    }

    fn current_sources_start(&self) -> u32 {
        self.source_base + self.generation.wrapping_mul(self.config.bots)
    }

    fn adjust(&mut self, at: SimTime) {
        let detected = self.blocks_since_adjust > 0;
        if detected {
            // Burned: rotate agents, drop below the last safe rate, hold.
            self.generation = self.generation.wrapping_add(1);
            self.rate = (self.last_safe_rate * self.config.backoff)
                .max(self.config.initial_rate);
            self.phase = DopePhase::Converged;
        } else {
            self.last_safe_rate = self.rate;
            if self.phase == DopePhase::Probing {
                self.rate = (self.rate * self.config.growth).min(self.config.max_rate);
            }
        }
        self.blocks_since_adjust = 0;
        self.history.push(RateAdjustment {
            at,
            rate: self.rate,
            detected,
        });
    }
}

impl TrafficSource for DopeAttacker {
    fn next_request(&mut self, now: SimTime) -> Option<Request> {
        if now >= self.stop {
            return None;
        }
        if self.clock < now.max(self.start) {
            self.clock = now.max(self.start);
        }
        // Piecewise-constant Poisson: never let a draw cross an
        // adjustment boundary with the old rate.
        loop {
            // Apply any adjustments due at or before the current clock.
            while self.clock >= self.next_adjust {
                let at = self.next_adjust;
                self.adjust(at);
                self.next_adjust = at + self.config.adjust_period;
            }
            let gap = self.rng.exp(self.rate);
            let candidate = self.clock + SimDuration::from_secs_f64(gap.max(1e-9));
            if candidate >= self.next_adjust {
                // Restart the draw from the boundary with the new rate
                // (memorylessness makes this exact).
                self.clock = self.next_adjust;
                continue;
            }
            self.clock = candidate;
            if self.clock >= self.stop {
                return None;
            }
            break;
        }
        let profile = self.config.victim.profile();
        let bot = SourceId(self.current_sources_start() + self.bot_cursor % self.config.bots);
        self.bot_cursor = self.bot_cursor.wrapping_add(1);
        let work = profile.mean_work_gcycles * self.rng.range_f64(0.85, 1.15);
        Some(self.builder.build(
            self.config.victim.url(),
            bot,
            self.clock,
            work,
            profile.beta,
            profile.intensity,
            profile.gamma,
            true,
        ))
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn feedback(&mut self, _now: SimTime, event: SourceEvent) {
        if let SourceEvent::Blocked(_) = event {
            self.blocks_since_adjust += 1;
        }
    }

    fn is_attacker(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    fn attacker(seed: u64) -> DopeAttacker {
        DopeAttacker::new(DopeConfig::default(), 50_000, 1 << 41, s(0), s(600), seed)
    }

    #[test]
    fn offline_rank_prefers_heavy_kernels() {
        let ranked = DopeAttacker::offline_rank(2.4, 60.0);
        assert_eq!(ranked.len(), 4);
        // K-means tops the energy-per-request ranking (Fig 5-b); the
        // lightweight Text-Cont is last.
        assert_eq!(ranked[0].0, ServiceKind::KMeans);
        assert_eq!(ranked[3].0, ServiceKind::TextCont);
        // Strictly decreasing energies.
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn auto_config_targets_top_ranked_kernel() {
        let cfg = DopeConfig::auto(2.4, 60.0);
        assert_eq!(cfg.victim, ServiceKind::KMeans);
    }

    #[test]
    fn rate_grows_while_undetected() {
        let mut a = attacker(1);
        // Pull requests through 60 s of probing with no blocks.
        let mut last = SimTime::ZERO;
        while let Some(r) = a.next_request(last) {
            if r.arrival > s(60) {
                break;
            }
            last = r.arrival;
        }
        // 5 adjustments × growth 1.4 ≈ 5.4× the initial rate.
        assert!(a.rate() > 20.0 * 4.0, "rate={}", a.rate());
        assert_eq!(a.phase(), DopePhase::Probing);
        assert!(a.history().iter().all(|h| !h.detected));
    }

    #[test]
    fn detection_triggers_backoff_and_rotation() {
        let mut a = attacker(2);
        let mut last = SimTime::ZERO;
        // Probe for ~35 s.
        while let Some(r) = a.next_request(last) {
            if r.arrival > s(35) {
                break;
            }
            last = r.arrival;
        }
        let probed_rate = a.rate();
        let gen_before = a.current_sources_start();
        a.feedback(s(36), SourceEvent::Blocked(SourceId(50_000)));
        // Pull past the next adjustment boundary (t = 40 s).
        while let Some(r) = a.next_request(last) {
            if r.arrival > s(45) {
                break;
            }
            last = r.arrival;
        }
        assert_eq!(a.phase(), DopePhase::Converged);
        assert!(a.rate() < probed_rate, "{} !< {probed_rate}", a.rate());
        assert!(a.rate() <= a.last_safe_rate);
        // Botnet rotated to fresh addresses.
        assert!(a.current_sources_start() > gen_before);
        assert!(a.history().iter().any(|h| h.detected));
    }

    #[test]
    fn converged_rate_holds_steady() {
        let mut a = attacker(3);
        a.feedback(s(5), SourceEvent::Blocked(SourceId(50_000)));
        let mut last = SimTime::ZERO;
        while let Some(r) = a.next_request(last) {
            if r.arrival > s(100) {
                break;
            }
            last = r.arrival;
        }
        let converged = a.rate();
        while let Some(r) = a.next_request(last) {
            if r.arrival > s(200) {
                break;
            }
            last = r.arrival;
        }
        assert_eq!(a.rate(), converged, "converged rate drifted");
    }

    #[test]
    fn rate_capped_at_max() {
        let cfg = DopeConfig {
            max_rate: 100.0,
            ..DopeConfig::default()
        };
        let mut a = DopeAttacker::new(cfg, 0, 0, s(0), s(3600), 4);
        let mut last = SimTime::ZERO;
        while let Some(r) = a.next_request(last) {
            if r.arrival > s(600) {
                break;
            }
            last = r.arrival;
        }
        assert!(a.rate() <= 100.0);
    }

    #[test]
    fn requests_target_victim_and_are_labeled() {
        let mut a = attacker(5);
        let r = a.next_request(s(0)).unwrap();
        assert_eq!(r.url, ServiceKind::CollaFilt.url());
        assert!(r.is_attack);
        assert!(a.is_attacker());
    }

    #[test]
    fn empirical_rate_matches_configured() {
        let cfg = DopeConfig {
            initial_rate: 100.0,
            growth: 1.0001, // effectively flat
            ..DopeConfig::default()
        };
        let mut a = DopeAttacker::new(cfg, 0, 0, s(0), s(60), 6);
        let mut count = 0;
        let mut last = SimTime::ZERO;
        while let Some(r) = a.next_request(last) {
            last = r.arrival;
            count += 1;
        }
        assert!((5_400..6_600).contains(&count), "count={count}");
    }

    #[test]
    fn per_bot_rate_stays_low() {
        // 40 bots at 2000 rps aggregate = 50 rps/bot — far under a
        // 150 rps firewall threshold. The arithmetic the attack rests on.
        let cfg = DopeConfig {
            initial_rate: 2000.0,
            ..DopeConfig::default()
        };
        let a = DopeAttacker::new(cfg, 0, 0, s(0), s(10), 7);
        assert!((a.per_bot_rate() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = attacker(9);
        let mut b = attacker(9);
        for _ in 0..200 {
            assert_eq!(a.next_request(s(0)), b.next_request(s(0)));
        }
    }
}
