//! **Learn** — online power attribution (the offline-profiling half of
//! the paper's PDF, Section 5.1, made online).
//!
//! Feeds each live node's (power, utilization, in-flight URL mix)
//! observation to the EW-RLS attribution engine once per control slot,
//! and republishes the suspect classes into the NLB's adaptive
//! forwarding policy whenever the engine's list changes. The forwarding
//! hot path never pays for learning — it is amortized here, into the
//! control slot.

use super::plane::NodeObs;
use super::TelemetryFrame;
use crate::node::ComputeNode;
use netsim::nlb::{ForwardingPolicy, Nlb};
use netsim::request::UrlId;
use profiler::{MixTracker, PowerProfiler, ProfilerReport};

/// Normalize a throttled node's reading to its nominal-equivalent by
/// inverting the hardware-calibrated power model: P = idle(p) +
/// u^e·I·s(p,γ)·H is linear in the mix intensity I at *every* P-state,
/// so learning continues while DVFS throttles — which is exactly when
/// attribution matters most. Only the per-URL intensities stay unknown;
/// the server power curve is the operator's.
///
/// Shared by the in-sim learning pass and the trace recorder (the
/// recorded `learn_power_w` must be bit-identical to what the sim's own
/// pass computed).
pub(crate) fn normalized_power(node: &ComputeNode, power_w: Option<f64>) -> Option<f64> {
    let (_, _, gamma) = node.load_character();
    let state = node.effective_pstate();
    let model = node.model();
    if state == node.table().max_state() {
        power_w
    } else {
        let s = model.dvfs_factor(state, gamma);
        power_w
            .filter(|_| s > 1e-6)
            .map(|w| model.idle_w + (w - model.idle_power(state)) / s)
    }
}

/// Online-attribution stage: the RLS engine plus the per-node in-flight
/// mix it learns from.
pub struct LearnStage {
    /// The attribution engine (EW-RLS over URL intensities).
    pub engine: PowerProfiler,
    /// Per-node in-flight URL mix, maintained by the dataplane.
    pub mix: MixTracker,
}

impl LearnStage {
    /// One learning pass over the live nodes, using the same (possibly
    /// degraded) readings the control plane saw — sensing twice would
    /// consume fault-layer randomness and break replay identity.
    pub(crate) fn run(
        &mut self,
        nodes: &[ComputeNode],
        node_dead: &[bool],
        frame: &TelemetryFrame,
        nlb: &mut Nlb,
    ) {
        for (i, node) in nodes.iter().enumerate() {
            if node_dead[i] {
                continue;
            }
            let power_w = match &frame.readings {
                Some(readings) => readings[i],
                None => Some(node.power_w()),
            };
            let power_w = normalized_power(node, power_w);
            let (utilization, _, _) = node.load_character();
            let mix = self.mix.mix_of(i);
            self.engine.observe_node(power_w, utilization, true, &mix);
        }
        if self.engine.end_tick() {
            if let ForwardingPolicy::AdaptiveSplit { classes, .. } = nlb.policy_mut() {
                classes.clone_from(self.engine.list().classes());
            }
        }
    }

    /// The same learning pass driven from recorded [`NodeObs`]
    /// observations instead of live simulator nodes: the sensor side
    /// already normalized the reading and snapshotted the mix, so the
    /// engine sees bit-identical inputs to the in-sim pass. There is no
    /// NLB on the live side; callers that want the updated suspect list
    /// read it off `engine.list()` when this returns true.
    pub fn run_observed(&mut self, obs: &[NodeObs], node_dead: &[bool]) -> bool {
        let mut mix_scratch: Vec<(UrlId, u32)> = Vec::new();
        for (i, o) in obs.iter().enumerate() {
            if node_dead[i] {
                continue;
            }
            mix_scratch.clear();
            mix_scratch.extend(o.mix.iter().map(|&(u, c)| (UrlId(u), c)));
            self.engine.observe_node(o.learn_power_w, o.utilization, true, &mix_scratch);
        }
        self.engine.end_tick()
    }

    /// Dataplane hook: a request was dispatched to `node`.
    pub fn on_dispatch(&mut self, node: usize, url: UrlId) {
        self.mix.add(node, url);
    }

    /// Dataplane hook: a request finished on `node`.
    pub fn on_complete(&mut self, node: usize, url: UrlId) {
        self.mix.remove(node, url);
    }

    /// A node lost its queue (crash, reboot, outage): its in-flight mix
    /// is gone.
    pub fn forget_node(&mut self, node: usize) {
        self.mix.clear_node(node);
    }

    /// The engine's final report.
    pub fn report(&self) -> ProfilerReport {
        self.engine.report()
    }
}
