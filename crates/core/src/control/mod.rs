//! The staged power control plane.
//!
//! The paper's RPM is explicitly a pipeline — power monitor → health
//! checker → battery transition → DPM throttling (Fig. 12 /
//! Algorithm 1). This module makes that decomposition structural: each
//! box is a stage struct with typed dataflow between them, and
//! [`ClusterSim`](crate::cluster::ClusterSim) drives them once per
//! control slot:
//!
//! ```text
//! Sense ──TelemetryFrame──► Filter ──ClusterView──► Decide ──Vec<Action>──► Act
//!                              │                       ▲
//!                              └──────► Learn ─────────┘ (suspect classes → NLB)
//! Account: exact energy / thermal / breaker integration, bracketing
//!          the slot (it closes the previous slot's interval first).
//! ```
//!
//! * [`sense::SenseStage`] — read per-node power, through the fault
//!   layer when one is configured (the paper's power monitor inputs).
//! * [`filter::FilterStage`] — staleness-aware telemetry estimation +
//!   coverage watchdog + the [`PowerMonitor`] itself (the paper's power
//!   monitor + health checker).
//! * [`learn::LearnStage`] — the online power-attribution profiler and
//!   its hot-swap of suspect classes into the NLB (the offline-profiling
//!   half of PDF, made online).
//! * [`decide::DecideStage`] — the [`PowerScheme`] control call (RPM
//!   Algorithm 1 / the baselines of Table 2).
//! * [`act::ActStage`] — DVFS / RAPL / battery actuation with read-back
//!   verification (the paper's DPM throttling + battery transition).
//! * [`account::AccountStage`] — exact energy metering, thermal RC
//!   integration, and the breaker model (the oversubscription physics of
//!   Figs. 1 and 19).
//!
//! Adding a scheme, a telemetry filter, or an actuation path is now a
//! single-stage change instead of an edit to one interleaved function.

pub mod account;
pub mod act;
pub mod decide;
pub mod filter;
pub mod learn;
pub mod plane;
pub mod sense;

use crate::config::ClusterConfig;
use crate::health::{ActuatorVerify, TelemetryHealth, Watchdog};
use crate::scheme::{Action, PowerScheme};
use powercap::budget::PowerBudget;
use powercap::capper::{ServerLoad, UniformCapper};
use powercap::monitor::PowerCondition;
use powercap::monitor::PowerMonitor;
use powercap::pdu::PowerHierarchy;
use powercap::server_power::ServerPowerModel;
use powercap::thermal::ThermalNode;
use profiler::{MixTracker, PowerProfiler};
use simcore::faults::{ActuationFault, FaultConfig, FaultCounts, FaultPlan, ShardFaultPlan};
use simcore::SimTime;

/// What [`sense::SenseStage`] produces each slot: the ground-truth
/// aggregate plus, when a fault layer is active, the per-node readings
/// as the sensors actually reported them (`None` = sensor produced
/// nothing this slot).
#[derive(Debug, Clone)]
pub struct TelemetryFrame {
    /// True aggregate load power this instant, watts. This is what the
    /// monitor sees directly when no fault layer distorts sensing.
    pub true_power_w: f64,
    /// Per-node sensed readings, present only under fault injection.
    /// `None` as a whole keeps the fault-free path allocation-free and
    /// byte-identical to a build without the fault layer.
    pub readings: Option<Vec<Option<f64>>>,
}

/// What [`filter::FilterStage`] produces: the trusted view of the
/// cluster that [`decide::DecideStage`] is allowed to act on.
#[derive(Debug, Clone, Copy)]
pub struct ClusterView {
    /// The monitor's verdict on the filtered power estimate.
    pub condition: PowerCondition,
    /// The power estimate the monitor judged, watts.
    pub observed_w: f64,
    /// Fraction of nodes with a fresh sensor reading this slot.
    pub coverage: f64,
    /// True when coverage fell below the watchdog floor: the scheme's
    /// differentiated plan must be replaced by the uniform safe cap.
    pub watchdog_engaged: bool,
}

/// Battery power flows as granted by the last actuation, watts.
///
/// Split out of the simulator so the stages that read them (Decide,
/// Account) and the ones that write them (Act, the battery-bound event)
/// share one typed value instead of two loose floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatteryFlows {
    /// Discharge into the load.
    pub discharge_w: f64,
    /// Charge drawn from the utility.
    pub charge_w: f64,
}

/// The engine's fault schedule: one global plan under the legacy
/// event-driven engine, or one plan per shard under the sharded engine
/// (each shard's randomness is an independent stream, so draw order
/// between shards is irrelevant and reports stay byte-identical at any
/// shard count). All methods take **global** node indices; the sharded
/// variant routes to the owning shard's plan by range.
// One instance per simulation and never stored in a collection, so the
// size gap between the two variants buys nothing by boxing.
#[allow(clippy::large_enum_variant)]
pub(crate) enum FaultPlanSet {
    /// The legacy single-stream plan (event-order draws).
    Global(FaultPlan),
    /// Per-shard plans over contiguous node ranges, in shard order.
    Sharded(Vec<ShardFaultPlan>),
}

impl FaultPlanSet {
    fn for_node(&mut self, node: usize) -> &mut ShardFaultPlan {
        match self {
            FaultPlanSet::Global(_) => unreachable!("checked by caller"),
            FaultPlanSet::Sharded(plans) => plans
                .iter_mut()
                .find(|p| p.covers(node))
                .expect("every node belongs to exactly one shard plan"),
        }
    }

    /// Sensor reading for `node` whose true draw is `true_w`.
    pub(crate) fn sense(&mut self, now: SimTime, node: usize, true_w: f64) -> Option<f64> {
        match self {
            FaultPlanSet::Global(p) => p.sense(now, node, true_w),
            FaultPlanSet::Sharded(_) => self.for_node(node).sense(now, node, true_w),
        }
    }

    /// Actuation outcome for a command issued to `node`.
    pub(crate) fn actuate(&mut self, now: SimTime, node: usize) -> ActuationFault {
        match self {
            FaultPlanSet::Global(p) => p.actuate(now, node),
            FaultPlanSet::Sharded(_) => self.for_node(node).actuate(now, node),
        }
    }

    /// Whether a crash is due on `node` right now.
    pub(crate) fn crash_due(&mut self, now: SimTime, node: usize) -> bool {
        match self {
            FaultPlanSet::Global(p) => p.crash_due(now, node),
            FaultPlanSet::Sharded(_) => self.for_node(node).crash_due(now, node),
        }
    }

    /// Record a completed reboot of `node` (the global plan keeps one
    /// aggregate counter and ignores which node it was).
    pub(crate) fn record_reboot(&mut self, node: usize) {
        match self {
            FaultPlanSet::Global(p) => p.record_reboot(),
            FaultPlanSet::Sharded(_) => self.for_node(node).record_reboot(),
        }
    }

    /// Whether the battery charger is failed at `now`.
    pub(crate) fn charger_failed(&self, now: SimTime) -> bool {
        match self {
            FaultPlanSet::Global(p) => p.charger_failed(now),
            FaultPlanSet::Sharded(plans) => {
                plans.first().is_some_and(|p| p.charger_failed(now))
            }
        }
    }

    /// The shared fault configuration.
    pub(crate) fn config(&self) -> &FaultConfig {
        match self {
            FaultPlanSet::Global(p) => p.config(),
            FaultPlanSet::Sharded(plans) => {
                plans.first().expect("at least one shard plan").config()
            }
        }
    }

    /// Cumulative injection counters, merged across shard plans.
    pub(crate) fn counts(&self) -> FaultCounts {
        match self {
            FaultPlanSet::Global(p) => p.counts(),
            FaultPlanSet::Sharded(plans) => {
                let mut total = FaultCounts::default();
                for p in plans {
                    total.merge(&p.counts());
                }
                total
            }
        }
    }
}

/// Fault-injection environment shared by the stages: the plan itself
/// (consumed by Sense for readings, Act for actuations, and the crash /
/// charger paths) plus the cumulative counters the final report needs.
/// Present only when the experiment configures a fault plan.
pub(crate) struct FaultLayer {
    /// The seeded fault schedule.
    pub(crate) plan: FaultPlanSet,
    /// In-flight requests lost to node crashes.
    pub(crate) lost_to_crash: u64,
    /// Charge actions refused by a failed charger.
    pub(crate) charger_blocked_slots: u64,
    /// Rejections accumulated on nodes that were since replaced by a
    /// reboot (their counters restart at zero).
    pub(crate) retired_rejected: u64,
    /// DVFS transitions accumulated on since-replaced nodes.
    pub(crate) retired_transitions: u64,
}

impl FaultLayer {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        Self::with_set(FaultPlanSet::Global(plan))
    }

    /// The sharded engine's constructor: one plan per shard.
    pub(crate) fn sharded(plans: Vec<ShardFaultPlan>) -> Self {
        Self::with_set(FaultPlanSet::Sharded(plans))
    }

    fn with_set(plan: FaultPlanSet) -> Self {
        FaultLayer {
            plan,
            lost_to_crash: 0,
            charger_blocked_slots: 0,
            retired_rejected: 0,
            retired_transitions: 0,
        }
    }
}

/// The assembled control plane: one struct per stage, driven in order
/// by `ClusterSim::handle_slot`.
pub struct ControlPipeline {
    /// Telemetry acquisition.
    pub sense: sense::SenseStage,
    /// Telemetry trust: estimation, watchdog, monitor.
    pub filter: filter::FilterStage,
    /// Online power attribution, when configured.
    pub learn: Option<learn::LearnStage>,
    /// The power scheme.
    pub decide: decide::DecideStage,
    /// Actuation with read-back verification.
    pub act: act::ActStage,
    /// Energy / thermal / breaker integration.
    pub account: account::AccountStage,
    /// Recycled per-slot action plan: filled by Decide, drained by Act.
    pub actions: Vec<Action>,
    /// Recycled thermal-trip list for the accountant's slot pass.
    pub tripped: Vec<usize>,
    /// The hierarchical power topology, when configured: per-level
    /// budgets/breakers, the top-down allocator, and the rack guard.
    pub topology: Option<crate::topology::TopologyState>,
}

impl ControlPipeline {
    /// Assemble the pipeline for a validated cluster config. `hardened`
    /// is true when a fault plan is configured: it switches on telemetry
    /// filtering, the watchdog, read-back verification, and the uniform
    /// safe fallback. `idle_power_w` seeds the energy meter and power
    /// series with the cluster's t=0 draw.
    pub(crate) fn new(
        cfg: &ClusterConfig,
        scheme: Box<dyn PowerScheme>,
        budget: PowerBudget,
        start: SimTime,
        hardened: bool,
        idle_power_w: f64,
    ) -> Self {
        let monitor =
            PowerMonitor::new(budget, 10, 1).expect("hard-coded monitor parameters are valid");
        let hardening = hardened.then(|| filter::Hardening {
            telemetry: TelemetryHealth::new(
                cfg.servers,
                cfg.control_slot * cfg.control.telemetry_staleness_slots,
            ),
            watchdog: Watchdog::new(
                cfg.control.watchdog_coverage_floor,
                cfg.control.watchdog_recovery_slots,
            ),
        });
        // Worst-case uniform cap: full-load CPU-bound occupancy on
        // every server must fit the supplied budget.
        let safe_pstate = hardened.then(|| {
            UniformCapper::new(ServerPowerModel::paper_default()).state_for_budget(
                budget.supply_w,
                &vec![
                    ServerLoad {
                        utilization: 1.0,
                        intensity: 1.0,
                        gamma: 0.9,
                    };
                    cfg.servers
                ],
            )
        });
        let verify = hardened.then(|| {
            ActuatorVerify::new(cfg.servers, cfg.control.actuator_max_retries, cfg.control_slot)
        });
        let learn = cfg.profiler.as_ref().map(|pc| learn::LearnStage {
            engine: PowerProfiler::new(pc.clone()),
            mix: MixTracker::new(cfg.servers),
        });
        let hierarchy = cfg.breaker.then(|| {
            let rating = budget.supply_w * cfg.breaker_rating_factor;
            PowerHierarchy::new(cfg.servers, 1, rating, rating, cfg.breaker_trip_delay)
        });
        let thermals = cfg
            .thermal
            .then(|| (0..cfg.servers).map(|_| ThermalNode::paper_default(start)).collect());
        let topology = cfg.topology.as_ref().map(|t| {
            crate::topology::TopologyState::new(cfg.servers, budget.supply_w, t, cfg.control_slot)
        });
        ControlPipeline {
            sense: sense::SenseStage::default(),
            filter: filter::FilterStage { monitor, hardening },
            learn,
            decide: decide::DecideStage {
                scheme,
                safe_pstate,
                snapshot_scratch: Vec::new(),
            },
            act: act::ActStage {
                verify,
                retry_scratch: Vec::new(),
            },
            account: account::AccountStage::new(start, idle_power_w, hierarchy, thermals),
            actions: Vec::new(),
            tripped: Vec::new(),
            topology,
        }
    }
}
