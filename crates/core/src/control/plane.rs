//! The control plane lifted out of the simulator.
//!
//! Everything in [`ControlPipeline`] consumes typed values —
//! [`TelemetryFrame`] in, [`Action`]s out — and nothing in the stages is
//! intrinsically tied to simulated time. This module makes that
//! portability structural:
//!
//! * [`ControlClock`] — where slot ticks come from (the DES engines'
//!   `Ev::Slot` cadence, a recorded trace's timestamps, or a wall
//!   clock);
//! * [`TelemetryTransport`] / [`ActuationTransport`] — where a slot's
//!   [`PlaneSample`] is read from and where the decided [`Action`] plan
//!   is written to (the simulator's node array, a JSONL trace, or
//!   RAPL/ACPI-shaped files);
//! * the **trace schema** ([`TraceHeader`] / [`SlotRecord`] /
//!   [`TraceFooter`], versioned by [`TRACE_SCHEMA_VERSION`]) — a
//!   recorded stream of per-slot pipeline inputs *and* the decisions the
//!   sim took on them, so any scenario can be replayed through the live
//!   pipeline and compared byte-for-byte;
//! * [`TraceRecorder`] — the tap both DES engines drive when recording;
//! * [`ControlPipeline::run_live_slot`] — one slot of the *identical*
//!   pipeline (Filter → Learn → read-back sweep → Decide → shard guard)
//!   driven from a [`PlaneSample`] instead of from engine internals.
//!
//! The `liveplane` crate builds the clocks, the trace-replay backend,
//! the mock-sysfs backend, and the daemon loop on top of these types;
//! the sim/live parity harness proves that a fixed-seed DES run and a
//! replay of its recorded telemetry emit byte-identical decision
//! sequences and accounting totals.

use super::learn::LearnStage;
use super::{BatteryFlows, ClusterView, ControlPipeline, TelemetryFrame};
use crate::config::{ClusterConfig, ConfigError, ExperimentConfig};
use crate::health::ShardWatchdog;
use crate::node::ComputeNode;
use crate::scheme::{Action, NodeSnapshot};
use powercap::battery::Battery;
use powercap::budget::PowerBudget;
use crate::jsonl::Json;
use powercap::monitor::PowerCondition;
use powercap::pstate::PState;
use simcore::{SimDuration, SimTime};
use std::fmt;
use std::io::{BufRead, Write};
use std::path::Path;

/// Version stamped into every trace header. Bump on any breaking change
/// to the record types below; [`ControlTrace::from_jsonl_str`] rejects
/// mismatches with a typed [`ConfigError::TraceSchema`].
pub const TRACE_SCHEMA_VERSION: u32 = 1;

// ---------------------------------------------------------------------
// Clock and transport abstractions
// ---------------------------------------------------------------------

/// One control-slot tick handed out by a [`ControlClock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotTick {
    /// Monotone slot counter, starting at 0.
    pub slot: u64,
    /// The slot's timestamp on the control plane's time axis.
    pub now: SimTime,
    /// True when the tick fired past its deadline (a wall clock that
    /// overslept). The daemon treats the slot's telemetry as suspect
    /// and lets the staleness machinery bridge it.
    pub missed_deadline: bool,
}

/// Slot cadence + deadline source.
///
/// The DES engines are an implicit implementation (their `Ev::Slot`
/// events fire exactly every `control_slot` of simulated time and can
/// never miss a deadline); the `liveplane` crate provides a trace
/// clock and a wall clock.
pub trait ControlClock {
    /// Block until the next slot is due and return its tick, or `None`
    /// when the clock's schedule is exhausted (end of trace, slot
    /// budget reached).
    fn next_slot(&mut self) -> Option<SlotTick>;
}

/// Why a transport could not produce or accept a slot's data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The telemetry source has not advanced past what was already
    /// read; the slot has no fresh data (a slow agent, a missed
    /// deadline). The daemon substitutes a fully-stale sample and lets
    /// [`crate::health::TelemetryHealth`] bridge the gap.
    Stale {
        /// Slot counter the source is still showing.
        have: u64,
        /// Slot the control plane asked for.
        want: u64,
    },
    /// The source has no further slots at all (end of a trace).
    Exhausted,
    /// An I/O failure reading or writing the backing store.
    Io(String),
    /// The backing data was readable but not parseable.
    Malformed(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Stale { have, want } => {
                write!(f, "telemetry stale: source at slot {have}, control plane at {want}")
            }
            TransportError::Exhausted => write!(f, "telemetry source exhausted"),
            TransportError::Io(e) => write!(f, "transport i/o: {e}"),
            TransportError::Malformed(e) => write!(f, "transport data malformed: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Reads one [`PlaneSample`] per slot from some telemetry source.
pub trait TelemetryTransport {
    /// Produce the sample for `tick`.
    fn sample(&mut self, tick: &SlotTick) -> Result<PlaneSample, TransportError>;
}

/// Applies one slot's decided commands to some actuation sink.
pub trait ActuationTransport {
    /// Write the slot's read-back retries and action plan.
    fn apply(&mut self, now: SimTime, decision: &DecisionRecord) -> Result<(), TransportError>;
}

// ---------------------------------------------------------------------
// The per-slot sample (pipeline input) and record types
// ---------------------------------------------------------------------

/// Which control-plane state a forgotten node resets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForgetKind {
    /// A crash: the filter's held sample, the actuator intent, and the
    /// learning mix are all gone (the node's next telemetry comes from
    /// fresh hardware).
    Full,
    /// A reboot completion, thermal trip, or outage drain: only the
    /// in-flight learning mix is gone.
    Learn,
}

/// A node-forget event carried in the slot it becomes visible to the
/// control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Forget {
    /// Global node index.
    pub node: usize,
    /// How much state the event resets.
    pub kind: ForgetKind,
}

/// Per-node observation carried by a [`PlaneSample`] — everything the
/// Decide stage's [`NodeSnapshot`] needs, plus the optional learning
/// feed.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeObs {
    /// Busy-core fraction.
    pub utilization: f64,
    /// Resident-mix power intensity.
    pub intensity: f64,
    /// Resident-mix DVFS power sensitivity.
    pub gamma: f64,
    /// Resident-mix CPU-boundedness.
    pub beta: f64,
    /// Currently commanded P-state (raw ladder index).
    pub target: u8,
    /// Requests in flight.
    pub inflight: u32,
    /// Nominal-equivalent power for the attribution engine: the sensed
    /// reading with DVFS throttling inverted out by the hardware power
    /// model (the sensor side knows its own V/F state; the control
    /// plane does not need the hardware model to learn). `None` when
    /// the sensor produced nothing or learning is off.
    pub learn_power_w: Option<f64>,
    /// In-flight URL mix `(url, count)` feeding attribution; empty when
    /// learning is off.
    pub mix: Vec<(u16, u32)>,
}

/// Battery state as the control plane observed it this slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryObs {
    /// State of charge `[0, 1]`.
    pub soc: f64,
    /// Stored energy, joules.
    pub stored_j: f64,
    /// Watts currently granted for discharge.
    pub discharge_w: f64,
    /// Watts currently drawn for charging.
    pub charge_w: f64,
}

/// One slot's complete pipeline input, as read through a
/// [`TelemetryTransport`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlaneSample {
    /// Ground-truth aggregate load power, watts (what an exact meter
    /// would read; the monitor's input when no fault layer distorts
    /// sensing).
    pub true_power_w: f64,
    /// Per-node sensed readings (`None` = sensor produced nothing),
    /// present only when sensors are individually read (hardened mode).
    pub readings: Option<Vec<Option<f64>>>,
    /// Per-node observations at the decision point.
    pub nodes: Vec<NodeObs>,
    /// Commanded-P-state read-back *before* this slot's retry sweep,
    /// when read-back verification is active. Kept separate from
    /// [`NodeObs::target`] because the simulator's in-slot retries can
    /// change the commanded state between the sweep and the decision.
    pub readback: Option<Vec<u8>>,
    /// Dead-node mask (crashed or thermally tripped).
    pub node_dead: Vec<bool>,
    /// Battery observation.
    pub battery: BatteryObs,
    /// Cumulative load-energy counter, joules — RAPL-style: transports
    /// report the counter, accountants difference it.
    pub energy_j: f64,
    /// Node-forget events that became visible since the previous slot.
    pub forgets: Vec<Forget>,
    /// Per-rack sensed power, watts, when a hierarchical topology is
    /// configured (global rack order); empty otherwise. Traces recorded
    /// before the topology subsystem parse with this empty.
    pub rack_power_w: Vec<f64>,
}

/// The trusted view the Filter stage produced for one slot, in
/// serializable form (the parity harness byte-compares these).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViewRecord {
    /// Monitor verdict.
    pub condition: ConditionRecord,
    /// Power estimate the monitor judged, watts.
    pub observed_w: f64,
    /// Fresh-sensor coverage.
    pub coverage: f64,
    /// Whether the coverage watchdog forced the uniform safe cap.
    pub watchdog_engaged: bool,
}

/// Serializable mirror of [`PowerCondition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConditionRecord {
    /// Comfortably under budget.
    Nominal,
    /// Within the guard band.
    NearBudget,
    /// Over budget, not yet sustained.
    Transient,
    /// Sustained violation.
    Emergency,
}

impl From<PowerCondition> for ConditionRecord {
    fn from(c: PowerCondition) -> Self {
        match c {
            PowerCondition::Nominal => ConditionRecord::Nominal,
            PowerCondition::NearBudget => ConditionRecord::NearBudget,
            PowerCondition::Transient => ConditionRecord::Transient,
            PowerCondition::Emergency => ConditionRecord::Emergency,
        }
    }
}

impl From<&ClusterView> for ViewRecord {
    fn from(v: &ClusterView) -> Self {
        ViewRecord {
            condition: v.condition.into(),
            observed_w: v.observed_w,
            coverage: v.coverage,
            watchdog_engaged: v.watchdog_engaged,
        }
    }
}

/// Serializable mirror of [`Action`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActionRecord {
    /// Command a node to a P-state.
    SetPState {
        /// Node index.
        node: usize,
        /// Target ladder index.
        target: u8,
    },
    /// Set (or clear) a RAPL watt limit.
    SetPowerLimit {
        /// Node index.
        node: usize,
        /// Watt limit; `None` removes the cap.
        limit_w: Option<f64>,
    },
    /// Discharge the battery at the given watts (0 stops).
    BatteryDischarge {
        /// Requested watts.
        watts: f64,
    },
    /// Charge the battery from headroom (0 stops).
    BatteryCharge {
        /// Offered watts.
        watts: f64,
    },
}

impl From<&Action> for ActionRecord {
    fn from(a: &Action) -> Self {
        match *a {
            Action::SetPState { node, target } => {
                ActionRecord::SetPState { node, target: target.0 }
            }
            Action::SetPowerLimit { node, limit_w } => {
                ActionRecord::SetPowerLimit { node, limit_w }
            }
            Action::BatteryDischarge { watts } => ActionRecord::BatteryDischarge { watts },
            Action::BatteryCharge { watts } => ActionRecord::BatteryCharge { watts },
        }
    }
}

impl ActionRecord {
    /// Back to the in-memory action type.
    pub fn to_action(self) -> Action {
        match self {
            ActionRecord::SetPState { node, target } => {
                Action::SetPState { node, target: PState(target) }
            }
            ActionRecord::SetPowerLimit { node, limit_w } => {
                Action::SetPowerLimit { node, limit_w }
            }
            ActionRecord::BatteryDischarge { watts } => Action::BatteryDischarge { watts },
            ActionRecord::BatteryCharge { watts } => Action::BatteryCharge { watts },
        }
    }
}

/// Everything the control plane commanded in one slot: the read-back
/// retry re-issues (before Decide) plus the decided action plan (after
/// the shard guard, exactly as enacted).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DecisionRecord {
    /// Re-issued `(node, pstate)` commands from the verification sweep.
    pub retries: Vec<(usize, u8)>,
    /// The slot's action plan.
    pub actions: Vec<ActionRecord>,
}

/// One fully-recorded control slot: input, trusted view, decisions.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotRecord {
    /// Record index (outage slots are not recorded, so this is dense in
    /// records, not in slots).
    pub slot: u64,
    /// Slot timestamp.
    pub now: SimTime,
    /// Pipeline input.
    pub sample: PlaneSample,
    /// Filter-stage output (for parity comparison).
    pub view: ViewRecord,
    /// Sweep + Decide output (for parity comparison).
    pub decisions: DecisionRecord,
}

/// First line of a trace: schema version + the full experiment
/// configuration, enough to reconstruct the identical pipeline.
#[derive(Debug, Clone)]
pub struct TraceHeader {
    /// Must equal [`TRACE_SCHEMA_VERSION`] to be readable.
    pub schema: u32,
    /// The experiment the trace was recorded from.
    pub experiment: ExperimentConfig,
}

/// Last line of a trace: the recording side's accounting summary. A
/// replay recomputes the same quantities independently and the parity
/// harness requires bit equality.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TraceFooter {
    /// Control slots recorded.
    pub slots: u64,
    /// Actions across all slots.
    pub actions: u64,
    /// Read-back retries across all slots.
    pub retries: u64,
    /// Slots the monitor judged `Emergency`.
    pub emergency_slots: u64,
    /// Slots with the coverage watchdog engaged.
    pub watchdog_slots: u64,
    /// Final cumulative load-energy counter, joules.
    pub energy_j: f64,
    /// Peak true aggregate power seen at any slot, watts.
    pub peak_true_w: f64,
}

/// A complete recorded control-plane trace.
#[derive(Debug, Clone)]
pub struct ControlTrace {
    /// Schema + experiment.
    pub header: TraceHeader,
    /// The recorded slots, in time order.
    pub slots: Vec<SlotRecord>,
    /// The recording side's accounting summary.
    pub footer: TraceFooter,
}

impl ControlTrace {
    /// Serialize to JSONL: one header line, one line per slot, one
    /// footer line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, tag: &str, body: Json| {
            out.push_str(&Json::Obj(vec![(tag.to_string(), body)]).render());
            out.push('\n');
        };
        push(&mut out, "Header", codec::header_to_json(&self.header));
        for s in &self.slots {
            push(&mut out, "Slot", codec::slot_to_json(s));
        }
        push(&mut out, "Footer", codec::footer_to_json(&self.footer));
        out
    }

    /// Write the JSONL form to `path`.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(self.to_jsonl().as_bytes())
    }

    /// Parse a JSONL trace, rejecting unknown schema versions and
    /// malformed streams with typed errors instead of panicking.
    pub fn from_jsonl_str(s: &str) -> Result<Self, ConfigError> {
        Self::from_lines(s.lines().map(|l| Ok(l.to_string())))
    }

    /// Read and parse a JSONL trace file.
    pub fn read_jsonl(path: &Path) -> Result<Self, ConfigError> {
        let f = std::fs::File::open(path)
            .map_err(|e| ConfigError::TraceFormat { what: format!("open {}: {e}", path.display()) })?;
        Self::from_lines(std::io::BufReader::new(f).lines())
    }

    fn from_lines(
        lines: impl Iterator<Item = std::io::Result<String>>,
    ) -> Result<Self, ConfigError> {
        let mut header: Option<TraceHeader> = None;
        let mut slots = Vec::new();
        let mut footer: Option<TraceFooter> = None;
        for (i, line) in lines.enumerate() {
            let line = line
                .map_err(|e| ConfigError::TraceFormat { what: format!("read line {}: {e}", i + 1) })?;
            if line.trim().is_empty() {
                continue;
            }
            let bad = |e: String| ConfigError::TraceFormat { what: format!("line {}: {e}", i + 1) };
            let value = Json::parse(&line).map_err(bad)?;
            let [(tag, body)] = value.as_obj().map_err(bad)? else {
                return Err(bad("expected a single-key tagged object".to_string()));
            };
            match tag.as_str() {
                "Header" => {
                    // Version-check before decoding the body: an old or
                    // future schema must fail with the typed version
                    // error, not a field mismatch.
                    let schema = body
                        .get("schema")
                        .and_then(|v| v.as_u32())
                        .map_err(bad)?;
                    if schema != TRACE_SCHEMA_VERSION {
                        return Err(ConfigError::TraceSchema {
                            found: schema,
                            supported: TRACE_SCHEMA_VERSION,
                        });
                    }
                    let h = codec::header_from_json(body).map_err(bad)?;
                    if header.replace(h).is_some() {
                        return Err(bad("duplicate header".to_string()));
                    }
                }
                "Slot" => {
                    if header.is_none() {
                        return Err(bad("slot record before header".to_string()));
                    }
                    slots.push(codec::slot_from_json(body).map_err(bad)?);
                }
                "Footer" => {
                    let f = codec::footer_from_json(body).map_err(bad)?;
                    if footer.replace(f).is_some() {
                        return Err(bad("duplicate footer".to_string()));
                    }
                }
                other => return Err(bad(format!("unknown record tag {other:?}"))),
            }
        }
        Ok(ControlTrace {
            header: header
                .ok_or(ConfigError::TraceFormat { what: "missing header line".to_string() })?,
            slots,
            footer: footer
                .ok_or(ConfigError::TraceFormat { what: "missing footer line".to_string() })?,
        })
    }
}

// ---------------------------------------------------------------------
// The recorder (the sim-side tap)
// ---------------------------------------------------------------------

/// Records every control slot of a DES run as [`SlotRecord`]s. Attach
/// one to either engine (`attach_recorder`) and take the finished
/// [`ControlTrace`] after the run; recording is read-only and leaves
/// the simulation byte-identical to an unrecorded run.
pub struct TraceRecorder {
    header: TraceHeader,
    slots: Vec<SlotRecord>,
    pending_forgets: Vec<Forget>,
}

impl TraceRecorder {
    /// Recorder for one experiment.
    pub fn new(exp: &ExperimentConfig) -> Self {
        TraceRecorder {
            header: TraceHeader { schema: TRACE_SCHEMA_VERSION, experiment: exp.clone() },
            slots: Vec::new(),
            pending_forgets: Vec::new(),
        }
    }

    /// Note a node-forget event; it is carried in the next recorded
    /// slot (the first one whose pipeline pass can observe it).
    pub fn note_forget(&mut self, node: usize, kind: ForgetKind) {
        self.pending_forgets.push(Forget { node, kind });
    }

    /// Capture one slot. Called by the engines between Decide and Act,
    /// so node observations are exactly what the decision consumed and
    /// `actions` is the final (post-shard-guard) plan.
    #[allow(clippy::too_many_arguments)] // two call sites: the slot drivers
    pub(crate) fn capture_slot(
        &mut self,
        now: SimTime,
        frame: &TelemetryFrame,
        nodes: &[ComputeNode],
        node_dead: &[bool],
        readback: Option<Vec<u8>>,
        battery: &Battery,
        flows: &BatteryFlows,
        view: &ClusterView,
        retries: &[(usize, PState)],
        actions: &[Action],
        energy_j: f64,
        learn: Option<&LearnStage>,
        rack_power_w: Vec<f64>,
    ) {
        let obs = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let (utilization, intensity, gamma) = n.load_character();
                let (learn_power_w, mix) = match learn {
                    None => (None, Vec::new()),
                    Some(l) => {
                        let reading = match &frame.readings {
                            Some(r) => r[i],
                            None => Some(n.power_w()),
                        };
                        (
                            super::learn::normalized_power(n, reading),
                            l.mix.mix_of(i).into_iter().map(|(u, c)| (u.0, c)).collect(),
                        )
                    }
                };
                NodeObs {
                    utilization,
                    intensity,
                    gamma,
                    beta: n.mean_beta(),
                    target: n.target_pstate().0,
                    inflight: n.inflight() as u32,
                    learn_power_w,
                    mix,
                }
            })
            .collect();
        self.slots.push(SlotRecord {
            slot: self.slots.len() as u64,
            now,
            sample: PlaneSample {
                true_power_w: frame.true_power_w,
                readings: frame.readings.clone(),
                nodes: obs,
                readback,
                node_dead: node_dead.to_vec(),
                battery: BatteryObs {
                    soc: battery.soc(),
                    stored_j: battery.stored_j(),
                    discharge_w: flows.discharge_w,
                    charge_w: flows.charge_w,
                },
                energy_j,
                forgets: std::mem::take(&mut self.pending_forgets),
                rack_power_w,
            },
            view: view.into(),
            decisions: DecisionRecord {
                retries: retries.iter().map(|&(n, p)| (n, p.0)).collect(),
                actions: actions.iter().map(ActionRecord::from).collect(),
            },
        });
    }

    /// Finish recording: compute the footer from the records and return
    /// the complete trace.
    pub fn finish(self) -> ControlTrace {
        let mut footer = TraceFooter { slots: self.slots.len() as u64, ..Default::default() };
        for s in &self.slots {
            footer.actions += s.decisions.actions.len() as u64;
            footer.retries += s.decisions.retries.len() as u64;
            if s.view.condition == ConditionRecord::Emergency {
                footer.emergency_slots += 1;
            }
            if s.view.watchdog_engaged {
                footer.watchdog_slots += 1;
            }
            footer.energy_j = s.sample.energy_j;
            footer.peak_true_w = footer.peak_true_w.max(s.sample.true_power_w);
        }
        ControlTrace { header: self.header, slots: self.slots, footer }
    }
}

// ---------------------------------------------------------------------
// Shard-coverage guard, shared by the sharded engine and live replay
// ---------------------------------------------------------------------

/// Near-even contiguous shard partition: the first `servers % shards`
/// shards own one extra node. Returns `(ranges, owner_shard)` where
/// each range is `(start, len)`.
pub fn shard_layout(servers: usize, shards: usize) -> (Vec<(usize, usize)>, Vec<usize>) {
    let base = servers / shards;
    let extra = servers % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut owner_shard = vec![0usize; servers];
    let mut at = 0usize;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        for o in owner_shard.iter_mut().skip(at).take(len) {
            *o = i;
        }
        ranges.push((at, len));
        at += len;
    }
    (ranges, owner_shard)
}

/// Feed one slot's per-shard fresh/alive counts into the shard
/// watchdog, excluding dead nodes from both counts, and close the slot.
/// One pass over the readings; identical to counting each shard's
/// contiguous range in shard order.
pub fn observe_shard_coverage(
    watchdog: &mut ShardWatchdog,
    now: SimTime,
    n_shards: usize,
    owner_shard: &[usize],
    node_dead: &[bool],
    readings: &[Option<f64>],
) {
    let mut fresh = vec![0usize; n_shards];
    let mut alive = vec![0usize; n_shards];
    for (g, r) in readings.iter().enumerate() {
        if node_dead[g] {
            continue;
        }
        alive[owner_shard[g]] += 1;
        if r.is_some() {
            fresh[owner_shard[g]] += 1;
        }
    }
    for s in 0..n_shards {
        watchdog.observe(now, s, fresh[s], alive[s]);
    }
    watchdog.close_slot();
}

/// Conservative per-shard fallback while a shard is blacked out: strip
/// the scheme's per-node commands for capped shards and pin their alive
/// nodes at the safe P-state, leaving every other shard's plan
/// untouched. `target_of(g)` is node `g`'s currently-commanded P-state.
pub fn apply_shard_guard(
    actions: &mut Vec<Action>,
    watchdog: &ShardWatchdog,
    owner_shard: &[usize],
    node_dead: &[bool],
    target_of: impl Fn(usize) -> PState,
    safe: PState,
) {
    actions.retain(|a| match a {
        Action::SetPState { node, .. } | Action::SetPowerLimit { node, .. } => {
            !watchdog.engaged(owner_shard[*node])
        }
        _ => true,
    });
    for g in 0..owner_shard.len() {
        if !node_dead[g] && watchdog.engaged(owner_shard[g]) && target_of(g) != safe {
            actions.push(Action::SetPState { node: g, target: safe });
        }
    }
}

/// The sharded engine's blackout guard, bundled for backends that drive
/// the pipeline from samples (replay, live): the watchdog plus the
/// node→shard map it judges by.
pub struct ShardGuard {
    /// Per-shard blackout watchdog.
    pub watchdog: ShardWatchdog,
    /// Global node index → owning shard.
    pub owner_shard: Vec<usize>,
}

impl ShardGuard {
    /// The guard a sharded DES run of `exp` would carry: present only
    /// when the experiment selects the sharded engine (`shards > 1`, or
    /// a retry policy at any shard count — mirroring the runner's
    /// dispatch) *and* injects faults, with the engage threshold at the
    /// telemetry staleness window.
    pub fn for_experiment(exp: &ExperimentConfig) -> Option<Self> {
        let cfg = &exp.cluster;
        let sharded_engine = cfg.shards > 1 || cfg.retry.is_some() || cfg.effective_racks() > 1;
        if !sharded_engine || cfg.faults.is_none() {
            return None;
        }
        let (_, owner_shard) = shard_layout(cfg.servers, cfg.shards);
        Some(ShardGuard {
            watchdog: ShardWatchdog::new(
                cfg.shards,
                cfg.control.telemetry_staleness_slots.min(u32::MAX as u64) as u32,
                cfg.control.watchdog_recovery_slots,
            ),
            owner_shard,
        })
    }

    /// Shard count.
    pub fn n_shards(&self) -> usize {
        self.watchdog_len()
    }

    fn watchdog_len(&self) -> usize {
        self.owner_shard.iter().copied().max().map_or(0, |m| m + 1)
    }
}

// ---------------------------------------------------------------------
// Driving the identical pipeline from samples
// ---------------------------------------------------------------------

impl ControlPipeline {
    /// Assemble the pipeline exactly as the DES engines do for `exp` —
    /// same scheme construction, budget, hardening, safe P-state,
    /// verifier and profiler — but owned by a live/replay driver
    /// instead of a simulator.
    pub fn for_experiment(exp: &ExperimentConfig) -> Self {
        let cfg = &exp.cluster;
        cfg.validate().expect("invalid cluster config");
        let start = SimTime::ZERO;
        let scheme = crate::scheme::build_scheme(exp.scheme, cfg);
        let budget = PowerBudget::for_cluster(cfg.aggregate_nameplate_w(), cfg.budget);
        // Seed the accountant at the same t=0 idle draw the engines
        // compute from freshly-built nodes.
        let idle_total = ComputeNode::new(start, cfg.cores_per_server, cfg.max_inflight, cfg.dvfs_latency)
            .power_w()
            * cfg.servers as f64;
        ControlPipeline::new(cfg, scheme, budget, start, cfg.faults.is_some(), idle_total)
    }

    /// Apply a forget event to every stage that holds per-node state.
    pub fn forget_node(&mut self, f: Forget) {
        match f.kind {
            ForgetKind::Full => {
                self.filter.forget_node(f.node);
                self.act.clear_node(f.node);
                if let Some(learn) = &mut self.learn {
                    learn.forget_node(f.node);
                }
            }
            ForgetKind::Learn => {
                if let Some(learn) = &mut self.learn {
                    learn.forget_node(f.node);
                }
            }
        }
    }

    /// One control slot driven from a [`PlaneSample`]: Filter → Learn →
    /// shard-coverage watchdog → read-back sweep → Decide → shard
    /// guard, the exact stage sequence the DES slot drivers run, with
    /// actuation returned as a [`DecisionRecord`] for the caller's
    /// [`ActuationTransport`] instead of enacted on simulator nodes.
    pub fn run_live_slot(
        &mut self,
        now: SimTime,
        sample: &PlaneSample,
        cfg: &ClusterConfig,
        mut guard: Option<&mut ShardGuard>,
    ) -> (ViewRecord, DecisionRecord) {
        for &f in &sample.forgets {
            self.forget_node(f);
        }
        let frame = TelemetryFrame {
            true_power_w: sample.true_power_w,
            readings: sample.readings.clone(),
        };
        let per_node_nameplate = cfg.aggregate_nameplate_w() / cfg.servers as f64;
        let view = self.filter.run(now, &frame, per_node_nameplate);
        if let Some(learn) = self.learn.as_mut() {
            learn.run_observed(&sample.nodes, &sample.node_dead);
        }
        if let (Some(g), Some(readings)) = (guard.as_deref_mut(), sample.readings.as_ref()) {
            let n_shards = g.n_shards();
            observe_shard_coverage(
                &mut g.watchdog,
                now,
                n_shards,
                &g.owner_shard,
                &sample.node_dead,
                readings,
            );
        }
        // Read-back sweep against the pre-sweep commanded states. The
        // verifier's state machine advances exactly as in the sim; the
        // re-issue itself is the caller's transport's job.
        let mut retries: Vec<(usize, u8)> = Vec::new();
        if let (Some(verify), Some(readback)) = (self.act.verify.as_mut(), &sample.readback) {
            for (i, &raw) in readback.iter().enumerate() {
                if sample.node_dead[i] {
                    continue;
                }
                if let crate::health::VerifyOutcome::Retry(target) =
                    verify.check(i, PState(raw), now)
                {
                    retries.push((i, target.0));
                }
            }
        }
        let supply_w = self.filter.monitor.budget().supply_w;
        let (_, suspect_pool) = crate::pdf::partition_pools(cfg.servers, cfg.suspect_pool_size);
        let mut snaps = std::mem::take(&mut self.decide.snapshot_scratch);
        snaps.clear();
        snaps.extend(sample.nodes.iter().enumerate().map(|(i, o)| NodeSnapshot {
            utilization: o.utilization,
            intensity: o.intensity,
            gamma: o.gamma,
            beta: o.beta,
            target: PState(o.target),
            suspect: suspect_pool.contains(&i),
            inflight: o.inflight as usize,
        }));
        self.decide.snapshot_scratch = snaps;
        let flows = BatteryFlows {
            discharge_w: sample.battery.discharge_w,
            charge_w: sample.battery.charge_w,
        };
        let mut actions = std::mem::take(&mut self.actions);
        self.decide.run_snapshots(
            now,
            &view,
            supply_w,
            cfg,
            &sample.node_dead,
            sample.battery.soc,
            sample.battery.stored_j,
            &flows,
            &mut actions,
        );
        if let Some(g) = guard {
            if g.watchdog.any_engaged() && !view.watchdog_engaged {
                if let Some(safe) = self.decide.safe_pstate {
                    apply_shard_guard(
                        &mut actions,
                        &g.watchdog,
                        &g.owner_shard,
                        &sample.node_dead,
                        |n| PState(sample.nodes[n].target),
                        safe,
                    );
                }
            }
        }
        // Record intents for next slot's read-back, mirroring the
        // enact path: alive nodes only, P-state commands only (watt
        // limits need the hardware model's limit→state resolution,
        // which lives on the sensor side in a live deployment).
        if let Some(verify) = self.act.verify.as_mut() {
            for a in &actions {
                if let Action::SetPState { node, target } = a {
                    if !sample.node_dead[*node] {
                        verify.record(*node, *target, now);
                    }
                }
            }
        }
        let decisions = DecisionRecord {
            retries,
            actions: actions.iter().map(ActionRecord::from).collect(),
        };
        actions.clear();
        self.actions = actions;
        ((&view).into(), decisions)
    }
}

/// Hand-rolled, exact JSON codec for the trace schema (see
/// [`crate::jsonl`] for why: floats round-trip bit-exactly via
/// shortest-roundtrip formatting, integers never pass through `f64`).
mod codec {
    use super::*;
    use crate::config::{ControlPlaneConfig, SchemeKind};
    use netsim::RetryConfig;
    use powercap::budget::BudgetLevel;
    use profiler::ProfilerConfig;
    use simcore::faults::{CrashEvent, FaultConfig};

    type R<T> = Result<T, String>;

    fn time_j(t: SimTime) -> Json {
        Json::u64(t.as_micros())
    }

    fn time_f(v: &Json) -> R<SimTime> {
        Ok(SimTime::from_micros(v.as_u64()?))
    }

    fn dur_j(d: SimDuration) -> Json {
        Json::u64(d.as_micros())
    }

    fn dur_f(v: &Json) -> R<SimDuration> {
        Ok(SimDuration::from_micros(v.as_u64()?))
    }

    fn scheme_j(s: SchemeKind) -> Json {
        Json::str(match s {
            SchemeKind::None => "None",
            SchemeKind::Capping => "Capping",
            SchemeKind::Shaving => "Shaving",
            SchemeKind::Token => "Token",
            SchemeKind::AntiDope => "AntiDope",
            SchemeKind::PdfOnly => "PdfOnly",
            SchemeKind::RpmOnly => "RpmOnly",
        })
    }

    fn scheme_f(v: &Json) -> R<SchemeKind> {
        Ok(match v.as_str()? {
            "None" => SchemeKind::None,
            "Capping" => SchemeKind::Capping,
            "Shaving" => SchemeKind::Shaving,
            "Token" => SchemeKind::Token,
            "AntiDope" => SchemeKind::AntiDope,
            "PdfOnly" => SchemeKind::PdfOnly,
            "RpmOnly" => SchemeKind::RpmOnly,
            other => return Err(format!("unknown scheme {other:?}")),
        })
    }

    fn budget_j(b: BudgetLevel) -> Json {
        Json::str(match b {
            BudgetLevel::Normal => "Normal",
            BudgetLevel::High => "High",
            BudgetLevel::Medium => "Medium",
            BudgetLevel::Low => "Low",
        })
    }

    fn budget_f(v: &Json) -> R<BudgetLevel> {
        Ok(match v.as_str()? {
            "Normal" => BudgetLevel::Normal,
            "High" => BudgetLevel::High,
            "Medium" => BudgetLevel::Medium,
            "Low" => BudgetLevel::Low,
            other => return Err(format!("unknown budget level {other:?}")),
        })
    }

    fn faults_j(f: &FaultConfig) -> Json {
        Json::Obj(vec![
            ("sensor_dropout_p".into(), Json::f64(f.sensor_dropout_p)),
            ("sensor_noise_w".into(), Json::f64(f.sensor_noise_w)),
            ("sensor_stuck_p".into(), Json::f64(f.sensor_stuck_p)),
            ("sensor_stuck_for".into(), dur_j(f.sensor_stuck_for)),
            ("sensor_stale_p".into(), Json::f64(f.sensor_stale_p)),
            (
                "blackouts".into(),
                Json::Arr(
                    f.blackouts
                        .iter()
                        .map(|&(a, b)| Json::Arr(vec![time_j(a), time_j(b)]))
                        .collect(),
                ),
            ),
            ("actuator_loss_p".into(), Json::f64(f.actuator_loss_p)),
            ("actuator_delay_p".into(), Json::f64(f.actuator_delay_p)),
            ("actuator_delay".into(), dur_j(f.actuator_delay)),
            ("actuator_stuck_p".into(), Json::f64(f.actuator_stuck_p)),
            ("actuator_stuck_for".into(), dur_j(f.actuator_stuck_for)),
            (
                "crashes".into(),
                Json::Arr(
                    f.crashes
                        .iter()
                        .map(|c| {
                            Json::Obj(vec![
                                ("node".into(), Json::u64(c.node as u64)),
                                ("at".into(), time_j(c.at)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("crash_p".into(), Json::f64(f.crash_p)),
            ("reboot_after".into(), dur_j(f.reboot_after)),
            ("battery_fade".into(), Json::f64(f.battery_fade)),
            ("charger_fails_at".into(), Json::opt(&f.charger_fails_at, |&t| time_j(t))),
        ])
    }

    fn faults_f(v: &Json) -> R<FaultConfig> {
        Ok(FaultConfig {
            sensor_dropout_p: v.get("sensor_dropout_p")?.as_f64()?,
            sensor_noise_w: v.get("sensor_noise_w")?.as_f64()?,
            sensor_stuck_p: v.get("sensor_stuck_p")?.as_f64()?,
            sensor_stuck_for: dur_f(v.get("sensor_stuck_for")?)?,
            sensor_stale_p: v.get("sensor_stale_p")?.as_f64()?,
            blackouts: v
                .get("blackouts")?
                .as_arr()?
                .iter()
                .map(|pair| {
                    let [a, b] = pair.as_arr()? else {
                        return Err("blackout must be a [start, end] pair".to_string());
                    };
                    Ok((time_f(a)?, time_f(b)?))
                })
                .collect::<R<_>>()?,
            actuator_loss_p: v.get("actuator_loss_p")?.as_f64()?,
            actuator_delay_p: v.get("actuator_delay_p")?.as_f64()?,
            actuator_delay: dur_f(v.get("actuator_delay")?)?,
            actuator_stuck_p: v.get("actuator_stuck_p")?.as_f64()?,
            actuator_stuck_for: dur_f(v.get("actuator_stuck_for")?)?,
            crashes: v
                .get("crashes")?
                .as_arr()?
                .iter()
                .map(|c| {
                    Ok(CrashEvent {
                        node: c.get("node")?.as_usize()?,
                        at: time_f(c.get("at")?)?,
                    })
                })
                .collect::<R<_>>()?,
            crash_p: v.get("crash_p")?.as_f64()?,
            reboot_after: dur_f(v.get("reboot_after")?)?,
            battery_fade: v.get("battery_fade")?.as_f64()?,
            charger_fails_at: v.get_opt("charger_fails_at")?.map(time_f).transpose()?,
        })
    }

    fn profiler_j(p: &ProfilerConfig) -> Json {
        Json::Obj(vec![
            ("idle_w".into(), Json::f64(p.idle_w)),
            ("dynamic_scale_w".into(), Json::f64(p.dynamic_scale_w)),
            ("util_exponent".into(), Json::f64(p.util_exponent)),
            ("forgetting".into(), Json::f64(p.forgetting)),
            ("prior_intensity".into(), Json::f64(p.prior_intensity)),
            ("prior_variance".into(), Json::f64(p.prior_variance)),
            ("variance_cap".into(), Json::f64(p.variance_cap)),
            ("threshold".into(), Json::f64(p.threshold)),
            ("hysteresis".into(), Json::f64(p.hysteresis)),
            ("min_samples".into(), Json::u64(u64::from(p.min_samples))),
            ("stale_after_slots".into(), Json::u64(p.stale_after_slots)),
            ("max_urls".into(), Json::u64(p.max_urls as u64)),
            ("cusum_slack".into(), Json::f64(p.cusum_slack)),
            ("cusum_threshold".into(), Json::f64(p.cusum_threshold)),
            ("cusum_warmup".into(), Json::u64(u64::from(p.cusum_warmup))),
            ("track_convergence".into(), Json::Bool(p.track_convergence)),
        ])
    }

    fn profiler_f(v: &Json) -> R<ProfilerConfig> {
        Ok(ProfilerConfig {
            idle_w: v.get("idle_w")?.as_f64()?,
            dynamic_scale_w: v.get("dynamic_scale_w")?.as_f64()?,
            util_exponent: v.get("util_exponent")?.as_f64()?,
            forgetting: v.get("forgetting")?.as_f64()?,
            prior_intensity: v.get("prior_intensity")?.as_f64()?,
            prior_variance: v.get("prior_variance")?.as_f64()?,
            variance_cap: v.get("variance_cap")?.as_f64()?,
            threshold: v.get("threshold")?.as_f64()?,
            hysteresis: v.get("hysteresis")?.as_f64()?,
            min_samples: v.get("min_samples")?.as_u32()?,
            stale_after_slots: v.get("stale_after_slots")?.as_u64()?,
            max_urls: v.get("max_urls")?.as_usize()?,
            cusum_slack: v.get("cusum_slack")?.as_f64()?,
            cusum_threshold: v.get("cusum_threshold")?.as_f64()?,
            cusum_warmup: v.get("cusum_warmup")?.as_u32()?,
            // Absent in pre-convergence-tracking traces: defaults off.
            track_convergence: v
                .get_opt("track_convergence")?
                .map(|b| b.as_bool())
                .transpose()?
                .unwrap_or(false),
        })
    }

    fn retry_j(r: &RetryConfig) -> Json {
        Json::Obj(vec![
            ("max_attempts".into(), Json::u64(u64::from(r.max_attempts))),
            ("timeout".into(), dur_j(r.timeout)),
            ("backoff_base".into(), dur_j(r.backoff_base)),
            ("backoff_cap".into(), dur_j(r.backoff_cap)),
            ("jitter".into(), Json::f64(r.jitter)),
            ("breaker_cooldown".into(), dur_j(r.breaker_cooldown)),
            (
                "breaker_failure_threshold".into(),
                Json::u64(u64::from(r.breaker_failure_threshold)),
            ),
        ])
    }

    fn retry_f(v: &Json) -> R<RetryConfig> {
        Ok(RetryConfig {
            max_attempts: v.get("max_attempts")?.as_u8()?,
            timeout: dur_f(v.get("timeout")?)?,
            backoff_base: dur_f(v.get("backoff_base")?)?,
            backoff_cap: dur_f(v.get("backoff_cap")?)?,
            jitter: v.get("jitter")?.as_f64()?,
            breaker_cooldown: dur_f(v.get("breaker_cooldown")?)?,
            breaker_failure_threshold: v.get("breaker_failure_threshold")?.as_u32()?,
        })
    }

    fn control_j(c: &ControlPlaneConfig) -> Json {
        Json::Obj(vec![
            ("watchdog_coverage_floor".into(), Json::f64(c.watchdog_coverage_floor)),
            ("watchdog_recovery_slots".into(), Json::u64(u64::from(c.watchdog_recovery_slots))),
            ("telemetry_staleness_slots".into(), Json::u64(c.telemetry_staleness_slots)),
            ("actuator_max_retries".into(), Json::u64(u64::from(c.actuator_max_retries))),
        ])
    }

    fn control_f(v: &Json) -> R<ControlPlaneConfig> {
        Ok(ControlPlaneConfig {
            watchdog_coverage_floor: v.get("watchdog_coverage_floor")?.as_f64()?,
            watchdog_recovery_slots: v.get("watchdog_recovery_slots")?.as_u32()?,
            telemetry_staleness_slots: v.get("telemetry_staleness_slots")?.as_u64()?,
            actuator_max_retries: v.get("actuator_max_retries")?.as_u8()?,
        })
    }

    fn topology_j(t: &crate::topology::TopologyConfig) -> Json {
        Json::Obj(vec![
            ("racks".into(), Json::u64(t.racks as u64)),
            ("pdus".into(), Json::u64(t.pdus as u64)),
            ("rows".into(), Json::u64(t.rows as u64)),
            ("rack_oversub".into(), Json::f64(t.rack_oversub)),
            ("pdu_oversub".into(), Json::f64(t.pdu_oversub)),
            ("row_oversub".into(), Json::f64(t.row_oversub)),
            ("breaker_rating_factor".into(), Json::f64(t.breaker_rating_factor)),
            ("breaker_trip_delay".into(), dur_j(t.breaker_trip_delay)),
            ("defend".into(), Json::Bool(t.defend)),
        ])
    }

    fn topology_f(v: &Json) -> R<crate::topology::TopologyConfig> {
        Ok(crate::topology::TopologyConfig {
            racks: v.get("racks")?.as_usize()?,
            pdus: v.get("pdus")?.as_usize()?,
            rows: v.get("rows")?.as_usize()?,
            rack_oversub: v.get("rack_oversub")?.as_f64()?,
            pdu_oversub: v.get("pdu_oversub")?.as_f64()?,
            row_oversub: v.get("row_oversub")?.as_f64()?,
            breaker_rating_factor: v.get("breaker_rating_factor")?.as_f64()?,
            breaker_trip_delay: dur_f(v.get("breaker_trip_delay")?)?,
            defend: v.get("defend")?.as_bool()?,
        })
    }

    fn admission_j(a: &crate::config::AdmissionConfig) -> Json {
        Json::Obj(vec![
            (
                "cost_to_serve".into(),
                Json::opt(&a.cost_to_serve, |c| {
                    Json::Obj(vec![
                        ("budget_per_s".into(), Json::f64(c.budget_per_s)),
                        ("burst_s".into(), Json::f64(c.burst_s)),
                        ("mem_surcharge".into(), Json::f64(c.mem_surcharge)),
                    ])
                }),
            ),
            (
                "firewall_ban_s".into(),
                Json::opt(&a.firewall_ban_s, |b| Json::f64(*b)),
            ),
        ])
    }

    fn admission_f(v: &Json) -> R<crate::config::AdmissionConfig> {
        Ok(crate::config::AdmissionConfig {
            cost_to_serve: v
                .get_opt("cost_to_serve")?
                .map(|c| {
                    Ok::<_, String>(netsim::CostToServeConfig {
                        budget_per_s: c.get("budget_per_s")?.as_f64()?,
                        burst_s: c.get("burst_s")?.as_f64()?,
                        mem_surcharge: c.get("mem_surcharge")?.as_f64()?,
                    })
                })
                .transpose()?,
            firewall_ban_s: v.get_opt("firewall_ban_s")?.map(|b| b.as_f64()).transpose()?,
        })
    }

    fn cluster_j(c: &ClusterConfig) -> Json {
        Json::Obj(vec![
            ("servers".into(), Json::u64(c.servers as u64)),
            ("cores_per_server".into(), Json::u64(c.cores_per_server as u64)),
            ("max_inflight".into(), Json::u64(c.max_inflight as u64)),
            ("suspect_pool_size".into(), Json::u64(c.suspect_pool_size as u64)),
            ("budget".into(), budget_j(c.budget)),
            ("battery_sustain".into(), dur_j(c.battery_sustain)),
            ("control_slot".into(), dur_j(c.control_slot)),
            ("dvfs_latency".into(), dur_j(c.dvfs_latency)),
            ("firewall".into(), Json::Bool(c.firewall)),
            ("firewall_threshold_rps".into(), Json::f64(c.firewall_threshold_rps)),
            ("firewall_lag".into(), dur_j(c.firewall_lag)),
            ("breaker".into(), Json::Bool(c.breaker)),
            ("breaker_rating_factor".into(), Json::f64(c.breaker_rating_factor)),
            ("breaker_trip_delay".into(), dur_j(c.breaker_trip_delay)),
            ("thermal".into(), Json::Bool(c.thermal)),
            ("faults".into(), Json::opt(&c.faults, faults_j)),
            ("profiler".into(), Json::opt(&c.profiler, profiler_j)),
            ("retry".into(), Json::opt(&c.retry, retry_j)),
            ("control".into(), control_j(&c.control)),
            ("shards".into(), Json::u64(c.shards as u64)),
            ("topology".into(), Json::opt(&c.topology, topology_j)),
            ("admission".into(), Json::opt(&c.admission, admission_j)),
        ])
    }

    fn cluster_f(v: &Json) -> R<ClusterConfig> {
        Ok(ClusterConfig {
            servers: v.get("servers")?.as_usize()?,
            cores_per_server: v.get("cores_per_server")?.as_usize()?,
            max_inflight: v.get("max_inflight")?.as_usize()?,
            suspect_pool_size: v.get("suspect_pool_size")?.as_usize()?,
            budget: budget_f(v.get("budget")?)?,
            battery_sustain: dur_f(v.get("battery_sustain")?)?,
            control_slot: dur_f(v.get("control_slot")?)?,
            dvfs_latency: dur_f(v.get("dvfs_latency")?)?,
            firewall: v.get("firewall")?.as_bool()?,
            firewall_threshold_rps: v.get("firewall_threshold_rps")?.as_f64()?,
            firewall_lag: dur_f(v.get("firewall_lag")?)?,
            breaker: v.get("breaker")?.as_bool()?,
            breaker_rating_factor: v.get("breaker_rating_factor")?.as_f64()?,
            breaker_trip_delay: dur_f(v.get("breaker_trip_delay")?)?,
            thermal: v.get("thermal")?.as_bool()?,
            faults: v.get_opt("faults")?.map(faults_f).transpose()?,
            profiler: v.get_opt("profiler")?.map(profiler_f).transpose()?,
            retry: v.get_opt("retry")?.map(retry_f).transpose()?,
            control: control_f(v.get("control")?)?,
            shards: v.get("shards")?.as_usize()?,
            // Absent in pre-topology traces: they parse as None.
            topology: v.get_opt("topology")?.map(topology_f).transpose()?,
            // Absent in pre-admission traces: they parse as None.
            admission: v.get_opt("admission")?.map(admission_f).transpose()?,
        })
    }

    pub(super) fn header_to_json(h: &TraceHeader) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::u64(u64::from(h.schema))),
            (
                "experiment".into(),
                Json::Obj(vec![
                    ("cluster".into(), cluster_j(&h.experiment.cluster)),
                    ("scheme".into(), scheme_j(h.experiment.scheme)),
                    ("duration".into(), dur_j(h.experiment.duration)),
                    ("seed".into(), Json::u64(h.experiment.seed)),
                    ("label".into(), Json::str(&h.experiment.label)),
                ]),
            ),
        ])
    }

    pub(super) fn header_from_json(v: &Json) -> R<TraceHeader> {
        let e = v.get("experiment")?;
        Ok(TraceHeader {
            schema: v.get("schema")?.as_u32()?,
            experiment: ExperimentConfig {
                cluster: cluster_f(e.get("cluster")?)?,
                scheme: scheme_f(e.get("scheme")?)?,
                duration: dur_f(e.get("duration")?)?,
                seed: e.get("seed")?.as_u64()?,
                label: e.get("label")?.as_str()?.to_string(),
            },
        })
    }

    fn node_obs_j(o: &NodeObs) -> Json {
        Json::Obj(vec![
            ("utilization".into(), Json::f64(o.utilization)),
            ("intensity".into(), Json::f64(o.intensity)),
            ("gamma".into(), Json::f64(o.gamma)),
            ("beta".into(), Json::f64(o.beta)),
            ("target".into(), Json::u64(u64::from(o.target))),
            ("inflight".into(), Json::u64(u64::from(o.inflight))),
            ("learn_power_w".into(), Json::opt(&o.learn_power_w, |&w| Json::f64(w))),
            (
                "mix".into(),
                Json::Arr(
                    o.mix
                        .iter()
                        .map(|&(u, c)| {
                            Json::Arr(vec![Json::u64(u64::from(u)), Json::u64(u64::from(c))])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn node_obs_f(v: &Json) -> R<NodeObs> {
        Ok(NodeObs {
            utilization: v.get("utilization")?.as_f64()?,
            intensity: v.get("intensity")?.as_f64()?,
            gamma: v.get("gamma")?.as_f64()?,
            beta: v.get("beta")?.as_f64()?,
            target: v.get("target")?.as_u8()?,
            inflight: v.get("inflight")?.as_u32()?,
            learn_power_w: v.get_opt("learn_power_w")?.map(Json::as_f64).transpose()?,
            mix: v
                .get("mix")?
                .as_arr()?
                .iter()
                .map(|pair| {
                    let [u, c] = pair.as_arr()? else {
                        return Err("mix entry must be a [url, count] pair".to_string());
                    };
                    Ok((
                        u16::try_from(u.as_u64()?).map_err(|_| "url out of u16 range")?,
                        c.as_u32()?,
                    ))
                })
                .collect::<R<_>>()?,
        })
    }

    fn sample_j(s: &PlaneSample) -> Json {
        let mut fields = vec![
            ("true_power_w".into(), Json::f64(s.true_power_w)),
            (
                "readings".into(),
                Json::opt(&s.readings, |r| {
                    Json::Arr(r.iter().map(|x| Json::opt(x, |&w| Json::f64(w))).collect())
                }),
            ),
            ("nodes".into(), Json::Arr(s.nodes.iter().map(node_obs_j).collect())),
            (
                "readback".into(),
                Json::opt(&s.readback, |r| {
                    Json::Arr(r.iter().map(|&p| Json::u64(u64::from(p))).collect())
                }),
            ),
            (
                "node_dead".into(),
                Json::Arr(s.node_dead.iter().map(|&d| Json::Bool(d)).collect()),
            ),
            (
                "battery".into(),
                Json::Obj(vec![
                    ("soc".into(), Json::f64(s.battery.soc)),
                    ("stored_j".into(), Json::f64(s.battery.stored_j)),
                    ("discharge_w".into(), Json::f64(s.battery.discharge_w)),
                    ("charge_w".into(), Json::f64(s.battery.charge_w)),
                ]),
            ),
            ("energy_j".into(), Json::f64(s.energy_j)),
            (
                "forgets".into(),
                Json::Arr(
                    s.forgets
                        .iter()
                        .map(|f| {
                            Json::Obj(vec![
                                ("node".into(), Json::u64(f.node as u64)),
                                (
                                    "kind".into(),
                                    Json::str(match f.kind {
                                        ForgetKind::Full => "Full",
                                        ForgetKind::Learn => "Learn",
                                    }),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        // Key elided entirely for flat (no-topology) runs so their
        // traces stay byte-identical to pre-topology recordings.
        if !s.rack_power_w.is_empty() {
            fields.push((
                "rack_power_w".into(),
                Json::Arr(s.rack_power_w.iter().map(|&w| Json::f64(w)).collect()),
            ));
        }
        Json::Obj(fields)
    }

    fn sample_f(v: &Json) -> R<PlaneSample> {
        Ok(PlaneSample {
            true_power_w: v.get("true_power_w")?.as_f64()?,
            readings: v
                .get_opt("readings")?
                .map(|r| {
                    r.as_arr()?
                        .iter()
                        .map(|x| match x {
                            Json::Null => Ok(None),
                            other => other.as_f64().map(Some),
                        })
                        .collect::<R<Vec<Option<f64>>>>()
                })
                .transpose()?,
            nodes: v.get("nodes")?.as_arr()?.iter().map(node_obs_f).collect::<R<_>>()?,
            readback: v
                .get_opt("readback")?
                .map(|r| r.as_arr()?.iter().map(Json::as_u8).collect::<R<Vec<u8>>>())
                .transpose()?,
            node_dead: v
                .get("node_dead")?
                .as_arr()?
                .iter()
                .map(Json::as_bool)
                .collect::<R<_>>()?,
            battery: {
                let b = v.get("battery")?;
                BatteryObs {
                    soc: b.get("soc")?.as_f64()?,
                    stored_j: b.get("stored_j")?.as_f64()?,
                    discharge_w: b.get("discharge_w")?.as_f64()?,
                    charge_w: b.get("charge_w")?.as_f64()?,
                }
            },
            energy_j: v.get("energy_j")?.as_f64()?,
            forgets: v
                .get("forgets")?
                .as_arr()?
                .iter()
                .map(|f| {
                    Ok(Forget {
                        node: f.get("node")?.as_usize()?,
                        kind: match f.get("kind")?.as_str()? {
                            "Full" => ForgetKind::Full,
                            "Learn" => ForgetKind::Learn,
                            other => return Err(format!("unknown forget kind {other:?}")),
                        },
                    })
                })
                .collect::<R<_>>()?,
            rack_power_w: v
                .get_opt("rack_power_w")?
                .map(|r| r.as_arr()?.iter().map(Json::as_f64).collect::<R<Vec<f64>>>())
                .transpose()?
                .unwrap_or_default(),
        })
    }

    fn action_j(a: &ActionRecord) -> Json {
        match *a {
            ActionRecord::SetPState { node, target } => Json::Obj(vec![(
                "SetPState".into(),
                Json::Obj(vec![
                    ("node".into(), Json::u64(node as u64)),
                    ("target".into(), Json::u64(u64::from(target))),
                ]),
            )]),
            ActionRecord::SetPowerLimit { node, limit_w } => Json::Obj(vec![(
                "SetPowerLimit".into(),
                Json::Obj(vec![
                    ("node".into(), Json::u64(node as u64)),
                    ("limit_w".into(), Json::opt(&limit_w, |&w| Json::f64(w))),
                ]),
            )]),
            ActionRecord::BatteryDischarge { watts } => Json::Obj(vec![(
                "BatteryDischarge".into(),
                Json::Obj(vec![("watts".into(), Json::f64(watts))]),
            )]),
            ActionRecord::BatteryCharge { watts } => Json::Obj(vec![(
                "BatteryCharge".into(),
                Json::Obj(vec![("watts".into(), Json::f64(watts))]),
            )]),
        }
    }

    fn action_f(v: &Json) -> R<ActionRecord> {
        let [(tag, body)] = v.as_obj()? else {
            return Err("action must be a single-key tagged object".to_string());
        };
        Ok(match tag.as_str() {
            "SetPState" => ActionRecord::SetPState {
                node: body.get("node")?.as_usize()?,
                target: body.get("target")?.as_u8()?,
            },
            "SetPowerLimit" => ActionRecord::SetPowerLimit {
                node: body.get("node")?.as_usize()?,
                limit_w: body.get_opt("limit_w")?.map(Json::as_f64).transpose()?,
            },
            "BatteryDischarge" => {
                ActionRecord::BatteryDischarge { watts: body.get("watts")?.as_f64()? }
            }
            "BatteryCharge" => {
                ActionRecord::BatteryCharge { watts: body.get("watts")?.as_f64()? }
            }
            other => return Err(format!("unknown action {other:?}")),
        })
    }

    pub(super) fn slot_to_json(s: &SlotRecord) -> Json {
        Json::Obj(vec![
            ("slot".into(), Json::u64(s.slot)),
            ("now".into(), time_j(s.now)),
            ("sample".into(), sample_j(&s.sample)),
            (
                "view".into(),
                Json::Obj(vec![
                    (
                        "condition".into(),
                        Json::str(match s.view.condition {
                            ConditionRecord::Nominal => "Nominal",
                            ConditionRecord::NearBudget => "NearBudget",
                            ConditionRecord::Transient => "Transient",
                            ConditionRecord::Emergency => "Emergency",
                        }),
                    ),
                    ("observed_w".into(), Json::f64(s.view.observed_w)),
                    ("coverage".into(), Json::f64(s.view.coverage)),
                    ("watchdog_engaged".into(), Json::Bool(s.view.watchdog_engaged)),
                ]),
            ),
            (
                "decisions".into(),
                Json::Obj(vec![
                    (
                        "retries".into(),
                        Json::Arr(
                            s.decisions
                                .retries
                                .iter()
                                .map(|&(n, p)| {
                                    Json::Arr(vec![Json::u64(n as u64), Json::u64(u64::from(p))])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "actions".into(),
                        Json::Arr(s.decisions.actions.iter().map(action_j).collect()),
                    ),
                ]),
            ),
        ])
    }

    pub(super) fn slot_from_json(v: &Json) -> R<SlotRecord> {
        let view = v.get("view")?;
        let decisions = v.get("decisions")?;
        Ok(SlotRecord {
            slot: v.get("slot")?.as_u64()?,
            now: time_f(v.get("now")?)?,
            sample: sample_f(v.get("sample")?)?,
            view: ViewRecord {
                condition: match view.get("condition")?.as_str()? {
                    "Nominal" => ConditionRecord::Nominal,
                    "NearBudget" => ConditionRecord::NearBudget,
                    "Transient" => ConditionRecord::Transient,
                    "Emergency" => ConditionRecord::Emergency,
                    other => return Err(format!("unknown condition {other:?}")),
                },
                observed_w: view.get("observed_w")?.as_f64()?,
                coverage: view.get("coverage")?.as_f64()?,
                watchdog_engaged: view.get("watchdog_engaged")?.as_bool()?,
            },
            decisions: DecisionRecord {
                retries: decisions
                    .get("retries")?
                    .as_arr()?
                    .iter()
                    .map(|pair| {
                        let [n, p] = pair.as_arr()? else {
                            return Err("retry must be a [node, pstate] pair".to_string());
                        };
                        Ok((n.as_usize()?, p.as_u8()?))
                    })
                    .collect::<R<_>>()?,
                actions: decisions
                    .get("actions")?
                    .as_arr()?
                    .iter()
                    .map(action_f)
                    .collect::<R<_>>()?,
            },
        })
    }

    pub(super) fn footer_to_json(f: &TraceFooter) -> Json {
        Json::Obj(vec![
            ("slots".into(), Json::u64(f.slots)),
            ("actions".into(), Json::u64(f.actions)),
            ("retries".into(), Json::u64(f.retries)),
            ("emergency_slots".into(), Json::u64(f.emergency_slots)),
            ("watchdog_slots".into(), Json::u64(f.watchdog_slots)),
            ("energy_j".into(), Json::f64(f.energy_j)),
            ("peak_true_w".into(), Json::f64(f.peak_true_w)),
        ])
    }

    pub(super) fn footer_from_json(v: &Json) -> R<TraceFooter> {
        Ok(TraceFooter {
            slots: v.get("slots")?.as_u64()?,
            actions: v.get("actions")?.as_u64()?,
            retries: v.get("retries")?.as_u64()?,
            emergency_slots: v.get("emergency_slots")?.as_u64()?,
            watchdog_slots: v.get("watchdog_slots")?.as_u64()?,
            energy_j: v.get("energy_j")?.as_f64()?,
            peak_true_w: v.get("peak_true_w")?.as_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchemeKind;
    use powercap::budget::BudgetLevel;

    fn tiny_exp() -> ExperimentConfig {
        crate::testutil::quick_exp(SchemeKind::AntiDope, BudgetLevel::Medium, 10, 7)
    }

    #[test]
    fn jsonl_round_trips() {
        let exp = tiny_exp();
        let mut rec = TraceRecorder::new(&exp);
        rec.note_forget(2, ForgetKind::Full);
        let trace = rec.finish();
        let text = trace.to_jsonl();
        let back = ControlTrace::from_jsonl_str(&text).expect("round trip");
        assert_eq!(back.header.schema, TRACE_SCHEMA_VERSION);
        assert_eq!(back.slots.len(), 0);
        assert_eq!(back.footer, trace.footer);
    }

    #[test]
    fn schema_mismatch_is_a_typed_error() {
        let exp = tiny_exp();
        let mut trace = TraceRecorder::new(&exp).finish();
        trace.header.schema = TRACE_SCHEMA_VERSION + 1;
        let err = ControlTrace::from_jsonl_str(&trace.to_jsonl()).expect_err("must reject");
        assert!(matches!(
            err,
            ConfigError::TraceSchema { found, supported }
                if found == TRACE_SCHEMA_VERSION + 1 && supported == TRACE_SCHEMA_VERSION
        ));
    }

    #[test]
    fn truncated_trace_is_a_typed_error() {
        let exp = tiny_exp();
        let trace = TraceRecorder::new(&exp).finish();
        let text = trace.to_jsonl();
        let only_header = text.lines().next().expect("header line");
        let err = ControlTrace::from_jsonl_str(only_header).expect_err("must reject");
        assert!(matches!(err, ConfigError::TraceFormat { .. }));
        let err = ControlTrace::from_jsonl_str("not json").expect_err("must reject");
        assert!(matches!(err, ConfigError::TraceFormat { .. }));
    }

    #[test]
    fn shard_layout_matches_near_even_partition() {
        let (ranges, owner) = shard_layout(10, 4);
        assert_eq!(ranges, vec![(0, 3), (3, 3), (6, 2), (8, 2)]);
        assert_eq!(owner, vec![0, 0, 0, 1, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn action_record_round_trips() {
        let all = [
            Action::SetPState { node: 3, target: PState(5) },
            Action::SetPowerLimit { node: 1, limit_w: Some(80.0) },
            Action::SetPowerLimit { node: 1, limit_w: None },
            Action::BatteryDischarge { watts: 120.0 },
            Action::BatteryCharge { watts: 0.0 },
        ];
        for a in all {
            assert_eq!(ActionRecord::from(&a).to_action(), a);
        }
    }
}
