//! **Act** — actuation (the paper's DPM throttling + battery
//! transition, Fig. 12).
//!
//! Routes the decision stage's [`Action`] plan to hardware: DVFS
//! P-state commands, RAPL-style power limits, and battery
//! discharge/charge transitions. Under fault injection every command
//! passes through the fault layer (which may lose, delay, or wedge it),
//! and commanded P-states are recorded for read-back verification: a
//! command that never took is re-issued with bounded doubling backoff
//! and abandoned after the configured retry budget.

use super::{BatteryFlows, FaultLayer};
use crate::cluster::Ev;
use crate::health::{ActuatorVerify, VerifyOutcome};
use crate::node::ComputeNode;
use crate::scheme::Action;
use powercap::battery::Battery;
use powercap::pstate::PState;
use simcore::faults::ActuationFault;
use simcore::{Scheduler, SimTime};

/// Everything actuation touches, borrowed from the simulator for the
/// duration of one enact pass.
pub(crate) struct ActCtx<'a> {
    /// The compute nodes (DVFS / RAPL targets).
    pub nodes: &'a mut [ComputeNode],
    /// Dead-node mask: crashed nodes are not actuated.
    pub node_dead: &'a [bool],
    /// The battery.
    pub battery: &'a mut Battery,
    /// Granted battery flows, updated in place.
    pub flows: &'a mut BatteryFlows,
    /// Fault layer, when configured.
    pub fault: Option<&'a mut FaultLayer>,
}

/// Actuation stage: command issue plus read-back verification.
pub struct ActStage {
    /// Read-back verifier, present only under fault injection.
    pub verify: Option<ActuatorVerify>,
    /// Recycled retry list for [`Self::sweep`] — cleared every pass so
    /// the steady-state slot path allocates nothing.
    pub(crate) retry_scratch: Vec<(usize, PState)>,
}

impl ActStage {
    /// Read-back verification: re-command actuations whose target never
    /// took (a lost command or a stuck governor), with bounded doubling
    /// backoff. `check` rearms the intent in place, so a retry must NOT
    /// re-record it — that would reset the budget.
    pub(crate) fn sweep(
        &mut self,
        now: SimTime,
        nodes: &mut [ComputeNode],
        node_dead: &[bool],
        fault: &mut FaultLayer,
        sched: &mut Scheduler<Ev>,
    ) {
        let Some(verify) = self.verify.as_mut() else {
            return;
        };
        self.retry_scratch.clear();
        self.retry_scratch.extend(
            nodes
                .iter()
                .enumerate()
                .filter(|(i, _)| !node_dead[*i])
                .filter_map(|(i, n)| match verify.check(i, n.target_pstate(), now) {
                    VerifyOutcome::Retry(target) => Some((i, target)),
                    _ => None,
                }),
        );
        for &(node, target) in &self.retry_scratch {
            issue_pstate(now, node, target, nodes, Some(&mut *fault), sched);
        }
    }

    /// Enact one slot's action plan, draining `actions` (a recycled
    /// per-slot buffer owned by the pipeline) in the process.
    pub(crate) fn enact(
        &mut self,
        now: SimTime,
        actions: &mut Vec<Action>,
        mut ctx: ActCtx<'_>,
        sched: &mut Scheduler<Ev>,
    ) {
        for action in actions.drain(..) {
            match action {
                Action::SetPState { node, target } => {
                    if ctx.fault.is_some() && ctx.node_dead[node] {
                        continue; // don't actuate a crashed node
                    }
                    if let Some(verify) = self.verify.as_mut() {
                        verify.record(node, target, now);
                    }
                    issue_pstate(now, node, target, ctx.nodes, ctx.fault.as_deref_mut(), sched);
                }
                Action::SetPowerLimit { node, limit_w } => {
                    if ctx.fault.is_some() && ctx.node_dead[node] {
                        continue;
                    }
                    if let Some(verify) = self.verify.as_mut() {
                        let intent = ctx.nodes[node].resolve_power_limit(limit_w);
                        verify.record(node, intent, now);
                    }
                    issue_power_limit(now, node, limit_w, ctx.nodes, ctx.fault.as_deref_mut(), sched);
                }
                Action::BatteryDischarge { watts } => {
                    let grant = ctx.battery.start_discharge(now, watts);
                    ctx.flows.discharge_w = grant;
                    ctx.flows.charge_w = 0.0;
                    if let Some(ttb) = ctx.battery.time_to_bound() {
                        sched.at(now + ttb, Ev::BatteryBound);
                    }
                }
                Action::BatteryCharge { watts } => {
                    // A failed charger blocks real charge commands; a
                    // zero-watt command is a stop and needs no charger.
                    if watts > 0.0 {
                        if let Some(f) = ctx.fault.as_deref_mut() {
                            if f.plan.charger_failed(now) {
                                f.charger_blocked_slots += 1;
                                continue;
                            }
                        }
                    }
                    let drawn = ctx.battery.start_charge(now, watts);
                    ctx.flows.charge_w = drawn;
                    ctx.flows.discharge_w = 0.0;
                    if let Some(ttb) = ctx.battery.time_to_bound() {
                        sched.at(now + ttb, Ev::BatteryBound);
                    }
                }
            }
        }
    }

    /// Drop any outstanding intent (the node crashed or rebooted).
    pub fn clear_node(&mut self, node: usize) {
        if let Some(verify) = self.verify.as_mut() {
            verify.clear(node);
        }
    }
}

/// Route a P-state command through the fault layer (when active) and
/// schedule its settle event. A lost or stuck command leaves the node
/// untouched — read-back verification catches it next slot.
pub(crate) fn issue_pstate(
    now: SimTime,
    node: usize,
    target: PState,
    nodes: &mut [ComputeNode],
    fault: Option<&mut FaultLayer>,
    sched: &mut Scheduler<Ev>,
) {
    match fault.map(|f| f.plan.actuate(now, node)) {
        None | Some(ActuationFault::Clean) => {
            let settle = nodes[node].command_pstate(now, target);
            sched.at(settle, Ev::DvfsSettle { node });
        }
        Some(ActuationFault::Delayed(extra)) => {
            let settle = nodes[node].command_pstate_after(now, target, extra);
            sched.at(settle, Ev::DvfsSettle { node });
        }
        Some(ActuationFault::Lost | ActuationFault::Stuck) => {}
    }
}

/// Power-limit analog of [`issue_pstate`].
pub(crate) fn issue_power_limit(
    now: SimTime,
    node: usize,
    limit_w: Option<f64>,
    nodes: &mut [ComputeNode],
    fault: Option<&mut FaultLayer>,
    sched: &mut Scheduler<Ev>,
) {
    match fault.map(|f| f.plan.actuate(now, node)) {
        None | Some(ActuationFault::Clean) => {
            let (_, settle) = nodes[node].command_power_limit(now, limit_w);
            sched.at(settle, Ev::DvfsSettle { node });
        }
        Some(ActuationFault::Delayed(extra)) => {
            let (_, settle) = nodes[node].command_power_limit_after(now, limit_w, extra);
            sched.at(settle, Ev::DvfsSettle { node });
        }
        Some(ActuationFault::Lost | ActuationFault::Stuck) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::faults::{FaultConfig, FaultPlan};
    use simcore::rng::RngFactory;
    use simcore::SimDuration;

    fn lossy_fault_layer() -> FaultLayer {
        let cfg = FaultConfig {
            actuator_loss_p: 1.0, // every command vanishes
            ..FaultConfig::default()
        };
        let rng = RngFactory::new(7).stream(simcore::rng::streams::FAULTS);
        FaultLayer::new(FaultPlan::new(cfg, 1, rng).unwrap())
    }

    fn node() -> ComputeNode {
        ComputeNode::new(SimTime::ZERO, 4, 64, SimDuration::from_secs(1))
    }

    #[test]
    fn abandons_actuation_after_max_retries() {
        let max_retries = 3u8;
        let mut stage = ActStage {
            verify: Some(ActuatorVerify::new(1, max_retries, SimDuration::from_secs(1))),
            retry_scratch: Vec::new(),
        };
        let mut nodes = vec![node()];
        let node_dead = vec![false];
        let mut fault = lossy_fault_layer();
        let top = nodes[0].table().max_state();
        let mut battery = Battery::sized_for(SimTime::ZERO, 400.0, SimDuration::from_secs(60));
        let mut flows = BatteryFlows::default();

        // Command a throttle; the fault layer loses it.
        let mut sched = Scheduler::detached(SimTime::ZERO);
        stage.enact(
            SimTime::ZERO,
            &mut vec![Action::SetPState {
                node: 0,
                target: PState(4),
            }],
            ActCtx {
                nodes: &mut nodes,
                node_dead: &node_dead,
                battery: &mut battery,
                flows: &mut flows,
                fault: Some(&mut fault),
            },
            &mut sched,
        );
        assert_eq!(nodes[0].target_pstate(), top, "lost command must not land");

        // Read-back sweeps: each retry is re-lost; after the budget is
        // spent the intent is abandoned, not retried forever. Backoff
        // doubles from 1 s, so retries fall due at t = 1, 3, 7 and the
        // give-up at t = 15.
        for t in [1u64, 3, 7, 15, 31] {
            let mut sched = Scheduler::detached(SimTime::from_secs(t));
            stage.sweep(
                SimTime::from_secs(t),
                &mut nodes,
                &node_dead,
                &mut fault,
                &mut sched,
            );
        }
        let verify = stage.verify.as_ref().unwrap();
        assert_eq!(verify.retries(), max_retries as u64);
        assert_eq!(verify.giveups(), 1, "intent abandoned after the budget");
        assert_eq!(verify.confirmed(), 0);
        assert_eq!(nodes[0].target_pstate(), top, "node stayed wedged");
    }

    #[test]
    fn confirmed_actuation_needs_no_retry() {
        let mut stage = ActStage {
            verify: Some(ActuatorVerify::new(1, 3, SimDuration::from_secs(1))),
            retry_scratch: Vec::new(),
        };
        let mut nodes = vec![node()];
        let node_dead = vec![false];
        let mut battery = Battery::sized_for(SimTime::ZERO, 400.0, SimDuration::from_secs(60));
        let mut flows = BatteryFlows::default();
        let mut sched = Scheduler::detached(SimTime::ZERO);
        // No fault layer: the command lands cleanly.
        stage.enact(
            SimTime::ZERO,
            &mut vec![Action::SetPState {
                node: 0,
                target: PState(4),
            }],
            ActCtx {
                nodes: &mut nodes,
                node_dead: &node_dead,
                battery: &mut battery,
                flows: &mut flows,
                fault: None,
            },
            &mut sched,
        );
        assert_eq!(nodes[0].target_pstate(), PState(4));
        let mut clean = FaultLayer::new(
            FaultPlan::new(
                FaultConfig::default(),
                1,
                RngFactory::new(7).stream(simcore::rng::streams::FAULTS),
            )
            .unwrap(),
        );
        let mut sched = Scheduler::detached(SimTime::from_secs(1));
        stage.sweep(SimTime::from_secs(1), &mut nodes, &node_dead, &mut clean, &mut sched);
        let verify = stage.verify.as_ref().unwrap();
        assert_eq!(verify.confirmed(), 1);
        assert_eq!((verify.retries(), verify.giveups()), (0, 0));
    }
}
