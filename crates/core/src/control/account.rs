//! **Account** — exact physical integration: energy metering, thermal
//! RC dynamics, and the breaker model (the oversubscription physics
//! behind Figs. 1 and 19 of the paper).
//!
//! Power is integrated *exactly*: every event that can change any
//! node's power routes through the stage's `sync_power`, so the energy
//! numbers are independent of the control-slot length. The thermal and
//! breaker models advance once per slot; conceptually the accountant
//! brackets the slot — running at the top of `handle_slot`, it closes
//! the *previous* slot's integration interval before the control plane
//! produces new commands.

use super::BatteryFlows;
use crate::cluster::Ev;
use crate::node::ComputeNode;
use dcmetrics::energy::EnergySource;
use dcmetrics::{EnergyMeter, OnlineSummary, TimeSeries};
use powercap::pdu::{BreakerState, PowerHierarchy};
use powercap::pstate::PState;
use powercap::thermal::{ThermalNode, ThermalState};
use simcore::{Scheduler, SimTime};

/// Physical-integration stage: meter, series, thermal and breaker
/// models, and the outage latch.
pub struct AccountStage {
    /// Exact three-source energy meter (utility / battery / charge).
    pub(crate) meter: EnergyMeter,
    /// Current aggregate load power, watts.
    pub(crate) cluster_power_w: f64,
    /// Per-slot cluster power samples.
    pub(crate) power_series: TimeSeries,
    /// Per-slot battery state-of-charge samples.
    pub(crate) battery_series: TimeSeries,
    /// Per-slot mean V/F reduction across nodes.
    pub(crate) vf_summary: OnlineSummary,
    /// Deepest V/F reduction seen on any node.
    pub(crate) max_vf: u8,
    /// Cluster breaker model, when configured.
    pub(crate) hierarchy: Option<PowerHierarchy>,
    /// Per-node thermal models, when configured.
    pub(crate) thermals: Option<Vec<ThermalNode>>,
    /// When the breaker opened, if it did.
    pub(crate) outage_at: Option<SimTime>,
}

impl AccountStage {
    /// Fresh accountant with the meter and series seeded at the
    /// cluster's idle draw.
    pub(crate) fn new(
        start: SimTime,
        idle_power_w: f64,
        hierarchy: Option<PowerHierarchy>,
        thermals: Option<Vec<ThermalNode>>,
    ) -> Self {
        let mut meter = EnergyMeter::new(start);
        meter.set_power(start, EnergySource::Utility, idle_power_w);
        let mut power_series = TimeSeries::new();
        power_series.record(start, idle_power_w);
        let mut battery_series = TimeSeries::new();
        battery_series.record(start, 1.0);
        AccountStage {
            meter,
            cluster_power_w: idle_power_w,
            power_series,
            battery_series,
            vf_summary: OnlineSummary::new(),
            max_vf: 0,
            hierarchy,
            thermals,
            outage_at: None,
        }
    }

    /// When the breaker opened, if it did.
    pub fn outage(&self) -> Option<SimTime> {
        self.outage_at
    }

    /// Current aggregate load power, watts.
    pub fn cluster_power_w(&self) -> f64 {
        self.cluster_power_w
    }

    /// Cumulative load energy delivered up to `now`, joules — the
    /// RAPL-style counter the trace recorder stamps into each slot.
    pub fn load_joules(&self, now: SimTime) -> f64 {
        self.meter.load_joules(now)
    }

    /// Recompute aggregate power and push the step change into the
    /// meter. Called on *every* power-changing event, not just slots.
    pub(crate) fn sync_power(
        &mut self,
        now: SimTime,
        nodes: &[ComputeNode],
        node_dead: &[bool],
        flows: &BatteryFlows,
    ) {
        if self.outage_at.is_some() {
            self.cluster_power_w = 0.0;
            self.meter.set_power(now, EnergySource::Utility, 0.0);
            self.meter.set_power(now, EnergySource::Battery, 0.0);
            self.meter.set_power(now, EnergySource::BatteryCharge, 0.0);
            return;
        }
        let total: f64 = nodes
            .iter()
            .zip(node_dead)
            .map(|(n, &dead)| if dead { 0.0 } else { n.power_w() })
            .sum();
        self.sync_power_total(now, total, flows);
    }

    /// Meter-update half of [`Self::sync_power`] for callers that
    /// already know the aggregate draw. The sharded engine maintains the
    /// per-node power column incrementally and hands the slot-boundary
    /// total straight in, skipping the O(nodes) rescan.
    pub(crate) fn sync_power_total(&mut self, now: SimTime, total: f64, flows: &BatteryFlows) {
        if self.outage_at.is_some() {
            self.cluster_power_w = 0.0;
            self.meter.set_power(now, EnergySource::Utility, 0.0);
            self.meter.set_power(now, EnergySource::Battery, 0.0);
            self.meter.set_power(now, EnergySource::BatteryCharge, 0.0);
            return;
        }
        self.cluster_power_w = total;
        let utility = (total - flows.discharge_w).max(0.0) + flows.charge_w;
        self.meter.set_power(now, EnergySource::Utility, utility);
        self.meter
            .set_power(now, EnergySource::Battery, flows.discharge_w.min(total));
        self.meter
            .set_power(now, EnergySource::BatteryCharge, flows.charge_w);
    }

    /// Advance the per-node thermal models one slot. PROCHOT clamps the
    /// P-state in hardware (bypassing the fault layer — it is a
    /// hardware path, not a control command); a critical trip is
    /// returned for the driver to kill the node (the cooling layer of
    /// the DOPE threat).
    /// Trips are appended to `tripped`, a caller-owned scratch buffer
    /// that is cleared here so the steady-state slot path allocates
    /// nothing.
    pub(crate) fn advance_thermals(
        &mut self,
        now: SimTime,
        nodes: &mut [ComputeNode],
        node_dead: &[bool],
        sched: &mut Scheduler<Ev>,
        tripped: &mut Vec<usize>,
    ) {
        tripped.clear();
        let Some(thermals) = self.thermals.as_mut() else {
            return;
        };
        for (i, th) in thermals.iter_mut().enumerate() {
            if node_dead[i] {
                continue;
            }
            let power = nodes[i].power_w();
            let was = th.state();
            let state = th.advance(now, power);
            match state {
                ThermalState::Prochot if was != ThermalState::Prochot => {
                    // Hardware clamp: 1.6 GHz region regardless of
                    // what any scheme commanded.
                    let settle = nodes[i].command_pstate(now, PState(4));
                    sched.at(settle, Ev::DvfsSettle { node: i });
                }
                ThermalState::Nominal if was == ThermalState::Prochot => {
                    // Clamp released; schemes re-throttle next slot
                    // if they need to.
                    let top = nodes[i].table().max_state();
                    let settle = nodes[i].command_pstate(now, top);
                    sched.at(settle, Ev::DvfsSettle { node: i });
                }
                ThermalState::Tripped => tripped.push(i),
                _ => {}
            }
        }
    }

    /// Feed the breaker what the utility actually carries; returns true
    /// if it tripped *this* call (the unplanned outage of Fig. 1 — the
    /// battery cannot save an open breaker). The outage latch is set
    /// here; the driver handles the consequences (draining every node).
    pub(crate) fn breaker_tripped(
        &mut self,
        now: SimTime,
        flows: &BatteryFlows,
        n_nodes: usize,
    ) -> bool {
        if self.outage_at.is_some() {
            return false;
        }
        let Some(h) = &mut self.hierarchy else {
            return false;
        };
        let utility = (self.cluster_power_w - flows.discharge_w).max(0.0) + flows.charge_w;
        h.set_server_power(now, 0, utility);
        for i in 1..n_nodes {
            h.set_server_power(now, i, 0.0);
        }
        if matches!(h.cluster_breaker(), BreakerState::Tripped { .. }) {
            self.outage_at = Some(now);
            true
        } else {
            false
        }
    }

    /// End-of-slot bookkeeping: record the power / SoC series and the
    /// V/F reduction statistics.
    pub(crate) fn record_slot(&mut self, now: SimTime, nodes: &[ComputeNode], battery_soc: f64) {
        let mean_vf = nodes
            .iter()
            .map(|n| n.vf_reduction_steps() as f64)
            .sum::<f64>()
            / nodes.len() as f64;
        let max_vf = nodes.iter().map(|n| n.vf_reduction_steps()).max().unwrap_or(0);
        self.record_slot_stats(now, mean_vf, max_vf, battery_soc);
    }

    /// Series half of [`Self::record_slot`] for callers that computed
    /// the V/F statistics themselves (the sharded engine scans its
    /// data-oriented V/F column instead of walking the node structs).
    pub(crate) fn record_slot_stats(
        &mut self,
        now: SimTime,
        mean_vf: f64,
        max_vf: u8,
        battery_soc: f64,
    ) {
        self.power_series.record(now, self.cluster_power_w);
        self.battery_series.record(now, battery_soc);
        self.vf_summary.record(mean_vf);
        self.max_vf = self.max_vf.max(max_vf);
    }

    /// Dark data center: record the flatline so the report covers the
    /// full window.
    pub(crate) fn record_outage_slot(&mut self, now: SimTime, battery_soc: f64) {
        self.power_series.record(now, 0.0);
        self.battery_series.record(now, battery_soc);
        self.meter.set_power(now, EnergySource::Utility, 0.0);
        self.meter.set_power(now, EnergySource::Battery, 0.0);
        self.meter.set_power(now, EnergySource::BatteryCharge, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    /// The thermal pass must reuse the caller-owned trip scratch: with
    /// capacity for every node pre-reserved, no slot may reallocate it,
    /// even in the slot where every node trips.
    #[test]
    fn thermal_scratch_is_reused_without_reallocation() {
        let start = SimTime::ZERO;
        let n = 4;
        let mut nodes: Vec<ComputeNode> = (0..n)
            .map(|_| ComputeNode::new(start, 4, 32, SimDuration::from_secs(1)))
            .collect();
        // 2 °C/W against ~55 W idle draw: steady state far above the
        // 95 °C critical line, so every node trips within a few τ.
        let thermals: Vec<ThermalNode> = (0..n)
            .map(|_| {
                ThermalNode::new(start, 25.0, 2.0, SimDuration::from_secs(10), 75.0, 70.0, 95.0)
            })
            .collect();
        let mut stage = AccountStage::new(start, 0.0, None, Some(thermals));
        let mut node_dead = vec![false; n];
        let mut tripped: Vec<usize> = Vec::with_capacity(n);
        let ptr = tripped.as_ptr();
        let mut total_trips = 0usize;
        for s in 1..=60u64 {
            let now = SimTime::from_secs(s);
            let mut sched = Scheduler::detached(now);
            stage.advance_thermals(now, &mut nodes, &node_dead, &mut sched, &mut tripped);
            total_trips += tripped.len();
            assert_eq!(tripped.as_ptr(), ptr, "slot {s} reallocated the trip scratch");
            for &i in &tripped {
                node_dead[i] = true; // the driver kills tripped nodes
            }
        }
        assert_eq!(total_trips, n, "every node trips exactly once in this rig");
    }
}
