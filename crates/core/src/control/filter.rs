//! **Filter** — telemetry trust (the paper's power monitor + health
//! checker, Fig. 12).
//!
//! Turns a raw [`TelemetryFrame`] into the trusted [`ClusterView`] the
//! decision stage acts on: [`TelemetryHealth`] bridges sensor dropouts
//! with last-good values (nameplate for nodes blind past the staleness
//! deadline), the [`Watchdog`] engages when fresh-sensor coverage falls
//! below the configured floor, and the [`PowerMonitor`] renders the
//! slot's budget verdict on the filtered estimate.

use super::{ClusterView, TelemetryFrame};
use crate::health::{TelemetryHealth, Watchdog};
use powercap::monitor::PowerMonitor;
use simcore::SimTime;

/// The fault-tolerance half of the filter, present only under fault
/// injection: estimation over partially-missing readings plus the
/// coverage watchdog.
pub struct Hardening {
    /// Last-good-value estimator with a staleness deadline.
    pub telemetry: TelemetryHealth,
    /// Coverage watchdog with recovery hysteresis.
    pub watchdog: Watchdog,
}

/// Telemetry-trust stage: hardening (optional) + the power monitor.
pub struct FilterStage {
    /// The paper's power monitor: slot-averaged budget verdicts.
    pub monitor: PowerMonitor,
    /// Dropout bridging + watchdog, when a fault plan is configured.
    pub hardening: Option<Hardening>,
}

impl FilterStage {
    /// Fold one frame into a trusted view. The order is load-bearing:
    /// estimate → watchdog → monitor, so the watchdog judges the same
    /// coverage the monitor's estimate was built from.
    pub fn run(
        &mut self,
        now: SimTime,
        frame: &TelemetryFrame,
        per_node_nameplate_w: f64,
    ) -> ClusterView {
        match (&mut self.hardening, &frame.readings) {
            (Some(h), Some(readings)) => {
                let est = h.telemetry.estimate(now, readings, per_node_nameplate_w);
                let engaged = h.watchdog.observe(now, est.coverage);
                ClusterView {
                    condition: self.monitor.observe(now, est.power_w),
                    observed_w: est.power_w,
                    coverage: est.coverage,
                    watchdog_engaged: engaged,
                }
            }
            _ => ClusterView {
                condition: self.monitor.observe(now, frame.true_power_w),
                observed_w: frame.true_power_w,
                coverage: 1.0,
                watchdog_engaged: false,
            },
        }
    }

    /// Drop a node's held sample (it crashed; its next reading comes
    /// from fresh hardware).
    pub fn forget_node(&mut self, node: usize) {
        if let Some(h) = &mut self.hardening {
            h.telemetry.forget(node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powercap::budget::{BudgetLevel, PowerBudget};
    use simcore::SimDuration;

    fn stage(n_nodes: usize) -> FilterStage {
        let budget = PowerBudget::for_cluster(400.0, BudgetLevel::Normal);
        FilterStage {
            monitor: PowerMonitor::new(budget, 10, 1).unwrap(),
            hardening: Some(Hardening {
                telemetry: TelemetryHealth::new(n_nodes, SimDuration::from_secs(5)),
                watchdog: Watchdog::new(0.5, 3),
            }),
        }
    }

    fn frame(readings: Vec<Option<f64>>) -> TelemetryFrame {
        TelemetryFrame {
            true_power_w: 0.0, // hardened path must ignore this
            readings: Some(readings),
        }
    }

    #[test]
    fn holds_last_good_through_a_dropout() {
        let mut f = stage(2);
        let v = f.run(SimTime::from_secs(1), &frame(vec![Some(70.0), Some(50.0)]), 100.0);
        assert_eq!(v.observed_w, 120.0);
        assert_eq!(v.coverage, 1.0);
        assert!(!v.watchdog_engaged);
        // Node 0's sensor drops out: its 70 W reading is held, not
        // replaced by the 100 W nameplate.
        let v = f.run(SimTime::from_secs(2), &frame(vec![None, Some(55.0)]), 100.0);
        assert_eq!(v.observed_w, 125.0);
        assert_eq!(v.coverage, 0.5);
        assert!(!v.watchdog_engaged, "coverage at the floor is still trusted");
    }

    #[test]
    fn engages_watchdog_below_coverage_floor() {
        let mut f = stage(2);
        f.run(SimTime::from_secs(1), &frame(vec![Some(70.0), Some(50.0)]), 100.0);
        // Total blackout: both values held, but zero fresh coverage
        // trips the 0.5 floor.
        let v = f.run(SimTime::from_secs(2), &frame(vec![None, None]), 100.0);
        assert_eq!(v.observed_w, 120.0, "held values still feed the estimate");
        assert_eq!(v.coverage, 0.0);
        assert!(v.watchdog_engaged);
        // Recovery needs 3 consecutive healthy slots (hysteresis).
        for t in 3..5 {
            let v = f.run(SimTime::from_secs(t), &frame(vec![Some(70.0), Some(50.0)]), 100.0);
            assert!(v.watchdog_engaged, "slot {t} still in probation");
        }
        let v = f.run(SimTime::from_secs(5), &frame(vec![Some(70.0), Some(50.0)]), 100.0);
        assert!(!v.watchdog_engaged);
    }

    #[test]
    fn forget_node_drops_the_held_value() {
        let mut f = stage(2);
        f.run(SimTime::from_secs(1), &frame(vec![Some(70.0), Some(50.0)]), 100.0);
        f.forget_node(0);
        // With the held value gone, the dropout is charged nameplate.
        let v = f.run(SimTime::from_secs(2), &frame(vec![None, Some(50.0)]), 100.0);
        assert_eq!(v.observed_w, 150.0);
    }

    #[test]
    fn unhardened_stage_passes_truth_through() {
        let budget = PowerBudget::for_cluster(400.0, BudgetLevel::Normal);
        let mut f = FilterStage {
            monitor: PowerMonitor::new(budget, 10, 1).unwrap(),
            hardening: None,
        };
        let v = f.run(
            SimTime::from_secs(1),
            &TelemetryFrame {
                true_power_w: 160.0,
                readings: None,
            },
            100.0,
        );
        assert_eq!(v.observed_w, 160.0);
        assert_eq!(v.coverage, 1.0);
        assert!(!v.watchdog_engaged);
    }
}
