//! **Sense** — telemetry acquisition (the inputs to the paper's power
//! monitor, Fig. 12).
//!
//! Reads per-node power each control slot and packages it as a
//! [`TelemetryFrame`]. Without a fault layer the stage passes the true
//! aggregate through untouched; with one, every live node's sensor is
//! read through the fault plan's `sense` hook (global or per-shard, see
//! `FaultPlanSet`), which may drop, freeze, lag, or perturb the
//! reading.
//!
//! The per-node readings vector is recycled between slots: the driver
//! hands the frame back through `SenseStage::recycle` once the
//! downstream stages are done with it, so steady-state slots perform no
//! heap allocation.

use super::{FaultPlanSet, TelemetryFrame};
use crate::node::ComputeNode;
use simcore::SimTime;

/// Telemetry-acquisition stage. Holds only a recycled readings buffer.
#[derive(Default)]
pub struct SenseStage {
    /// Readings buffer returned by [`Self::recycle`], reused next slot.
    scratch: Vec<Option<f64>>,
}

impl SenseStage {
    /// Produce this slot's frame. `true_power_w` is the exact aggregate
    /// the accountant integrates; per-node readings are collected only
    /// when `fault` is present.
    pub(crate) fn run(
        &mut self,
        now: SimTime,
        nodes: &[ComputeNode],
        node_dead: &[bool],
        fault: Option<&mut FaultPlanSet>,
        true_power_w: f64,
    ) -> TelemetryFrame {
        let readings = fault.map(|plan| {
            let mut buf = std::mem::take(&mut self.scratch);
            buf.clear();
            // Dead nodes report a true zero without consuming
            // fault-layer randomness, so the fault stream is stable
            // across different crash schedules.
            buf.extend(
                nodes
                    .iter()
                    .zip(node_dead.iter())
                    .enumerate()
                    .map(|(i, (n, &dead))| {
                        if dead {
                            Some(0.0)
                        } else {
                            plan.sense(now, i, n.power_w())
                        }
                    }),
            );
            buf
        });
        TelemetryFrame {
            true_power_w,
            readings,
        }
    }

    /// Take the readings buffer back for reuse next slot. Dropping the
    /// frame instead is harmless — the next `run` simply reallocates.
    pub(crate) fn recycle(&mut self, frame: TelemetryFrame) {
        if let Some(buf) = frame.readings {
            self.scratch = buf;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::faults::{FaultConfig, FaultPlan};
    use simcore::rng::RngFactory;
    use simcore::SimDuration;

    #[test]
    fn fault_free_frame_carries_no_readings_vector() {
        let nodes = vec![ComputeNode::new(SimTime::ZERO, 4, 32, SimDuration::from_secs(1))];
        let mut stage = SenseStage::default();
        let frame = stage.run(SimTime::from_secs(1), &nodes, &[false], None, 55.0);
        assert!(frame.readings.is_none(), "no fault layer, no allocation");
        assert_eq!(frame.true_power_w, 55.0);
    }

    #[test]
    fn readings_buffer_is_reused_across_slots() {
        let n = 8;
        let nodes: Vec<ComputeNode> = (0..n)
            .map(|_| ComputeNode::new(SimTime::ZERO, 4, 32, SimDuration::from_secs(1)))
            .collect();
        let node_dead = vec![false; n];
        let mut plan = FaultPlanSet::Global(
            FaultPlan::new(
                FaultConfig::default(),
                n,
                RngFactory::new(3).stream(simcore::rng::streams::FAULTS),
            )
            .unwrap(),
        );
        let mut stage = SenseStage::default();
        let frame = stage.run(
            SimTime::from_secs(1),
            &nodes,
            &node_dead,
            Some(&mut plan),
            0.0,
        );
        let ptr = frame.readings.as_ref().expect("fault layer present").as_ptr();
        stage.recycle(frame);
        for s in 2..10u64 {
            let frame = stage.run(
                SimTime::from_secs(s),
                &nodes,
                &node_dead,
                Some(&mut plan),
                0.0,
            );
            let readings = frame.readings.as_ref().expect("fault layer present");
            assert_eq!(readings.len(), n);
            assert_eq!(
                readings.as_ptr(),
                ptr,
                "slot {s} reallocated the recycled readings buffer"
            );
            stage.recycle(frame);
        }
    }
}
