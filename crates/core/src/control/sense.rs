//! **Sense** — telemetry acquisition (the inputs to the paper's power
//! monitor, Fig. 12).
//!
//! Reads per-node power each control slot and packages it as a
//! [`TelemetryFrame`]. Without a fault layer the stage passes the true
//! aggregate through untouched; with one, every live node's sensor is
//! read through [`FaultPlan::sense`], which may drop, freeze, lag, or
//! perturb the reading.

use super::TelemetryFrame;
use crate::node::ComputeNode;
use simcore::faults::FaultPlan;
use simcore::SimTime;

/// Stateless telemetry-acquisition stage.
pub struct SenseStage;

impl SenseStage {
    /// Produce this slot's frame. `true_power_w` is the exact aggregate
    /// the accountant integrates; per-node readings are collected only
    /// when `fault` is present.
    pub(crate) fn run(
        &self,
        now: SimTime,
        nodes: &[ComputeNode],
        node_dead: &[bool],
        fault: Option<&mut FaultPlan>,
        true_power_w: f64,
    ) -> TelemetryFrame {
        let readings = fault.map(|plan| {
            // Dead nodes report a true zero without consuming
            // fault-layer randomness, so the fault stream is stable
            // across different crash schedules.
            nodes
                .iter()
                .zip(node_dead.iter())
                .enumerate()
                .map(|(i, (n, &dead))| {
                    if dead {
                        Some(0.0)
                    } else {
                        plan.sense(now, i, n.power_w())
                    }
                })
                .collect()
        });
        TelemetryFrame {
            true_power_w,
            readings,
        }
    }
}
