//! **Decide** — the power-management decision (RPM Algorithm 1 and the
//! Table 2 baselines, behind [`PowerScheme`]).
//!
//! Consumes only the trusted [`ClusterView`]: the scheme never sees raw
//! sensor readings. When the filter's watchdog is engaged, the scheme's
//! differentiated plan would bind against fiction, so this stage
//! replaces it with the uniform worst-case-safe cap and parks the
//! battery until telemetry recovers.

use super::{BatteryFlows, ClusterView};
use crate::config::ClusterConfig;
use crate::node::ComputeNode;
use crate::scheme::{Action, ControlInput, NodeSnapshot, PowerScheme};
use netsim::request::Request;
use powercap::battery::Battery;
use powercap::pstate::PState;
use simcore::SimTime;

/// Decision stage: the scheme plus the watchdog's safe fallback.
pub struct DecideStage {
    /// The power scheme under evaluation.
    pub scheme: Box<dyn PowerScheme>,
    /// Uniform state the watchdog falls back to: safe for worst-case
    /// full-load CPU-bound occupancy at the supplied budget. Present
    /// only when a fault plan (and thus the watchdog) is configured.
    pub safe_pstate: Option<PState>,
}

impl DecideStage {
    /// Dataplane hook: scheme admission (Token's power bucket).
    pub fn admit(&mut self, now: SimTime, req: &Request) -> bool {
        self.scheme.admit(now, req)
    }

    /// Produce this slot's action plan from the trusted view.
    #[allow(clippy::too_many_arguments)] // one call site: the slot driver
    pub(crate) fn run(
        &mut self,
        now: SimTime,
        view: &ClusterView,
        supply_w: f64,
        cfg: &ClusterConfig,
        nodes: &[ComputeNode],
        node_dead: &[bool],
        battery: &Battery,
        flows: &BatteryFlows,
        actions: &mut Vec<Action>,
    ) {
        let (_, suspect_pool) = crate::pdf::partition_pools(cfg.servers, cfg.suspect_pool_size);
        let input = ControlInput {
            now,
            supply_w,
            demand_w: view.observed_w,
            condition: view.condition,
            nodes: nodes
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    let (u, ints, g) = n.load_character();
                    NodeSnapshot {
                        utilization: u,
                        intensity: ints,
                        gamma: g,
                        beta: n.mean_beta(),
                        target: n.target_pstate(),
                        suspect: suspect_pool.contains(&i),
                        inflight: n.inflight(),
                    }
                })
                .collect(),
            battery_soc: battery.soc(),
            battery_stored_j: battery.stored_j(),
            battery_max_discharge_w: cfg.aggregate_nameplate_w(),
            battery_max_charge_w: cfg.aggregate_nameplate_w() * 0.25,
            battery_discharging_w: flows.discharge_w,
            telemetry_coverage: view.coverage,
        };
        if view.watchdog_engaged {
            // Degraded mode: apply the uniform worst-case-safe cap and
            // park the battery until telemetry recovers.
            let safe = self
                .safe_pstate
                .expect("watchdog implies a fault plan and thus a safe state");
            for (i, n) in nodes.iter().enumerate() {
                if !node_dead[i] && n.target_pstate() != safe {
                    actions.push(Action::SetPState { node: i, target: safe });
                }
            }
            if flows.discharge_w > 0.0 {
                actions.push(Action::BatteryDischarge { watts: 0.0 });
            }
            if flows.charge_w > 0.0 {
                actions.push(Action::BatteryCharge { watts: 0.0 });
            }
        } else {
            self.scheme.control(&input, actions);
        }
    }
}
