//! **Decide** — the power-management decision (RPM Algorithm 1 and the
//! Table 2 baselines, behind [`PowerScheme`]).
//!
//! Consumes only the trusted [`ClusterView`]: the scheme never sees raw
//! sensor readings. When the filter's watchdog is engaged, the scheme's
//! differentiated plan would bind against fiction, so this stage
//! replaces it with the uniform worst-case-safe cap and parks the
//! battery until telemetry recovers.

use super::{BatteryFlows, ClusterView};
use crate::config::ClusterConfig;
use crate::node::ComputeNode;
use crate::scheme::{Action, ControlInput, NodeSnapshot, PowerScheme};
use netsim::request::Request;
use powercap::battery::Battery;
use powercap::pstate::PState;
use simcore::SimTime;

/// Decision stage: the scheme plus the watchdog's safe fallback.
pub struct DecideStage {
    /// The power scheme under evaluation.
    pub scheme: Box<dyn PowerScheme>,
    /// Uniform state the watchdog falls back to: safe for worst-case
    /// full-load CPU-bound occupancy at the supplied budget. Present
    /// only when a fault plan (and thus the watchdog) is configured.
    pub safe_pstate: Option<PState>,
    /// Recycled [`NodeSnapshot`] buffer: loaned to [`ControlInput`] each
    /// slot and taken back afterwards, so steady-state slots build the
    /// scheme's view without allocating.
    pub(crate) snapshot_scratch: Vec<NodeSnapshot>,
}

impl DecideStage {
    /// Dataplane hook: scheme admission (Token's power bucket).
    pub fn admit(&mut self, now: SimTime, req: &Request) -> bool {
        self.scheme.admit(now, req)
    }

    /// Produce this slot's action plan from the trusted view.
    #[allow(clippy::too_many_arguments)] // one call site: the slot driver
    pub(crate) fn run(
        &mut self,
        now: SimTime,
        view: &ClusterView,
        supply_w: f64,
        cfg: &ClusterConfig,
        nodes: &[ComputeNode],
        node_dead: &[bool],
        battery: &Battery,
        flows: &BatteryFlows,
        actions: &mut Vec<Action>,
    ) {
        let (_, suspect_pool) = crate::pdf::partition_pools(cfg.servers, cfg.suspect_pool_size);
        let mut snaps = std::mem::take(&mut self.snapshot_scratch);
        snaps.clear();
        snaps.extend(nodes.iter().enumerate().map(|(i, n)| {
            let (u, ints, g) = n.load_character();
            NodeSnapshot {
                utilization: u,
                intensity: ints,
                gamma: g,
                beta: n.mean_beta(),
                target: n.target_pstate(),
                suspect: suspect_pool.contains(&i),
                inflight: n.inflight(),
            }
        }));
        self.snapshot_scratch = snaps;
        self.run_snapshots(
            now,
            view,
            supply_w,
            cfg,
            node_dead,
            battery.soc(),
            battery.stored_j(),
            flows,
            actions,
        );
    }

    /// Decision half of [`Self::run`]: consumes the already-filled
    /// snapshot scratch, so backends that observe nodes through a
    /// transport (trace replay, sysfs) instead of simulator structs run
    /// the *identical* decision code — [`NodeSnapshot::target`] is the
    /// node's commanded P-state, so the watchdog fallback reads it from
    /// the snapshots rather than the nodes.
    #[allow(clippy::too_many_arguments)] // two call sites: the slot drivers
    pub(crate) fn run_snapshots(
        &mut self,
        now: SimTime,
        view: &ClusterView,
        supply_w: f64,
        cfg: &ClusterConfig,
        node_dead: &[bool],
        battery_soc: f64,
        battery_stored_j: f64,
        flows: &BatteryFlows,
        actions: &mut Vec<Action>,
    ) {
        let snaps = std::mem::take(&mut self.snapshot_scratch);
        let input = ControlInput {
            now,
            supply_w,
            demand_w: view.observed_w,
            condition: view.condition,
            nodes: snaps,
            battery_soc,
            battery_stored_j,
            battery_max_discharge_w: cfg.aggregate_nameplate_w(),
            battery_max_charge_w: cfg.aggregate_nameplate_w() * 0.25,
            battery_discharging_w: flows.discharge_w,
            telemetry_coverage: view.coverage,
        };
        if view.watchdog_engaged {
            // Degraded mode: apply the uniform worst-case-safe cap and
            // park the battery until telemetry recovers.
            let safe = self
                .safe_pstate
                .expect("watchdog implies a fault plan and thus a safe state");
            for (i, s) in input.nodes.iter().enumerate() {
                if !node_dead[i] && s.target != safe {
                    actions.push(Action::SetPState { node: i, target: safe });
                }
            }
            if flows.discharge_w > 0.0 {
                actions.push(Action::BatteryDischarge { watts: 0.0 });
            }
            if flows.charge_w > 0.0 {
                actions.push(Action::BatteryCharge { watts: 0.0 });
            }
        } else {
            self.scheme.control(&input, actions);
        }
        self.snapshot_scratch = input.nodes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchemeKind;
    use powercap::budget::BudgetLevel;
    use powercap::monitor::PowerCondition;
    use simcore::SimDuration;

    /// The snapshot buffer loaned to `ControlInput` must come back and
    /// be reused: after the first slot sizes it, no later slot with the
    /// same cluster may reallocate it.
    #[test]
    fn snapshot_scratch_is_reused_across_slots() {
        let cfg = ClusterConfig::paper_rack(BudgetLevel::Medium);
        let scheme = crate::scheme::build_scheme(SchemeKind::AntiDope, &cfg);
        let mut stage = DecideStage {
            scheme,
            safe_pstate: None,
            snapshot_scratch: Vec::new(),
        };
        let nodes: Vec<ComputeNode> = (0..cfg.servers)
            .map(|_| ComputeNode::new(SimTime::ZERO, 4, 32, SimDuration::from_secs(1)))
            .collect();
        let node_dead = vec![false; cfg.servers];
        let battery =
            Battery::sized_for(SimTime::ZERO, cfg.aggregate_nameplate_w(), cfg.battery_sustain);
        let flows = BatteryFlows::default();
        let view = ClusterView {
            condition: PowerCondition::Emergency,
            observed_w: 500.0,
            coverage: 1.0,
            watchdog_engaged: false,
        };
        let mut actions = Vec::new();
        stage.run(
            SimTime::from_secs(1),
            &view,
            cfg.supply_w(),
            &cfg,
            &nodes,
            &node_dead,
            &battery,
            &flows,
            &mut actions,
        );
        assert_eq!(stage.snapshot_scratch.len(), cfg.servers);
        let ptr = stage.snapshot_scratch.as_ptr();
        for s in 2..8u64 {
            actions.clear();
            stage.run(
                SimTime::from_secs(s),
                &view,
                cfg.supply_w(),
                &cfg,
                &nodes,
                &node_dead,
                &battery,
                &flows,
                &mut actions,
            );
            assert_eq!(
                stage.snapshot_scratch.as_ptr(),
                ptr,
                "slot {s} reallocated the snapshot scratch"
            );
        }
    }
}
