//! Experiment execution: single runs and rayon-parallel sweeps.
//!
//! Each simulation is strictly deterministic and single-threaded;
//! parallelism lives at the sweep level (one independent simulation per
//! (scheme, budget, seed) cell), which is both embarrassingly parallel
//! and reproducible — the hpc-parallel way: no shared mutable state, a
//! pure function per cell, `par_iter().map().collect()`.

use crate::cluster::ClusterSim;
use crate::config::{ClusterConfig, ExperimentConfig, SchemeKind};
use crate::control::plane::ControlTrace;
use crate::results::SimReport;
use crate::shard::ShardedClusterSim;
use powercap::BudgetLevel;
use rayon::prelude::*;
use workloads::source::TrafficSource;

/// A factory producing fresh traffic sources for one experiment run.
///
/// Sources are stateful and consumed by a run, so sweeps need a way to
/// mint identical populations per cell; the factory receives the cell's
/// [`ExperimentConfig`] (so it can use the cell seed) and returns the
/// boxed sources.
pub trait SourceFactory: Sync {
    /// Build the traffic population for `exp`.
    fn build(&self, exp: &ExperimentConfig) -> Vec<Box<dyn TrafficSource>>;
}

impl<F> SourceFactory for F
where
    F: Fn(&ExperimentConfig) -> Vec<Box<dyn TrafficSource>> + Sync,
{
    fn build(&self, exp: &ExperimentConfig) -> Vec<Box<dyn TrafficSource>> {
        self(exp)
    }
}

/// True when `exp` must run on the sharded engine: `shards > 1`, a
/// retry policy (the resilience dataplane lives in its slot-boundary
/// loop), or a multi-rack power topology (per-rack aggregation and
/// rack-local outages live there too; the legacy engine only accepts
/// the degenerate single-rack tree).
fn wants_sharded_engine(exp: &ExperimentConfig) -> bool {
    exp.cluster.shards > 1 || exp.cluster.retry.is_some() || exp.cluster.effective_racks() > 1
}

/// Run one experiment to completion, dispatching on the config:
/// `shards: 1` (the default) runs the original event-driven
/// [`ClusterSim`] byte-for-byte; `shards > 1` runs the sharded parallel
/// engine. A retry policy or a multi-rack topology also selects the
/// sharded engine (even at one shard).
pub fn run_experiment(exp: &ExperimentConfig, factory: &dyn SourceFactory) -> SimReport {
    if wants_sharded_engine(exp) {
        ShardedClusterSim::run(exp, factory.build(exp))
    } else {
        ClusterSim::run(exp, factory.build(exp))
    }
}

/// [`run_experiment`] with a control-plane trace recorder attached:
/// same engine dispatch, same simulation byte-for-byte (recording is
/// read-only), plus the per-slot trace the live replay backend consumes.
pub fn record_experiment(
    exp: &ExperimentConfig,
    factory: &dyn SourceFactory,
) -> (SimReport, ControlTrace) {
    if wants_sharded_engine(exp) {
        ShardedClusterSim::run_recorded(exp, factory.build(exp))
    } else {
        ClusterSim::run_recorded(exp, factory.build(exp))
    }
}

/// A progress event from a streaming sweep.
#[derive(Debug, Clone)]
pub struct CellDone {
    /// Index of the cell in submission order.
    pub index: usize,
    /// Cells in the sweep.
    pub total: usize,
    /// The completed cell's report.
    pub report: SimReport,
}

/// Run an arbitrary set of experiment cells in parallel, streaming each
/// completed cell to `on_done` **as it finishes** (completion order, not
/// submission order). Returns all reports in submission order.
///
/// Long sweeps (the 600 s × 16-cell evaluation matrix, multi-seed
/// robustness runs) feel very different with a progress line per cell;
/// rayon workers hand completed cells to a crossbeam channel that the
/// calling thread drains while the pool works.
pub fn run_cells_streaming(
    cells: &[ExperimentConfig],
    factory: &dyn SourceFactory,
    mut on_done: impl FnMut(&CellDone) + Send,
) -> Vec<SimReport> {
    let total = cells.len();
    let (tx, rx) = crossbeam::channel::unbounded::<CellDone>();
    let mut slots: Vec<Option<SimReport>> = (0..total).map(|_| None).collect();
    // The producer lives on a plain OS thread so the drain loop never
    // occupies a rayon pool thread (rayon::scope would run this body
    // *inside* the pool, and a pool thread blocked on a channel is a
    // deadlock waiting to happen).
    std::thread::scope(|scope| {
        scope.spawn(|| {
            cells
                .par_iter()
                .enumerate()
                .for_each_with(tx, |tx, (index, exp)| {
                    let report = run_experiment(exp, factory);
                    // The receiver outlives the producers; a send failure
                    // would mean it was dropped early — surface it loudly.
                    tx.send(CellDone {
                        index,
                        total,
                        report,
                    })
                    .expect("sweep receiver dropped");
                });
        });
        // Drain until every producer's clone of `tx` is dropped.
        for done in rx.iter() {
            on_done(&done);
            slots[done.index] = Some(done.report);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every cell completes"))
        .collect()
}

/// Run the full (scheme × budget) matrix of the paper's evaluation in
/// parallel. Returns reports in `(scheme-major, budget-minor)` order.
pub fn run_matrix(
    schemes: &[SchemeKind],
    budgets: &[BudgetLevel],
    base_cluster: &ClusterConfig,
    duration: simcore::SimDuration,
    seed: u64,
    factory: &dyn SourceFactory,
) -> Vec<SimReport> {
    let cells: Vec<ExperimentConfig> = schemes
        .iter()
        .flat_map(|&s| budgets.iter().map(move |&b| (s, b)))
        .map(|(scheme, budget)| {
            let mut cluster = base_cluster.clone();
            cluster.budget = budget;
            let mut exp = ExperimentConfig::paper_window(cluster, scheme, seed);
            exp.duration = duration;
            exp
        })
        .collect();
    run_cells_streaming(&cells, factory, |_| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{SimDuration, SimTime};
    use workloads::alibaba::{AlibabaTraceConfig, UtilizationTrace};
    use workloads::attacker::{AttackTool, FloodSource};
    use workloads::normal::NormalUsers;
    use workloads::service::{ServiceKind, ServiceMix};

    fn factory(exp: &ExperimentConfig) -> Vec<Box<dyn TrafficSource>> {
        let horizon = SimTime::ZERO + exp.duration;
        let trace = UtilizationTrace::synthesize(&AlibabaTraceConfig::small(exp.seed));
        vec![
            Box::new(NormalUsers::new(
                trace,
                ServiceMix::alios_normal(),
                60.0,
                1000,
                50,
                0,
                horizon,
                exp.seed,
            )),
            Box::new(FloodSource::against_service(
                AttackTool::HttpLoad { rate: 300.0 },
                ServiceKind::CollaFilt,
                50_000,
                30,
                1 << 40,
                SimTime::from_secs(2),
                horizon,
                exp.seed ^ 0xABCD,
            )),
        ]
    }

    #[test]
    fn matrix_covers_all_cells_in_order() {
        let reports = run_matrix(
            &[SchemeKind::Capping, SchemeKind::AntiDope],
            &[BudgetLevel::Normal, BudgetLevel::Low],
            &ClusterConfig::paper_rack(BudgetLevel::Normal),
            SimDuration::from_secs(20),
            5,
            &factory,
        );
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0].scheme, "Capping");
        assert_eq!(reports[0].budget, "Normal-PB");
        assert_eq!(reports[1].budget, "Low-PB");
        assert_eq!(reports[2].scheme, "Anti-DOPE");
        for r in &reports {
            assert!(r.traffic.offered > 0);
        }
    }

    #[test]
    fn streaming_reports_every_cell_in_order() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cells: Vec<ExperimentConfig> = [SchemeKind::Capping, SchemeKind::Token, SchemeKind::AntiDope]
            .iter()
            .map(|&s| {
                let mut e = ExperimentConfig::paper_window(
                    ClusterConfig::paper_rack(BudgetLevel::Medium),
                    s,
                    3,
                );
                e.duration = SimDuration::from_secs(15);
                e
            })
            .collect();
        let seen = AtomicUsize::new(0);
        let reports = run_cells_streaming(&cells, &factory, |done| {
            assert_eq!(done.total, 3);
            assert!(done.index < 3);
            assert!(done.report.traffic.offered > 0);
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 3);
        // Results come back in submission order regardless of completion order.
        assert_eq!(reports[0].scheme, "Capping");
        assert_eq!(reports[1].scheme, "Token");
        assert_eq!(reports[2].scheme, "Anti-DOPE");
    }

    #[test]
    fn parallel_matches_sequential() {
        let cluster = ClusterConfig::paper_rack(BudgetLevel::Medium);
        let reports = run_matrix(
            &[SchemeKind::Shaving],
            &[BudgetLevel::Medium],
            &cluster,
            SimDuration::from_secs(20),
            9,
            &factory,
        );
        let mut exp =
            ExperimentConfig::paper_window(cluster, SchemeKind::Shaving, 9);
        exp.duration = SimDuration::from_secs(20);
        let solo = run_experiment(&exp, &factory);
        assert_eq!(
            serde_json::to_string(&reports[0]).unwrap(),
            serde_json::to_string(&solo).unwrap()
        );
    }
}
