//! Sharded parallel cluster engine with data-oriented node state.
//!
//! [`ClusterSim`](crate::cluster::ClusterSim) interleaves every event in
//! one global queue and rescans all `n` nodes on every power-changing
//! event, which caps throughput on large clusters. This module trades a
//! little event-ordering generality for locality and parallelism:
//!
//! * **Sharding** — the nodes are partitioned into `shards` contiguous,
//!   near-even slices. Within one control slot `(t0, t1]` each shard
//!   advances its own dataplane (arrivals, PS-queue completions, DVFS
//!   settles) independently; shards only exchange state at slot
//!   boundaries, a conservative synchronization that is safe because
//!   nothing couples nodes *between* boundaries — routing, control
//!   decisions, battery flows, and breaker state are all slot-scoped.
//! * **Data-oriented node state** — each shard mirrors its nodes' hot
//!   fields (power draw, in-flight count, V/F reduction) into
//!   struct-of-arrays columns, updated in O(1) per event. The slot
//!   boundary aggregates power and V/F statistics with tight flat scans
//!   over the columns instead of walking node structs, and energy is
//!   integrated from an incrementally-maintained per-shard power sum —
//!   O(1) per event where the legacy engine pays O(n).
//!
//! One slot cycle:
//!
//! ```text
//! phase A (seq): merged sources ─► firewall ─► admit ─► NLB route
//!                          └──► per-shard arrival inboxes
//! phase B (par): shard event loops (arrive/complete/settle) + SoA
//! phase C (seq): outbox drain ─► Sense ─► Filter ─► Learn ─► Decide
//!                ─► Act ─► Account  (byte-identical stage code)
//! ```
//!
//! # Determinism contract
//!
//! * Same seed + same shard layout ⇒ identical [`SimReport`]s: nothing
//!   in the cycle depends on thread scheduling — phase B shards touch
//!   disjoint state and phase C drains them in shard-index order.
//! * Across *different* shard counts, reports are comparable but not
//!   bit-identical: every discrete count (offered, blocked, denied,
//!   rejected, SLA outcomes, breaker trips) is conserved exactly because
//!   the slot-boundary power aggregate is computed by one flat scan in
//!   global node order (independent of the partition) and all control
//!   decisions derive from it; only energy integrals may differ in the
//!   last float bits, since per-shard accumulation groups additions
//!   differently.
//! * `shards: 1` configs never reach this engine — the dispatcher in
//!   [`crate::runner`] keeps them on the original event-driven
//!   [`ClusterSim`](crate::cluster::ClusterSim), byte-for-byte.
//!
//! # Deliberate semantic deltas vs. the event-driven engine
//!
//! * NLB load estimates refresh once per slot (plus LeastLoaded's
//!   optimistic increments) instead of per event.
//! * Perimeter feedback (firewall blocks, admission denials) is
//!   delivered inline during phase A; completion/queue-rejection
//!   feedback is delivered at the closing slot boundary, in
//!   `(time, source)` order.
//! * The battery integrates at slot boundaries; the mid-slot
//!   `BatteryBound` event is unnecessary because [`Battery::advance`]
//!   clamps at empty/full itself — only the metering granularity
//!   changes, not the stored energy.
//! * Fault injection is rejected by validation (`shards > 1` +
//!   `faults` ⇒ [`ConfigError::ShardedFaults`](crate::config::ConfigError)):
//!   fault randomness is drawn in global event order, which sharding
//!   does not preserve.

use crate::config::ExperimentConfig;
use crate::control::act::ActCtx;
use crate::control::{BatteryFlows, ControlPipeline};
use crate::node::ComputeNode;
use crate::results::{
    BatteryReport, EnergyReport, LatencySummary, PowerReport, SimReport, ThermalReport,
    TrafficReport, VfReport,
};
use crate::scheme::{self, PowerScheme};
use crate::{cluster::Ev, config::ClusterConfig};
use dcmetrics::availability::RequestOutcome;
use dcmetrics::{LatencyHistogram, SlaTracker, TimeSeries};
use netsim::firewall::{Firewall, FirewallConfig, FirewallVerdict};
use netsim::nlb::Nlb;
use netsim::queueing::PushOutcome;
use netsim::request::{Request, RequestId, UrlId};
use powercap::battery::{Battery, BatteryMode};
use powercap::budget::PowerBudget;
use rayon::prelude::*;
use simcore::fxhash::FxHashMap;
use simcore::rng::RngFactory;
use simcore::{Scheduler, SimTime};
use std::collections::{BinaryHeap, VecDeque};
use workloads::fanout::MergedSources;
use workloads::source::{SourceEvent, TrafficSource};

/// Shard-local events (node indices are shard-local).
#[derive(Debug)]
enum ShardEv {
    /// Predicted completion (valid only at the stamped queue epoch).
    Complete {
        node: usize,
        epoch: u64,
        id: RequestId,
    },
    /// A DVFS transition settles.
    DvfsSettle { node: usize },
}

/// Heap entry ordered by `(time, seq)`; `seq` makes the order total and
/// insertion-stable, so shard replay is deterministic.
struct HeapEntry {
    time: SimTime,
    seq: u64,
    ev: ShardEv,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Learn-stage hook replay, drained at the slot boundary (node indices
/// are global). The hooks are counters, so replay order is irrelevant.
#[derive(Debug, Clone, Copy)]
enum LearnEvt {
    Dispatch { node: usize, url: UrlId },
    Complete { node: usize, url: UrlId },
}

/// One dataplane shard: a contiguous slice of the cluster's nodes, its
/// own event queues, RNG stream space, metrics, and the data-oriented
/// (struct-of-arrays) mirror of the hot per-node fields.
pub struct Shard {
    /// Global index of this shard's first node.
    start: usize,
    /// Hot column: per-node power draw, watts (0 for dead nodes).
    power_w: Vec<f64>,
    /// Hot column: per-node in-flight request count.
    inflight: Vec<u32>,
    /// Hot column: per-node effective V/F reduction steps.
    vf_steps: Vec<u8>,
    /// Hot column: dead-node mask (thermal trip or outage).
    dead: Vec<bool>,
    /// Incrementally-maintained sum of `power_w` (energy integration).
    power_sum: f64,
    /// Exact load energy integrated so far, joules.
    joules: f64,
    /// Instant up to which `joules` is integrated.
    last_t: SimTime,
    /// Arrivals for the current slot, in delivery order
    /// (`(time, source, local node, request)`).
    inbox: VecDeque<(SimTime, usize, usize, Request)>,
    /// Completion predictions and DVFS settles.
    heap: BinaryHeap<HeapEntry>,
    /// Monotonic tiebreaker for heap entries.
    seq: u64,
    /// Accepted request → owning source index.
    owner: FxHashMap<RequestId, usize>,
    /// Source feedback produced this slot, drained at the boundary.
    outbox: Vec<(SimTime, usize, SourceEvent)>,
    /// Learn-stage hook replays produced this slot.
    learn_out: Vec<LearnEvt>,
    /// Whether to collect learn replays at all (profiler configured).
    learn_enabled: bool,
    /// Shard-local latency/SLA metrics, merged at finalize.
    normal_hist: LatencyHistogram,
    attack_hist: LatencyHistogram,
    normal_sla: SlaTracker,
    attack_sla: SlaTracker,
    /// Per-shard stream space derived as `master.shard(index)`; reserved
    /// for stochastic dataplane extensions so adding one never perturbs
    /// another shard's streams.
    rng: RngFactory,
    /// Events this shard has processed.
    events: u64,
}

impl Shard {
    fn new(
        index: usize,
        start: usize,
        nodes: &[ComputeNode],
        master: &RngFactory,
        learn_enabled: bool,
    ) -> Self {
        let power_w: Vec<f64> = nodes.iter().map(|n| n.power_w()).collect();
        let power_sum = power_w.iter().sum();
        Shard {
            start,
            power_sum,
            power_w,
            inflight: vec![0; nodes.len()],
            vf_steps: vec![0; nodes.len()],
            dead: vec![false; nodes.len()],
            joules: 0.0,
            last_t: SimTime::ZERO,
            inbox: VecDeque::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            owner: FxHashMap::default(),
            outbox: Vec::new(),
            learn_out: Vec::new(),
            learn_enabled,
            normal_hist: LatencyHistogram::for_latency_secs(),
            attack_hist: LatencyHistogram::for_latency_secs(),
            normal_sla: SlaTracker::new(),
            attack_sla: SlaTracker::new(),
            rng: master.shard(index as u64),
            events: 0,
        }
    }

    /// Number of nodes this shard owns.
    pub fn len(&self) -> usize {
        self.power_w.len()
    }

    /// True for a shard with no nodes (never built by the engine).
    pub fn is_empty(&self) -> bool {
        self.power_w.is_empty()
    }

    /// Global index of this shard's first node.
    pub fn start(&self) -> usize {
        self.start
    }

    /// The per-node power column, watts (data-oriented hot state).
    pub fn power_col(&self) -> &[f64] {
        &self.power_w
    }

    /// The per-node in-flight column.
    pub fn inflight_col(&self) -> &[u32] {
        &self.inflight
    }

    /// The per-node V/F reduction column.
    pub fn vf_col(&self) -> &[u8] {
        &self.vf_steps
    }

    /// The shard's derived RNG stream space.
    pub fn rng_factory(&self) -> &RngFactory {
        &self.rng
    }

    /// Events processed by this shard so far.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Refresh the SoA columns (and the incremental power sum) for local
    /// node `j` after any event that may have changed its state.
    #[inline]
    fn touch(&mut self, j: usize, node: &ComputeNode) {
        let p = if self.dead[j] { 0.0 } else { node.power_w() };
        self.power_sum += p - self.power_w[j];
        self.power_w[j] = p;
        self.inflight[j] = node.inflight() as u32;
        self.vf_steps[j] = node.vf_reduction_steps();
    }

    /// Advance the exact energy integral to `t`.
    #[inline]
    fn integrate_to(&mut self, t: SimTime) {
        if t > self.last_t {
            self.joules += self.power_sum * t.since(self.last_t).as_secs_f64();
            self.last_t = t;
        }
    }

    /// Queue an arrival routed to local node `j` (phase A, coordinator).
    fn enqueue_arrival(&mut self, t: SimTime, src: usize, j: usize, req: Request) {
        self.inbox.push_back((t, src, j, req));
    }

    /// Queue a DVFS settle staged by the boundary control plane.
    fn push_settle(&mut self, time: SimTime, j: usize) {
        self.seq += 1;
        self.heap.push(HeapEntry {
            time,
            seq: self.seq,
            ev: ShardEv::DvfsSettle { node: j },
        });
    }

    /// (Re)schedule the completion prediction for local node `j`.
    fn refresh_completion(&mut self, now: SimTime, j: usize, node: &mut ComputeNode) {
        if let Some((eta, id)) = node.next_completion(now) {
            self.seq += 1;
            self.heap.push(HeapEntry {
                time: eta.max(now),
                seq: self.seq,
                ev: ShardEv::Complete {
                    node: j,
                    epoch: node.epoch(),
                    id,
                },
            });
        }
    }

    fn record_outcome(&mut self, is_attack: bool, outcome: RequestOutcome) {
        if is_attack {
            self.attack_sla.record(outcome);
        } else {
            self.normal_sla.record(outcome);
        }
    }

    /// Phase B: replay this shard's events up to and including `t1`,
    /// then close the slot — integrate energy to `t1` and re-derive the
    /// power sum from the column with one flat scan, so incremental
    /// floating-point drift never survives a slot.
    fn advance(&mut self, nodes: &mut [ComputeNode], t1: SimTime) {
        loop {
            let th = self.heap.peek().map(|e| e.time);
            let ta = self.inbox.front().map(|a| a.0);
            // Earliest of the two queues; heap wins ties so completions
            // at an instant precede arrivals at the same instant.
            let take_heap = match (th, ta) {
                (None, None) => break,
                (Some(h), None) => {
                    if h > t1 {
                        break;
                    }
                    true
                }
                (None, Some(a)) => {
                    if a > t1 {
                        break;
                    }
                    false
                }
                (Some(h), Some(a)) => {
                    if h.min(a) > t1 {
                        break;
                    }
                    h <= a
                }
            };
            self.events += 1;
            if take_heap {
                let e = self.heap.pop().expect("peeked heap entry vanished");
                self.integrate_to(e.time);
                match e.ev {
                    ShardEv::Complete { node, epoch, id } => {
                        self.handle_completion(e.time, node, epoch, id, nodes);
                    }
                    ShardEv::DvfsSettle { node } => {
                        nodes[node].apply_dvfs(e.time);
                        self.refresh_completion(e.time, node, &mut nodes[node]);
                        self.touch(node, &nodes[node]);
                    }
                }
            } else {
                let (t, src, j, req) = self.inbox.pop_front().expect("peeked arrival vanished");
                self.integrate_to(t);
                self.handle_arrival(t, src, j, req, nodes);
            }
        }
        self.integrate_to(t1);
        self.power_sum = self.power_w.iter().sum();
    }

    fn handle_arrival(
        &mut self,
        now: SimTime,
        src: usize,
        j: usize,
        req: Request,
        nodes: &mut [ComputeNode],
    ) {
        let is_attack = req.is_attack;
        let source_id = req.source;
        let id = req.id;
        let url = req.url;
        match nodes[j].push(now, req) {
            PushOutcome::Rejected => {
                self.record_outcome(is_attack, RequestOutcome::Dropped);
                self.outbox.push((now, src, SourceEvent::Rejected(source_id)));
            }
            PushOutcome::Accepted => {
                self.owner.insert(id, src);
                if self.learn_enabled {
                    self.learn_out.push(LearnEvt::Dispatch {
                        node: self.start + j,
                        url,
                    });
                }
                self.refresh_completion(now, j, &mut nodes[j]);
                self.touch(j, &nodes[j]);
            }
        }
    }

    fn handle_completion(
        &mut self,
        now: SimTime,
        j: usize,
        epoch: u64,
        id: RequestId,
        nodes: &mut [ComputeNode],
    ) {
        if nodes[j].epoch() != epoch {
            return; // stale prediction; a fresher event exists
        }
        match nodes[j].try_complete(now, id) {
            Some((req, sojourn)) => {
                let secs = sojourn.as_secs_f64();
                let outcome = if req.abandoned(sojourn) {
                    RequestOutcome::TimedOut
                } else if req.on_time(sojourn) {
                    RequestOutcome::OnTime
                } else {
                    RequestOutcome::Late
                };
                if req.is_attack {
                    self.attack_hist.record(secs);
                } else {
                    self.normal_hist.record(secs);
                }
                self.record_outcome(req.is_attack, outcome);
                if self.learn_enabled {
                    self.learn_out.push(LearnEvt::Complete {
                        node: self.start + j,
                        url: req.url,
                    });
                }
                if let Some(owner) = self.owner.remove(&id) {
                    self.outbox
                        .push((now, owner, SourceEvent::Completed(req.source)));
                }
                self.refresh_completion(now, j, &mut nodes[j]);
                self.touch(j, &nodes[j]);
            }
            None => {
                // Same epoch but residual work above tolerance — only
                // possible through float pathology; self-heal by
                // rescheduling from current state.
                self.refresh_completion(now, j, &mut nodes[j]);
            }
        }
    }

    /// Kill local node `j` (thermal trip): in-flight requests count as
    /// SLA drops, the node is masked out of the power column.
    fn kill_node(&mut self, j: usize, node: &mut ComputeNode, now: SimTime) {
        let Shard {
            owner,
            normal_sla,
            attack_sla,
            ..
        } = self;
        node.drain_with(now, |req| {
            let sla = if req.is_attack { &mut *attack_sla } else { &mut *normal_sla };
            sla.record(RequestOutcome::Dropped);
            owner.remove(&req.id);
        });
        self.dead[j] = true;
        self.touch(j, node);
    }

    /// The breaker opened: drop everything, zero the columns, and stop
    /// integrating — nothing is served until the end of the window.
    fn blackout(&mut self, nodes: &mut [ComputeNode], now: SimTime) {
        self.integrate_to(now);
        for (j, node) in nodes.iter_mut().enumerate() {
            let Shard {
                owner,
                normal_sla,
                attack_sla,
                ..
            } = self;
            node.drain_with(now, |req| {
                let sla = if req.is_attack { &mut *attack_sla } else { &mut *normal_sla };
                sla.record(RequestOutcome::Dropped);
                owner.remove(&req.id);
            });
            self.power_w[j] = 0.0;
            self.inflight[j] = 0;
        }
        self.power_sum = 0.0;
        self.heap.clear();
        self.inbox.clear();
    }
}

/// The sharded cluster engine: a sequential coordinator (sources,
/// perimeter, NLB, control plane, physics) driving parallel dataplane
/// shards with slot-aligned conservative synchronization.
pub struct ShardedClusterSim {
    config: ClusterConfig,
    horizon: SimTime,
    nodes: Vec<ComputeNode>,
    node_dead: Vec<bool>,
    nlb: Nlb,
    firewall: Option<Firewall>,
    battery: Battery,
    flows: BatteryFlows,
    pipeline: ControlPipeline,
    sources: MergedSources,
    shards: Vec<Shard>,
    /// Global node index → owning shard index.
    owner_shard: Vec<usize>,
    offered: u64,
    scheme_denied_drops: u64,
    normal_hist: LatencyHistogram,
    attack_hist: LatencyHistogram,
    normal_sla: SlaTracker,
    attack_sla: SlaTracker,
    /// Recycled boundary buffer for merging shard feedback in
    /// `(time, source)` order.
    feedback_scratch: Vec<(SimTime, usize, SourceEvent)>,
    /// Coordinator event count (arrivals + slots), reported alongside
    /// the shards' own counts.
    events: u64,
}

impl ShardedClusterSim {
    /// Build the engine for an experiment over the given traffic
    /// sources. Panics if `exp.cluster` fails validation (which also
    /// rejects `shards > 1` with fault injection).
    pub fn new(exp: &ExperimentConfig, sources: Vec<Box<dyn TrafficSource>>) -> Self {
        let scheme = scheme::build_scheme(exp.scheme, &exp.cluster);
        Self::with_scheme(exp, scheme, sources)
    }

    /// Build with an explicitly-constructed scheme.
    pub fn with_scheme(
        exp: &ExperimentConfig,
        scheme: Box<dyn PowerScheme>,
        sources: Vec<Box<dyn TrafficSource>>,
    ) -> Self {
        let cfg = exp.cluster.clone();
        cfg.validate().expect("invalid cluster config");
        assert!(
            cfg.faults.is_none(),
            "validate() rejects sharded fault injection"
        );
        let start = SimTime::ZERO;
        let nlb = Nlb::new(cfg.servers, scheme.forwarding_policy(&cfg))
            .expect("forwarding pools checked by ClusterConfig::validate");
        let nodes: Vec<ComputeNode> = (0..cfg.servers)
            .map(|_| ComputeNode::new(start, cfg.cores_per_server, cfg.max_inflight, cfg.dvfs_latency))
            .collect();
        let firewall = cfg.firewall.then(|| {
            Firewall::new(
                start,
                FirewallConfig {
                    threshold_rps: cfg.firewall_threshold_rps,
                    detection_lag: cfg.firewall_lag,
                    ..FirewallConfig::default()
                },
            )
        });
        let battery = Battery::sized_for(start, cfg.aggregate_nameplate_w(), cfg.battery_sustain);
        let budget = PowerBudget::for_cluster(cfg.aggregate_nameplate_w(), cfg.budget);
        let idle_total: f64 = nodes.iter().map(|n| n.power_w()).sum();
        let pipeline = ControlPipeline::new(&cfg, scheme, budget, start, false, idle_total);

        // Near-even contiguous partition: the first `servers % shards`
        // shards own one extra node.
        let master = RngFactory::new(exp.seed);
        let learn_enabled = pipeline.learn.is_some();
        let k = cfg.shards;
        let base = cfg.servers / k;
        let extra = cfg.servers % k;
        let mut shards = Vec::with_capacity(k);
        let mut owner_shard = vec![0usize; cfg.servers];
        let mut at = 0usize;
        for i in 0..k {
            let len = base + usize::from(i < extra);
            for o in owner_shard.iter_mut().skip(at).take(len) {
                *o = i;
            }
            shards.push(Shard::new(i, at, &nodes[at..at + len], &master, learn_enabled));
            at += len;
        }

        ShardedClusterSim {
            horizon: start + exp.duration,
            nodes,
            node_dead: vec![false; cfg.servers],
            nlb,
            firewall,
            battery,
            flows: BatteryFlows::default(),
            pipeline,
            sources: MergedSources::new(sources),
            shards,
            owner_shard,
            offered: 0,
            scheme_denied_drops: 0,
            normal_hist: LatencyHistogram::for_latency_secs(),
            attack_hist: LatencyHistogram::for_latency_secs(),
            normal_sla: SlaTracker::new(),
            attack_sla: SlaTracker::new(),
            feedback_scratch: Vec::new(),
            events: 0,
            config: cfg,
        }
    }

    /// Run an experiment to completion and produce the report.
    pub fn run(exp: &ExperimentConfig, sources: Vec<Box<dyn TrafficSource>>) -> SimReport {
        let scheme = scheme::build_scheme(exp.scheme, &exp.cluster);
        Self::run_with_scheme(exp, scheme, sources)
    }

    /// Run with an explicitly-constructed scheme.
    pub fn run_with_scheme(
        exp: &ExperimentConfig,
        scheme: Box<dyn PowerScheme>,
        sources: Vec<Box<dyn TrafficSource>>,
    ) -> SimReport {
        let mut sim = Self::with_scheme(exp, scheme, sources);
        let horizon = sim.horizon;
        let slot = sim.config.control_slot;
        let mut t0 = SimTime::ZERO;
        loop {
            let t1 = t0 + slot;
            if t1 <= horizon {
                sim.advance_window(t1);
                sim.boundary(t1);
                t0 = t1;
            } else {
                if t0 < horizon {
                    sim.advance_window(horizon);
                }
                break;
            }
        }
        sim.finalize(exp, horizon)
    }

    /// The shards (exposed for tests and probes).
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Phase A + phase B: route this window's arrivals, then advance
    /// every shard to `t1` in parallel.
    fn advance_window(&mut self, t1: SimTime) {
        if self.pipeline.account.outage().is_some() {
            // Dark data center: the feed is open; nothing is served.
            while let Some((i, t, req)) = self.sources.next_arrival_up_to(t1) {
                self.offered += 1;
                self.events += 1;
                self.record_outcome(req.is_attack, RequestOutcome::Dropped);
                self.sources.feedback(t, i, SourceEvent::Rejected(req.source));
            }
            return;
        }
        while let Some((i, t, req)) = self.sources.next_arrival_up_to(t1) {
            self.events += 1;
            self.route_arrival(t, i, req);
        }
        let Self { shards, nodes, .. } = self;
        let mut slices: Vec<&mut [ComputeNode]> = Vec::with_capacity(shards.len());
        let mut rest: &mut [ComputeNode] = nodes;
        for sh in shards.iter() {
            let (head, tail) = rest.split_at_mut(sh.len());
            slices.push(head);
            rest = tail;
        }
        shards
            .par_iter_mut()
            .zip(slices)
            .for_each(|(sh, slice)| sh.advance(slice, t1));
    }

    /// Phase A per arrival: perimeter, admission, routing — identical
    /// order and state evolution to the event-driven engine, so the
    /// counts it produces are independent of the shard layout.
    fn route_arrival(&mut self, now: SimTime, src_idx: usize, req: Request) {
        self.offered += 1;
        let is_attack = req.is_attack;
        let source_id = req.source;

        // 1. Perimeter firewall.
        if let Some(fw) = &mut self.firewall {
            if fw.inspect(now, source_id) == FirewallVerdict::Blocked {
                self.record_outcome(is_attack, RequestOutcome::Dropped);
                self.sources.feedback(now, src_idx, SourceEvent::Blocked(source_id));
                return;
            }
        }

        // 2. Scheme admission (Token's power bucket).
        if !self.pipeline.decide.admit(now, &req) {
            self.scheme_denied_drops += 1;
            self.record_outcome(is_attack, RequestOutcome::Dropped);
            self.sources.feedback(now, src_idx, SourceEvent::Rejected(source_id));
            return;
        }

        // 3. Forward into the owning shard's inbox.
        let target = self.nlb.route(&req);
        if self.node_dead[target] {
            self.record_outcome(is_attack, RequestOutcome::Dropped);
            self.sources.feedback(now, src_idx, SourceEvent::Rejected(source_id));
            return;
        }
        let s = self.owner_shard[target];
        let local = target - self.shards[s].start();
        self.shards[s].enqueue_arrival(now, src_idx, local, req);
    }

    fn record_outcome(&mut self, is_attack: bool, outcome: RequestOutcome) {
        if is_attack {
            self.attack_sla.record(outcome);
        } else {
            self.normal_sla.record(outcome);
        }
    }

    fn integrate_battery(&mut self, now: SimTime) {
        let flow = self.battery.advance(now);
        match self.battery.mode() {
            BatteryMode::Discharging(_) => {
                self.flows.discharge_w = flow;
            }
            BatteryMode::Charging(_) => {
                self.flows.charge_w = flow;
            }
            BatteryMode::Idle => {
                self.flows = BatteryFlows::default();
            }
        }
    }

    /// The slot-boundary power aggregate: one flat scan over the shards'
    /// power columns *in global node order*. One accumulator, one
    /// addition order, regardless of how many shards the nodes are split
    /// into — this is what makes control decisions (and therefore every
    /// discrete count) bit-identical across shard layouts.
    fn aggregate_power_w(&self) -> f64 {
        let mut total = 0.0;
        for sh in &self.shards {
            for &p in sh.power_col() {
                total += p;
            }
        }
        total
    }

    /// Drain shard outboxes in shard order: learn-hook replays (count
    /// increments, order-insensitive) and source feedback, the latter
    /// merged into `(time, source)` order so delivery is independent of
    /// the shard layout.
    fn drain_shard_outboxes(&mut self, now: SimTime) {
        let Self {
            shards,
            sources,
            pipeline,
            feedback_scratch,
            ..
        } = self;
        feedback_scratch.clear();
        for sh in shards.iter_mut() {
            if let Some(learn) = pipeline.learn.as_mut() {
                for ev in sh.learn_out.drain(..) {
                    match ev {
                        LearnEvt::Dispatch { node, url } => learn.on_dispatch(node, url),
                        LearnEvt::Complete { node, url } => learn.on_complete(node, url),
                    }
                }
            } else {
                sh.learn_out.clear();
            }
            feedback_scratch.append(&mut sh.outbox);
        }
        feedback_scratch.sort_by_key(|&(t, src, ev)| {
            let rank = match ev {
                SourceEvent::Blocked(_) => 0u8,
                SourceEvent::Rejected(_) => 1,
                SourceEvent::Completed(_) => 2,
            };
            (t, src, rank)
        });
        for &(_, src, ev) in feedback_scratch.iter() {
            sources.feedback(now, src, ev);
        }
    }

    /// Thermal boundary pass: PROCHOT clamps become shard settle events;
    /// critical trips kill the node inside its owning shard.
    fn thermal_boundary(&mut self, now: SimTime) {
        let mut tripped = std::mem::take(&mut self.pipeline.tripped);
        let mut sched: Scheduler<Ev> = Scheduler::detached(now);
        {
            let Self { pipeline, nodes, node_dead, .. } = self;
            pipeline
                .account
                .advance_thermals(now, nodes, node_dead, &mut sched, &mut tripped);
        }
        for (time, ev) in sched.drain_staged() {
            if let Ev::DvfsSettle { node } = ev {
                let s = self.owner_shard[node];
                let local = node - self.shards[s].start();
                self.shards[s].push_settle(time, local);
            }
        }
        for &i in &tripped {
            self.node_dead[i] = true;
            let s = self.owner_shard[i];
            let local = i - self.shards[s].start();
            self.shards[s].kill_node(local, &mut self.nodes[i], now);
            if let Some(learn) = &mut self.pipeline.learn {
                learn.forget_node(i);
            }
        }
        tripped.clear();
        self.pipeline.tripped = tripped;
    }

    /// The breaker opened: every in-flight request is lost and nothing
    /// is served until the end of the window.
    fn begin_outage(&mut self, now: SimTime) {
        {
            let Self { shards, nodes, .. } = self;
            for sh in shards.iter_mut() {
                let range = sh.start()..sh.start() + sh.len();
                sh.blackout(&mut nodes[range], now);
            }
        }
        if let Some(learn) = &mut self.pipeline.learn {
            for i in 0..self.config.servers {
                learn.forget_node(i);
            }
        }
        self.battery.stop(now);
        self.flows = BatteryFlows::default();
        self.pipeline.account.sync_power_total(now, 0.0, &self.flows);
    }

    /// Phase C: the slot boundary at `now` — physics, then the staged
    /// control plane (Sense → Filter → Learn → Decide → Act → Account),
    /// exactly the stage code the event-driven engine runs.
    fn boundary(&mut self, now: SimTime) {
        self.events += 1;
        self.drain_shard_outboxes(now);
        self.integrate_battery(now);
        let total = self.aggregate_power_w();
        {
            let Self { pipeline, flows, .. } = self;
            pipeline.account.sync_power_total(now, total, flows);
        }
        if self.pipeline.account.thermals.is_some() {
            self.thermal_boundary(now);
            let total = self.aggregate_power_w();
            let Self { pipeline, flows, .. } = self;
            pipeline.account.sync_power_total(now, total, flows);
        }
        let n_nodes = self.nodes.len();
        if self.pipeline.account.breaker_tripped(now, &self.flows, n_nodes) {
            self.begin_outage(now);
        }
        if self.pipeline.account.outage().is_some() {
            let soc = self.battery.soc();
            self.pipeline.account.record_outage_slot(now, soc);
            return;
        }

        // Sense → Filter → Learn → Decide → Act. Staged events are
        // translated into shard queues; power and V/F cannot change
        // before the commands settle, so the pre-enact aggregate stands.
        let mut sched: Scheduler<Ev> = Scheduler::detached(now);
        {
            let Self {
                pipeline,
                nodes,
                node_dead,
                nlb,
                battery,
                flows,
                config,
                ..
            } = self;
            let true_power_w = pipeline.account.cluster_power_w();
            let frame = pipeline.sense.run(now, nodes, node_dead, None, true_power_w);
            let per_node_nameplate = config.aggregate_nameplate_w() / config.servers as f64;
            let view = pipeline.filter.run(now, &frame, per_node_nameplate);
            if let Some(learn) = pipeline.learn.as_mut() {
                learn.run(nodes, node_dead, &frame, nlb);
            }
            let supply_w = pipeline.filter.monitor.budget().supply_w;
            let mut actions = std::mem::take(&mut pipeline.actions);
            pipeline.decide.run(
                now, &view, supply_w, config, nodes, node_dead, battery, flows, &mut actions,
            );
            pipeline.act.enact(
                now,
                &mut actions,
                ActCtx { nodes, node_dead, battery, flows, fault: None },
                &mut sched,
            );
            pipeline.actions = actions;
            pipeline.sense.recycle(frame);
        }
        for (time, ev) in sched.drain_staged() {
            match ev {
                Ev::DvfsSettle { node } => {
                    let s = self.owner_shard[node];
                    let local = node - self.shards[s].start();
                    self.shards[s].push_settle(time, local);
                }
                // The battery clamps at its bounds inside `advance`;
                // slot-granular metering needs no mid-slot event.
                Ev::BatteryBound => {}
                other => unreachable!("boundary stages staged unexpected event {other:?}"),
            }
        }

        // Slot-batched NLB load refresh + V/F stats, both as flat scans
        // over the data-oriented columns.
        {
            let Self { shards, nlb, .. } = self;
            for sh in shards.iter() {
                nlb.sync_loads(sh.start(), sh.inflight_col());
            }
        }
        let mut vf_sum = 0.0;
        let mut vf_max = 0u8;
        for sh in &self.shards {
            for &v in sh.vf_col() {
                vf_sum += v as f64;
                vf_max = vf_max.max(v);
            }
        }
        let mean_vf = vf_sum / self.nodes.len() as f64;
        let soc = self.battery.soc();
        self.pipeline.account.record_slot_stats(now, mean_vf, vf_max, soc);
    }

    fn finalize(&mut self, exp: &ExperimentConfig, horizon: SimTime) -> SimReport {
        // Close every shard's integration interval and merge metrics in
        // shard-index order (all merges are counter additions, so the
        // result is layout-independent).
        let mut load_j = 0.0;
        let mut shard_events = 0u64;
        for sh in &mut self.shards {
            sh.integrate_to(horizon);
            load_j += sh.joules;
            shard_events += sh.events;
            self.normal_hist.merge(&sh.normal_hist);
            self.attack_hist.merge(&sh.attack_hist);
            self.normal_sla.merge(&sh.normal_sla);
            self.attack_sla.merge(&sh.attack_sla);
        }
        // Censor in-flight requests: count those past their client
        // timeout as timed out.
        {
            let Self { nodes, attack_sla, normal_sla, .. } = self;
            for node in nodes.iter_mut() {
                node.drain_with(horizon, |req| {
                    if let Some(sojourn) = horizon.checked_since(req.arrival) {
                        if req.abandoned(sojourn) {
                            let sla =
                                if req.is_attack { &mut *attack_sla } else { &mut *normal_sla };
                            sla.record(RequestOutcome::TimedOut);
                        }
                    }
                });
            }
        }
        let account = &self.pipeline.account;
        let monitor = &self.pipeline.filter.monitor;
        let firewall_blocked = self
            .firewall
            .as_ref()
            .map(|f| f.blocked_requests())
            .unwrap_or(0);
        let queue_rejected: u64 = self.nodes.iter().map(|n| n.rejected()).sum::<u64>();
        let drops = firewall_blocked + self.scheme_denied_drops + queue_rejected;
        let duration_s = horizon.as_secs_f64();
        let supply_w = monitor.budget().supply_w;

        let thin = |ts: &TimeSeries| -> Vec<(f64, f64)> {
            ts.thin(600)
                .into_iter()
                .map(|(t, v)| (t.as_secs_f64(), v))
                .collect()
        };
        // Energy identities (same as the event-driven meter, computed
        // from the shards' exact load integral and the battery's own
        // exact flow counters): utility = load − discharge + charge.
        let battery_j = self.battery.total_discharged_j().min(load_j);
        let charge_j = self.battery.total_charge_drawn_j();
        let utility_j = (load_j - battery_j).max(0.0) + charge_j;

        SimReport {
            label: exp.label.clone(),
            scheme: self.pipeline.decide.scheme.name().to_string(),
            budget: self.config.budget.name().to_string(),
            duration_s,
            seed: exp.seed,
            normal_latency: LatencySummary::from_histogram(&self.normal_hist),
            attack_latency: LatencySummary::from_histogram(&self.attack_hist),
            normal_sla: self.normal_sla,
            attack_sla: self.attack_sla,
            power: PowerReport {
                supply_w,
                peak_w: account.power_series.max_value().unwrap_or(0.0),
                avg_w: load_j / duration_s.max(1e-9),
                violations: monitor.violations(),
                outage_at_s: account.outage().map(|t| t.as_secs_f64()),
                violation_fraction: if monitor.lifetime().count() == 0 {
                    0.0
                } else {
                    monitor.violations() as f64 / monitor.lifetime().count() as f64
                },
                series: thin(&account.power_series),
            },
            battery: BatteryReport {
                capacity_j: self.battery.capacity_j(),
                min_soc: account.battery_series.min_value().unwrap_or(1.0),
                final_soc: self.battery.soc(),
                episodes: self.battery.discharge_episodes(),
                discharged_j: self.battery.total_discharged_j(),
                charge_drawn_j: self.battery.total_charge_drawn_j(),
                series: thin(&account.battery_series),
            },
            energy: EnergyReport {
                utility_j,
                battery_j,
                load_j,
                normalized_utility: utility_j / (supply_w * duration_s).max(1e-9),
            },
            vf: VfReport {
                mean_reduction_steps: account.vf_summary.mean(),
                max_reduction_steps: account.max_vf,
                transitions: self.nodes.iter().map(|n| n.dvfs_transitions()).sum::<u64>(),
            },
            thermal: match &account.thermals {
                None => ThermalReport::default(),
                Some(ths) => ThermalReport {
                    peak_temp_c: ths.iter().map(|t| t.peak_c()).fold(0.0, f64::max),
                    prochot_events: ths.iter().map(|t| t.prochot_events()).sum(),
                    tripped_nodes: self.node_dead.iter().filter(|&&d| d).count() as u64,
                },
            },
            traffic: TrafficReport {
                offered: self.offered,
                firewall_blocked,
                scheme_denied: self.pipeline.decide.scheme.denied(),
                queue_rejected,
                to_suspect_pool: self.nlb.to_suspect_pool(),
                drop_rate: if self.offered == 0 {
                    0.0
                } else {
                    drops as f64 / self.offered as f64
                },
            },
            profiler: self.pipeline.learn.as_ref().map(|l| l.report()),
            faults: None,
            events: self.events + shard_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchemeKind;
    use crate::testutil;
    use powercap::budget::BudgetLevel;
    use simcore::SimDuration;

    fn exp(shards: usize, scheme: SchemeKind, secs: u64) -> ExperimentConfig {
        let mut cluster = ClusterConfig::scaled(BudgetLevel::Medium);
        cluster.shards = shards;
        ExperimentConfig {
            cluster,
            scheme,
            duration: SimDuration::from_secs(secs),
            seed: 2019,
            label: format!("shard-test-{shards}"),
        }
    }

    fn sources(e: &ExperimentConfig) -> Vec<Box<dyn TrafficSource>> {
        let horizon = SimTime::ZERO + e.duration;
        vec![
            testutil::normal_source(e.seed, horizon, 120.0),
            testutil::attack_source(e.seed ^ 0xABCD, 400.0, SimTime::from_secs(5), horizon),
        ]
    }

    fn run(shards: usize, scheme: SchemeKind, secs: u64) -> SimReport {
        let e = exp(shards, scheme, secs);
        ShardedClusterSim::run(&e, sources(&e))
    }

    #[test]
    fn shard_partition_is_near_even_and_contiguous() {
        let e = exp(3, SchemeKind::AntiDope, 30);
        let sim = ShardedClusterSim::new(&e, sources(&e));
        let sizes: Vec<usize> = sim.shards().iter().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![6, 5, 5]);
        let starts: Vec<usize> = sim.shards().iter().map(|s| s.start()).collect();
        assert_eq!(starts, vec![0, 6, 11]);
        // Every shard owns a distinct RNG stream space.
        let a = sim.shards()[0].rng_factory().master_seed();
        let b = sim.shards()[1].rng_factory().master_seed();
        assert_ne!(a, b);
    }

    #[test]
    fn same_seed_same_layout_is_deterministic() {
        let a = run(4, SchemeKind::AntiDope, 30);
        let b = run(4, SchemeKind::AntiDope, 30);
        assert_eq!(format!("{a:#?}"), format!("{b:#?}"));
    }

    #[test]
    fn discrete_counts_conserved_across_shard_counts() {
        let base = run(2, SchemeKind::AntiDope, 30);
        for shards in [4, 8] {
            let other = run(shards, SchemeKind::AntiDope, 30);
            assert_eq!(base.traffic.offered, other.traffic.offered);
            assert_eq!(base.traffic.firewall_blocked, other.traffic.firewall_blocked);
            assert_eq!(base.traffic.scheme_denied, other.traffic.scheme_denied);
            assert_eq!(base.traffic.queue_rejected, other.traffic.queue_rejected);
            assert_eq!(base.normal_sla.total(), other.normal_sla.total());
            assert_eq!(base.attack_sla.total(), other.attack_sla.total());
            assert_eq!(base.events, other.events);
            let rel = (base.energy.load_j - other.energy.load_j).abs()
                / base.energy.load_j.max(1e-9);
            assert!(rel < 1e-9, "load energy drifted {rel} at {shards} shards");
        }
    }
}
