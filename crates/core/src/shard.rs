//! Sharded parallel cluster engine with data-oriented node state.
//!
//! [`ClusterSim`](crate::cluster::ClusterSim) interleaves every event in
//! one global queue and rescans all `n` nodes on every power-changing
//! event, which caps throughput on large clusters. This module trades a
//! little event-ordering generality for locality and parallelism:
//!
//! * **Sharding** — the nodes are partitioned into `shards` contiguous,
//!   near-even slices. Within one control slot `(t0, t1]` each shard
//!   advances its own dataplane (arrivals, PS-queue completions, DVFS
//!   settles) independently; shards only exchange state at slot
//!   boundaries, a conservative synchronization that is safe because
//!   nothing couples nodes *between* boundaries — routing, control
//!   decisions, battery flows, and breaker state are all slot-scoped.
//! * **Data-oriented node state** — each shard mirrors its nodes' hot
//!   fields (power draw, in-flight count, V/F reduction) into
//!   struct-of-arrays columns, updated in O(1) per event. The slot
//!   boundary aggregates power and V/F statistics with tight flat scans
//!   over the columns instead of walking node structs, and energy is
//!   integrated from an incrementally-maintained per-shard power sum —
//!   O(1) per event where the legacy engine pays O(n).
//!
//! One slot cycle:
//!
//! ```text
//! phase A (seq): merged sources ─► firewall ─► admit ─► NLB route
//!                          └──► per-shard arrival inboxes
//! phase B (par): shard event loops (arrive/complete/settle) + SoA
//! phase C (seq): outbox drain ─► Sense ─► Filter ─► Learn ─► Decide
//!                ─► Act ─► Account  (byte-identical stage code)
//! ```
//!
//! # Determinism contract
//!
//! * Same seed + same shard layout ⇒ identical [`SimReport`]s: nothing
//!   in the cycle depends on thread scheduling — phase B shards touch
//!   disjoint state and phase C drains them in shard-index order.
//! * Same seed at *any* shard count ⇒ **byte-identical** reports, with
//!   or without fault injection. Three mechanisms carry the guarantee:
//!   the slot-boundary power aggregate is one flat scan in global node
//!   order (independent of the partition), so every control decision —
//!   and therefore every discrete count — is layout-invariant; energy
//!   and latency statistics are accumulated **per node** and folded in
//!   global node order at finalize, so float addition order never
//!   depends on the partition; and fault randomness is drawn from
//!   per-node RNG streams ([`ShardFaultPlan`]), so no draw ever crosses
//!   a shard boundary.
//! * `shards: 1` configs without a retry policy never reach this
//!   engine — the dispatcher in [`crate::runner`] keeps them on the
//!   original event-driven [`ClusterSim`](crate::cluster::ClusterSim),
//!   byte-for-byte.
//!
//! # Deliberate semantic deltas vs. the event-driven engine
//!
//! * NLB load estimates refresh once per slot (plus LeastLoaded's
//!   optimistic increments) instead of per event.
//! * Perimeter feedback (firewall blocks, admission denials) is
//!   delivered inline during phase A; completion/queue-rejection
//!   feedback is delivered at the closing slot boundary, in
//!   `(time, source)` order.
//! * The battery integrates at slot boundaries; the mid-slot
//!   `BatteryBound` event is unnecessary because [`Battery::advance`]
//!   clamps at empty/full itself — only the metering granularity
//!   changes, not the stored energy.
//! * Fault randomness comes from per-node streams instead of the legacy
//!   engine's single event-ordered stream, so fault-injected runs are
//!   not byte-comparable *between the two engines* (each engine is
//!   internally deterministic). Crash reboots settle at the next slot
//!   boundary rather than mid-slot.
//! * With a [`RetryConfig`] the coordinator owns a resilience
//!   dataplane: failed dispatches re-enter the NLB after timeout +
//!   jittered exponential backoff, and per-pool circuit breakers
//!   steer retries away from dark racks. Without a power topology the
//!   breaker pools follow the shard partition, so such retry runs are
//!   deterministic per layout but *not* layout-invariant. With a
//!   topology configured the pools are keyed by physical rack instead
//!   (success signals fold per-node completion flags in global node
//!   order), so hierarchical retry runs are byte-identical across
//!   shard counts.

use crate::config::ExperimentConfig;
use crate::control::act::ActCtx;
use crate::control::plane::{
    self, ControlTrace, ForgetKind, TraceRecorder,
};
use crate::control::{BatteryFlows, ControlPipeline, FaultLayer};
use crate::health::ShardWatchdog;
use crate::node::ComputeNode;
use crate::results::{
    BatteryReport, EnergyReport, FaultReport, LatencySummary, PowerReport, RetryReport, SimReport,
    ThermalReport, TrafficReport, VfReport,
};
use crate::scheme::{self, PowerScheme};
use crate::{cluster::Ev, config::ClusterConfig};
use dcmetrics::availability::RequestOutcome;
use dcmetrics::{LatencyHistogram, OnlineSummary, SlaTracker, TimeSeries};
use netsim::admission::{AdmissionDecision, AdmissionPipeline, StageKind};
use netsim::nlb::Nlb;
use netsim::queueing::PushOutcome;
use netsim::request::{Request, RequestId, UrlId};
use netsim::resilience::{PoolBreakers, RetryConfig};
use powercap::battery::{Battery, BatteryMode};
use powercap::budget::PowerBudget;
use rayon::prelude::*;
use simcore::faults::ShardFaultPlan;
use simcore::fxhash::FxHashMap;
use simcore::rng::{streams, RngFactory, SimRng};
use simcore::{Scheduler, SimTime};
use std::collections::{BinaryHeap, VecDeque};
use workloads::fanout::MergedSources;
use workloads::source::{SourceEvent, TrafficSource};

/// Shard-local events (node indices are shard-local).
#[derive(Debug)]
enum ShardEv {
    /// Predicted completion (valid only at the stamped queue epoch).
    Complete {
        node: usize,
        epoch: u64,
        id: RequestId,
    },
    /// A DVFS transition settles.
    DvfsSettle { node: usize },
}

/// Heap entry ordered by `(time, seq)`; `seq` makes the order total and
/// insertion-stable, so shard replay is deterministic.
struct HeapEntry {
    time: SimTime,
    seq: u64,
    ev: ShardEv,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Learn-stage hook replay, drained at the slot boundary (node indices
/// are global). The hooks are counters, so replay order is irrelevant.
#[derive(Debug, Clone, Copy)]
enum LearnEvt {
    Dispatch { node: usize, url: UrlId },
    Complete { node: usize, url: UrlId },
}

/// One dataplane shard: a contiguous slice of the cluster's nodes, its
/// own event queues, RNG stream space, metrics, and the data-oriented
/// (struct-of-arrays) mirror of the hot per-node fields.
pub struct Shard {
    /// Global index of this shard's first node.
    start: usize,
    /// Hot column: per-node power draw, watts (0 for dead nodes).
    power_w: Vec<f64>,
    /// Hot column: per-node in-flight request count.
    inflight: Vec<u32>,
    /// Hot column: per-node effective V/F reduction steps.
    vf_steps: Vec<u8>,
    /// Hot column: dead-node mask (crash, thermal trip, or outage).
    dead: Vec<bool>,
    /// Exact per-node load energy integrated so far, joules. Kept per
    /// node (not per shard) so the finalize fold can sum in global node
    /// order — float addition order independent of the partition.
    joules: Vec<f64>,
    /// Instant up to which each node's `joules` is integrated.
    last_t: Vec<SimTime>,
    /// Per-node latency summaries (normal / attack traffic), folded in
    /// global node order at finalize for layout-invariant means.
    normal_sum: Vec<OnlineSummary>,
    attack_sum: Vec<OnlineSummary>,
    /// Arrivals for the current slot, in delivery order
    /// (`(time, source, local node, request)`).
    inbox: VecDeque<(SimTime, usize, usize, Request)>,
    /// Completion predictions and DVFS settles.
    heap: BinaryHeap<HeapEntry>,
    /// Monotonic tiebreaker for heap entries.
    seq: u64,
    /// Accepted request → owning source index.
    owner: FxHashMap<RequestId, usize>,
    /// Source feedback produced this slot, drained at the boundary.
    outbox: Vec<(SimTime, usize, SourceEvent)>,
    /// Learn-stage hook replays produced this slot.
    learn_out: Vec<LearnEvt>,
    /// Whether to collect learn replays at all (profiler configured).
    learn_enabled: bool,
    /// Shard-local latency/SLA metrics, merged at finalize.
    normal_hist: LatencyHistogram,
    attack_hist: LatencyHistogram,
    normal_sla: SlaTracker,
    attack_sla: SlaTracker,
    /// Per-shard stream space derived as `master.shard(index)`; reserved
    /// for stochastic dataplane extensions so adding one never perturbs
    /// another shard's streams.
    rng: RngFactory,
    /// Events this shard has processed.
    events: u64,
    /// Completions whose request had already been retried at least once.
    recovered: u64,
    /// Completions inside the current slot — the circuit breakers'
    /// per-pool success signal, reset at every boundary.
    slot_completions: u64,
    /// Per-node completion flags for the current slot, set only when
    /// `track_completions` is on (rack-keyed breaker pools). Folded in
    /// global node order at the boundary so the success signal is
    /// shard-layout-invariant, then cleared.
    completed: Vec<bool>,
    /// Whether completions are tracked per node (topology-configured
    /// runs with circuit breakers enabled).
    track_completions: bool,
}

impl Shard {
    fn new(
        index: usize,
        start: usize,
        nodes: &[ComputeNode],
        master: &RngFactory,
        learn_enabled: bool,
        track_completions: bool,
    ) -> Self {
        let power_w: Vec<f64> = nodes.iter().map(|n| n.power_w()).collect();
        Shard {
            start,
            power_w,
            inflight: vec![0; nodes.len()],
            vf_steps: vec![0; nodes.len()],
            dead: vec![false; nodes.len()],
            joules: vec![0.0; nodes.len()],
            last_t: vec![SimTime::ZERO; nodes.len()],
            normal_sum: vec![OnlineSummary::new(); nodes.len()],
            attack_sum: vec![OnlineSummary::new(); nodes.len()],
            inbox: VecDeque::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            owner: FxHashMap::default(),
            outbox: Vec::new(),
            learn_out: Vec::new(),
            learn_enabled,
            normal_hist: LatencyHistogram::for_latency_secs(),
            attack_hist: LatencyHistogram::for_latency_secs(),
            normal_sla: SlaTracker::new(),
            attack_sla: SlaTracker::new(),
            rng: master.shard(index as u64),
            events: 0,
            recovered: 0,
            slot_completions: 0,
            completed: vec![false; nodes.len()],
            track_completions,
        }
    }

    /// Number of nodes this shard owns.
    pub fn len(&self) -> usize {
        self.power_w.len()
    }

    /// True for a shard with no nodes (never built by the engine).
    pub fn is_empty(&self) -> bool {
        self.power_w.is_empty()
    }

    /// Global index of this shard's first node.
    pub fn start(&self) -> usize {
        self.start
    }

    /// The per-node power column, watts (data-oriented hot state).
    pub fn power_col(&self) -> &[f64] {
        &self.power_w
    }

    /// The per-node in-flight column.
    pub fn inflight_col(&self) -> &[u32] {
        &self.inflight
    }

    /// The per-node V/F reduction column.
    pub fn vf_col(&self) -> &[u8] {
        &self.vf_steps
    }

    /// The shard's derived RNG stream space.
    pub fn rng_factory(&self) -> &RngFactory {
        &self.rng
    }

    /// Events processed by this shard so far.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Refresh the SoA columns for local node `j` after any event that
    /// may have changed its state, integrating the node's energy over
    /// the old power level first. Integration is strictly per node: a
    /// node's `(power, Δt)` product sequence depends only on its own
    /// event history, never on which shard it landed in.
    #[inline]
    fn touch(&mut self, now: SimTime, j: usize, node: &ComputeNode) {
        self.integrate_node(now, j);
        let p = if self.dead[j] { 0.0 } else { node.power_w() };
        self.power_w[j] = p;
        self.inflight[j] = node.inflight() as u32;
        self.vf_steps[j] = node.vf_reduction_steps();
    }

    /// Advance local node `j`'s exact energy integral to `t`.
    #[inline]
    fn integrate_node(&mut self, t: SimTime, j: usize) {
        if t > self.last_t[j] {
            self.joules[j] += self.power_w[j] * t.since(self.last_t[j]).as_secs_f64();
            self.last_t[j] = t;
        }
    }

    /// Advance every node's energy integral to `t` (slot close).
    fn integrate_all(&mut self, t: SimTime) {
        for j in 0..self.power_w.len() {
            self.integrate_node(t, j);
        }
    }

    /// Queue an arrival routed to local node `j` (phase A, coordinator).
    fn enqueue_arrival(&mut self, t: SimTime, src: usize, j: usize, req: Request) {
        self.inbox.push_back((t, src, j, req));
    }

    /// Queue a DVFS settle staged by the boundary control plane.
    fn push_settle(&mut self, time: SimTime, j: usize) {
        self.seq += 1;
        self.heap.push(HeapEntry {
            time,
            seq: self.seq,
            ev: ShardEv::DvfsSettle { node: j },
        });
    }

    /// (Re)schedule the completion prediction for local node `j`.
    fn refresh_completion(&mut self, now: SimTime, j: usize, node: &mut ComputeNode) {
        if let Some((eta, id)) = node.next_completion(now) {
            self.seq += 1;
            self.heap.push(HeapEntry {
                time: eta.max(now),
                seq: self.seq,
                ev: ShardEv::Complete {
                    node: j,
                    epoch: node.epoch(),
                    id,
                },
            });
        }
    }

    fn record_outcome(&mut self, is_attack: bool, outcome: RequestOutcome) {
        if is_attack {
            self.attack_sla.record(outcome);
        } else {
            self.normal_sla.record(outcome);
        }
    }

    /// Phase B: replay this shard's events up to and including `t1`,
    /// then close the slot — integrate every node's energy to `t1`.
    fn advance(&mut self, nodes: &mut [ComputeNode], t1: SimTime) {
        loop {
            let th = self.heap.peek().map(|e| e.time);
            let ta = self.inbox.front().map(|a| a.0);
            // Earliest of the two queues; heap wins ties so completions
            // at an instant precede arrivals at the same instant.
            let take_heap = match (th, ta) {
                (None, None) => break,
                (Some(h), None) => {
                    if h > t1 {
                        break;
                    }
                    true
                }
                (None, Some(a)) => {
                    if a > t1 {
                        break;
                    }
                    false
                }
                (Some(h), Some(a)) => {
                    if h.min(a) > t1 {
                        break;
                    }
                    h <= a
                }
            };
            self.events += 1;
            if take_heap {
                let e = self.heap.pop().expect("peeked heap entry vanished");
                match e.ev {
                    ShardEv::Complete { node, epoch, id } => {
                        self.handle_completion(e.time, node, epoch, id, nodes);
                    }
                    ShardEv::DvfsSettle { node } => {
                        nodes[node].apply_dvfs(e.time);
                        self.refresh_completion(e.time, node, &mut nodes[node]);
                        self.touch(e.time, node, &nodes[node]);
                    }
                }
            } else {
                let (t, src, j, req) = self.inbox.pop_front().expect("peeked arrival vanished");
                self.handle_arrival(t, src, j, req, nodes);
            }
        }
        self.integrate_all(t1);
    }

    fn handle_arrival(
        &mut self,
        now: SimTime,
        src: usize,
        j: usize,
        req: Request,
        nodes: &mut [ComputeNode],
    ) {
        let is_attack = req.is_attack;
        let source_id = req.source;
        let id = req.id;
        let url = req.url;
        match nodes[j].push(now, req) {
            PushOutcome::Rejected => {
                self.record_outcome(is_attack, RequestOutcome::Dropped);
                self.outbox.push((now, src, SourceEvent::Rejected(source_id)));
            }
            PushOutcome::Accepted => {
                self.owner.insert(id, src);
                if self.learn_enabled {
                    self.learn_out.push(LearnEvt::Dispatch {
                        node: self.start + j,
                        url,
                    });
                }
                self.refresh_completion(now, j, &mut nodes[j]);
                self.touch(now, j, &nodes[j]);
            }
        }
    }

    fn handle_completion(
        &mut self,
        now: SimTime,
        j: usize,
        epoch: u64,
        id: RequestId,
        nodes: &mut [ComputeNode],
    ) {
        if nodes[j].epoch() != epoch {
            return; // stale prediction; a fresher event exists
        }
        match nodes[j].try_complete(now, id) {
            Some((req, sojourn)) => {
                let secs = sojourn.as_secs_f64();
                let outcome = if req.abandoned(sojourn) {
                    RequestOutcome::TimedOut
                } else if req.on_time(sojourn) {
                    RequestOutcome::OnTime
                } else {
                    RequestOutcome::Late
                };
                if req.is_attack {
                    self.attack_hist.record(secs);
                    self.attack_sum[j].record(secs);
                } else {
                    self.normal_hist.record(secs);
                    self.normal_sum[j].record(secs);
                }
                self.slot_completions += 1;
                if self.track_completions {
                    self.completed[j] = true;
                }
                if req.attempt > 0 {
                    self.recovered += 1;
                }
                self.record_outcome(req.is_attack, outcome);
                if self.learn_enabled {
                    self.learn_out.push(LearnEvt::Complete {
                        node: self.start + j,
                        url: req.url,
                    });
                }
                if let Some(owner) = self.owner.remove(&id) {
                    self.outbox
                        .push((now, owner, SourceEvent::Completed(req.source)));
                }
                self.refresh_completion(now, j, &mut nodes[j]);
                self.touch(now, j, &nodes[j]);
            }
            None => {
                // Same epoch but residual work above tolerance — only
                // possible through float pathology; self-heal by
                // rescheduling from current state.
                self.refresh_completion(now, j, &mut nodes[j]);
            }
        }
    }

    /// Kill local node `j` (thermal trip or crash without a retry
    /// policy): in-flight requests count as SLA drops, the node is
    /// masked out of the power column. Returns the number of in-flight
    /// requests lost.
    fn kill_node(&mut self, j: usize, node: &mut ComputeNode, now: SimTime) -> u64 {
        let Shard {
            owner,
            normal_sla,
            attack_sla,
            ..
        } = self;
        let mut lost = 0u64;
        node.drain_with(now, |req| {
            let sla = if req.is_attack { &mut *attack_sla } else { &mut *normal_sla };
            sla.record(RequestOutcome::Dropped);
            owner.remove(&req.id);
            lost += 1;
        });
        self.dead[j] = true;
        self.touch(now, j, node);
        lost
    }

    /// Kill local node `j` but hand its in-flight requests back to the
    /// coordinator as `(source, request, global node)` tuples instead of
    /// dropping them — the resilience dataplane decides their fate.
    fn kill_node_collect(
        &mut self,
        j: usize,
        node: &mut ComputeNode,
        now: SimTime,
        global: usize,
        out: &mut Vec<(usize, Request, usize)>,
    ) {
        let Shard { owner, .. } = self;
        node.drain_with(now, |req| {
            let src = owner
                .remove(&req.id)
                .expect("every in-flight request has a recorded owner");
            out.push((src, req, global));
        });
        self.dead[j] = true;
        self.touch(now, j, node);
    }

    /// A crashed node finished rebooting: unmask it and refresh its
    /// columns from the fresh hardware.
    fn revive_node(&mut self, j: usize, node: &ComputeNode, now: SimTime) {
        self.dead[j] = false;
        self.touch(now, j, node);
    }

    /// The breaker opened: drop everything, zero the columns, and stop
    /// integrating — nothing is served until the end of the window.
    fn blackout(&mut self, nodes: &mut [ComputeNode], now: SimTime) {
        for (j, node) in nodes.iter_mut().enumerate() {
            self.integrate_node(now, j);
            let Shard {
                owner,
                normal_sla,
                attack_sla,
                ..
            } = self;
            node.drain_with(now, |req| {
                let sla = if req.is_attack { &mut *attack_sla } else { &mut *normal_sla };
                sla.record(RequestOutcome::Dropped);
                owner.remove(&req.id);
            });
            self.power_w[j] = 0.0;
            self.inflight[j] = 0;
        }
        self.heap.clear();
        self.inbox.clear();
    }
}

/// A retried request waiting out its timeout + backoff, ordered by
/// `(at, request id)` so the replay order is total and deterministic.
struct RetryEntry {
    at: SimTime,
    src: usize,
    req: Request,
}

impl PartialEq for RetryEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.req.id == other.req.id
    }
}
impl Eq for RetryEntry {}
impl PartialOrd for RetryEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RetryEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest retry.
        (other.at, other.req.id).cmp(&(self.at, self.req.id))
    }
}

/// The coordinator's resilience dataplane: bounded retry with jittered
/// exponential backoff plus one circuit breaker per shard (a shard is
/// the engine's stand-in for a rack / breaker domain).
struct Resilience {
    policy: RetryConfig,
    breakers: PoolBreakers,
    /// Dedicated RNG stream for backoff jitter (`streams::RETRY`), so
    /// enabling retries never perturbs fault or workload streams.
    rng: SimRng,
    /// Retries waiting out their backoff, interleaved with source
    /// arrivals in phase A.
    pending: BinaryHeap<RetryEntry>,
    attempts: u64,
    exhausted: u64,
    rerouted: u64,
}

/// The sharded cluster engine: a sequential coordinator (sources,
/// perimeter, NLB, control plane, physics) driving parallel dataplane
/// shards with slot-aligned conservative synchronization.
pub struct ShardedClusterSim {
    config: ClusterConfig,
    horizon: SimTime,
    nodes: Vec<ComputeNode>,
    node_dead: Vec<bool>,
    nlb: Nlb,
    /// Staged perimeter: firewall + configured admission stages.
    admission: AdmissionPipeline,
    battery: Battery,
    flows: BatteryFlows,
    pipeline: ControlPipeline,
    sources: MergedSources,
    shards: Vec<Shard>,
    /// Global node index → owning shard index.
    owner_shard: Vec<usize>,
    /// Global node index → circuit-breaker pool. Rack-keyed when a
    /// power topology is configured (so breaker behaviour is
    /// shard-layout-invariant and trips isolate the physical rack);
    /// identical to `owner_shard` otherwise.
    breaker_pool: Vec<usize>,
    offered: u64,
    scheme_denied_drops: u64,
    normal_hist: LatencyHistogram,
    attack_hist: LatencyHistogram,
    normal_sla: SlaTracker,
    attack_sla: SlaTracker,
    /// Recycled boundary buffer for merging shard feedback in
    /// `(time, source)` order.
    feedback_scratch: Vec<(SimTime, usize, SourceEvent)>,
    /// Coordinator event count (arrivals + slots), reported alongside
    /// the shards' own counts.
    events: u64,
    /// Fault layer (sharded per-node plans), when configured.
    fault: Option<FaultLayer>,
    /// Shard-coverage watchdog, present iff `fault` is.
    shard_watchdog: Option<ShardWatchdog>,
    /// Crashed nodes waiting to reboot (`(due, global node)`), settled
    /// at slot boundaries in node-index order.
    pending_reboots: Vec<(SimTime, usize)>,
    /// Recycled global per-node power vector for the topology's rack
    /// fold (concatenated shard power columns, global node order).
    node_power_scratch: Vec<f64>,
    /// Control-plane trace recorder, when attached. Recording is
    /// read-only — it draws no randomness and touches no model state —
    /// so a recorded run stays byte-identical to an unrecorded one.
    recorder: Option<TraceRecorder>,
    /// Retry / circuit-breaker dataplane, when configured.
    resilience: Option<Resilience>,
}

impl ShardedClusterSim {
    /// Build the engine for an experiment over the given traffic
    /// sources. Panics if `exp.cluster` fails validation.
    pub fn new(exp: &ExperimentConfig, sources: Vec<Box<dyn TrafficSource>>) -> Self {
        let scheme = scheme::build_scheme(exp.scheme, &exp.cluster);
        Self::with_scheme(exp, scheme, sources)
    }

    /// Build with an explicitly-constructed scheme.
    pub fn with_scheme(
        exp: &ExperimentConfig,
        scheme: Box<dyn PowerScheme>,
        sources: Vec<Box<dyn TrafficSource>>,
    ) -> Self {
        let cfg = exp.cluster.clone();
        cfg.validate().expect("invalid cluster config");
        let start = SimTime::ZERO;
        let mut nlb = Nlb::new(cfg.servers, scheme.forwarding_policy(&cfg))
            .expect("forwarding pools checked by ClusterConfig::validate");
        let nodes: Vec<ComputeNode> = (0..cfg.servers)
            .map(|_| ComputeNode::new(start, cfg.cores_per_server, cfg.max_inflight, cfg.dvfs_latency))
            .collect();
        let admission = cfg.build_admission(start);
        let mut battery =
            Battery::sized_for(start, cfg.aggregate_nameplate_w(), cfg.battery_sustain);
        let budget = PowerBudget::for_cluster(cfg.aggregate_nameplate_w(), cfg.budget);

        // Near-even contiguous partition: the first `servers % shards`
        // shards own one extra node. Computed before the pipeline so
        // fault plans and breaker pools can follow the shard map; the
        // layout function is shared with the live replay backends so a
        // trace-driven shard guard judges by the identical map.
        let master = RngFactory::new(exp.seed);
        let k = cfg.shards;
        let (ranges, owner_shard) = plane::shard_layout(cfg.servers, k);

        // One deterministic fault plan per shard, all drawing from the
        // same per-node stream space — no draw crosses a shard boundary,
        // so the fault schedule is independent of the partition.
        let fault = cfg.faults.as_ref().map(|fc| {
            let plans: Vec<ShardFaultPlan> = ranges
                .iter()
                .map(|&(at, len)| {
                    ShardFaultPlan::new(fc.clone(), cfg.servers, at, len, &master)
                        .expect("fault plan checked by ClusterConfig::validate")
                })
                .collect();
            let keep = plans
                .first()
                .map_or(1.0, |p| p.battery_capacity_factor());
            if keep < 1.0 {
                battery.derate(keep);
            }
            FaultLayer::sharded(plans)
        });
        // Engage only after a shard has been blind past the staleness
        // window (shorter gaps are bridged by the last-known-good
        // estimator, and a one-slot all-sensors-dropped coincidence on
        // a small shard is noise, not a rack blackout).
        let shard_watchdog = fault.as_ref().map(|_| {
            ShardWatchdog::new(
                k,
                cfg.control.telemetry_staleness_slots.min(u32::MAX as u64) as u32,
                cfg.control.watchdog_recovery_slots,
            )
        });
        let idle_total: f64 = nodes.iter().map(|n| n.power_w()).sum();
        let pipeline =
            ControlPipeline::new(&cfg, scheme, budget, start, fault.is_some(), idle_total);

        // Circuit-breaker pools are rack-keyed when a power topology is
        // configured — a trip then isolates the physical rack and the
        // breaker dataplane becomes shard-layout-invariant — and follow
        // the shard partition otherwise (the pre-topology behaviour,
        // byte-identical for flat configs).
        let (pool_count, breaker_pool) = match pipeline.topology.as_ref() {
            Some(t) => (t.topo.racks(), t.topo.owner_rack().to_vec()),
            None => (k, owner_shard.clone()),
        };
        // The NLB learns the same placement: routing prefers a URL's
        // home rack, so a rack trip only displaces the flows homed
        // there instead of reshuffling the whole cluster.
        if let Some(t) = pipeline.topology.as_ref() {
            let placement =
                netsim::RackPlacement::new(t.topo.racks(), t.topo.owner_rack().to_vec())
                    .expect("topology checked by ClusterConfig::validate");
            nlb.set_placement(placement)
                .expect("placement covers every backend by construction");
        }
        let resilience = cfg.retry.as_ref().map(|policy| Resilience {
            breakers: PoolBreakers::new(
                pool_count,
                policy.breaker_failure_threshold,
                policy.breaker_cooldown,
            ),
            rng: master.stream(streams::RETRY),
            pending: BinaryHeap::new(),
            attempts: 0,
            exhausted: 0,
            rerouted: 0,
            policy: policy.clone(),
        });
        let track_completions = pipeline.topology.is_some()
            && cfg.retry.as_ref().is_some_and(RetryConfig::breaker_enabled);

        let learn_enabled = pipeline.learn.is_some();
        let shards: Vec<Shard> = ranges
            .iter()
            .enumerate()
            .map(|(i, &(at, len))| {
                Shard::new(i, at, &nodes[at..at + len], &master, learn_enabled, track_completions)
            })
            .collect();

        ShardedClusterSim {
            horizon: start + exp.duration,
            nodes,
            node_dead: vec![false; cfg.servers],
            nlb,
            admission,
            battery,
            flows: BatteryFlows::default(),
            pipeline,
            sources: MergedSources::new(sources),
            shards,
            owner_shard,
            breaker_pool,
            offered: 0,
            scheme_denied_drops: 0,
            normal_hist: LatencyHistogram::for_latency_secs(),
            attack_hist: LatencyHistogram::for_latency_secs(),
            normal_sla: SlaTracker::new(),
            attack_sla: SlaTracker::new(),
            feedback_scratch: Vec::new(),
            events: 0,
            fault,
            shard_watchdog,
            pending_reboots: Vec::new(),
            node_power_scratch: Vec::new(),
            recorder: None,
            resilience,
            config: cfg,
        }
    }

    /// Attach a control-plane trace recorder; every subsequent slot is
    /// captured until [`Self::take_recorder`] collects it.
    pub fn attach_recorder(&mut self, recorder: TraceRecorder) {
        self.recorder = Some(recorder);
    }

    /// Detach the trace recorder, if one was attached.
    pub fn take_recorder(&mut self) -> Option<TraceRecorder> {
        self.recorder.take()
    }

    /// Run an experiment to completion and produce the report.
    pub fn run(exp: &ExperimentConfig, sources: Vec<Box<dyn TrafficSource>>) -> SimReport {
        let scheme = scheme::build_scheme(exp.scheme, &exp.cluster);
        Self::run_with_scheme(exp, scheme, sources)
    }

    /// Run with an explicitly-constructed scheme.
    pub fn run_with_scheme(
        exp: &ExperimentConfig,
        scheme: Box<dyn PowerScheme>,
        sources: Vec<Box<dyn TrafficSource>>,
    ) -> SimReport {
        let mut sim = Self::with_scheme(exp, scheme, sources);
        let horizon = sim.horizon;
        sim.drive_to(horizon);
        sim.finalize(exp, horizon)
    }

    /// Run an experiment while recording the control-plane trace (see
    /// [`crate::cluster::ClusterSim::run_recorded`]).
    pub fn run_recorded(
        exp: &ExperimentConfig,
        sources: Vec<Box<dyn TrafficSource>>,
    ) -> (SimReport, ControlTrace) {
        let scheme = scheme::build_scheme(exp.scheme, &exp.cluster);
        let mut sim = Self::with_scheme(exp, scheme, sources);
        sim.attach_recorder(TraceRecorder::new(exp));
        let horizon = sim.horizon;
        sim.drive_to(horizon);
        let trace = sim
            .take_recorder()
            .expect("recorder attached above")
            .finish();
        (sim.finalize(exp, horizon), trace)
    }

    /// The slot loop: advance window, boundary, repeat to the horizon.
    fn drive_to(&mut self, horizon: SimTime) {
        let slot = self.config.control_slot;
        let mut t0 = SimTime::ZERO;
        loop {
            let t1 = t0 + slot;
            if t1 <= horizon {
                self.advance_window(t1);
                self.boundary(t1);
                t0 = t1;
            } else {
                if t0 < horizon {
                    self.advance_window(horizon);
                }
                break;
            }
        }
    }

    /// The shards (exposed for tests and probes).
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Phase A + phase B: route this window's arrivals (interleaved
    /// with due retries in time order), then advance every shard to
    /// `t1` in parallel.
    fn advance_window(&mut self, t1: SimTime) {
        if self.pipeline.account.outage().is_some() {
            // Dark data center: the feed is open; nothing is served.
            // (`begin_outage` already drained any pending retries.)
            while let Some((i, t, req)) = self.sources.next_arrival_up_to(t1) {
                self.offered += 1;
                self.events += 1;
                self.record_outcome(req.is_attack, RequestOutcome::Dropped);
                self.sources.feedback(t, i, SourceEvent::Rejected(req.source));
            }
            return;
        }
        // Merge the source feed with the retry queue. `next_arrival_up_to`
        // consumes its arrival, so one is buffered while the retry heap
        // is consulted; ties deliver the retry first (it failed earlier,
        // so its logical arrival predates the fresh request).
        let mut buffered: Option<(usize, SimTime, Request)> = None;
        loop {
            if buffered.is_none() {
                buffered = self.sources.next_arrival_up_to(t1);
            }
            let retry_at = self
                .resilience
                .as_ref()
                .and_then(|r| r.pending.peek())
                .map(|e| e.at)
                .filter(|&at| at <= t1);
            let take_retry = match (retry_at, buffered.as_ref()) {
                (None, None) => break,
                (None, Some(_)) => false,
                (Some(_), None) => true,
                (Some(ra), Some(&(_, ta, _))) => ra <= ta,
            };
            if take_retry {
                let e = self
                    .resilience
                    .as_mut()
                    .expect("retry heap implies a policy")
                    .pending
                    .pop()
                    .expect("peeked retry entry vanished");
                self.events += 1;
                self.dispatch(e.at, e.src, e.req);
            } else {
                let (i, t, req) = buffered.take().expect("checked above");
                self.events += 1;
                self.route_arrival(t, i, req);
            }
        }
        let Self { shards, nodes, .. } = self;
        let mut slices: Vec<&mut [ComputeNode]> = Vec::with_capacity(shards.len());
        let mut rest: &mut [ComputeNode] = nodes;
        for sh in shards.iter() {
            let (head, tail) = rest.split_at_mut(sh.len());
            slices.push(head);
            rest = tail;
        }
        shards
            .par_iter_mut()
            .zip(slices)
            .for_each(|(sh, slice)| sh.advance(slice, t1));
    }

    /// Phase A per arrival: perimeter, admission, routing — identical
    /// order and state evolution to the event-driven engine, so the
    /// counts it produces are independent of the shard layout.
    fn route_arrival(&mut self, now: SimTime, src_idx: usize, req: Request) {
        self.offered += 1;
        let is_attack = req.is_attack;
        let source_id = req.source;

        // 1. Staged admission perimeter (firewall first, then any
        // configured stages; first denial wins). A firewall denial is a
        // perimeter detection the source can observe; every other stage
        // looks like a 503.
        match self.admission.decide(now, &req) {
            AdmissionDecision::Admit => {}
            AdmissionDecision::Deny(StageKind::Firewall) => {
                self.record_outcome(is_attack, RequestOutcome::Dropped);
                self.sources.feedback(now, src_idx, SourceEvent::Blocked(source_id));
                return;
            }
            AdmissionDecision::Deny(_) => {
                self.record_outcome(is_attack, RequestOutcome::Dropped);
                self.sources.feedback(now, src_idx, SourceEvent::Rejected(source_id));
                return;
            }
        }

        // 2. Scheme admission (Token's power bucket).
        if !self.pipeline.decide.admit(now, &req) {
            self.scheme_denied_drops += 1;
            self.record_outcome(is_attack, RequestOutcome::Dropped);
            self.sources.feedback(now, src_idx, SourceEvent::Rejected(source_id));
            return;
        }

        // 3. Forward into the owning shard's inbox.
        self.dispatch(now, src_idx, req);
    }

    /// Route a request (fresh or retried) through the NLB into a shard
    /// inbox. With a resilience policy, a dispatch aimed at a breaker-
    /// blocked pool is re-routed to a surviving pool, and a dispatch
    /// landing on a dead node becomes a failed attempt (retried after
    /// timeout + backoff) instead of a silent drop.
    fn dispatch(&mut self, now: SimTime, src_idx: usize, req: Request) {
        let mut target = self.nlb.route(&req);
        let pool = self.breaker_pool[target];
        let blocked = match self.resilience.as_mut() {
            Some(r) if r.policy.breaker_enabled() => !r.breakers.allows(pool, now),
            _ => false,
        };
        if blocked {
            if let Some(alt) = self.pick_alternate(now) {
                target = alt;
                self.resilience
                    .as_mut()
                    .expect("blocked pool implies a policy")
                    .rerouted += 1;
            }
        }
        if self.node_dead[target] {
            if self.resilience.is_some() {
                self.attempt_failed(now, src_idx, req, target);
            } else {
                self.record_outcome(req.is_attack, RequestOutcome::Dropped);
                self.sources
                    .feedback(now, src_idx, SourceEvent::Rejected(req.source));
            }
            return;
        }
        let s = self.owner_shard[target];
        let local = target - self.shards[s].start();
        self.shards[s].enqueue_arrival(now, src_idx, local, req);
    }

    /// First alive node in an unblocked pool, scanning from node 0 —
    /// deterministic, and biased toward low-index pools the same way for
    /// every request, which the per-slot NLB load sync then corrects.
    fn pick_alternate(&self, now: SimTime) -> Option<usize> {
        let r = self.resilience.as_ref()?;
        (0..self.nodes.len())
            .find(|&g| !self.node_dead[g] && !r.breakers.blocked(self.breaker_pool[g], now))
    }

    /// A dispatch attempt failed (dead node or crash-drained in-flight
    /// request). Charge the target's pool breaker, then either schedule
    /// a retry after timeout + jittered exponential backoff or — with
    /// the attempt budget exhausted — record the final drop.
    fn attempt_failed(&mut self, now: SimTime, src_idx: usize, req: Request, target: usize) {
        let pool = self.breaker_pool[target];
        let exhausted = {
            let r = self
                .resilience
                .as_mut()
                .expect("failed attempts are only raised with a policy");
            if r.policy.breaker_enabled() {
                r.breakers.on_failure(pool, now);
            }
            if req.attempt + 1 < r.policy.max_attempts {
                let backoff = r.policy.backoff(req.attempt, &mut r.rng);
                let mut req = req;
                req.attempt += 1;
                r.attempts += 1;
                r.pending.push(RetryEntry {
                    at: now + r.policy.timeout + backoff,
                    src: src_idx,
                    req,
                });
                None
            } else {
                r.exhausted += 1;
                Some(req)
            }
        };
        if let Some(req) = exhausted {
            self.record_outcome(req.is_attack, RequestOutcome::Dropped);
            self.sources
                .feedback(now, src_idx, SourceEvent::Rejected(req.source));
        }
    }

    fn record_outcome(&mut self, is_attack: bool, outcome: RequestOutcome) {
        if is_attack {
            self.attack_sla.record(outcome);
        } else {
            self.normal_sla.record(outcome);
        }
    }

    fn integrate_battery(&mut self, now: SimTime) {
        let flow = self.battery.advance(now);
        match self.battery.mode() {
            BatteryMode::Discharging(_) => {
                self.flows.discharge_w = flow;
            }
            BatteryMode::Charging(_) => {
                self.flows.charge_w = flow;
            }
            BatteryMode::Idle => {
                self.flows = BatteryFlows::default();
            }
        }
    }

    /// The slot-boundary power aggregate: one flat scan over the shards'
    /// power columns *in global node order*. One accumulator, one
    /// addition order, regardless of how many shards the nodes are split
    /// into — this is what makes control decisions (and therefore every
    /// discrete count) bit-identical across shard layouts.
    fn aggregate_power_w(&self) -> f64 {
        let mut total = 0.0;
        for sh in &self.shards {
            for &p in sh.power_col() {
                total += p;
            }
        }
        total
    }

    /// Drain shard outboxes in shard order: learn-hook replays (count
    /// increments, order-insensitive) and source feedback, the latter
    /// merged into `(time, source)` order so delivery is independent of
    /// the shard layout.
    fn drain_shard_outboxes(&mut self, now: SimTime) {
        let Self {
            shards,
            sources,
            pipeline,
            feedback_scratch,
            ..
        } = self;
        feedback_scratch.clear();
        for sh in shards.iter_mut() {
            if let Some(learn) = pipeline.learn.as_mut() {
                for ev in sh.learn_out.drain(..) {
                    match ev {
                        LearnEvt::Dispatch { node, url } => learn.on_dispatch(node, url),
                        LearnEvt::Complete { node, url } => learn.on_complete(node, url),
                    }
                }
            } else {
                sh.learn_out.clear();
            }
            feedback_scratch.append(&mut sh.outbox);
        }
        feedback_scratch.sort_by_key(|&(t, src, ev)| {
            let rank = match ev {
                SourceEvent::Blocked(_) => 0u8,
                SourceEvent::Rejected(_) => 1,
                SourceEvent::Completed(_) => 2,
            };
            (t, src, rank)
        });
        for &(_, src, ev) in feedback_scratch.iter() {
            sources.feedback(now, src, ev);
        }
    }

    /// Thermal boundary pass: PROCHOT clamps become shard settle events;
    /// critical trips kill the node inside its owning shard.
    fn thermal_boundary(&mut self, now: SimTime) {
        let mut tripped = std::mem::take(&mut self.pipeline.tripped);
        let mut sched: Scheduler<Ev> = Scheduler::detached(now);
        {
            let Self { pipeline, nodes, node_dead, .. } = self;
            pipeline
                .account
                .advance_thermals(now, nodes, node_dead, &mut sched, &mut tripped);
        }
        for (time, ev) in sched.drain_staged() {
            if let Ev::DvfsSettle { node } = ev {
                let s = self.owner_shard[node];
                let local = node - self.shards[s].start();
                self.shards[s].push_settle(time, local);
            }
        }
        for &i in &tripped {
            self.node_dead[i] = true;
            let s = self.owner_shard[i];
            let local = i - self.shards[s].start();
            if self.resilience.is_some() {
                let mut lost = Vec::new();
                self.shards[s].kill_node_collect(local, &mut self.nodes[i], now, i, &mut lost);
                for (src, req, node) in lost {
                    self.attempt_failed(now, src, req, node);
                }
            } else {
                self.shards[s].kill_node(local, &mut self.nodes[i], now);
            }
            if let Some(learn) = &mut self.pipeline.learn {
                learn.forget_node(i);
            }
            if let Some(rec) = &mut self.recorder {
                rec.note_forget(i, ForgetKind::Learn);
            }
        }
        tripped.clear();
        self.pipeline.tripped = tripped;
    }

    /// Settle due reboots (slot-aligned; the legacy engine settles them
    /// mid-slot). Fresh hardware replaces the crashed node, cumulative
    /// counters are retired into the fault layer, and — without a retry
    /// policy — the oracle failure detector puts it back in rotation.
    fn process_reboots(&mut self, now: SimTime) {
        if self.pending_reboots.is_empty() {
            return;
        }
        let mut due: Vec<usize> = self
            .pending_reboots
            .iter()
            .filter(|&&(t, _)| t <= now)
            .map(|&(_, n)| n)
            .collect();
        self.pending_reboots.retain(|&(t, _)| t > now);
        due.sort_unstable();
        for node in due {
            if !self.node_dead[node] {
                continue;
            }
            {
                let Self { nodes, fault, config, .. } = self;
                let f = fault
                    .as_mut()
                    .expect("reboots only scheduled with a fault plan");
                f.retired_rejected += nodes[node].rejected();
                f.retired_transitions += nodes[node].dvfs_transitions();
                nodes[node] = ComputeNode::new(
                    now,
                    config.cores_per_server,
                    config.max_inflight,
                    config.dvfs_latency,
                );
                f.plan.record_reboot(node);
            }
            if let Some(learn) = &mut self.pipeline.learn {
                learn.forget_node(node);
            }
            if let Some(rec) = &mut self.recorder {
                rec.note_forget(node, ForgetKind::Learn);
            }
            self.node_dead[node] = false;
            let s = self.owner_shard[node];
            let local = node - self.shards[s].start();
            self.shards[s].revive_node(local, &self.nodes[node], now);
            if self.resilience.is_none() {
                self.nlb.set_health(node, true);
                self.nlb.report_load(node, 0);
            }
        }
    }

    /// Kill nodes whose injected crash is due: with a retry policy the
    /// drained in-flight requests become failed attempts (the NLB is
    /// *not* told — failure is observed end-to-end through timeouts and
    /// breakers); without one they are dropped and the oracle detector
    /// routes around the corpse, matching the legacy engine.
    fn process_crashes(&mut self, now: SimTime) {
        let mut lost_reqs: Vec<(usize, Request, usize)> = Vec::new();
        for g in 0..self.nodes.len() {
            if self.node_dead[g] {
                continue;
            }
            let due = match self.fault.as_mut() {
                Some(f) => f.plan.crash_due(now, g),
                None => return,
            };
            if !due {
                continue;
            }
            self.node_dead[g] = true;
            let s = self.owner_shard[g];
            let local = g - self.shards[s].start();
            let lost = if self.resilience.is_some() {
                let before = lost_reqs.len();
                self.shards[s].kill_node_collect(local, &mut self.nodes[g], now, g, &mut lost_reqs);
                (lost_reqs.len() - before) as u64
            } else {
                self.shards[s].kill_node(local, &mut self.nodes[g], now)
            };
            if let Some(learn) = &mut self.pipeline.learn {
                learn.forget_node(g);
            }
            let f = self.fault.as_mut().expect("crash implies a fault plan");
            f.lost_to_crash += lost;
            let reboot_after = f.plan.config().reboot_after;
            self.pipeline.filter.forget_node(g);
            self.pipeline.act.clear_node(g);
            if let Some(rec) = &mut self.recorder {
                rec.note_forget(g, ForgetKind::Full);
            }
            if self.resilience.is_none() {
                self.nlb.set_health(g, false);
                self.nlb.report_load(g, 0);
            }
            if !reboot_after.is_zero() {
                self.pending_reboots.push((now + reboot_after, g));
            }
        }
        for (src, req, node) in lost_reqs {
            self.attempt_failed(now, src, req, node);
        }
    }

    /// The hierarchical topology's slot pass: fold per-node power into
    /// per-rack feeds (global node order, so the aggregates are
    /// shard-layout-independent), cascade the budget allocations, and
    /// evaluate every level's breaker. A rack whose breaker opens loses
    /// power: every node on it dies, latched, with no reboot — a
    /// rack-local outage instead of the facility-wide one.
    fn topology_boundary(&mut self, now: SimTime) {
        let fresh = {
            let mut node_power = std::mem::take(&mut self.node_power_scratch);
            node_power.clear();
            for sh in &self.shards {
                node_power.extend_from_slice(sh.power_col());
            }
            let topo = self
                .pipeline
                .topology
                .as_mut()
                .expect("topology_boundary requires a configured topology");
            topo.observe_slot(now, &node_power);
            self.node_power_scratch = node_power;
            topo.verdict.newly_tripped_racks.clone()
        };
        for r in fresh {
            self.trip_rack(now, r);
        }
    }

    /// Rack `rack`'s breaker opened: kill every node it feeds. With a
    /// retry policy the drained in-flights become failed attempts
    /// (timeouts and per-pool breakers observe the dark rack
    /// end-to-end); without one they are dropped and the oracle
    /// detector routes around the corpses — the same split as
    /// [`Self::process_crashes`].
    fn trip_rack(&mut self, now: SimTime, rack: usize) {
        let (start, len) = self
            .pipeline
            .topology
            .as_ref()
            .expect("rack trips come from the topology pass")
            .topo
            .rack_range(rack);
        let mut lost_reqs: Vec<(usize, Request, usize)> = Vec::new();
        for g in start..start + len {
            if self.node_dead[g] {
                continue;
            }
            self.node_dead[g] = true;
            let s = self.owner_shard[g];
            let local = g - self.shards[s].start();
            if self.resilience.is_some() {
                self.shards[s].kill_node_collect(local, &mut self.nodes[g], now, g, &mut lost_reqs);
            } else {
                self.shards[s].kill_node(local, &mut self.nodes[g], now);
            }
            if let Some(learn) = &mut self.pipeline.learn {
                learn.forget_node(g);
            }
            self.pipeline.filter.forget_node(g);
            self.pipeline.act.clear_node(g);
            if let Some(rec) = &mut self.recorder {
                rec.note_forget(g, ForgetKind::Full);
            }
            if self.resilience.is_none() {
                self.nlb.set_health(g, false);
                self.nlb.report_load(g, 0);
            }
        }
        for (src, req, node) in lost_reqs {
            self.attempt_failed(now, src, req, node);
        }
    }

    /// The breaker opened: every in-flight request is lost and nothing
    /// is served until the end of the window.
    fn begin_outage(&mut self, now: SimTime) {
        // Retries waiting out their backoff have nowhere to land — the
        // whole facility is dark. They become final drops.
        let mut orphans = Vec::new();
        if let Some(r) = self.resilience.as_mut() {
            while let Some(e) = r.pending.pop() {
                orphans.push(e);
            }
        }
        for e in orphans {
            self.record_outcome(e.req.is_attack, RequestOutcome::Dropped);
            self.sources
                .feedback(now, e.src, SourceEvent::Rejected(e.req.source));
        }
        {
            let Self { shards, nodes, .. } = self;
            for sh in shards.iter_mut() {
                let range = sh.start()..sh.start() + sh.len();
                sh.blackout(&mut nodes[range], now);
            }
        }
        if let Some(learn) = &mut self.pipeline.learn {
            for i in 0..self.config.servers {
                learn.forget_node(i);
            }
            if let Some(rec) = &mut self.recorder {
                for i in 0..self.config.servers {
                    rec.note_forget(i, ForgetKind::Learn);
                }
            }
        }
        self.battery.stop(now);
        self.flows = BatteryFlows::default();
        self.pipeline.account.sync_power_total(now, 0.0, &self.flows);
    }

    /// Phase C: the slot boundary at `now` — physics, then the staged
    /// control plane (Sense → Filter → Learn → Decide → Act → Account),
    /// exactly the stage code the event-driven engine runs.
    fn boundary(&mut self, now: SimTime) {
        self.events += 1;
        self.drain_shard_outboxes(now);
        // Per-pool breaker success signal: any completion from a pool
        // this slot proves it is serving again. With a power topology
        // the pools are racks, so per-node completion flags are folded
        // in global node order (`on_success` is idempotent within a
        // slot) — the signal is shard-layout-invariant. Without one the
        // pools follow the shard partition, as before.
        {
            let Self { shards, resilience, breaker_pool, pipeline, .. } = self;
            let rack_pools = pipeline.topology.is_some();
            for (s, sh) in shards.iter_mut().enumerate() {
                if rack_pools {
                    let at = sh.start;
                    for (j, done) in sh.completed.iter_mut().enumerate() {
                        if std::mem::take(done) {
                            if let Some(r) = resilience.as_mut() {
                                if r.policy.breaker_enabled() {
                                    r.breakers.on_success(breaker_pool[at + j]);
                                }
                            }
                        }
                    }
                } else if sh.slot_completions > 0 {
                    if let Some(r) = resilience.as_mut() {
                        if r.policy.breaker_enabled() {
                            r.breakers.on_success(s);
                        }
                    }
                }
                sh.slot_completions = 0;
            }
        }
        self.integrate_battery(now);
        let total = self.aggregate_power_w();
        {
            let Self { pipeline, flows, .. } = self;
            pipeline.account.sync_power_total(now, total, flows);
        }
        if self.fault.is_some() {
            self.process_reboots(now);
            self.process_crashes(now);
            let total = self.aggregate_power_w();
            let Self { pipeline, flows, .. } = self;
            pipeline.account.sync_power_total(now, total, flows);
        }
        if self.pipeline.account.thermals.is_some() {
            self.thermal_boundary(now);
            let total = self.aggregate_power_w();
            let Self { pipeline, flows, .. } = self;
            pipeline.account.sync_power_total(now, total, flows);
        }
        if self.pipeline.topology.is_some() {
            self.topology_boundary(now);
            let total = self.aggregate_power_w();
            let Self { pipeline, flows, .. } = self;
            pipeline.account.sync_power_total(now, total, flows);
        }
        let n_nodes = self.nodes.len();
        if self.pipeline.account.breaker_tripped(now, &self.flows, n_nodes) {
            self.begin_outage(now);
        }
        if self.pipeline.account.outage().is_some() {
            let soc = self.battery.soc();
            self.pipeline.account.record_outage_slot(now, soc);
            return;
        }

        // Sense → Filter → Learn → Decide → Act. Staged events are
        // translated into shard queues; power and V/F cannot change
        // before the commands settle, so the pre-enact aggregate stands.
        let mut sched: Scheduler<Ev> = Scheduler::detached(now);
        {
            let Self {
                pipeline,
                nodes,
                node_dead,
                nlb,
                battery,
                flows,
                config,
                fault,
                shard_watchdog,
                owner_shard,
                recorder,
                ..
            } = self;
            let true_power_w = pipeline.account.cluster_power_w();
            let frame = pipeline.sense.run(
                now,
                nodes,
                node_dead,
                fault.as_mut().map(|f| &mut f.plan),
                true_power_w,
            );
            let per_node_nameplate = config.aggregate_nameplate_w() / config.servers as f64;
            let view = pipeline.filter.run(now, &frame, per_node_nameplate);
            if let Some(learn) = pipeline.learn.as_mut() {
                learn.run(nodes, node_dead, &frame, nlb);
            }
            // Shard-coverage watchdog: a whole shard going silent is a
            // rack-scale telemetry blackout the per-reading staleness
            // filter cannot see as such; track it per shard. Dead
            // nodes are excluded from both counts — they report a
            // synthetic zero, and counting that as coverage would make
            // engagement depend on where a crash landed instead of on
            // sensor health (and thus on the shard layout).
            if let (Some(sw), Some(readings)) = (shard_watchdog.as_mut(), frame.readings.as_ref())
            {
                plane::observe_shard_coverage(
                    sw,
                    now,
                    config.shards,
                    owner_shard,
                    node_dead,
                    readings,
                );
            }
            // Pre-sweep commanded states: what the read-back verifier is
            // about to check against, captured for trace replay.
            let readback = match (&recorder, &pipeline.act.verify) {
                (Some(_), Some(_)) => {
                    Some(nodes.iter().map(|n| n.target_pstate().0).collect::<Vec<u8>>())
                }
                _ => None,
            };
            if let Some(f) = fault.as_mut() {
                pipeline.act.sweep(now, nodes, node_dead, f, &mut sched);
            }
            let supply_w = pipeline.filter.monitor.budget().supply_w;
            let mut actions = std::mem::take(&mut pipeline.actions);
            pipeline.decide.run(
                now, &view, supply_w, config, nodes, node_dead, battery, flows, &mut actions,
            );
            // Conservative per-shard fallback: while a shard is blacked
            // out, the controller cannot see its draw, so it pins that
            // shard's alive nodes at the safe P-state (a per-shard
            // nameplate-derived cap) and leaves the scheme's plan for
            // every other shard untouched. The global watchdog already
            // caps everything when engaged, so the rewrite only runs
            // under a partial blackout.
            if let Some(sw) = shard_watchdog.as_ref() {
                if sw.any_engaged() && !view.watchdog_engaged {
                    if let Some(safe) = pipeline.decide.safe_pstate {
                        plane::apply_shard_guard(
                            &mut actions,
                            sw,
                            owner_shard,
                            node_dead,
                            |g| nodes[g].target_pstate(),
                            safe,
                        );
                    }
                }
            }
            // Rack guard: racks over their hierarchical allocation get
            // the scheme's plan overridden with a safe pin — localized
            // defense where the global watchdog would cap everything.
            if let Some(topo) = pipeline.topology.as_mut() {
                topo.apply_rack_guard(&mut actions, node_dead, |g| nodes[g].target_pstate());
            }
            if let Some(rec) = recorder.as_mut() {
                rec.capture_slot(
                    now,
                    &frame,
                    nodes,
                    node_dead,
                    readback,
                    battery,
                    flows,
                    &view,
                    &pipeline.act.retry_scratch,
                    &actions,
                    pipeline.account.load_joules(now),
                    pipeline.learn.as_ref(),
                    pipeline.topology.as_ref().map(|t| t.rack_power_w.clone()).unwrap_or_default(),
                );
            }
            pipeline.act.enact(
                now,
                &mut actions,
                ActCtx { nodes, node_dead, battery, flows, fault: fault.as_mut() },
                &mut sched,
            );
            pipeline.actions = actions;
            pipeline.sense.recycle(frame);
        }
        for (time, ev) in sched.drain_staged() {
            match ev {
                Ev::DvfsSettle { node } => {
                    let s = self.owner_shard[node];
                    let local = node - self.shards[s].start();
                    self.shards[s].push_settle(time, local);
                }
                // The battery clamps at its bounds inside `advance`;
                // slot-granular metering needs no mid-slot event.
                Ev::BatteryBound => {}
                other => unreachable!("boundary stages staged unexpected event {other:?}"),
            }
        }

        // Slot-batched NLB load refresh + V/F stats, both as flat scans
        // over the data-oriented columns.
        {
            let Self { shards, nlb, .. } = self;
            for sh in shards.iter() {
                nlb.sync_loads(sh.start(), sh.inflight_col());
            }
        }
        let mut vf_sum = 0.0;
        let mut vf_max = 0u8;
        for sh in &self.shards {
            for &v in sh.vf_col() {
                vf_sum += v as f64;
                vf_max = vf_max.max(v);
            }
        }
        let mean_vf = vf_sum / self.nodes.len() as f64;
        let soc = self.battery.soc();
        self.pipeline.account.record_slot_stats(now, mean_vf, vf_max, soc);
    }

    fn finalize(&mut self, exp: &ExperimentConfig, horizon: SimTime) -> SimReport {
        // Close every shard's integration interval and merge metrics in
        // shard-index order (counter additions are layout-independent).
        let mut shard_events = 0u64;
        let mut recovered = 0u64;
        for sh in &mut self.shards {
            sh.integrate_all(horizon);
            shard_events += sh.events;
            recovered += sh.recovered;
            self.normal_hist.merge(&sh.normal_hist);
            self.attack_hist.merge(&sh.attack_hist);
            self.normal_sla.merge(&sh.normal_sla);
            self.attack_sla.merge(&sh.attack_sla);
        }
        // Float folds walk nodes in *global* order with one accumulator,
        // so the sums (and the Chan-merged latency summaries) come out
        // byte-identical at any shard count.
        let mut load_j = 0.0;
        let mut normal_sum = OnlineSummary::new();
        let mut attack_sum = OnlineSummary::new();
        for sh in &self.shards {
            for &j in &sh.joules {
                load_j += j;
            }
            for s in &sh.normal_sum {
                normal_sum.merge(s);
            }
            for s in &sh.attack_sum {
                attack_sum.merge(s);
            }
        }
        // With a topology, the cluster total is *defined* as the fold of
        // the per-rack sub-folds (each contiguous in global node order),
        // so per-rack energies sum to the reported total exactly — the
        // conservation identity the topology tests pin down. Rack
        // membership is shard-layout-independent, so this fold is too.
        let (topology, load_j) = match self.pipeline.topology.take() {
            Some(t) => {
                let mut rack_energy = vec![0.0; t.topo.racks()];
                let mut g = 0usize;
                for sh in &self.shards {
                    for &j in &sh.joules {
                        rack_energy[t.topo.rack_of(g)] += j;
                        g += 1;
                    }
                }
                let total: f64 = rack_energy.iter().sum();
                (Some(t.into_report(rack_energy)), total)
            }
            None => (None, load_j),
        };
        self.normal_hist.set_summary(normal_sum);
        self.attack_hist.set_summary(attack_sum);
        // Censor in-flight requests: count those past their client
        // timeout as timed out.
        {
            let Self { nodes, attack_sla, normal_sla, .. } = self;
            for node in nodes.iter_mut() {
                node.drain_with(horizon, |req| {
                    if let Some(sojourn) = horizon.checked_since(req.arrival) {
                        if req.abandoned(sojourn) {
                            let sla =
                                if req.is_attack { &mut *attack_sla } else { &mut *normal_sla };
                            sla.record(RequestOutcome::TimedOut);
                        }
                    }
                });
            }
        }
        let account = &self.pipeline.account;
        let monitor = &self.pipeline.filter.monitor;
        let firewall_blocked = self.admission.firewall_blocked();
        let admission_denied = self.admission.stage_denied();
        let queue_rejected: u64 = self.nodes.iter().map(|n| n.rejected()).sum::<u64>()
            + self.fault.as_ref().map_or(0, |f| f.retired_rejected);
        let drops = firewall_blocked + admission_denied + self.scheme_denied_drops + queue_rejected;
        let duration_s = horizon.as_secs_f64();
        let supply_w = monitor.budget().supply_w;

        let thin = |ts: &TimeSeries| -> Vec<(f64, f64)> {
            ts.thin(600)
                .into_iter()
                .map(|(t, v)| (t.as_secs_f64(), v))
                .collect()
        };
        // Energy identities (same as the event-driven meter, computed
        // from the shards' exact load integral and the battery's own
        // exact flow counters): utility = load − discharge + charge.
        let battery_j = self.battery.total_discharged_j().min(load_j);
        let charge_j = self.battery.total_charge_drawn_j();
        let utility_j = (load_j - battery_j).max(0.0) + charge_j;

        SimReport {
            label: exp.label.clone(),
            scheme: self.pipeline.decide.scheme.name().to_string(),
            budget: self.config.budget.name().to_string(),
            duration_s,
            seed: exp.seed,
            normal_latency: LatencySummary::from_histogram(&self.normal_hist),
            attack_latency: LatencySummary::from_histogram(&self.attack_hist),
            normal_sla: self.normal_sla,
            attack_sla: self.attack_sla,
            power: PowerReport {
                supply_w,
                peak_w: account.power_series.max_value().unwrap_or(0.0),
                avg_w: load_j / duration_s.max(1e-9),
                violations: monitor.violations(),
                outage_at_s: account.outage().map(|t| t.as_secs_f64()),
                violation_fraction: if monitor.lifetime().count() == 0 {
                    0.0
                } else {
                    monitor.violations() as f64 / monitor.lifetime().count() as f64
                },
                series: thin(&account.power_series),
            },
            battery: BatteryReport {
                capacity_j: self.battery.capacity_j(),
                min_soc: account.battery_series.min_value().unwrap_or(1.0),
                final_soc: self.battery.soc(),
                episodes: self.battery.discharge_episodes(),
                discharged_j: self.battery.total_discharged_j(),
                charge_drawn_j: self.battery.total_charge_drawn_j(),
                series: thin(&account.battery_series),
            },
            energy: EnergyReport {
                utility_j,
                battery_j,
                load_j,
                normalized_utility: utility_j / (supply_w * duration_s).max(1e-9),
            },
            vf: VfReport {
                mean_reduction_steps: account.vf_summary.mean(),
                max_reduction_steps: account.max_vf,
                transitions: self.nodes.iter().map(|n| n.dvfs_transitions()).sum::<u64>()
                    + self.fault.as_ref().map_or(0, |f| f.retired_transitions),
            },
            thermal: match &account.thermals {
                None => ThermalReport::default(),
                Some(ths) => ThermalReport {
                    peak_temp_c: ths.iter().map(|t| t.peak_c()).fold(0.0, f64::max),
                    prochot_events: ths.iter().map(|t| t.prochot_events()).sum(),
                    tripped_nodes: self.node_dead.iter().filter(|&&d| d).count() as u64,
                },
            },
            traffic: TrafficReport {
                offered: self.offered,
                firewall_blocked,
                scheme_denied: self.pipeline.decide.scheme.denied(),
                queue_rejected,
                to_suspect_pool: self.nlb.to_suspect_pool(),
                drop_rate: if self.offered == 0 {
                    0.0
                } else {
                    drops as f64 / self.offered as f64
                },
            },
            profiler: self.pipeline.learn.as_ref().map(|l| l.report()),
            faults: self.fault.as_ref().map(|f| {
                let counts = f.plan.counts();
                let watchdog = &self
                    .pipeline
                    .filter
                    .hardening
                    .as_ref()
                    .expect("fault layer implies hardening")
                    .watchdog;
                let verify = self
                    .pipeline
                    .act
                    .verify
                    .as_ref()
                    .expect("fault layer implies read-back verification");
                let sw = self
                    .shard_watchdog
                    .as_ref()
                    .expect("fault layer implies the shard-coverage watchdog");
                FaultReport {
                    sensor_dropouts: counts.sensor_dropouts,
                    sensor_stuck: counts.sensor_stuck,
                    sensor_stale: counts.sensor_stale,
                    blackout_samples: counts.blackout_samples,
                    actuator_lost: counts.actuator_lost,
                    actuator_delayed: counts.actuator_delayed,
                    actuator_stuck: counts.actuator_stuck,
                    crashes: counts.crashes,
                    reboots: counts.reboots,
                    lost_to_crash: f.lost_to_crash,
                    charger_blocked_slots: f.charger_blocked_slots,
                    actuator_retries: verify.retries(),
                    actuator_giveups: verify.giveups(),
                    degraded_slots: watchdog.degraded_slots(),
                    degraded_episodes: watchdog.episodes(),
                    time_degraded_s: watchdog.time_degraded(horizon).as_secs_f64(),
                    mttr_s: watchdog.mttr_s().unwrap_or(0.0),
                    shard_degraded_slots: sw.degraded_slots(),
                    shard_degraded_episodes: sw.episodes(),
                }
            }),
            retry: self.resilience.as_ref().map(|r| RetryReport {
                attempts: r.attempts,
                recovered,
                exhausted: r.exhausted,
                breaker_trips: r.breakers.trips(),
                rerouted: r.rerouted,
            }),
            admission: self
                .config
                .admission
                .is_some()
                .then(|| self.admission.report()),
            topology,
            events: self.events + shard_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchemeKind;
    use crate::testutil;
    use powercap::budget::BudgetLevel;
    use simcore::SimDuration;

    fn exp(shards: usize, scheme: SchemeKind, secs: u64) -> ExperimentConfig {
        let mut cluster = ClusterConfig::scaled(BudgetLevel::Medium);
        cluster.shards = shards;
        ExperimentConfig {
            cluster,
            scheme,
            duration: SimDuration::from_secs(secs),
            seed: 2019,
            label: "shard-test".to_string(),
        }
    }

    fn sources(e: &ExperimentConfig) -> Vec<Box<dyn TrafficSource>> {
        let horizon = SimTime::ZERO + e.duration;
        vec![
            testutil::normal_source(e.seed, horizon, 120.0),
            testutil::attack_source(e.seed ^ 0xABCD, 400.0, SimTime::from_secs(5), horizon),
        ]
    }

    fn run(shards: usize, scheme: SchemeKind, secs: u64) -> SimReport {
        let e = exp(shards, scheme, secs);
        ShardedClusterSim::run(&e, sources(&e))
    }

    #[test]
    fn shard_partition_is_near_even_and_contiguous() {
        let e = exp(3, SchemeKind::AntiDope, 30);
        let sim = ShardedClusterSim::new(&e, sources(&e));
        let sizes: Vec<usize> = sim.shards().iter().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![6, 5, 5]);
        let starts: Vec<usize> = sim.shards().iter().map(|s| s.start()).collect();
        assert_eq!(starts, vec![0, 6, 11]);
        // Every shard owns a distinct RNG stream space.
        let a = sim.shards()[0].rng_factory().master_seed();
        let b = sim.shards()[1].rng_factory().master_seed();
        assert_ne!(a, b);
    }

    #[test]
    fn same_seed_same_layout_is_deterministic() {
        let a = run(4, SchemeKind::AntiDope, 30);
        let b = run(4, SchemeKind::AntiDope, 30);
        assert_eq!(format!("{a:#?}"), format!("{b:#?}"));
    }

    #[test]
    fn reports_are_byte_identical_across_shard_counts() {
        let base = serde_json::to_string(&run(1, SchemeKind::AntiDope, 30)).unwrap();
        for shards in [2, 4, 8] {
            let other = serde_json::to_string(&run(shards, SchemeKind::AntiDope, 30)).unwrap();
            assert_eq!(base, other, "report drifted at {shards} shards");
        }
    }

    fn chaotic_exp(shards: usize, secs: u64) -> ExperimentConfig {
        use simcore::faults::{CrashEvent, FaultConfig};
        let mut e = exp(shards, SchemeKind::AntiDope, secs);
        e.cluster.faults = Some(FaultConfig {
            sensor_dropout_p: 0.08,
            sensor_noise_w: 2.5,
            sensor_stuck_p: 0.01,
            sensor_stuck_for: SimDuration::from_secs(3),
            sensor_stale_p: 0.05,
            blackouts: vec![(SimTime::from_secs(8), SimTime::from_secs(11))],
            actuator_loss_p: 0.05,
            actuator_delay_p: 0.05,
            actuator_delay: SimDuration::from_millis(400),
            actuator_stuck_p: 0.01,
            actuator_stuck_for: SimDuration::from_secs(2),
            crashes: vec![CrashEvent {
                node: 3,
                at: SimTime::from_secs(6),
            }],
            crash_p: 0.0005,
            reboot_after: SimDuration::from_secs(5),
            battery_fade: 0.1,
            charger_fails_at: None,
        });
        e
    }

    #[test]
    fn fault_reports_are_byte_identical_across_shard_counts() {
        let e = chaotic_exp(1, 30);
        let report = ShardedClusterSim::run(&e, sources(&e));
        let f = report.faults.as_ref().expect("faults configured");
        assert!(f.crashes >= 1 && f.reboots >= 1, "chaos fired: {f:?}");
        assert!(f.sensor_dropouts > 0, "sensor chaos fired: {f:?}");
        let base = serde_json::to_string(&report).unwrap();
        for shards in [2, 4, 8] {
            let e = chaotic_exp(shards, 30);
            let other =
                serde_json::to_string(&ShardedClusterSim::run(&e, sources(&e))).unwrap();
            assert_eq!(base, other, "fault report drifted at {shards} shards");
        }
    }

    #[test]
    fn retries_recover_requests_lost_to_crashes() {
        let mut e = chaotic_exp(4, 30);
        e.cluster.retry = Some(RetryConfig::default());
        let report = ShardedClusterSim::run(&e, sources(&e));
        let retry = report.retry.as_ref().expect("retry policy configured");
        let faults = report.faults.as_ref().expect("faults configured");
        assert!(faults.crashes > 0, "the pinned crash fired");
        assert!(
            retry.attempts > 0,
            "dead-node dispatches were retried: {retry:?}"
        );
        // Conservation: every retry attempt either completed later,
        // is still pending at the horizon, or exhausted its budget —
        // none may be double-counted in the SLA trackers.
        let finished = report.normal_sla.total() + report.attack_sla.total();
        assert!(
            finished <= report.traffic.offered,
            "more outcomes ({finished}) than offered ({})",
            report.traffic.offered
        );
        // Determinism with the resilience dataplane in the loop.
        let again = ShardedClusterSim::run(&e, sources(&e));
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
    }
}
