//! PDF — Power-Driven Forwarding (Section 5.1/5.2, Figure 14).
//!
//! Two pieces:
//!
//! 1. **Offline profiling** ([`build_suspect_list`]): measure the power
//!    intensity of every service URL (we profile analytically against the
//!    server power model — the simulation equivalent of the paper's
//!    bench runs) and mark URLs above the threshold *suspect*.
//! 2. **Pool partition + forwarding policy** ([`pdf_policy`]): reserve
//!    the last `suspect_pool_size` servers as the isolated suspect pool
//!    and program the NLB with URL-split forwarding.

use netsim::error::ConfigError;
use netsim::nlb::ForwardingPolicy;
use netsim::request::UrlId;
use netsim::suspect::{FlowClass, SuspectList};
use simcore::FxHashMap;
use workloads::floods::{CONN_TABLE_URL, DNS_URL, KERNEL_PATH_URL};
use workloads::service::ServiceKind;

/// Default suspicion threshold on profiled power intensity.
///
/// Chosen between Word-Count (0.78) and Text-Cont (0.35): the three
/// kernels the paper identifies as power weapons (Colla-Filt, K-means,
/// Word-Count) are suspect; light text traffic is not.
pub const DEFAULT_SUSPECT_THRESHOLD: f64 = 0.70;

/// Profile every known URL and build the suspect list.
///
/// Unknown URLs default to *innocent* — the paper's design accepts that
/// a legitimate heavy request may be classed suspect (it still gets
/// served, on the suspect pool) but never blocks unknown traffic.
pub fn build_suspect_list(threshold: f64) -> Result<SuspectList, ConfigError> {
    build_suspect_list_with(threshold, &[])
}

/// [`build_suspect_list`] plus caller-supplied oracle profiles — used by
/// ablations that grant the offline profiler knowledge it could not have
/// in practice (e.g. the attack's rotation URL range).
pub fn build_suspect_list_with(
    threshold: f64,
    extra: &[(UrlId, f64)],
) -> Result<SuspectList, ConfigError> {
    let mut list = SuspectList::new(threshold, FlowClass::Innocent)?;
    for kind in ServiceKind::ALL {
        let p = kind.profile();
        list.set_profile(kind.url(), p.intensity)?;
    }
    // Pseudo-URLs from the flood taxonomy: profiled like any other
    // endpoint so network-layer junk lands on the innocent pool (it is
    // power-cheap) and resolver abuse is treated by its measured cost.
    list.set_profile(KERNEL_PATH_URL, 0.25)?;
    list.set_profile(DNS_URL, 0.70)?;
    list.set_profile(CONN_TABLE_URL, 0.45)?;
    for &(url, intensity) in extra {
        list.set_profile(url, intensity)?;
    }
    Ok(list)
}

/// Partition `servers` into `(innocent_pool, suspect_pool)` with the last
/// `suspect_pool_size` indices isolated.
pub fn partition_pools(servers: usize, suspect_pool_size: usize) -> (Vec<usize>, Vec<usize>) {
    assert!(suspect_pool_size >= 1 && suspect_pool_size < servers);
    let innocent: Vec<usize> = (0..servers - suspect_pool_size).collect();
    let suspect: Vec<usize> = (servers - suspect_pool_size..servers).collect();
    (innocent, suspect)
}

/// The complete PDF forwarding policy for a cluster.
pub fn pdf_policy(
    servers: usize,
    suspect_pool_size: usize,
    threshold: f64,
) -> Result<ForwardingPolicy, ConfigError> {
    pdf_policy_with(servers, suspect_pool_size, threshold, &[])
}

/// [`pdf_policy`] with extra oracle profiles (see
/// [`build_suspect_list_with`]).
pub fn pdf_policy_with(
    servers: usize,
    suspect_pool_size: usize,
    threshold: f64,
    extra: &[(UrlId, f64)],
) -> Result<ForwardingPolicy, ConfigError> {
    let (innocent_pool, suspect_pool) = partition_pools(servers, suspect_pool_size);
    Ok(ForwardingPolicy::UrlSplit {
        list: build_suspect_list_with(threshold, extra)?,
        suspect_pool,
        innocent_pool,
    })
}

/// The *adaptive* PDF forwarding policy: same pool partition, but the
/// class map starts empty and is hot-swapped by the online profiler as it
/// learns. Until the first publication every URL takes the default class
/// (innocent — the paper's design never blocks unknown traffic).
pub fn adaptive_pdf_policy(servers: usize, suspect_pool_size: usize) -> ForwardingPolicy {
    let (innocent_pool, suspect_pool) = partition_pools(servers, suspect_pool_size);
    ForwardingPolicy::AdaptiveSplit {
        classes: FxHashMap::default(),
        default_class: FlowClass::Innocent,
        suspect_pool,
        innocent_pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::request::UrlId;

    #[test]
    fn paper_kernels_classified() {
        let list = build_suspect_list(DEFAULT_SUSPECT_THRESHOLD).unwrap();
        // The three attack-worthy kernels are suspect…
        assert!(list.is_suspect(ServiceKind::CollaFilt.url()));
        assert!(list.is_suspect(ServiceKind::KMeans.url()));
        assert!(list.is_suspect(ServiceKind::WordCount.url()));
        // …light traffic and kernel-path junk are not.
        assert!(!list.is_suspect(ServiceKind::TextCont.url()));
        assert!(!list.is_suspect(KERNEL_PATH_URL));
        assert!(!list.is_suspect(UrlId(999))); // unknown → innocent
    }

    #[test]
    fn threshold_is_a_knob() {
        // A paranoid threshold sweeps in everything profiled above it.
        let strict = build_suspect_list(0.3).unwrap();
        assert!(strict.is_suspect(ServiceKind::TextCont.url()));
        let lax = build_suspect_list(0.95).unwrap();
        assert!(lax.is_suspect(ServiceKind::CollaFilt.url()));
        assert!(!lax.is_suspect(ServiceKind::KMeans.url()));
    }

    #[test]
    fn pools_partition_cleanly() {
        let (innocent, suspect) = partition_pools(4, 1);
        assert_eq!(innocent, vec![0, 1, 2]);
        assert_eq!(suspect, vec![3]);
        let (innocent, suspect) = partition_pools(16, 2);
        assert_eq!(innocent.len(), 14);
        assert_eq!(suspect, vec![14, 15]);
    }

    #[test]
    fn policy_is_wellformed() {
        let policy = pdf_policy(4, 1, DEFAULT_SUSPECT_THRESHOLD).unwrap();
        let ForwardingPolicy::UrlSplit {
            list,
            suspect_pool,
            innocent_pool,
        } = policy
        else {
            panic!("expected UrlSplit");
        };
        assert_eq!(suspect_pool, vec![3]);
        assert_eq!(innocent_pool, vec![0, 1, 2]);
        assert!(list.profiled() >= 7);
    }

    #[test]
    #[should_panic]
    fn partition_rejects_no_innocents() {
        partition_pools(4, 4);
    }

    #[test]
    fn bad_threshold_is_a_typed_error() {
        assert!(matches!(
            build_suspect_list(1.5),
            Err(ConfigError::Threshold { .. })
        ));
        assert!(matches!(
            pdf_policy(4, 1, -0.1),
            Err(ConfigError::Threshold { .. })
        ));
    }

    #[test]
    fn oracle_extras_extend_the_list() {
        let list = build_suspect_list_with(DEFAULT_SUSPECT_THRESHOLD, &[(UrlId(900), 0.97)])
            .unwrap();
        assert!(list.is_suspect(UrlId(900)));
        // Out-of-range extras are rejected like any profile.
        assert!(build_suspect_list_with(0.7, &[(UrlId(901), 1.5)]).is_err());
    }

    #[test]
    fn adaptive_policy_starts_unclassified() {
        let policy = adaptive_pdf_policy(4, 1);
        let ForwardingPolicy::AdaptiveSplit {
            classes,
            default_class,
            suspect_pool,
            innocent_pool,
        } = policy
        else {
            panic!("expected AdaptiveSplit");
        };
        assert!(classes.is_empty());
        assert_eq!(default_class, FlowClass::Innocent);
        assert_eq!(suspect_pool, vec![3]);
        assert_eq!(innocent_pool, vec![0, 1, 2]);
    }
}
