//! Hierarchical power topology: node → rack → PDU → row → facility.
//!
//! The paper evaluates DOPE on a flat 4-node rack, but real
//! oversubscription is *nested*: Azure-style fleets oversubscribe at
//! every level of the rack/PDU/row/facility hierarchy (Kumbhare et al.,
//! PAPERS.md), which is exactly where a flood attacker hides —
//! concentrating power onto one rack trips a local breaker while the
//! facility-level aggregate still shows headroom.
//!
//! This module provides:
//!
//! * [`TopologyConfig`] — the validated knobs: level widths and the
//!   per-level oversubscription factors that inflate child budgets past
//!   their parent's.
//! * [`PowerTopology`] — the static tree. Every level partitions its
//!   parent **contiguously and near-evenly** (the same arithmetic as
//!   [`crate::control::plane::shard_layout`]), so per-rack aggregates
//!   computed in global node order are independent of the dataplane
//!   shard layout — the property the byte-identity contract rests on.
//!   Each level carries its own oversubscribed budget and a
//!   sustained-overload breaker ([`powercap::BreakerState`] semantics,
//!   identical to the cluster feed's).
//! * [`HierarchicalBudget`] — the per-slot allocator: parent levels
//!   split their budget down to children proportional to sensed demand,
//!   capped at each child's own rating, with the conservation invariant
//!   that the children of any parent never receive more than the parent
//!   was allocated.
//! * [`TopologyAccounts`] — per-level breach/trip/peak accounting that
//!   finalizes into [`crate::results::TopologyReport`].
//!
//! The degenerate single-rack topology (`racks = 1`, the default) is
//! arithmetically identical to the flat cluster sum, which is how the
//! legacy engine keeps its goldens byte-identical.

use crate::config::ConfigError;
use crate::scheme::Action;
use powercap::capper::{ServerLoad, UniformCapper};
use powercap::pstate::PState;
use powercap::server_power::ServerPowerModel;
use powercap::BreakerState;
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

/// Validated description of the power-delivery tree.
///
/// Level widths nest: `rows ≤ pdus ≤ racks ≤ servers`. Each
/// oversubscription factor is the ratio between the *sum of child
/// budgets* and the parent budget at that boundary (1.0 = fully
/// provisioned, >1.0 = oversubscribed — a child may individually draw
/// more than its fair share of the parent feed, betting that siblings
/// do not peak simultaneously; a concentrating attacker makes exactly
/// that bet fail).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Racks (leaf feeds over contiguous node ranges).
    pub racks: usize,
    /// PDUs (feeds over contiguous rack ranges).
    pub pdus: usize,
    /// Rows (feeds over contiguous PDU ranges).
    pub rows: usize,
    /// Σ rack budgets / PDU budget.
    pub rack_oversub: f64,
    /// Σ PDU budgets / row budget.
    pub pdu_oversub: f64,
    /// Σ row budgets / facility budget.
    pub row_oversub: f64,
    /// Breaker rating at every level as a multiple of that level's
    /// budget (mirrors [`crate::config::ClusterConfig::breaker_rating_factor`]).
    pub breaker_rating_factor: f64,
    /// Sustained-overload time before a level breaker opens.
    pub breaker_trip_delay: SimDuration,
    /// Run the hierarchical defense: when a rack's sensed power exceeds
    /// its slot allocation, the control plane pins that rack's nodes to
    /// the safe P-state (suspect nodes first). `false` keeps the
    /// hierarchy observe-only — budgets and breakers are modeled but no
    /// rack-local actuation happens, which is the "breach detection
    /// without defense" ablation arm.
    pub defend: bool,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            racks: 1,
            pdus: 1,
            rows: 1,
            rack_oversub: 1.2,
            pdu_oversub: 1.15,
            row_oversub: 1.1,
            breaker_rating_factor: 1.10,
            breaker_trip_delay: SimDuration::from_secs(30),
            defend: true,
        }
    }
}

impl TopologyConfig {
    /// A topology with `racks` racks and `pdus` PDUs (one row), default
    /// oversubscription and breaker knobs.
    pub fn with_racks(racks: usize, pdus: usize) -> Self {
        TopologyConfig {
            racks,
            pdus,
            ..TopologyConfig::default()
        }
    }

    /// Validate level nesting and factor ranges against the cluster's
    /// server count.
    pub fn validate(&self, servers: usize) -> Result<(), ConfigError> {
        let level = |what: &'static str, count: usize, max: usize| {
            if count < 1 || count > max {
                Err(ConfigError::Topology {
                    what,
                    count,
                    max,
                })
            } else {
                Ok(())
            }
        };
        level("racks", self.racks, servers)?;
        level("pdus", self.pdus, self.racks)?;
        level("rows", self.rows, self.pdus)?;
        for (what, v) in [
            ("rack_oversub", self.rack_oversub),
            ("pdu_oversub", self.pdu_oversub),
            ("row_oversub", self.row_oversub),
            ("breaker_rating_factor", self.breaker_rating_factor),
        ] {
            if !v.is_finite() || v < 1.0 {
                return Err(ConfigError::ControlPlane { what, value: v });
            }
        }
        if self.breaker_trip_delay.is_zero() {
            return Err(ConfigError::ZeroDuration {
                what: "topology.breaker_trip_delay",
            });
        }
        Ok(())
    }
}

/// Near-even contiguous partition of `n` items into `k` groups (the
/// first `n % k` groups own one extra item) — the same arithmetic as
/// [`crate::control::plane::shard_layout`], returning `(start, len)`
/// per group.
fn near_even(n: usize, k: usize) -> Vec<(usize, usize)> {
    let base = n / k;
    let extra = n % k;
    let mut ranges = Vec::with_capacity(k);
    let mut at = 0usize;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        ranges.push((at, len));
        at += len;
    }
    ranges
}

/// One feed's breaker: sustained overload past the trip delay opens it;
/// short excursions reset; an open breaker is latched.
#[derive(Debug, Clone)]
struct LevelBreaker {
    rating_w: f64,
    trip_delay: SimDuration,
    state: BreakerState,
}

impl LevelBreaker {
    fn new(rating_w: f64, trip_delay: SimDuration) -> Self {
        LevelBreaker {
            rating_w,
            trip_delay,
            state: BreakerState::Closed,
        }
    }

    /// Evaluate against this slot's load; returns `true` on a fresh
    /// Overloaded → Tripped transition.
    fn observe(&mut self, now: SimTime, load_w: f64) -> bool {
        let mut fresh_trip = false;
        self.state = match self.state {
            BreakerState::Tripped { at } => BreakerState::Tripped { at },
            BreakerState::Closed if load_w > self.rating_w => BreakerState::Overloaded {
                trips_at: now + self.trip_delay,
            },
            BreakerState::Closed => BreakerState::Closed,
            BreakerState::Overloaded { .. } if load_w <= self.rating_w => BreakerState::Closed,
            BreakerState::Overloaded { trips_at } if now >= trips_at => {
                fresh_trip = true;
                BreakerState::Tripped { at: now }
            }
            BreakerState::Overloaded { trips_at } => BreakerState::Overloaded { trips_at },
        };
        fresh_trip
    }

    fn tripped(&self) -> bool {
        matches!(self.state, BreakerState::Tripped { .. })
    }
}

/// The static power-delivery tree with per-level budgets and breakers.
#[derive(Debug, Clone)]
pub struct PowerTopology {
    servers: usize,
    /// Rack `r` owns nodes `rack_ranges[r].0 .. .0 + .1` (contiguous in
    /// global node order).
    rack_ranges: Vec<(usize, usize)>,
    /// Global node index → owning rack.
    owner_rack: Vec<usize>,
    /// PDU `p` owns racks `pdu_ranges[p]`.
    pdu_ranges: Vec<(usize, usize)>,
    /// Row `w` owns PDUs `row_ranges[w]`.
    row_ranges: Vec<(usize, usize)>,
    rack_budget_w: Vec<f64>,
    pdu_budget_w: Vec<f64>,
    row_budget_w: Vec<f64>,
    facility_budget_w: f64,
    rack_breakers: Vec<LevelBreaker>,
    pdu_breakers: Vec<LevelBreaker>,
    row_breakers: Vec<LevelBreaker>,
    facility_breaker: LevelBreaker,
}

/// What one slot's observation of the tree produced: per-level breach
/// masks (load above the level's *static* budget — the telemetry
/// signal) and any racks whose breaker freshly tripped this slot.
#[derive(Debug, Clone, Default)]
pub struct SlotVerdict {
    /// Racks over their budget this slot.
    pub rack_breach: Vec<bool>,
    /// PDUs over their budget this slot.
    pub pdu_breach: Vec<bool>,
    /// Rows over their budget this slot.
    pub row_breach: Vec<bool>,
    /// Facility feed over its budget this slot.
    pub facility_breach: bool,
    /// Racks whose breaker transitioned to `Tripped` this slot.
    pub newly_tripped_racks: Vec<usize>,
}

impl PowerTopology {
    /// Build the tree for `servers` nodes under `facility_budget_w`
    /// (the cluster's supplied budget). Each level's per-child budget is
    /// its parent's budget split proportional to attached nodes, then
    /// inflated by the level's oversubscription factor; breaker ratings
    /// sit `breaker_rating_factor` above each budget.
    pub fn build(servers: usize, facility_budget_w: f64, cfg: &TopologyConfig) -> Self {
        let rack_ranges = near_even(servers, cfg.racks);
        let pdu_ranges = near_even(cfg.racks, cfg.pdus);
        let row_ranges = near_even(cfg.pdus, cfg.rows);
        let mut owner_rack = vec![0usize; servers];
        for (r, &(start, len)) in rack_ranges.iter().enumerate() {
            for o in owner_rack.iter_mut().skip(start).take(len) {
                *o = r;
            }
        }
        // Nodes under each pdu/row, to split budgets proportionally.
        let rack_nodes: Vec<usize> = rack_ranges.iter().map(|&(_, len)| len).collect();
        let pdu_nodes: Vec<usize> = pdu_ranges
            .iter()
            .map(|&(s, l)| rack_nodes[s..s + l].iter().sum())
            .collect();
        let row_nodes: Vec<usize> = row_ranges
            .iter()
            .map(|&(s, l)| pdu_nodes[s..s + l].iter().sum())
            .collect();
        let split = |parent_w: f64, child_nodes: &[usize], parent_total: usize, oversub: f64| {
            child_nodes
                .iter()
                .map(|&n| parent_w * (n as f64 / parent_total as f64) * oversub)
                .collect::<Vec<f64>>()
        };
        let row_budget_w = split(facility_budget_w, &row_nodes, servers, cfg.row_oversub);
        let mut pdu_budget_w = Vec::with_capacity(cfg.pdus);
        for (w, &(s, l)) in row_ranges.iter().enumerate() {
            pdu_budget_w.extend(split(row_budget_w[w], &pdu_nodes[s..s + l], row_nodes[w], cfg.pdu_oversub));
        }
        let mut rack_budget_w = Vec::with_capacity(cfg.racks);
        for (p, &(s, l)) in pdu_ranges.iter().enumerate() {
            rack_budget_w.extend(split(pdu_budget_w[p], &rack_nodes[s..s + l], pdu_nodes[p], cfg.rack_oversub));
        }
        let breakers = |budgets: &[f64]| {
            budgets
                .iter()
                .map(|&b| LevelBreaker::new(b * cfg.breaker_rating_factor, cfg.breaker_trip_delay))
                .collect::<Vec<LevelBreaker>>()
        };
        PowerTopology {
            servers,
            rack_breakers: breakers(&rack_budget_w),
            pdu_breakers: breakers(&pdu_budget_w),
            row_breakers: breakers(&row_budget_w),
            facility_breaker: LevelBreaker::new(
                facility_budget_w * cfg.breaker_rating_factor,
                cfg.breaker_trip_delay,
            ),
            rack_ranges,
            owner_rack,
            pdu_ranges,
            row_ranges,
            rack_budget_w,
            pdu_budget_w,
            row_budget_w,
            facility_budget_w,
        }
    }

    /// Server count.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Rack count.
    pub fn racks(&self) -> usize {
        self.rack_ranges.len()
    }

    /// PDU count.
    pub fn pdus(&self) -> usize {
        self.pdu_ranges.len()
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.row_ranges.len()
    }

    /// Rack `r`'s contiguous node range as `(start, len)`.
    pub fn rack_range(&self, r: usize) -> (usize, usize) {
        self.rack_ranges[r]
    }

    /// Global node index → owning rack.
    pub fn rack_of(&self, node: usize) -> usize {
        self.owner_rack[node]
    }

    /// The node → rack map, rack-major contiguous.
    pub fn owner_rack(&self) -> &[usize] {
        &self.owner_rack
    }

    /// Rack `r`'s oversubscribed budget, watts.
    pub fn rack_budget_w(&self, r: usize) -> f64 {
        self.rack_budget_w[r]
    }

    /// PDU `p`'s oversubscribed budget, watts.
    pub fn pdu_budget_w(&self, p: usize) -> f64 {
        self.pdu_budget_w[p]
    }

    /// Row `w`'s oversubscribed budget, watts.
    pub fn row_budget_w(&self, w: usize) -> f64 {
        self.row_budget_w[w]
    }

    /// The facility feed budget, watts.
    pub fn facility_budget_w(&self) -> f64 {
        self.facility_budget_w
    }

    /// Rack `r`'s breaker state.
    pub fn rack_breaker(&self, r: usize) -> BreakerState {
        self.rack_breakers[r].state
    }

    /// True once rack `r`'s breaker has opened (latched).
    pub fn rack_tripped(&self, r: usize) -> bool {
        self.rack_breakers[r].tripped()
    }

    /// Aggregate per-node power into per-rack sums, in global node
    /// order. `node_power` must hold all `servers` entries; `rack_out`
    /// is resized to the rack count. Because rack ranges are contiguous
    /// in global node order, this fold is independent of any dataplane
    /// shard layout.
    pub fn rack_powers(&self, node_power: &[f64], rack_out: &mut Vec<f64>) {
        rack_out.clear();
        rack_out.extend(self.rack_ranges.iter().map(|&(start, len)| {
            let mut acc = 0.0;
            for &w in &node_power[start..start + len] {
                acc += w;
            }
            acc
        }));
    }

    /// Observe one slot's per-rack loads: aggregate up the tree,
    /// evaluate every level's breaker, and report budget breaches per
    /// level. A rack whose breaker is already open reports zero load
    /// (its nodes are dead), so parents relax as the outage sheds load.
    pub fn observe(&mut self, now: SimTime, rack_power_w: &[f64], verdict: &mut SlotVerdict) {
        assert_eq!(rack_power_w.len(), self.rack_ranges.len());
        verdict.newly_tripped_racks.clear();
        verdict.rack_breach.clear();
        verdict.pdu_breach.clear();
        verdict.row_breach.clear();
        for (r, (&load, breaker)) in rack_power_w
            .iter()
            .zip(self.rack_breakers.iter_mut())
            .enumerate()
        {
            verdict.rack_breach.push(load > self.rack_budget_w[r]);
            if breaker.observe(now, load) {
                verdict.newly_tripped_racks.push(r);
            }
        }
        let mut pdu_power = Vec::with_capacity(self.pdu_ranges.len());
        for (p, &(s, l)) in self.pdu_ranges.iter().enumerate() {
            let load: f64 = rack_power_w[s..s + l].iter().sum();
            pdu_power.push(load);
            verdict.pdu_breach.push(load > self.pdu_budget_w[p]);
            self.pdu_breakers[p].observe(now, load);
        }
        let mut facility_power = 0.0;
        for (w, &(s, l)) in self.row_ranges.iter().enumerate() {
            let load: f64 = pdu_power[s..s + l].iter().sum();
            facility_power += load;
            verdict.row_breach.push(load > self.row_budget_w[w]);
            self.row_breakers[w].observe(now, load);
        }
        verdict.facility_breach = facility_power > self.facility_budget_w;
        self.facility_breaker.observe(now, facility_power);
    }
}

/// The per-slot top-down budget allocator.
///
/// Each slot, the facility budget cascades down the tree: every parent
/// splits its own allocation among its children proportional to their
/// sensed demand, capped at each child's oversubscribed budget, and
/// scaled so the children never receive more than the parent holds
/// (conservation). Racks whose sensed power exceeds their allocation
/// are the localized actuation targets.
#[derive(Debug, Clone, Default)]
pub struct HierarchicalBudget {
    row_alloc_w: Vec<f64>,
    pdu_alloc_w: Vec<f64>,
    rack_alloc_w: Vec<f64>,
    // Scratch demand aggregates, reused across slots.
    pdu_demand: Vec<f64>,
    row_demand: Vec<f64>,
}

/// Distribute `parent_w` among children with the given demands, capped
/// at each child's own budget. If total capped demand fits, everyone
/// gets their demand; otherwise allocations scale down proportionally.
/// The final fixup keeps `Σ alloc ≤ parent_w` exact despite float
/// rounding.
fn distribute(parent_w: f64, demand: &[f64], cap: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.extend(demand.iter().zip(cap).map(|(&d, &c)| d.clamp(0.0, c)));
    let want: f64 = out.iter().sum();
    if want > parent_w && want > 0.0 {
        let scale = parent_w / want;
        for a in out.iter_mut() {
            *a *= scale;
        }
        let sum: f64 = out.iter().sum();
        if sum > parent_w {
            // One ulp of rounding slack: charge the largest allocation.
            if let Some(max) = out
                .iter_mut()
                .max_by(|a, b| a.partial_cmp(b).expect("allocations are finite"))
            {
                *max -= sum - parent_w;
            }
        }
    }
}

impl HierarchicalBudget {
    /// Fresh allocator (allocations are empty until the first slot).
    pub fn new() -> Self {
        HierarchicalBudget::default()
    }

    /// Run one slot's cascade from the facility budget down to racks,
    /// given per-rack sensed demand. Returns the per-rack allocations.
    pub fn allocate(&mut self, topo: &PowerTopology, rack_demand_w: &[f64]) -> &[f64] {
        assert_eq!(rack_demand_w.len(), topo.racks());
        self.pdu_demand.clear();
        self.pdu_demand.extend(
            topo.pdu_ranges
                .iter()
                .map(|&(s, l)| rack_demand_w[s..s + l].iter().sum::<f64>()),
        );
        self.row_demand.clear();
        self.row_demand.extend(
            topo.row_ranges
                .iter()
                .map(|&(s, l)| self.pdu_demand[s..s + l].iter().sum::<f64>()),
        );
        distribute(
            topo.facility_budget_w,
            &self.row_demand,
            &topo.row_budget_w,
            &mut self.row_alloc_w,
        );
        self.pdu_alloc_w.clear();
        for (w, &(s, l)) in topo.row_ranges.iter().enumerate() {
            let mut child = Vec::new();
            distribute(
                self.row_alloc_w[w],
                &self.pdu_demand[s..s + l],
                &topo.pdu_budget_w[s..s + l],
                &mut child,
            );
            self.pdu_alloc_w.extend(child);
        }
        self.rack_alloc_w.clear();
        for (p, &(s, l)) in topo.pdu_ranges.iter().enumerate() {
            let mut child = Vec::new();
            distribute(
                self.pdu_alloc_w[p],
                &rack_demand_w[s..s + l],
                &topo.rack_budget_w[s..s + l],
                &mut child,
            );
            self.rack_alloc_w.extend(child);
        }
        &self.rack_alloc_w
    }

    /// The most recent per-rack allocations (empty before the first
    /// slot).
    pub fn rack_alloc_w(&self) -> &[f64] {
        &self.rack_alloc_w
    }

    /// The most recent per-PDU allocations.
    pub fn pdu_alloc_w(&self) -> &[f64] {
        &self.pdu_alloc_w
    }

    /// The most recent per-row allocations.
    pub fn row_alloc_w(&self) -> &[f64] {
        &self.row_alloc_w
    }
}

/// Per-level accounting accumulated each slot, finalized into
/// [`crate::results::TopologyReport`] by the engines.
#[derive(Debug, Clone, Default)]
pub struct TopologyAccounts {
    /// Peak sensed power per rack, watts.
    pub rack_peak_w: Vec<f64>,
    /// Slots each rack spent over its budget.
    pub rack_breach_slots: Vec<u64>,
    /// Slots any PDU spent over its budget (summed over PDUs).
    pub pdu_breach_slots: u64,
    /// Slots any row spent over its budget (summed over rows).
    pub row_breach_slots: u64,
    /// Slots the facility feed spent over its budget.
    pub facility_breach_slots: u64,
    /// When each rack's breaker opened, if it did (seconds).
    pub rack_trip_at_s: Vec<Option<f64>>,
    /// Slots the rack guard pinned at least one rack.
    pub guard_slots: u64,
    /// Total facility-level slots observed.
    pub slots: u64,
}

impl TopologyAccounts {
    /// Accounting sized for `racks` racks.
    pub fn new(racks: usize) -> Self {
        TopologyAccounts {
            rack_peak_w: vec![0.0; racks],
            rack_breach_slots: vec![0; racks],
            rack_trip_at_s: vec![None; racks],
            ..TopologyAccounts::default()
        }
    }

    /// Fold one slot's rack powers and verdict in.
    pub fn record_slot(&mut self, now: SimTime, rack_power_w: &[f64], verdict: &SlotVerdict) {
        self.slots += 1;
        for (r, &w) in rack_power_w.iter().enumerate() {
            if w > self.rack_peak_w[r] {
                self.rack_peak_w[r] = w;
            }
            if verdict.rack_breach[r] {
                self.rack_breach_slots[r] += 1;
            }
        }
        self.pdu_breach_slots += verdict.pdu_breach.iter().filter(|&&b| b).count() as u64;
        self.row_breach_slots += verdict.row_breach.iter().filter(|&&b| b).count() as u64;
        if verdict.facility_breach {
            self.facility_breach_slots += 1;
        }
        for &r in &verdict.newly_tripped_racks {
            self.rack_trip_at_s[r] = Some(now.as_secs_f64());
        }
    }

    /// The rack with the highest recorded peak — the hierarchical
    /// attribution verdict ("where is the flood concentrating?").
    pub fn hottest_rack(&self) -> usize {
        self.rack_peak_w
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("peaks are finite"))
            .map(|(r, _)| r)
            .unwrap_or(0)
    }
}

/// Everything the engines carry for a configured topology: the static
/// tree, the per-slot allocator, verdict/power scratch, accounting, and
/// the rack guard's state.
#[derive(Debug, Clone)]
pub struct TopologyState {
    /// The static tree.
    pub topo: PowerTopology,
    /// The per-slot top-down allocator.
    pub alloc: HierarchicalBudget,
    /// Scratch verdict, refilled every observed slot.
    pub verdict: SlotVerdict,
    /// Accumulated per-level accounting.
    pub accounts: TopologyAccounts,
    /// Per-rack sensed power scratch, refilled every slot.
    pub rack_power_w: Vec<f64>,
    /// Whether the rack guard actuates (from [`TopologyConfig::defend`]).
    pub defend: bool,
    /// The guard's pin target: the uniform safe P-state that keeps the
    /// whole cluster within the facility budget at worst-case load.
    pub safe_pstate: PState,
    /// Slot index each rack stays pinned through (the guard holds a pin
    /// for one breaker trip-delay so a throttled rack's hidden demand
    /// cannot re-trip the breaker the moment sensing relaxes).
    pinned_until: Vec<u64>,
    /// Pin hold time, slots.
    guard_hold_slots: u64,
    /// Slots observed so far.
    slot: u64,
}

impl TopologyState {
    /// Build the carried state for a validated config. `control_slot`
    /// sizes the guard's hold time from the breaker trip delay.
    pub fn new(
        servers: usize,
        facility_budget_w: f64,
        cfg: &TopologyConfig,
        control_slot: SimDuration,
    ) -> Self {
        let topo = PowerTopology::build(servers, facility_budget_w, cfg);
        let safe_pstate = UniformCapper::new(ServerPowerModel::paper_default()).state_for_budget(
            facility_budget_w,
            &vec![
                ServerLoad {
                    utilization: 1.0,
                    intensity: 1.0,
                    gamma: 0.9,
                };
                servers
            ],
        );
        let guard_hold_slots = (cfg.breaker_trip_delay.as_micros()
            / control_slot.as_micros().max(1))
        .max(1);
        let racks = topo.racks();
        TopologyState {
            topo,
            alloc: HierarchicalBudget::new(),
            verdict: SlotVerdict::default(),
            accounts: TopologyAccounts::new(racks),
            rack_power_w: Vec::with_capacity(racks),
            defend: cfg.defend,
            safe_pstate,
            pinned_until: vec![0; racks],
            guard_hold_slots,
            slot: 0,
        }
    }

    /// Run one slot's hierarchical pass from per-node power in global
    /// node order: aggregate racks, cascade allocations, evaluate every
    /// level's breaker, and fold the accounting. The caller reads
    /// `self.verdict` (breaches, fresh rack trips) and
    /// `self.alloc.rack_alloc_w()` afterwards.
    pub fn observe_slot(&mut self, now: SimTime, node_power_w: &[f64]) {
        {
            let TopologyState { topo, rack_power_w, .. } = self;
            topo.rack_powers(node_power_w, rack_power_w);
        }
        self.observe_current(now);
    }

    /// [`Self::observe_slot`] for callers that already hold per-rack
    /// sums (the legacy engine's degenerate single-rack path).
    pub fn observe_rack_powers(&mut self, now: SimTime, rack_power_w: &[f64]) {
        self.rack_power_w.clear();
        self.rack_power_w.extend_from_slice(rack_power_w);
        self.observe_current(now);
    }

    fn observe_current(&mut self, now: SimTime) {
        self.slot += 1;
        let TopologyState { topo, alloc, verdict, accounts, rack_power_w, .. } = self;
        alloc.allocate(topo, rack_power_w);
        topo.observe(now, rack_power_w, verdict);
        accounts.record_slot(now, rack_power_w, verdict);
    }

    /// Apply the rack guard to this slot's action plan: racks whose
    /// sensed power exceeds their slot allocation (and racks still
    /// inside a pin hold) have the scheme's per-node commands stripped
    /// and their alive nodes pinned to the safe P-state; a rack whose
    /// hold expired gets its still-pinned nodes handed back to the
    /// scheme at full speed. Mirrors
    /// [`crate::control::plane::apply_shard_guard`]'s strip-then-pin
    /// shape. Returns true when any rack was pinned this slot.
    pub fn apply_rack_guard(
        &mut self,
        actions: &mut Vec<Action>,
        node_dead: &[bool],
        target_of: impl Fn(usize) -> PState,
    ) -> bool {
        if !self.defend || self.rack_power_w.len() != self.topo.racks() {
            return false;
        }
        let alloc = self.alloc.rack_alloc_w();
        for (r, (&power, &a)) in self.rack_power_w.iter().zip(alloc).enumerate() {
            if power > a && !self.topo.rack_tripped(r) {
                self.pinned_until[r] = self.slot + self.guard_hold_slots;
            }
        }
        let pinned: Vec<bool> = self.pinned_until.iter().map(|&u| u > self.slot).collect();
        if !pinned.iter().any(|&p| p) {
            return false;
        }
        let owner = &self.topo.owner_rack;
        // Scheme actions targeting nodes of pinned racks would fight
        // the guard; released nodes go back to the scheme untouched.
        actions.retain(|a| match a {
            Action::SetPState { node, .. } | Action::SetPowerLimit { node, .. } => {
                !pinned[owner[*node]]
            }
            _ => true,
        });
        let safe = self.safe_pstate;
        for g in 0..owner.len() {
            if node_dead[g] {
                continue;
            }
            if pinned[owner[g]] {
                if target_of(g) != safe {
                    actions.push(Action::SetPState { node: g, target: safe });
                }
            } else if self.pinned_until[owner[g]] == self.slot && target_of(g) == safe {
                // Hold just expired: release to full speed; the scheme
                // re-caps next slot if it wants to.
                actions.push(Action::SetPState { node: g, target: PState(0) });
            }
        }
        self.accounts.guard_slots += 1;
        true
    }

    /// Finalize into the report, taking per-rack delivered energy from
    /// the caller (engines fold per-node joules by rack range so the
    /// sum is exactly the cluster total).
    pub fn into_report(self, rack_energy_j: Vec<f64>) -> crate::results::TopologyReport {
        crate::results::TopologyReport {
            racks: self.topo.racks(),
            pdus: self.topo.pdus(),
            rows: self.topo.rows(),
            hottest_rack: self.accounts.hottest_rack(),
            rack_peak_w: self.accounts.rack_peak_w,
            rack_energy_j,
            rack_breach_slots: self.accounts.rack_breach_slots,
            pdu_breach_slots: self.accounts.pdu_breach_slots,
            row_breach_slots: self.accounts.row_breach_slots,
            facility_breach_slots: self.accounts.facility_breach_slots,
            rack_trip_at_s: self.accounts.rack_trip_at_s,
            guard_slots: self.accounts.guard_slots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    fn cfg(racks: usize, pdus: usize, rows: usize) -> TopologyConfig {
        TopologyConfig {
            racks,
            pdus,
            rows,
            ..TopologyConfig::default()
        }
    }

    #[test]
    fn partitions_are_contiguous_and_exhaustive() {
        let t = PowerTopology::build(10, 1000.0, &cfg(3, 2, 1));
        assert_eq!(t.rack_range(0), (0, 4));
        assert_eq!(t.rack_range(1), (4, 3));
        assert_eq!(t.rack_range(2), (7, 3));
        assert_eq!(t.owner_rack(), &[0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
        assert_eq!(t.pdu_ranges, vec![(0, 2), (2, 1)]);
        assert_eq!(t.row_ranges, vec![(0, 2)]);
    }

    #[test]
    fn budgets_oversubscribe_each_level() {
        let t = PowerTopology::build(8, 800.0, &cfg(4, 2, 1));
        // Row carries all 8 nodes: 800 × 1.1.
        assert!((t.row_budget_w(0) - 880.0).abs() < 1e-9);
        // PDUs split the row evenly, × 1.15 each.
        let pdu_sum: f64 = (0..2).map(|p| t.pdu_budget_w(p)).sum();
        assert!((pdu_sum - 880.0 * 1.15).abs() < 1e-9);
        // Racks oversubscribe their PDU.
        let rack_sum: f64 = (0..4).map(|r| t.rack_budget_w(r)).sum();
        assert!((rack_sum - pdu_sum * 1.2).abs() < 1e-9);
        assert!(rack_sum > t.facility_budget_w());
    }

    #[test]
    fn degenerate_single_rack_matches_flat_budget() {
        let mut c = cfg(1, 1, 1);
        c.rack_oversub = 1.0;
        c.pdu_oversub = 1.0;
        c.row_oversub = 1.0;
        let t = PowerTopology::build(4, 340.0, &c);
        assert!((t.rack_budget_w(0) - 340.0).abs() < 1e-12);
        assert_eq!(t.rack_range(0), (0, 4));
    }

    #[test]
    fn rack_powers_fold_in_global_order() {
        let t = PowerTopology::build(5, 500.0, &cfg(2, 1, 1));
        let mut out = Vec::new();
        t.rack_powers(&[10.0, 20.0, 30.0, 40.0, 50.0], &mut out);
        assert_eq!(out, vec![60.0, 90.0]);
    }

    #[test]
    fn rack_breaker_trips_while_facility_has_headroom() {
        // 4 racks × 2 nodes, facility budget 680 W; rack budgets are
        // ~258 W each (oversubscribed). Concentrate 300 W on rack 0 while
        // the others idle: the rack breaker must trip, the facility must
        // never breach.
        let mut t = PowerTopology::build(8, 680.0, &cfg(4, 2, 1));
        let mut v = SlotVerdict::default();
        let loads = [300.0, 20.0, 20.0, 20.0];
        let rating = t.rack_budget_w(0) * 1.10;
        assert!(loads[0] > rating, "scenario must exceed the rack rating");
        let mut tripped_at = None;
        for slot in 0..120u64 {
            t.observe(s(slot), &loads, &mut v);
            assert!(!v.facility_breach, "facility shows headroom throughout");
            assert!(v.rack_breach[0]);
            if let Some(&r) = v.newly_tripped_racks.first() {
                tripped_at = Some((r, slot));
                break;
            }
        }
        let (rack, slot) = tripped_at.expect("rack breaker trips");
        assert_eq!(rack, 0);
        assert_eq!(slot, 30, "default 30 s trip delay");
        assert!(t.rack_tripped(0));
        assert!(!t.rack_tripped(1));
    }

    #[test]
    fn allocation_conserves_parent_budget() {
        let t = PowerTopology::build(12, 1200.0, &cfg(4, 2, 2));
        let mut h = HierarchicalBudget::new();
        // Demand far above the facility budget.
        let alloc = h.allocate(&t, &[900.0, 800.0, 700.0, 600.0]).to_vec();
        let total: f64 = alloc.iter().sum();
        assert!(total <= t.facility_budget_w(), "{total} > facility");
        // Each rack within its own rating.
        for (r, &a) in alloc.iter().enumerate() {
            assert!(a <= t.rack_budget_w(r) + 1e-9);
        }
        // Under light demand every rack simply gets its demand.
        let light = h.allocate(&t, &[50.0, 40.0, 30.0, 20.0]).to_vec();
        for (a, d) in light.iter().zip([50.0, 40.0, 30.0, 20.0]) {
            assert!((a - d).abs() < 1e-9);
        }
    }

    #[test]
    fn allocation_is_demand_proportional_under_pressure() {
        let t = PowerTopology::build(4, 400.0, &cfg(2, 1, 1));
        let mut h = HierarchicalBudget::new();
        let alloc = h.allocate(&t, &[600.0, 200.0]).to_vec();
        assert!(alloc[0] > alloc[1], "hotter rack draws more: {alloc:?}");
        let total: f64 = alloc.iter().sum();
        assert!(total <= t.facility_budget_w() + 1e-12);
    }

    #[test]
    fn accounts_localize_the_hot_rack() {
        let mut t = PowerTopology::build(8, 680.0, &cfg(4, 2, 1));
        let mut acc = TopologyAccounts::new(4);
        let mut v = SlotVerdict::default();
        for slot in 0..40u64 {
            let loads = [30.0, 20.0, 290.0, 20.0];
            t.observe(s(slot), &loads, &mut v);
            acc.record_slot(s(slot), &loads, &v);
        }
        assert_eq!(acc.hottest_rack(), 2);
        assert_eq!(acc.rack_breach_slots[2], 40);
        assert_eq!(acc.rack_breach_slots[0], 0);
        assert!(acc.rack_trip_at_s[2].is_some());
        assert_eq!(acc.slots, 40);
    }

    #[test]
    fn validate_rejects_bad_nesting() {
        assert!(cfg(0, 1, 1).validate(4).is_err());
        assert!(cfg(5, 1, 1).validate(4).is_err());
        assert!(cfg(2, 3, 1).validate(4).is_err());
        assert!(cfg(2, 2, 3).validate(4).is_err());
        assert!(cfg(2, 2, 1).validate(4).is_ok());
        let mut c = cfg(2, 1, 1);
        c.rack_oversub = 0.5;
        assert!(c.validate(4).is_err());
        c.rack_oversub = 1.2;
        c.breaker_trip_delay = SimDuration::ZERO;
        assert!(c.validate(4).is_err());
    }
}
