//! # antidope — the paper's contribution
//!
//! A request-aware power-management framework for power-oversubscribed
//! data centers under DOPE (Denial of Power and Energy) attack, plus the
//! three baselines it is evaluated against and the full-system simulator
//! that ties every substrate crate together.
//!
//! ## The framework (Section 5 of the paper)
//!
//! * [`pdf`] — **Power-Driven Forwarding**: offline profiling builds a
//!   [`netsim::SuspectList`]; the NLB splits traffic by URL into suspect
//!   and innocent flows routed to disjoint server pools.
//! * [`dpm`] — **Differentiated Power Management** (Algorithm 1): on a
//!   budget violation, throttle *suspect* nodes first, choosing per-node
//!   V/F states by best power-saved-per-performance-lost, spilling to
//!   innocent nodes only when the suspect pool is exhausted.
//! * [`request_control`] — the Eq (1) request-control model:
//!   `Σ qᵢ·Pᵢ(f) ≤ B₀` solved per node for the resident request mix.
//! * [`scheme`] — the four evaluated schemes of Table 2: `Capping`,
//!   `Shaving`, `Token`, and `AntiDope` (PDF + RPM), behind one
//!   [`scheme::PowerScheme`] trait.
//! * [`cluster`] — [`cluster::ClusterSim`]: the discrete-event model
//!   wiring sources → firewall → NLB → processor-sharing nodes; event
//!   dispatch and the dataplane live here.
//! * [`control`] — the staged power control plane the simulator drives
//!   once per 1 s slot: Sense → Filter → Learn → Decide → Act, with an
//!   Account stage doing exact energy / thermal / breaker integration
//!   (the paper's Fig. 12 pipeline made structural).
//! * [`shard`] — [`shard::ShardedClusterSim`]: the sharded parallel
//!   engine for large clusters — dataplane shards with data-oriented
//!   (struct-of-arrays) node state advance each control slot in
//!   parallel and synchronize at slot boundaries, driving the exact
//!   same control-plane stages.
//! * [`runner`] — one-call experiment execution (dispatching on
//!   `cluster.shards` between the two engines) and rayon-parallel
//!   (scheme × budget × seed) sweeps.
//! * [`results`] — [`results::SimReport`]: everything the paper's
//!   figures need, serializable to JSON.
//! * [`health`] — the hardened-control-plane pieces the fault-injection
//!   layer exercises: last-good-value telemetry estimation, a
//!   coverage watchdog with recovery hysteresis, and actuator read-back
//!   verification with bounded retry.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod config;
pub mod control;
pub mod dpm;
pub mod health;
pub mod jsonl;
pub mod node;
pub mod pdf;
pub mod request_control;
pub mod results;
pub mod runner;
pub mod scheme;
pub mod shard;
pub mod testutil;
pub mod topology;


pub use cluster::ClusterSim;
pub use config::{
    AdmissionConfig, ClusterConfig, ConfigError, ControlPlaneConfig, ExperimentConfig, SchemeKind,
};
pub use control::plane::{
    ActionRecord, ActuationTransport, BatteryObs, ConditionRecord, ControlClock, ControlTrace,
    DecisionRecord, Forget, ForgetKind, NodeObs, PlaneSample, ShardGuard, SlotRecord, SlotTick,
    TelemetryTransport, TraceFooter, TraceRecorder, TransportError, ViewRecord,
    TRACE_SCHEMA_VERSION,
};
pub use control::{ClusterView, ControlPipeline, TelemetryFrame};
pub use health::{ActuatorVerify, ShardWatchdog, TelemetryHealth, Watchdog};
pub use node::ComputeNode;
pub use results::{FaultReport, RetryReport, SimReport};
pub use results::TopologyReport;
pub use runner::{record_experiment, run_experiment, run_matrix};
pub use shard::ShardedClusterSim;
pub use topology::{HierarchicalBudget, PowerTopology, TopologyConfig};


