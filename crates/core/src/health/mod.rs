//! Control-plane hardening: degraded-telemetry estimation, a safety
//! watchdog, and actuator read-back verification.
//!
//! The RPM control loop of the paper assumes perfect visibility: every
//! slot it reads true per-node power and its DVFS commands always land.
//! Under fault injection ([`simcore::faults`]) neither holds. This
//! module contains the three mechanisms that keep the controller safe
//! when partially blind:
//!
//! * [`TelemetryHealth`] — per-node last-good-value hold with a
//!   staleness deadline; nodes blind past the deadline are charged their
//!   conservative nameplate power so the controller over- rather than
//!   under-estimates demand.
//! * [`Watchdog`] — when the fraction of fresh sensors drops below a
//!   floor, the scheme's plan is distrusted and the cluster falls back
//!   to uniform safe capping; recovery requires several consecutive
//!   healthy slots (hysteresis against flapping).
//! * [`ActuatorVerify`] — commanded P-states are read back next slot;
//!   mismatches are retried with bounded exponential backoff.

pub mod staleness;

use powercap::pstate::PState;
use simcore::{SimDuration, SimTime};
use staleness::LastGood;

/// Aggregate power estimate built from partially-faulty sensors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryEstimate {
    /// Estimated cluster power, watts.
    pub power_w: f64,
    /// Fraction of nodes with a *fresh* reading this slot.
    pub coverage: f64,
    /// Nodes with neither a fresh reading nor a recent-enough held one.
    pub blind_nodes: usize,
}

/// Last-good-value telemetry estimator with a staleness deadline, built
/// on the shared [`LastGood`] hold (the identical expiry arithmetic the
/// live daemon's sample bridging uses).
#[derive(Debug, Clone)]
pub struct TelemetryHealth {
    /// Most recent good sample per node, with its timestamp.
    last_good: LastGood<f64>,
}

impl TelemetryHealth {
    /// Estimator over `n_nodes` sensors; held samples expire after
    /// `staleness`.
    pub fn new(n_nodes: usize, staleness: SimDuration) -> Self {
        TelemetryHealth {
            last_good: LastGood::new(n_nodes, staleness),
        }
    }

    /// Fold this slot's readings (`None` = sensor produced nothing) into
    /// a cluster power estimate. Fresh readings update the held value;
    /// missing ones fall back to the held value if it is younger than the
    /// staleness deadline, else to `nameplate_w` (conservative: a blind
    /// node is assumed to draw its maximum).
    pub fn estimate(
        &mut self,
        now: SimTime,
        readings: &[Option<f64>],
        nameplate_w: f64,
    ) -> TelemetryEstimate {
        debug_assert_eq!(readings.len(), self.last_good.len());
        let mut power_w = 0.0;
        let mut fresh = 0usize;
        let mut blind = 0usize;
        for (i, reading) in readings.iter().enumerate() {
            match reading {
                Some(w) => {
                    self.last_good.update(i, now, *w);
                    power_w += w;
                    fresh += 1;
                }
                None => match self.last_good.get(i, now) {
                    Some(w) => power_w += w,
                    None => {
                        power_w += nameplate_w;
                        blind += 1;
                    }
                },
            }
        }
        let n = readings.len().max(1);
        TelemetryEstimate {
            power_w,
            coverage: fresh as f64 / n as f64,
            blind_nodes: blind,
        }
    }

    /// Forget a node's held sample (it crashed; its next reading comes
    /// from fresh hardware).
    pub fn forget(&mut self, node: usize) {
        self.last_good.forget(node);
    }
}

/// Telemetry-coverage watchdog with recovery hysteresis.
///
/// Engaged ⇒ the control plane must not trust the scheme's plan and
/// should apply the uniform safe cap instead.
#[derive(Debug, Clone)]
pub struct Watchdog {
    floor: f64,
    recovery_slots: u32,
    engaged_since: Option<SimTime>,
    ok_streak: u32,
    degraded_slots: u64,
    episodes: u64,
    completed_episodes: u64,
    degraded_time: SimDuration,
}

impl Watchdog {
    /// Watchdog engaging below `floor` coverage, releasing after
    /// `recovery_slots` consecutive healthy slots.
    pub fn new(floor: f64, recovery_slots: u32) -> Self {
        Watchdog {
            floor,
            recovery_slots: recovery_slots.max(1),
            engaged_since: None,
            ok_streak: 0,
            degraded_slots: 0,
            episodes: 0,
            completed_episodes: 0,
            degraded_time: SimDuration::ZERO,
        }
    }

    /// Feed one slot's coverage; returns whether the watchdog is engaged
    /// for this slot.
    pub fn observe(&mut self, now: SimTime, coverage: f64) -> bool {
        if coverage < self.floor {
            self.ok_streak = 0;
            if self.engaged_since.is_none() {
                self.engaged_since = Some(now);
                self.episodes += 1;
            }
        } else if let Some(since) = self.engaged_since {
            self.ok_streak += 1;
            if self.ok_streak >= self.recovery_slots {
                self.degraded_time += now.since(since);
                self.completed_episodes += 1;
                self.engaged_since = None;
                self.ok_streak = 0;
            }
        }
        if self.engaged_since.is_some() {
            self.degraded_slots += 1;
            true
        } else {
            false
        }
    }

    /// Currently engaged?
    pub fn engaged(&self) -> bool {
        self.engaged_since.is_some()
    }

    /// Slots spent degraded (engaged), including recovery probation.
    pub fn degraded_slots(&self) -> u64 {
        self.degraded_slots
    }

    /// Times the watchdog engaged.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Total degraded wall-clock, counting a still-open episode up to
    /// `now`.
    pub fn time_degraded(&self, now: SimTime) -> SimDuration {
        match self.engaged_since {
            Some(since) => self.degraded_time + now.since(since),
            None => self.degraded_time,
        }
    }

    /// Mean time to recovery over completed episodes, seconds.
    pub fn mttr_s(&self) -> Option<f64> {
        if self.completed_episodes == 0 {
            None
        } else {
            Some(self.degraded_time.as_secs_f64() / self.completed_episodes as f64)
        }
    }
}

/// Per-shard state of the [`ShardWatchdog`].
#[derive(Debug, Clone, Copy)]
struct ShardHealth {
    engaged_since: Option<SimTime>,
    blind_streak: u32,
    ok_streak: u32,
}

/// Shard-coverage watchdog: detects a *full-shard* telemetry blackout
/// (every sensor in one shard dark while the rest of the cluster still
/// reports) and caps just that shard at the conservative safe P-state
/// until it has reported cleanly for a few consecutive slots.
///
/// The global [`Watchdog`] cannot see this failure shape: one dark
/// shard out of eight only drops cluster coverage to 87.5%, far above
/// any sane floor, yet the controller knows *nothing* about an eighth
/// of its load. Scope the fallback to the blind shard and the rest of
/// the cluster keeps running the scheme's differentiated plan.
#[derive(Debug, Clone)]
pub struct ShardWatchdog {
    engage_slots: u32,
    recovery_slots: u32,
    states: Vec<ShardHealth>,
    degraded_slots: u64,
    episodes: u64,
    was_any: bool,
}

impl ShardWatchdog {
    /// Watchdog over `n_shards`, engaging a shard only after
    /// `engage_slots` consecutive fully-blind slots and releasing it
    /// after `recovery_slots` consecutive slots with at least one
    /// fresh reading.
    ///
    /// The engagement threshold is deliberately not 1: a gap shorter
    /// than the telemetry staleness window is already bridged by the
    /// last-known-good estimator, and on small shards a single slot
    /// with every sensor dropped is an ordinary random event, not a
    /// rack blackout. Only an outage that outlasts the staleness
    /// window leaves the controller truly blind — and only then is the
    /// conservative cap worth its throughput cost.
    pub fn new(n_shards: usize, engage_slots: u32, recovery_slots: u32) -> Self {
        ShardWatchdog {
            engage_slots: engage_slots.max(1),
            recovery_slots: recovery_slots.max(1),
            states: vec![
                ShardHealth {
                    engaged_since: None,
                    blind_streak: 0,
                    ok_streak: 0,
                };
                n_shards
            ],
            degraded_slots: 0,
            episodes: 0,
            was_any: false,
        }
    }

    /// Feed one slot's fresh-reading count for `shard` (out of `total`
    /// *alive* nodes it owns); returns whether the shard is capped this
    /// slot. Engagement requires a *total* blackout — a shard with even
    /// one live sensor is left to the staleness estimator and the
    /// global watchdog. Callers must exclude dead nodes from both
    /// counts: crashed nodes report a synthetic zero, and letting that
    /// count as coverage would make engagement depend on where the
    /// crash landed rather than on sensor health.
    pub fn observe(&mut self, now: SimTime, shard: usize, fresh: usize, total: usize) -> bool {
        let st = &mut self.states[shard];
        if fresh == 0 && total > 0 {
            st.blind_streak += 1;
            st.ok_streak = 0;
            if st.engaged_since.is_none() && st.blind_streak >= self.engage_slots {
                st.engaged_since = Some(now);
            }
        } else {
            st.blind_streak = 0;
            if st.engaged_since.is_some() {
                st.ok_streak += 1;
                if st.ok_streak >= self.recovery_slots {
                    st.engaged_since = None;
                    st.ok_streak = 0;
                }
            }
        }
        st.engaged_since.is_some()
    }

    /// Finish the slot after every shard has been `observe`d, updating
    /// the cluster-level degradation counters. Counting *slots with at
    /// least one capped shard* (rather than capped shard-slots) keeps
    /// the report identical across shard layouts when a blackout
    /// covers the whole cluster: every layout sees the same degraded
    /// wall-clock, not a tally scaled by the shard count.
    pub fn close_slot(&mut self) {
        let any = self.any_engaged();
        if any {
            self.degraded_slots += 1;
            if !self.was_any {
                self.episodes += 1;
            }
        }
        self.was_any = any;
    }

    /// Whether `shard` is currently capped.
    pub fn engaged(&self, shard: usize) -> bool {
        self.states[shard].engaged_since.is_some()
    }

    /// Whether any shard is currently capped.
    pub fn any_engaged(&self) -> bool {
        self.states.iter().any(|s| s.engaged_since.is_some())
    }

    /// Control slots during which at least one shard was capped.
    pub fn degraded_slots(&self) -> u64 {
        self.degraded_slots
    }

    /// Distinct degradation episodes: rising edges of "any shard
    /// capped" across closed slots.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }
}

/// What a read-back check concluded for one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// No actuation outstanding.
    Idle,
    /// The hardware reached the commanded target.
    Confirmed,
    /// Mismatch, but the backoff window has not elapsed yet.
    Pending,
    /// Mismatch past backoff: re-issue this target now.
    Retry(PState),
    /// Retry budget exhausted; the node is wedged at something other
    /// than this target.
    GaveUp(PState),
}

#[derive(Debug, Clone, Copy)]
struct Intent {
    target: PState,
    retries_left: u8,
    next_retry_at: SimTime,
    backoff: SimDuration,
}

/// Read-back verification of DVFS/RAPL commands with bounded retry.
#[derive(Debug, Clone)]
pub struct ActuatorVerify {
    intents: Vec<Option<Intent>>,
    max_retries: u8,
    first_backoff: SimDuration,
    confirmed: u64,
    retries: u64,
    giveups: u64,
}

impl ActuatorVerify {
    /// Verifier over `n_nodes`, retrying up to `max_retries` times with
    /// doubling backoff starting at `first_backoff`.
    pub fn new(n_nodes: usize, max_retries: u8, first_backoff: SimDuration) -> Self {
        ActuatorVerify {
            intents: vec![None; n_nodes],
            max_retries,
            first_backoff,
            confirmed: 0,
            retries: 0,
            giveups: 0,
        }
    }

    /// Record that `target` was commanded on `node` at `now`.
    pub fn record(&mut self, node: usize, target: PState, now: SimTime) {
        self.intents[node] = Some(Intent {
            target,
            retries_left: self.max_retries,
            next_retry_at: now + self.first_backoff,
            backoff: self.first_backoff,
        });
    }

    /// Compare the node's actual commanded state against the recorded
    /// intent. `Retry` consumes one retry and doubles the backoff; the
    /// caller must re-issue the command (through the fault layer, which
    /// may lose it again).
    pub fn check(&mut self, node: usize, actual: PState, now: SimTime) -> VerifyOutcome {
        let Some(intent) = &mut self.intents[node] else {
            return VerifyOutcome::Idle;
        };
        if actual == intent.target {
            self.intents[node] = None;
            self.confirmed += 1;
            return VerifyOutcome::Confirmed;
        }
        if now < intent.next_retry_at {
            return VerifyOutcome::Pending;
        }
        if intent.retries_left == 0 {
            let target = intent.target;
            self.intents[node] = None;
            self.giveups += 1;
            return VerifyOutcome::GaveUp(target);
        }
        intent.retries_left -= 1;
        intent.backoff = intent.backoff * 2;
        intent.next_retry_at = now + intent.backoff;
        self.retries += 1;
        VerifyOutcome::Retry(intent.target)
    }

    /// Drop any outstanding intent (the node crashed or rebooted).
    pub fn clear(&mut self, node: usize) {
        self.intents[node] = None;
    }

    /// Commands confirmed by read-back.
    pub fn confirmed(&self) -> u64 {
        self.confirmed
    }

    /// Retries issued.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Commands abandoned after exhausting the retry budget.
    pub fn giveups(&self) -> u64 {
        self.giveups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    #[test]
    fn fresh_readings_pass_through() {
        let mut t = TelemetryHealth::new(2, SimDuration::from_secs(5));
        let e = t.estimate(s(0), &[Some(70.0), Some(50.0)], 100.0);
        assert_eq!(e.power_w, 120.0);
        assert_eq!(e.coverage, 1.0);
        assert_eq!(e.blind_nodes, 0);
    }

    #[test]
    fn held_value_bridges_short_dropouts() {
        let mut t = TelemetryHealth::new(2, SimDuration::from_secs(5));
        t.estimate(s(0), &[Some(70.0), Some(50.0)], 100.0);
        let e = t.estimate(s(3), &[None, Some(55.0)], 100.0);
        assert_eq!(e.power_w, 125.0); // 70 held + 55 fresh
        assert_eq!(e.coverage, 0.5);
        assert_eq!(e.blind_nodes, 0);
    }

    #[test]
    fn stale_node_charged_nameplate() {
        let mut t = TelemetryHealth::new(2, SimDuration::from_secs(5));
        t.estimate(s(0), &[Some(70.0), Some(50.0)], 100.0);
        let e = t.estimate(s(10), &[None, Some(55.0)], 100.0);
        assert_eq!(e.power_w, 155.0); // nameplate 100 + 55 fresh
        assert_eq!(e.blind_nodes, 1);
        // forget() drops the held value immediately.
        t.estimate(s(10), &[Some(70.0), Some(55.0)], 100.0);
        t.forget(0);
        let e = t.estimate(s(11), &[None, Some(55.0)], 100.0);
        assert_eq!(e.blind_nodes, 1);
    }

    #[test]
    fn never_seen_node_is_blind() {
        let mut t = TelemetryHealth::new(1, SimDuration::from_secs(5));
        let e = t.estimate(s(0), &[None], 100.0);
        assert_eq!(e.power_w, 100.0);
        assert_eq!(e.coverage, 0.0);
        assert_eq!(e.blind_nodes, 1);
    }

    #[test]
    fn watchdog_engages_and_recovers_with_hysteresis() {
        let mut w = Watchdog::new(0.5, 3);
        assert!(!w.observe(s(0), 1.0));
        assert!(w.observe(s(1), 0.25));
        assert!(w.engaged());
        // Two healthy slots are not enough to release...
        assert!(w.observe(s(2), 1.0));
        assert!(w.observe(s(3), 1.0));
        // ...the third releases.
        assert!(!w.observe(s(4), 1.0));
        assert!(!w.engaged());
        assert_eq!(w.episodes(), 1);
        assert_eq!(w.degraded_slots(), 3);
        assert_eq!(w.time_degraded(s(10)), SimDuration::from_secs(3));
        assert_eq!(w.mttr_s(), Some(3.0));
    }

    #[test]
    fn watchdog_relapse_resets_streak() {
        let mut w = Watchdog::new(0.5, 2);
        w.observe(s(0), 0.0);
        w.observe(s(1), 1.0); // streak 1
        w.observe(s(2), 0.0); // relapse
        assert!(w.observe(s(3), 1.0)); // streak 1 again — still engaged
        assert!(!w.observe(s(4), 1.0)); // streak 2 — released
        assert_eq!(w.episodes(), 1); // one continuous episode
        assert_eq!(w.mttr_s(), Some(4.0));
    }

    #[test]
    fn open_episode_counts_toward_time_degraded() {
        let mut w = Watchdog::new(0.5, 3);
        w.observe(s(2), 0.0);
        assert!(w.engaged());
        assert_eq!(w.time_degraded(s(7)), SimDuration::from_secs(5));
        assert_eq!(w.mttr_s(), None);
    }

    #[test]
    fn shard_watchdog_requires_total_blackout() {
        let mut w = ShardWatchdog::new(2, 1, 3);
        // One live sensor out of four: not a shard blackout.
        assert!(!w.observe(s(0), 0, 1, 4));
        assert!(!w.observe(s(0), 1, 4, 4));
        w.close_slot();
        assert_eq!(w.degraded_slots(), 0);
        // Zero fresh readings: engage shard 0 only.
        assert!(w.observe(s(1), 0, 0, 4));
        assert!(w.engaged(0));
        assert!(!w.observe(s(1), 1, 4, 4));
        assert!(!w.engaged(1));
        w.close_slot();
        assert!(w.any_engaged());
        assert_eq!(w.degraded_slots(), 1);
        assert_eq!(w.episodes(), 1);
    }

    #[test]
    fn shard_watchdog_recovers_with_hysteresis() {
        let mut w = ShardWatchdog::new(1, 1, 3);
        let slot = |w: &mut ShardWatchdog, t: u64, fresh: usize| {
            let capped = w.observe(s(t), 0, fresh, 4);
            w.close_slot();
            capped
        };
        assert!(slot(&mut w, 0, 0));
        // Two healthy slots are probation, the third releases.
        assert!(slot(&mut w, 1, 4));
        assert!(slot(&mut w, 2, 4));
        assert!(!slot(&mut w, 3, 4));
        assert!(!w.any_engaged());
        assert_eq!(w.degraded_slots(), 3);
        // A relapse during probation restarts the streak.
        assert!(slot(&mut w, 4, 0));
        assert!(slot(&mut w, 5, 4));
        assert!(slot(&mut w, 6, 0));
        assert!(slot(&mut w, 7, 4));
        assert!(slot(&mut w, 8, 4));
        assert!(!slot(&mut w, 9, 4));
        assert_eq!(w.episodes(), 2);
    }

    #[test]
    fn shard_watchdog_ignores_gaps_shorter_than_the_engage_threshold() {
        let mut w = ShardWatchdog::new(1, 3, 2);
        // Two blind slots: below the threshold, never engages.
        for t in 0..2 {
            assert!(!w.observe(s(t), 0, 0, 2));
            w.close_slot();
        }
        // One fresh slot resets the blind streak entirely.
        assert!(!w.observe(s(2), 0, 1, 2));
        w.close_slot();
        assert!(!w.observe(s(3), 0, 0, 2));
        assert!(!w.observe(s(4), 0, 0, 2));
        // The third *consecutive* blind slot engages.
        assert!(w.observe(s(5), 0, 0, 2));
        w.close_slot();
        assert!(w.any_engaged());
        assert_eq!(w.degraded_slots(), 1);
        assert_eq!(w.episodes(), 1);
    }

    /// Engagement boundary: the engines set `engage_slots` to the
    /// telemetry staleness window, so a blackout that ends *exactly* at
    /// the window must engage on its final blind slot — and a blackout
    /// one slot shorter must never engage (the last-good estimator is
    /// still bridging it).
    #[test]
    fn shard_blackout_ending_exactly_at_the_staleness_window_engages() {
        // Window = 3 slots, one slot shorter: never engages.
        let mut short = ShardWatchdog::new(1, 3, 2);
        for t in 1..=2 {
            assert!(!short.observe(s(t), 0, 0, 4));
            short.close_slot();
        }
        assert!(!short.observe(s(3), 0, 4, 4), "telemetry back before the window");
        short.close_slot();
        assert_eq!((short.degraded_slots(), short.episodes()), (0, 0));

        // Exactly the window: the third consecutive blind slot engages.
        let mut exact = ShardWatchdog::new(1, 3, 2);
        assert!(!exact.observe(s(1), 0, 0, 4));
        exact.close_slot();
        assert!(!exact.observe(s(2), 0, 0, 4));
        exact.close_slot();
        assert!(exact.observe(s(3), 0, 0, 4), "blind slot {} = window engages", 3);
        exact.close_slot();
        assert_eq!((exact.degraded_slots(), exact.episodes()), (1, 1));
    }

    /// Recovery boundary: with `recovery_slots = r`, the shard stays
    /// capped through healthy slots `1..r-1` and releases *on* the
    /// r-th — not one early, not one late.
    #[test]
    fn shard_recovery_releases_exactly_at_the_threshold_slot() {
        let r = 3;
        let mut w = ShardWatchdog::new(1, 1, r);
        assert!(w.observe(s(0), 0, 0, 2), "single blind slot engages at threshold 1");
        w.close_slot();
        for t in 1..u64::from(r) {
            assert!(w.observe(s(t), 0, 2, 2), "healthy slot {t} is still probation");
            w.close_slot();
        }
        assert!(
            !w.observe(s(u64::from(r)), 0, 2, 2),
            "healthy slot {r} must release, not extend probation"
        );
        w.close_slot();
        assert!(!w.any_engaged());
        // Engaged on the blind slot plus r-1 probation slots.
        assert_eq!(w.degraded_slots(), u64::from(r));
        assert_eq!(w.episodes(), 1);
    }

    #[test]
    fn verify_confirms_matching_readback() {
        let mut v = ActuatorVerify::new(2, 3, SimDuration::from_secs(1));
        v.record(0, PState(4), s(0));
        assert_eq!(v.check(0, PState(4), s(1)), VerifyOutcome::Confirmed);
        assert_eq!(v.check(0, PState(4), s(2)), VerifyOutcome::Idle);
        assert_eq!(v.confirmed(), 1);
    }

    #[test]
    fn verify_retries_with_doubling_backoff_then_gives_up() {
        let mut v = ActuatorVerify::new(1, 2, SimDuration::from_secs(1));
        v.record(0, PState(4), s(0));
        // First retry due at t=1.
        assert_eq!(v.check(0, PState(12), s(1)), VerifyOutcome::Retry(PState(4)));
        // Backoff doubled to 2 s: next retry due at t=3.
        assert_eq!(v.check(0, PState(12), s(2)), VerifyOutcome::Pending);
        assert_eq!(v.check(0, PState(12), s(3)), VerifyOutcome::Retry(PState(4)));
        // Budget exhausted: due at t=7.
        assert_eq!(v.check(0, PState(12), s(7)), VerifyOutcome::GaveUp(PState(4)));
        assert_eq!(v.check(0, PState(12), s(8)), VerifyOutcome::Idle);
        assert_eq!((v.retries(), v.giveups()), (2, 1));
    }

    #[test]
    fn verify_clear_drops_intent() {
        let mut v = ActuatorVerify::new(1, 3, SimDuration::from_secs(1));
        v.record(0, PState(4), s(0));
        v.clear(0);
        assert_eq!(v.check(0, PState(12), s(5)), VerifyOutcome::Idle);
    }
}
