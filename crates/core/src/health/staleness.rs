//! Last-good-value hold with a staleness window — the one shared
//! implementation of "bridge a short telemetry gap with the previous
//! sample, distrust it past a deadline".
//!
//! Consumers:
//!
//! * [`TelemetryHealth`](super::TelemetryHealth) holds one `f64` reading
//!   per node and charges nameplate power past the window;
//! * the `liveplane` daemon holds one whole
//!   [`PlaneSample`](crate::PlaneSample) per telemetry source and
//!   bridges a missed deadline with it, skipping the control pass once
//!   the hold expires.
//!
//! Both must expire at exactly the same age — `now - held <= window`
//! stays usable, one microsecond older does not — or the sim and the
//! live daemon would disagree about which slots are blind.

use simcore::{SimDuration, SimTime};

/// Per-slot last-good hold: `n` independently-held values that each
/// expire `window` after the update that stored them.
#[derive(Debug, Clone)]
pub struct LastGood<T> {
    held: Vec<Option<(SimTime, T)>>,
    window: SimDuration,
}

impl<T> LastGood<T> {
    /// `n` empty holds expiring `window` after their last update.
    pub fn new(n: usize, window: SimDuration) -> Self {
        let mut held = Vec::with_capacity(n);
        held.resize_with(n, || None);
        LastGood { held, window }
    }

    /// The staleness window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Number of holds.
    pub fn len(&self) -> usize {
        self.held.len()
    }

    /// Whether there are no holds at all.
    pub fn is_empty(&self) -> bool {
        self.held.is_empty()
    }

    /// Store a fresh value for hold `i`, restarting its expiry clock.
    pub fn update(&mut self, i: usize, now: SimTime, value: T) {
        self.held[i] = Some((now, value));
    }

    /// The held value for `i` if it is still within the window at
    /// `now` (boundary inclusive: a value exactly `window` old is still
    /// usable). `None` when never set, forgotten, or expired.
    pub fn get(&self, i: usize, now: SimTime) -> Option<&T> {
        match &self.held[i] {
            Some((t, v)) if now.since(*t) <= self.window => Some(v),
            _ => None,
        }
    }

    /// Drop hold `i` immediately (the source was replaced; its next
    /// value comes from fresh hardware).
    pub fn forget(&mut self, i: usize) {
        self.held[i] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    #[test]
    fn expires_exactly_past_the_window() {
        let mut h: LastGood<f64> = LastGood::new(1, SimDuration::from_secs(5));
        assert!(h.get(0, s(0)).is_none(), "never set");
        h.update(0, s(10), 70.0);
        // Exactly at the window boundary: still usable.
        assert_eq!(h.get(0, s(15)), Some(&70.0));
        // One microsecond past: expired.
        let past = s(15) + SimDuration::from_micros(1);
        assert!(h.get(0, past).is_none());
    }

    #[test]
    fn update_restarts_the_clock_and_forget_drops_immediately() {
        let mut h: LastGood<u32> = LastGood::new(2, SimDuration::from_secs(2));
        h.update(0, s(0), 1);
        h.update(0, s(3), 2);
        assert_eq!(h.get(0, s(5)), Some(&2), "refreshed hold uses the new timestamp");
        h.forget(0);
        assert!(h.get(0, s(5)).is_none());
        assert!(h.get(1, s(0)).is_none());
        assert_eq!(h.len(), 2);
        assert!(!h.is_empty());
    }
}
