//! The request-control model of Section 5.3 — Equation (1):
//!
//! ```text
//!     Σᵢ qᵢ · Pᵢ(f) ≤ B₀
//! ```
//!
//! The incoming flow is divided into `n` power-usage levels (classes);
//! `qᵢ` requests of class `i` each draw `Pᵢ(f)` watts at throttle level
//! `f`. The scheduler picks a throttle level per class so aggregate power
//! fits the budget `B₀` while losing as little performance as possible.
//!
//! We solve with marginal-utility greedy: starting from full speed,
//! repeatedly take the single class-step-down with the best
//! watts-saved-per-slowdown-incurred until the budget holds. For the
//! monotone, diminishing-returns power curves produced by DVFS this is
//! the classic near-optimal heuristic, and it is exact when classes have
//! proportional curves.

use serde::{Deserialize, Serialize};

/// One power-usage class of the incoming flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestClass {
    /// Number of concurrent requests in this class (`qᵢ`).
    pub count: f64,
    /// Per-request power at each throttle level, watts — `Pᵢ(f)`,
    /// indexed slowest level first, **strictly positive length**, and
    /// non-decreasing (more frequency, more power).
    pub power_per_level_w: Vec<f64>,
    /// Relative per-request slowdown at each level (1.0 = full speed,
    /// larger = slower), same length, non-increasing in level index.
    pub slowdown_per_level: Vec<f64>,
}

impl RequestClass {
    fn validate(&self) {
        assert!(self.count >= 0.0);
        assert!(!self.power_per_level_w.is_empty());
        assert_eq!(self.power_per_level_w.len(), self.slowdown_per_level.len());
        for w in self.power_per_level_w.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "power must rise with level");
        }
        for s in self.slowdown_per_level.windows(2) {
            assert!(s[0] >= s[1] - 1e-12, "slowdown must fall with level");
        }
    }

    fn top(&self) -> usize {
        self.power_per_level_w.len() - 1
    }
}

/// The solved assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThrottleAssignment {
    /// Chosen level per class (index into each class's level arrays).
    pub levels: Vec<usize>,
    /// Aggregate power at the assignment, watts.
    pub total_power_w: f64,
    /// Count-weighted total slowdown (cost being minimized).
    pub total_slowdown: f64,
    /// True when even the all-floor assignment exceeds the budget.
    pub infeasible: bool,
}

/// Solve Eq (1) for the given classes and budget.
pub fn solve(budget_w: f64, classes: &[RequestClass]) -> ThrottleAssignment {
    assert!(budget_w >= 0.0);
    for c in classes {
        c.validate();
    }
    let mut levels: Vec<usize> = classes.iter().map(|c| c.top()).collect();
    let power_at = |levels: &[usize]| -> f64 {
        classes
            .iter()
            .zip(levels)
            .map(|(c, &l)| c.count * c.power_per_level_w[l])
            .sum()
    };
    let mut total = power_at(&levels);

    while total > budget_w + 1e-9 {
        // Best single step-down by Δpower / Δslowdown.
        let mut best: Option<(usize, f64, f64)> = None; // (class, dpower, dslow)
        for (i, c) in classes.iter().enumerate() {
            if levels[i] == 0 || c.count == 0.0 {
                continue;
            }
            let l = levels[i];
            let dpower = c.count * (c.power_per_level_w[l] - c.power_per_level_w[l - 1]);
            let dslow = c.count * (c.slowdown_per_level[l - 1] - c.slowdown_per_level[l]);
            if dpower <= 0.0 {
                continue; // no savings from this step; skip
            }
            let ratio = dpower / dslow.max(1e-12);
            let better = match best {
                None => true,
                Some((_, bp, bs)) => ratio > bp / bs.max(1e-12),
            };
            if better {
                best = Some((i, dpower, dslow));
            }
        }
        match best {
            Some((i, dpower, _)) => {
                levels[i] -= 1;
                total -= dpower;
            }
            None => break, // every class floored (or savings exhausted)
        }
    }

    let total_slowdown = classes
        .iter()
        .zip(&levels)
        .map(|(c, &l)| c.count * c.slowdown_per_level[l])
        .sum();
    ThrottleAssignment {
        infeasible: total > budget_w + 1e-9,
        total_power_w: total,
        total_slowdown,
        levels,
    }
}

/// Build the level arrays for a class from the DVFS ladder and the
/// class's power character — the glue between Eq (1) and the P-state
/// table.
pub fn class_from_profile(
    count: f64,
    table: &powercap::PStateTable,
    headroom_w: f64,
    intensity: f64,
    gamma: f64,
    beta: f64,
) -> RequestClass {
    let mut power = Vec::with_capacity(table.len());
    let mut slow = Vec::with_capacity(table.len());
    for p in table.states() {
        let dvfs = gamma * table.rel_dyn_power(p) + (1.0 - gamma);
        power.push(intensity * dvfs * headroom_w);
        let rate = (1.0 - beta) + beta * table.rel_freq(p);
        slow.push(1.0 / rate);
    }
    RequestClass {
        count,
        power_per_level_w: power,
        slowdown_per_level: slow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powercap::PStateTable;
    use proptest::prelude::*;

    fn cls(count: f64, intensity: f64, gamma: f64, beta: f64) -> RequestClass {
        class_from_profile(
            count,
            &PStateTable::paper_default(),
            60.0,
            intensity,
            gamma,
            beta,
        )
    }

    #[test]
    fn generous_budget_keeps_full_speed() {
        let classes = vec![cls(2.0, 0.9, 0.9, 0.9), cls(3.0, 0.4, 0.5, 0.3)];
        let a = solve(1000.0, &classes);
        assert!(!a.infeasible);
        assert_eq!(a.levels, vec![12, 12]);
        assert!((a.total_slowdown - 5.0).abs() < 1e-9);
    }

    #[test]
    fn tight_budget_throttles_cheapest_first() {
        // Class 0: high γ, low β — throttling saves lots of power at
        // little performance cost. Class 1: low γ, high β — saves little
        // and hurts a lot. The greedy must spend class 0 first.
        let classes = vec![cls(2.0, 0.95, 0.9, 0.3), cls(2.0, 0.95, 0.2, 0.95)];
        let full = solve(1e9, &classes).total_power_w;
        let a = solve(full * 0.85, &classes);
        assert!(!a.infeasible);
        assert!(a.total_power_w <= full * 0.85 + 1e-9);
        // The CPU-bound class absorbed the throttling.
        assert!(
            a.levels[0] < a.levels[1],
            "levels={:?} should throttle class 0 deeper",
            a.levels
        );
    }

    #[test]
    fn infeasible_flagged_at_floor() {
        let classes = vec![cls(10.0, 1.0, 0.5, 0.9)];
        let a = solve(1.0, &classes);
        assert!(a.infeasible);
        assert_eq!(a.levels, vec![0]);
        assert!(a.total_power_w > 1.0);
    }

    #[test]
    fn empty_class_ignored() {
        let classes = vec![cls(0.0, 1.0, 0.9, 0.9), cls(1.0, 0.5, 0.5, 0.5)];
        let a = solve(10.0, &classes);
        // Zero-count class never selected for stepping; solution honors
        // the budget through the non-empty class.
        assert!(a.total_power_w <= 10.0 + 1e-9 || a.infeasible);
    }

    #[test]
    fn budget_zero_floors_everything_with_positive_power() {
        let classes = vec![cls(1.0, 0.9, 0.9, 0.9), cls(1.0, 0.8, 0.8, 0.8)];
        let a = solve(0.0, &classes);
        assert!(a.infeasible);
        assert_eq!(a.levels, vec![0, 0]);
    }

    #[test]
    fn class_from_profile_shapes() {
        let c = cls(1.0, 0.9, 0.9, 0.9);
        assert_eq!(c.power_per_level_w.len(), 13);
        // Top level: intensity × headroom.
        assert!((c.power_per_level_w[12] - 54.0).abs() < 1e-9);
        assert!((c.slowdown_per_level[12] - 1.0).abs() < 1e-9);
        // Floor slowdown for β=0.9 at rel_f 0.5: 1/(0.1+0.45) ≈ 1.818.
        assert!((c.slowdown_per_level[0] - 1.0 / 0.55).abs() < 1e-9);
    }

    proptest! {
        /// The solver always returns a feasible assignment or correctly
        /// reports the floor as infeasible, and never *increases* any
        /// class above full speed.
        #[test]
        fn prop_solution_sound(
            budget in 0.0f64..500.0,
            counts in proptest::collection::vec(0.0f64..10.0, 1..5),
        ) {
            let classes: Vec<RequestClass> = counts
                .iter()
                .enumerate()
                .map(|(i, &n)| cls(n, 0.5 + 0.1 * i as f64, 0.3 + 0.15 * i as f64, 0.2 + 0.15 * i as f64))
                .collect();
            let a = solve(budget, &classes);
            prop_assert_eq!(a.levels.len(), classes.len());
            for (l, c) in a.levels.iter().zip(&classes) {
                prop_assert!(*l <= c.top());
            }
            if !a.infeasible {
                prop_assert!(a.total_power_w <= budget + 1e-6);
            } else {
                // Infeasible means every non-empty class reports floor or
                // the greedy exhausted all savings.
                prop_assert!(a.total_power_w > budget);
            }
        }

        /// Tightening the budget never speeds anything up.
        #[test]
        fn prop_monotone_in_budget(b1 in 50.0f64..400.0, delta in 1.0f64..100.0) {
            let classes = vec![cls(3.0, 0.9, 0.8, 0.9), cls(2.0, 0.7, 0.4, 0.4)];
            let loose = solve(b1 + delta, &classes);
            let tight = solve(b1, &classes);
            prop_assert!(tight.total_slowdown >= loose.total_slowdown - 1e-9);
        }
    }
}
