//! A minimal, exact JSON value model with an emitter and a parser.
//!
//! The control-plane trace (see [`crate::control::plane`]) must round-
//! trip **bit-exactly**: a replayed slot has to feed the pipeline the
//! same `f64`s the simulator recorded, or sim/live parity dies in the
//! last ulp. This codec guarantees that by construction:
//!
//! * floats are emitted with Rust's shortest-roundtrip formatting
//!   (`{:?}`), which `str::parse::<f64>` inverts exactly;
//! * integers are emitted as decimal `u64`/`i64` and re-parsed with the
//!   integer parsers, never through an `f64` (no 2^53 cliff);
//! * [`Json::Num`] stores the raw token, so a number is only committed
//!   to a width/signedness when the schema asks for one.
//!
//! It is deliberately small — objects are ordered `Vec`s, there is no
//! zero-copy path — because trace records are written once per control
//! slot, far off any hot path.

use std::fmt::Write as _;

/// A parsed JSON value. Numbers keep their raw source token.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, as its raw literal token.
    Num(String),
    /// A string (already unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Integer value.
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// Float value, shortest-roundtrip formatted.
    pub fn f64(v: f64) -> Json {
        Json::Num(format!("{v:?}"))
    }

    /// String value.
    pub fn str(v: &str) -> Json {
        Json::Str(v.to_string())
    }

    /// `Some(v)` → `f(v)`, `None` → `null`.
    pub fn opt<T>(v: &Option<T>, f: impl Fn(&T) -> Json) -> Json {
        match v {
            Some(x) => f(x),
            None => Json::Null,
        }
    }

    // -- extraction (all return a message naming what was expected) --

    /// This value as a bool.
    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }

    /// This value as a `u64` (exact integer parse).
    pub fn as_u64(&self) -> Result<u64, String> {
        match self {
            Json::Num(raw) => raw.parse::<u64>().map_err(|e| format!("bad u64 {raw:?}: {e}")),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    /// This value as a `usize`.
    pub fn as_usize(&self) -> Result<usize, String> {
        self.as_u64().map(|v| v as usize)
    }

    /// This value as a `u32`.
    pub fn as_u32(&self) -> Result<u32, String> {
        let v = self.as_u64()?;
        u32::try_from(v).map_err(|_| format!("{v} out of u32 range"))
    }

    /// This value as a `u8`.
    pub fn as_u8(&self) -> Result<u8, String> {
        let v = self.as_u64()?;
        u8::try_from(v).map_err(|_| format!("{v} out of u8 range"))
    }

    /// This value as an `f64` (exact shortest-roundtrip inverse).
    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            Json::Num(raw) => raw.parse::<f64>().map_err(|e| format!("bad f64 {raw:?}: {e}")),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    /// This value as an array.
    pub fn as_arr(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("expected array, got {other:?}")),
        }
    }

    /// This value as an object.
    pub fn as_obj(&self) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(fields) => Ok(fields),
            other => Err(format!("expected object, got {other:?}")),
        }
    }

    /// Required object field.
    pub fn get(&self, key: &str) -> Result<&Json, String> {
        for (k, v) in self.as_obj()? {
            if k == key {
                return Ok(v);
            }
        }
        Err(format!("missing field {key:?}"))
    }

    /// Optional object field: absent or `null` both read as `None`.
    pub fn get_opt(&self, key: &str) -> Result<Option<&Json>, String> {
        for (k, v) in self.as_obj()? {
            if k == key {
                return Ok(if matches!(v, Json::Null) { None } else { Some(v) });
            }
        }
        Ok(None)
    }

    // -- rendering --

    /// Render to a compact single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse one JSON document from `src` (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser { src: src.as_bytes(), at: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.src.len() {
            return Err(format!("trailing data at byte {}", p.at));
        }
        Ok(v)
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    src: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.src.get(self.at) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.at).copied()
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.src[self.at..].starts_with(token.as_bytes()) {
            self.at += token.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') if self.eat("null") => Ok(Json::Null),
            Some(b't') if self.eat("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            // `inf`/`NaN` appear only if someone recorded a non-finite
            // float; accept them so the error surfaces at the schema
            // layer ("power was NaN") instead of as a parse failure.
            Some(b'N') if self.eat("NaN") => Ok(Json::Num("NaN".to_string())),
            Some(b'i') if self.eat("inf") => Ok(Json::Num("inf".to_string())),
            Some(_) => self.number(),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
            if self.eat("inf") {
                return Ok(Json::Num("-inf".to_string()));
            }
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-' => self.at += 1,
                _ => break,
            }
        }
        if self.at == start {
            return Err(format!("expected a value at byte {start}"));
        }
        let raw = std::str::from_utf8(&self.src[start..self.at])
            .map_err(|_| "non-utf8 number token".to_string())?;
        // Validate now so extraction errors can't hide a parse error.
        raw.parse::<f64>().map_err(|e| format!("bad number {raw:?}: {e}"))?;
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.at += 1; // opening quote
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            match b {
                b'"' => {
                    self.at += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.at += 1;
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                if !self.eat("\\u") {
                                    return Err("lone high surrogate".to_string());
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".to_string());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad codepoint {code:#x}"))?,
                            );
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.src[self.at..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.at + 4;
        let hex = self
            .src
            .get(self.at..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or("truncated \\u escape")?;
        let v = u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u escape: {e}"))?;
        self.at = end;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.at += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.at += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(format!("expected object key at byte {}", self.at));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(format!("expected ':' at byte {}", self.at));
            }
            self.at += 1;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_exactly() {
        for v in [
            0.0,
            -0.0,
            0.1,
            1.0 / 3.0,
            123_456.789_012_345,
            f64::MIN_POSITIVE,
            f64::MAX,
            1e-300,
            -2.5e17,
        ] {
            let j = Json::f64(v);
            let text = j.render();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} mangled via {text}");
        }
    }

    #[test]
    fn u64_round_trips_exactly_beyond_2_53() {
        let v = u64::MAX - 12345;
        let text = Json::u64(v).render();
        assert_eq!(Json::parse(&text).unwrap().as_u64().unwrap(), v);
    }

    #[test]
    fn nested_document_round_trips() {
        let doc = Json::Obj(vec![
            ("label".to_string(), Json::str("Token@Low-PB \"quoted\" \\ line\nbreak")),
            ("flag".to_string(), Json::Bool(true)),
            ("nothing".to_string(), Json::Null),
            (
                "items".to_string(),
                Json::Arr(vec![Json::u64(1), Json::f64(2.5), Json::Arr(vec![])]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("not json").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = Json::parse("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "Aé😀");
    }

    #[test]
    fn get_opt_treats_null_and_absent_alike() {
        let v = Json::parse("{\"a\":null,\"b\":1}").unwrap();
        assert!(v.get_opt("a").unwrap().is_none());
        assert!(v.get_opt("c").unwrap().is_none());
        assert_eq!(v.get_opt("b").unwrap().unwrap().as_u64().unwrap(), 1);
    }
}
