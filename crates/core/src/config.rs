//! Cluster and experiment configuration.

use netsim::RetryConfig;
use powercap::BudgetLevel;
use profiler::{ProfilerConfig, ProfilerConfigError};
use serde::{Deserialize, Serialize};
use simcore::faults::{FaultConfig, FaultError};
use simcore::SimDuration;

/// Why a cluster configuration was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The simulated cluster needs at least two servers (one suspect +
    /// one innocent under Anti-DOPE).
    TooFewServers {
        /// Configured server count.
        servers: usize,
    },
    /// A count parameter that must be at least one was zero.
    ZeroCount {
        /// Parameter name.
        what: &'static str,
    },
    /// A duration parameter that must be non-zero was zero.
    ZeroDuration {
        /// Parameter name.
        what: &'static str,
    },
    /// The suspect pool must leave at least one innocent server.
    SuspectPool {
        /// Configured suspect pool size.
        pool: usize,
        /// Configured server count.
        servers: usize,
    },
    /// A suspicion threshold outside `[0, 1]`.
    Threshold {
        /// Offending value.
        value: f64,
    },
    /// A control-plane parameter outside its valid range.
    ControlPlane {
        /// Parameter name.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The fault-injection plan was invalid.
    Fault(FaultError),
    /// The online-profiler configuration was invalid.
    Profiler(ProfilerConfigError),
    /// The shard count must stay within `1..=servers` so every shard
    /// owns at least one node.
    Shards {
        /// Configured shard count.
        shards: usize,
        /// Configured server count.
        servers: usize,
    },
    /// The retry / circuit-breaker policy was invalid (the wrapped
    /// error names the offending knob and its value).
    Retry(netsim::ConfigError),
    /// The staged admission-pipeline configuration was invalid (the
    /// wrapped error names the offending stage parameter).
    Admission(netsim::ConfigError),
    /// A power-topology level count broke the nesting invariant
    /// `rows ≤ pdus ≤ racks ≤ servers` (every level needs at least one
    /// child per parent feed).
    Topology {
        /// Level name.
        what: &'static str,
        /// Configured count.
        count: usize,
        /// Largest count the next level up permits.
        max: usize,
    },
    /// A control-plane trace was written by an incompatible schema
    /// version (see [`crate::control::plane::TRACE_SCHEMA_VERSION`]).
    TraceSchema {
        /// Version stamped in the trace header.
        found: u32,
        /// Version this build can read.
        supported: u32,
    },
    /// A control-plane trace stream was structurally invalid (missing
    /// header/footer, unparseable line, I/O failure).
    TraceFormat {
        /// What was wrong, with the offending line when known.
        what: String,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::TooFewServers { servers } => {
                write!(f, "need at least 2 servers, got {servers}")
            }
            ConfigError::ZeroCount { what } => write!(f, "{what} must be at least 1"),
            ConfigError::ZeroDuration { what } => write!(f, "{what} must be non-zero"),
            ConfigError::SuspectPool { pool, servers } => write!(
                f,
                "suspect pool of {pool} must leave innocent servers (cluster has {servers})"
            ),
            ConfigError::Threshold { value } => {
                write!(f, "suspect threshold {value} is outside [0, 1]")
            }
            ConfigError::ControlPlane { what, value } => {
                write!(f, "control plane: {what} = {value} is out of range")
            }
            ConfigError::Fault(e) => write!(f, "fault plan: {e}"),
            ConfigError::Profiler(e) => write!(f, "profiler: {e}"),
            ConfigError::Shards { shards, servers } => write!(
                f,
                "shard count {shards} must be in 1..={servers} (one node per shard minimum)"
            ),
            ConfigError::Retry(e) => write!(f, "retry policy: {e}"),
            ConfigError::Admission(e) => write!(f, "admission pipeline: {e}"),
            ConfigError::Topology { what, count, max } => write!(
                f,
                "topology: {what} = {count} must be in 1..={max} (levels nest: rows ≤ pdus ≤ racks ≤ servers)"
            ),
            ConfigError::TraceSchema { found, supported } => write!(
                f,
                "trace schema version {found} is not readable by this build (supports {supported})"
            ),
            ConfigError::TraceFormat { what } => write!(f, "malformed trace: {what}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<FaultError> for ConfigError {
    fn from(e: FaultError) -> Self {
        ConfigError::Fault(e)
    }
}

impl From<ProfilerConfigError> for ConfigError {
    fn from(e: ProfilerConfigError) -> Self {
        ConfigError::Profiler(e)
    }
}

impl From<netsim::ConfigError> for ConfigError {
    fn from(e: netsim::ConfigError) -> Self {
        ConfigError::Retry(e)
    }
}

/// Which power-management scheme runs the cluster (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// No power management at all (reference / vulnerability studies).
    None,
    /// DVFS-only uniform capping.
    Capping,
    /// UPS-first peak shaving, DVFS when the battery empties.
    Shaving,
    /// Power-denominated token bucket at the NLB.
    Token,
    /// The paper's proposal: PDF + RPM.
    AntiDope,
    /// Ablation: PDF isolation without any power control.
    PdfOnly,
    /// Ablation: RPM/DPM control without PDF isolation.
    RpmOnly,
}

impl SchemeKind {
    /// The four evaluated schemes, Table 2 order.
    pub const EVALUATED: [SchemeKind; 4] = [
        SchemeKind::Capping,
        SchemeKind::Shaving,
        SchemeKind::Token,
        SchemeKind::AntiDope,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::None => "None",
            SchemeKind::Capping => "Capping",
            SchemeKind::Shaving => "Shaving",
            SchemeKind::Token => "Token",
            SchemeKind::AntiDope => "Anti-DOPE",
            SchemeKind::PdfOnly => "PDF-only",
            SchemeKind::RpmOnly => "RPM-only",
        }
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tunables of the staged control plane ([`crate::control`]): watchdog
/// engagement/recovery, telemetry staleness, and the actuator retry
/// budget. Defaults equal the previously hard-coded deployment values,
/// so a default config is behavior-identical to the pre-config build.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlPlaneConfig {
    /// Telemetry coverage (fraction of fresh sensors) below which the
    /// watchdog distrusts the scheme's plan and applies the uniform
    /// safe cap. Must lie in `[0, 1]`.
    pub watchdog_coverage_floor: f64,
    /// Consecutive healthy slots before the watchdog disengages
    /// (recovery hysteresis). Must be at least 1.
    pub watchdog_recovery_slots: u32,
    /// Control slots a held last-good telemetry sample stays usable
    /// before the node is charged its nameplate. Must be at least 1.
    pub telemetry_staleness_slots: u64,
    /// Read-back retries before an actuation is abandoned. Must be at
    /// least 1.
    pub actuator_max_retries: u8,
}

impl Default for ControlPlaneConfig {
    fn default() -> Self {
        ControlPlaneConfig {
            watchdog_coverage_floor: 0.5,
            watchdog_recovery_slots: 3,
            telemetry_staleness_slots: 5,
            actuator_max_retries: 3,
        }
    }
}

impl ControlPlaneConfig {
    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(0.0..=1.0).contains(&self.watchdog_coverage_floor) {
            return Err(ConfigError::ControlPlane {
                what: "watchdog_coverage_floor",
                value: self.watchdog_coverage_floor,
            });
        }
        if self.watchdog_recovery_slots < 1 {
            return Err(ConfigError::ZeroCount {
                what: "watchdog_recovery_slots",
            });
        }
        if self.telemetry_staleness_slots < 1 {
            return Err(ConfigError::ZeroCount {
                what: "telemetry_staleness_slots",
            });
        }
        if self.actuator_max_retries < 1 {
            return Err(ConfigError::ZeroCount {
                what: "actuator_max_retries",
            });
        }
        Ok(())
    }
}

/// Static description of the simulated cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of compute nodes.
    pub servers: usize,
    /// Cores per node.
    pub cores_per_server: usize,
    /// Accept-queue bound per node (requests in flight).
    pub max_inflight: usize,
    /// Nodes reserved for the suspect pool under Anti-DOPE.
    pub suspect_pool_size: usize,
    /// Power provisioning level.
    pub budget: BudgetLevel,
    /// Battery sustain time at full cluster nameplate (paper: 2 min).
    pub battery_sustain: SimDuration,
    /// Power-management control slot (paper: per time-slot, 1 s).
    pub control_slot: SimDuration,
    /// DVFS transition latency.
    pub dvfs_latency: SimDuration,
    /// Enable the perimeter firewall.
    pub firewall: bool,
    /// Firewall per-source threshold, requests/s.
    pub firewall_threshold_rps: f64,
    /// Firewall detection lag.
    pub firewall_lag: SimDuration,
    /// Model the cluster circuit breaker (sustained overload → outage).
    pub breaker: bool,
    /// Breaker rating as a multiple of the supplied budget.
    pub breaker_rating_factor: f64,
    /// Sustained-overload time before the breaker opens.
    pub breaker_trip_delay: SimDuration,
    /// Model node thermals (PROCHOT clamping + critical trip).
    pub thermal: bool,
    /// Fault-injection plan. `None` (the default) disables the fault
    /// layer entirely and the simulation is byte-identical to a build
    /// without it.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub faults: Option<FaultConfig>,
    /// Online power-attribution profiler. `None` (the default) keeps
    /// Anti-DOPE on the offline-profiled suspect list; `Some` switches
    /// its NLB policy to adaptive forwarding driven by runtime
    /// attribution (see the `profiler` crate).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub profiler: Option<ProfilerConfig>,
    /// End-to-end request resilience: NLB-side timeout + bounded retry
    /// with exponential backoff, and per-rack circuit breakers. `None`
    /// (the default) keeps today's oracle failure handling — a crashed
    /// node is instantly taken out of rotation and its in-flight
    /// requests are final drops. `Some` switches to learned failure
    /// handling (the NLB only discovers a dead rack through failed
    /// dispatches) and requires the sharded engine's dataplane, so the
    /// runner routes such configs through it even at `shards: 1`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub retry: Option<RetryConfig>,
    /// Staged admission pipeline in front of the NLB (CAPoW-style
    /// cost-to-serve pricing, firewall ban-duration override). `None`
    /// (the default) keeps the bare firewall perimeter and is
    /// byte-identical to configs written before the field existed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub admission: Option<AdmissionConfig>,
    /// Hierarchical power topology (racks → PDUs → rows → facility)
    /// with per-level oversubscribed budgets, breakers, and the
    /// top-down [`crate::topology::HierarchicalBudget`] allocator.
    /// `None` (the default) keeps the flat single-feed model and is
    /// byte-identical to configs written before the field existed.
    /// Multi-rack topologies (`racks > 1`) require the sharded engine's
    /// layout-independent rack aggregation, so the runner routes such
    /// configs through it even at `shards: 1`; the legacy engine only
    /// accepts the degenerate single-rack tree.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub topology: Option<crate::topology::TopologyConfig>,
    /// Staged-control-plane tunables (watchdog, telemetry staleness,
    /// actuator retries). The default reproduces the previously
    /// hard-coded values.
    #[serde(default)]
    pub control: ControlPlaneConfig,
    /// Dataplane shard count. `1` (the default) runs the original
    /// single-threaded engine; `N > 1` partitions the nodes across `N`
    /// shards that advance a control slot independently and synchronize
    /// at slot boundaries (see [`crate::shard`]).
    #[serde(default = "default_shards")]
    pub shards: usize,
}

/// Serde default for [`ClusterConfig::shards`]: the single-threaded
/// engine, which is byte-identical to configs written before the field
/// existed.
fn default_shards() -> usize {
    1
}

/// Declarative admission-pipeline configuration: which stages run in
/// front of the NLB beyond the base firewall toggle, and perimeter
/// overrides the firewall's `FirewallConfig` defaults don't expose
/// through the flat `ClusterConfig` knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AdmissionConfig {
    /// CAPoW-style cost-to-serve pricing stage after the firewall.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cost_to_serve: Option<netsim::CostToServeConfig>,
    /// Finite firewall ban duration in seconds (default: bans are
    /// permanent for the run). Finite bans are what an ON/OFF burst
    /// envelope exploits: sleep past the ban, burst again.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub firewall_ban_s: Option<f64>,
}

impl AdmissionConfig {
    /// Validate stage parameters with the same typed errors their
    /// runtime constructors raise.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let Some(c) = &self.cost_to_serve {
            netsim::CostToServe::try_new(simcore::SimTime::ZERO, *c)
                .map_err(ConfigError::Admission)?;
        }
        if let Some(ban) = self.firewall_ban_s {
            if ban <= 0.0 || !ban.is_finite() {
                return Err(ConfigError::Admission(netsim::ConfigError::Parameter {
                    component: "AdmissionConfig",
                    field: "firewall_ban_s",
                    value: ban,
                }));
            }
        }
        Ok(())
    }
}

impl ClusterConfig {
    /// The paper's scaled-down testbed: 4 × 100 W nodes (we give each 4
    /// cores), 2-minute battery, 1 s control slots, deflate-style
    /// firewall at 150 req/s with a 5 s lag.
    pub fn paper_rack(budget: BudgetLevel) -> Self {
        ClusterConfig {
            servers: 4,
            cores_per_server: 4,
            max_inflight: 32,
            suspect_pool_size: 1,
            budget,
            battery_sustain: SimDuration::from_mins(2),
            control_slot: SimDuration::from_secs(1),
            dvfs_latency: SimDuration::from_millis(10),
            firewall: true,
            firewall_threshold_rps: 150.0,
            firewall_lag: SimDuration::from_secs(5),
            breaker: false,
            breaker_rating_factor: 1.10,
            breaker_trip_delay: SimDuration::from_secs(30),
            thermal: false,
            faults: None,
            profiler: None,
            retry: None,
            admission: None,
            topology: None,
            control: ControlPlaneConfig::default(),
            shards: default_shards(),
        }
    }

    /// A larger cluster for scaling studies (16 nodes, 2 suspect).
    pub fn scaled(budget: BudgetLevel) -> Self {
        ClusterConfig {
            servers: 16,
            cores_per_server: 4,
            max_inflight: 32,
            suspect_pool_size: 2,
            ..Self::paper_rack(budget)
        }
    }

    /// Aggregate nameplate of the cluster in watts (100 W nodes).
    pub fn aggregate_nameplate_w(&self) -> f64 {
        self.servers as f64 * 100.0
    }

    /// The wattage budget at this config's provisioning level.
    pub fn supply_w(&self) -> f64 {
        self.aggregate_nameplate_w() * self.budget.fraction()
    }

    /// Validate internal consistency (called by the simulator before any
    /// component is built).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.servers < 2 {
            return Err(ConfigError::TooFewServers {
                servers: self.servers,
            });
        }
        if self.cores_per_server < 1 {
            return Err(ConfigError::ZeroCount {
                what: "cores_per_server",
            });
        }
        if self.max_inflight < 1 {
            return Err(ConfigError::ZeroCount {
                what: "max_inflight",
            });
        }
        if self.suspect_pool_size < 1 || self.suspect_pool_size >= self.servers {
            return Err(ConfigError::SuspectPool {
                pool: self.suspect_pool_size,
                servers: self.servers,
            });
        }
        if self.control_slot.is_zero() {
            return Err(ConfigError::ZeroDuration {
                what: "control_slot",
            });
        }
        if self.battery_sustain.is_zero() {
            return Err(ConfigError::ZeroDuration {
                what: "battery_sustain",
            });
        }
        if self.shards < 1 || self.shards > self.servers {
            return Err(ConfigError::Shards {
                shards: self.shards,
                servers: self.servers,
            });
        }
        self.control.validate()?;
        if let Some(f) = &self.faults {
            f.validate(self.servers)?;
        }
        if let Some(p) = &self.profiler {
            p.validate()?;
        }
        if let Some(r) = &self.retry {
            r.validate()?;
        }
        if let Some(a) = &self.admission {
            a.validate()?;
        }
        if let Some(t) = &self.topology {
            t.validate(self.servers)?;
        }
        Ok(())
    }

    /// This config's power topology, or the degenerate single-rack tree
    /// when none is configured.
    pub fn effective_racks(&self) -> usize {
        self.topology.as_ref().map_or(1, |t| t.racks)
    }

    /// Build the staged admission pipeline this config describes: the
    /// flat firewall knobs fill the front slot (with the admission
    /// config's ban-duration override applied), and the configured
    /// stages follow. Both engines construct their perimeter through
    /// this one method so a given config admits identically everywhere.
    pub fn build_admission(&self, start: simcore::SimTime) -> netsim::AdmissionPipeline {
        let mut pipeline = netsim::AdmissionPipeline::new();
        if self.firewall {
            let ban_duration = self
                .admission
                .as_ref()
                .and_then(|a| a.firewall_ban_s)
                .map(SimDuration::from_secs_f64);
            pipeline = pipeline.with_firewall(netsim::Firewall::new(
                start,
                netsim::FirewallConfig {
                    threshold_rps: self.firewall_threshold_rps,
                    detection_lag: self.firewall_lag,
                    ban_duration,
                    ..netsim::FirewallConfig::default()
                },
            ));
        }
        if let Some(cost) = self.admission.as_ref().and_then(|a| a.cost_to_serve) {
            let stage = netsim::CostToServe::try_new(start, cost)
                .expect("admission config checked by ClusterConfig::validate");
            pipeline = pipeline.with_stage(Box::new(stage));
        }
        pipeline
    }
}

/// A complete experiment: cluster + scheme + duration + seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Cluster description.
    pub cluster: ClusterConfig,
    /// Scheme under test.
    pub scheme: SchemeKind,
    /// Simulated duration (paper windows: 600 s).
    pub duration: SimDuration,
    /// Master seed for all randomness.
    pub seed: u64,
    /// Label used in reports.
    pub label: String,
}

impl ExperimentConfig {
    /// The paper's standard 10-minute observation window.
    pub fn paper_window(cluster: ClusterConfig, scheme: SchemeKind, seed: u64) -> Self {
        let label = format!("{}@{}", scheme.name(), cluster.budget.name());
        ExperimentConfig {
            cluster,
            scheme,
            duration: SimDuration::from_secs(600),
            seed,
            label,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rack_matches_testbed() {
        let c = ClusterConfig::paper_rack(BudgetLevel::Medium);
        assert_eq!(c.servers, 4);
        assert_eq!(c.aggregate_nameplate_w(), 400.0);
        assert!((c.supply_w() - 340.0).abs() < 1e-9);
        assert_eq!(c.firewall_threshold_rps, 150.0);
        assert!(c.faults.is_none());
        c.validate().unwrap();
    }

    #[test]
    fn scheme_names() {
        assert_eq!(SchemeKind::AntiDope.name(), "Anti-DOPE");
        assert_eq!(SchemeKind::EVALUATED.len(), 4);
        assert_eq!(format!("{}", SchemeKind::Capping), "Capping");
    }

    #[test]
    fn validate_rejects_all_suspect() {
        let mut c = ClusterConfig::paper_rack(BudgetLevel::Normal);
        c.suspect_pool_size = 4;
        assert_eq!(
            c.validate().unwrap_err(),
            ConfigError::SuspectPool {
                pool: 4,
                servers: 4
            }
        );
    }

    #[test]
    fn validate_rejects_bad_fault_plan() {
        let mut c = ClusterConfig::paper_rack(BudgetLevel::Normal);
        c.faults = Some(FaultConfig {
            sensor_dropout_p: 1.5,
            ..FaultConfig::default()
        });
        assert!(matches!(
            c.validate().unwrap_err(),
            ConfigError::Fault(FaultError::Probability { .. })
        ));
        // A clean plan passes and round-trips through serde; a config
        // without faults serializes without the field at all.
        c.faults = Some(FaultConfig::default());
        c.validate().unwrap();
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("faults"));
        c.faults = None;
        let json = serde_json::to_string(&c).unwrap();
        assert!(!json.contains("faults"));
    }

    #[test]
    fn validate_rejects_bad_profiler_config() {
        let mut c = ClusterConfig::paper_rack(BudgetLevel::Normal);
        c.profiler = Some(ProfilerConfig {
            threshold: 2.0,
            ..ProfilerConfig::default()
        });
        assert!(matches!(
            c.validate().unwrap_err(),
            ConfigError::Profiler(ProfilerConfigError::Threshold { .. })
        ));
        c.profiler = Some(ProfilerConfig::default());
        c.validate().unwrap();
    }

    #[test]
    fn control_plane_defaults_match_legacy_constants() {
        let c = ControlPlaneConfig::default();
        assert_eq!(c.watchdog_coverage_floor, 0.5);
        assert_eq!(c.watchdog_recovery_slots, 3);
        assert_eq!(c.telemetry_staleness_slots, 5);
        assert_eq!(c.actuator_max_retries, 3);
        c.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_control_plane() {
        let mut c = ClusterConfig::paper_rack(BudgetLevel::Normal);
        c.control.watchdog_coverage_floor = 1.5;
        assert_eq!(
            c.validate().unwrap_err(),
            ConfigError::ControlPlane {
                what: "watchdog_coverage_floor",
                value: 1.5
            }
        );
        c.control.watchdog_coverage_floor = 0.5;
        c.control.watchdog_recovery_slots = 0;
        assert_eq!(
            c.validate().unwrap_err(),
            ConfigError::ZeroCount {
                what: "watchdog_recovery_slots"
            }
        );
        c.control.watchdog_recovery_slots = 3;
        c.control.telemetry_staleness_slots = 0;
        assert_eq!(
            c.validate().unwrap_err(),
            ConfigError::ZeroCount {
                what: "telemetry_staleness_slots"
            }
        );
        c.control.telemetry_staleness_slots = 5;
        c.control.actuator_max_retries = 0;
        assert_eq!(
            c.validate().unwrap_err(),
            ConfigError::ZeroCount {
                what: "actuator_max_retries"
            }
        );
    }

    #[test]
    fn validate_topology_nesting() {
        use crate::topology::TopologyConfig;
        let mut c = ClusterConfig::scaled(BudgetLevel::Medium);
        assert!(c.topology.is_none(), "default is the flat model");
        assert_eq!(c.effective_racks(), 1);
        c.topology = Some(TopologyConfig::with_racks(4, 2));
        c.validate().unwrap();
        assert_eq!(c.effective_racks(), 4);
        // More racks than servers.
        c.topology = Some(TopologyConfig::with_racks(17, 1));
        assert!(matches!(
            c.validate().unwrap_err(),
            ConfigError::Topology { what: "racks", count: 17, max: 16 }
        ));
        // More PDUs than racks.
        c.topology = Some(TopologyConfig::with_racks(2, 3));
        assert!(matches!(
            c.validate().unwrap_err(),
            ConfigError::Topology { what: "pdus", count: 3, max: 2 }
        ));
        // A configured topology still serializes (the None case is
        // covered by the skip attribute, same pattern as `faults`).
        c.topology = Some(TopologyConfig::default());
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("topology"));
    }

    #[test]
    fn experiment_label() {
        let e = ExperimentConfig::paper_window(
            ClusterConfig::paper_rack(BudgetLevel::Low),
            SchemeKind::Token,
            1,
        );
        assert_eq!(e.label, "Token@Low-PB");
        assert_eq!(e.duration.as_secs(), 600);
    }

    #[test]
    fn scaled_cluster() {
        let c = ClusterConfig::scaled(BudgetLevel::High);
        assert_eq!(c.servers, 16);
        assert_eq!(c.suspect_pool_size, 2);
        c.validate().unwrap();
    }

    #[test]
    fn validate_shard_bounds() {
        let mut c = ClusterConfig::scaled(BudgetLevel::Medium);
        assert_eq!(c.shards, 1, "default is the single-threaded engine");
        for shards in [1, 2, 4, 16] {
            c.shards = shards;
            c.validate().unwrap();
        }
        c.shards = 0;
        assert!(matches!(
            c.validate().unwrap_err(),
            ConfigError::Shards { shards: 0, servers: 16 }
        ));
        c.shards = 17;
        assert!(matches!(
            c.validate().unwrap_err(),
            ConfigError::Shards { shards: 17, servers: 16 }
        ));
    }

    #[test]
    fn validate_accepts_sharded_faults() {
        // Per-shard fault RNG streams made the old `shards > 1 xor
        // faults` restriction obsolete: the combination is first-class.
        let mut c = ClusterConfig::scaled(BudgetLevel::Medium);
        c.shards = 4;
        c.faults = Some(FaultConfig::default());
        c.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_retry_policy() {
        let mut c = ClusterConfig::scaled(BudgetLevel::Medium);
        c.retry = Some(RetryConfig {
            max_attempts: 0,
            ..RetryConfig::default()
        });
        let err = c.validate().unwrap_err();
        assert!(matches!(err, ConfigError::Retry(_)));
        let msg = format!("{err}");
        assert!(
            msg.contains("retry policy") && msg.contains("max_attempts"),
            "message must name the knob: {msg}"
        );
        c.retry = Some(RetryConfig {
            backoff_base: SimDuration::from_secs(3),
            backoff_cap: SimDuration::from_secs(1),
            ..RetryConfig::default()
        });
        assert!(format!("{}", c.validate().unwrap_err()).contains("backoff_cap"));
        // A valid policy passes, as does a config with no policy.
        c.retry = Some(RetryConfig::default());
        c.validate().unwrap();
        c.retry = None;
        c.validate().unwrap();
    }
}
