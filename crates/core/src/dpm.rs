//! DPM — Differentiated Power Management (Algorithm 1).
//!
//! Runs at the beginning of each time-slot when the monitor reports a
//! power emergency:
//!
//! 1. Compute the mismatch `ΔP = P_demand − P_supply`.
//! 2. Batteries bridge the transition ("the transformation media for
//!    initiating differentiated power throttling") — the *scheme* layer
//!    commands the discharge; this module reports how much bridging is
//!    needed.
//! 3. Search the throttling list `TL(p, q)`: per-node P-states for the
//!    *suspect* nodes that bring predicted demand inside the supply,
//!    preferring the step-downs with the highest watts-saved per
//!    performance-lost (the "optimal throttling" search of lines 8–16).
//! 4. Spill to innocent nodes (uniformly, via the same marginal greedy)
//!    only if the suspect pool alone cannot close the gap.

use powercap::pstate::PState;
use powercap::server_power::ServerPowerModel;
use serde::{Deserialize, Serialize};

/// Per-node input to the throttling search.
#[derive(Debug, Clone, Copy)]
pub struct NodeState {
    /// Busy-core fraction.
    pub utilization: f64,
    /// Resident-mix power intensity.
    pub intensity: f64,
    /// Resident-mix DVFS power sensitivity.
    pub gamma: f64,
    /// Resident-mix CPU-boundedness (for the performance cost).
    pub beta: f64,
    /// The node's current commanded P-state.
    pub current: PState,
    /// Whether this node is in the suspect pool.
    pub suspect: bool,
}

/// The throttling list: one target P-state per node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThrottlePlan {
    /// Target state per node (same order as the input).
    pub states: Vec<PState>,
    /// Predicted aggregate power at the plan, watts.
    pub predicted_w: f64,
    /// Watts the battery must bridge because even the full plan cannot
    /// reach the budget (0 when the plan suffices).
    pub battery_bridge_w: f64,
    /// True if innocent nodes had to be throttled too.
    pub spilled_to_innocent: bool,
}

impl ThrottlePlan {
    fn predicted(model: &ServerPowerModel, nodes: &[NodeState], states: &[PState]) -> f64 {
        nodes
            .iter()
            .zip(states)
            .map(|(n, &p)| model.power(p, n.utilization, n.intensity, n.gamma))
            .sum()
    }
}

/// Worst-case planning floor for utilization: an emergency plan must hold
/// even if a briefly-idle suspect node refills within the slot.
pub const PLANNING_MIN_UTIL: f64 = 0.9;

/// Solve Algorithm 1's throttling search.
///
/// `budget_w` is the supply the plan must fit under. Node utilizations
/// below [`PLANNING_MIN_UTIL`] are planned at that floor for suspect
/// nodes (attack traffic refills them within the slot); innocent nodes
/// are planned at their observed utilization.
pub fn solve(model: &ServerPowerModel, budget_w: f64, nodes: &[NodeState]) -> ThrottlePlan {
    assert!(budget_w >= 0.0);
    // Planning copies with the utilization floor applied to suspects.
    let planned: Vec<NodeState> = nodes
        .iter()
        .map(|n| {
            let mut m = *n;
            if n.suspect {
                m.utilization = n.utilization.max(PLANNING_MIN_UTIL);
            }
            m
        })
        .collect();

    // Start from nominal frequency everywhere: the plan replaces, not
    // extends, previous throttling (recovery is implicit when the attack
    // stops).
    let top = model.table.max_state();
    let mut states = vec![top; planned.len()];
    let mut total = ThrottlePlan::predicted(model, &planned, &states);
    let mut spilled = false;

    // Pass 1: suspect nodes only; Pass 2: everyone.
    for pass in 0..2 {
        while total > budget_w + 1e-9 {
            let mut best: Option<(usize, f64, f64)> = None;
            for (i, n) in planned.iter().enumerate() {
                if pass == 0 && !n.suspect {
                    continue;
                }
                if states[i] == model.table.min_state() {
                    continue;
                }
                let down = states[i].lower();
                let now_w = model.power(states[i], n.utilization, n.intensity, n.gamma);
                let then_w = model.power(down, n.utilization, n.intensity, n.gamma);
                let dpower = now_w - then_w;
                if dpower <= 1e-12 {
                    continue;
                }
                // Performance cost: loss of service rate for the resident
                // mix, weighted by utilization (idle capacity is free).
                let rate = |p: PState| (1.0 - n.beta) + n.beta * model.table.rel_freq(p);
                let dperf = n.utilization.max(0.05) * (rate(states[i]) - rate(down));
                let ratio = dpower / dperf.max(1e-9);
                let better = match best {
                    None => true,
                    Some((_, bestratio, _)) => ratio > bestratio,
                };
                if better {
                    best = Some((i, ratio, dpower));
                }
            }
            match best {
                Some((i, _, dpower)) => {
                    states[i] = states[i].lower();
                    total -= dpower;
                }
                None => break,
            }
        }
        if total <= budget_w + 1e-9 {
            break;
        }
        if pass == 0 {
            spilled = true; // about to touch innocents
        }
    }

    // Recompute exactly (greedy tracked deltas).
    let predicted = ThrottlePlan::predicted(model, &planned, &states);
    ThrottlePlan {
        battery_bridge_w: (predicted - budget_w).max(0.0),
        spilled_to_innocent: spilled && states
            .iter()
            .zip(&planned)
            .any(|(s, n)| !n.suspect && *s != top),
        predicted_w: predicted,
        states,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> ServerPowerModel {
        ServerPowerModel::paper_default()
    }

    fn node(util: f64, suspect: bool) -> NodeState {
        NodeState {
            utilization: util,
            intensity: 0.95,
            gamma: 0.85,
            beta: 0.9,
            current: PState(12),
            suspect,
        }
    }

    /// The paper rack: 3 innocent + 1 suspect, all busy.
    fn rack() -> Vec<NodeState> {
        vec![
            node(0.6, false),
            node(0.6, false),
            node(0.6, false),
            node(1.0, true),
        ]
    }

    #[test]
    fn no_emergency_keeps_everyone_nominal() {
        let plan = solve(&model(), 1000.0, &rack());
        assert!(plan.states.iter().all(|&s| s == PState(12)));
        assert_eq!(plan.battery_bridge_w, 0.0);
        assert!(!plan.spilled_to_innocent);
    }

    #[test]
    fn moderate_emergency_throttles_only_suspects() {
        let m = model();
        let nodes = rack();
        let full = ThrottlePlan::predicted(
            &m,
            &nodes
                .iter()
                .map(|n| {
                    let mut c = *n;
                    if c.suspect {
                        c.utilization = 1.0;
                    }
                    c
                })
                .collect::<Vec<_>>(),
            &[PState(12); 4],
        );
        // Shave 20 W: well within what one suspect node can give up.
        let plan = solve(&m, full - 20.0, &nodes);
        assert!(plan.predicted_w <= full - 20.0 + 1e-9);
        assert!(!plan.spilled_to_innocent);
        for (i, s) in plan.states.iter().enumerate() {
            if i < 3 {
                assert_eq!(*s, PState(12), "innocent node {i} was throttled");
            } else {
                assert!(*s < PState(12), "suspect node kept nominal");
            }
        }
        assert_eq!(plan.battery_bridge_w, 0.0);
    }

    #[test]
    fn deep_emergency_spills_to_innocents() {
        let m = model();
        let nodes = rack();
        // A budget below what flooring the single suspect can reach.
        let plan = solve(&m, 250.0, &nodes);
        assert!(plan.spilled_to_innocent);
        assert_eq!(plan.states[3], PState(0), "suspect should be floored");
        assert!(plan.states[..3].iter().any(|&s| s < PState(12)));
        assert!(plan.predicted_w <= 250.0 + 1e-9);
    }

    #[test]
    fn impossible_budget_reports_battery_bridge() {
        let m = model();
        let plan = solve(&m, 50.0, &rack());
        // Even all-floor exceeds 50 W (idle alone is ≥ 4 × ~30 W).
        assert!(plan.states.iter().all(|&s| s == PState(0)));
        assert!(plan.battery_bridge_w > 0.0);
        assert!((plan.predicted_w - plan.battery_bridge_w - 50.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_suspect_forced_deeper() {
        // Same deficit; the K-means-like suspect (low γ) must drop more
        // states than a Colla-Filt-like one to save the same watts.
        let m = model();
        let mk = |gamma: f64, beta: f64| {
            vec![
                node(0.5, false),
                NodeState {
                    utilization: 1.0,
                    intensity: 0.93,
                    gamma,
                    beta,
                    current: PState(12),
                    suspect: true,
                },
            ]
        };
        let cpu_nodes = mk(0.9, 0.95);
        let mem_nodes = mk(0.35, 0.4);
        let full_cpu = ThrottlePlan::predicted(&m, &cpu_nodes, &[PState(12), PState(12)]);
        let full_mem = ThrottlePlan::predicted(&m, &mem_nodes, &[PState(12), PState(12)]);
        let plan_cpu = solve(&m, full_cpu - 15.0, &cpu_nodes);
        let plan_mem = solve(&m, full_mem - 15.0, &mem_nodes);
        assert!(
            plan_mem.states[1] < plan_cpu.states[1],
            "mem {:?} vs cpu {:?}",
            plan_mem.states[1],
            plan_cpu.states[1]
        );
    }

    #[test]
    fn idle_suspect_planned_at_util_floor() {
        // A suspect node that drained between slots still gets a binding
        // plan — attack traffic will refill it within the slot.
        let m = model();
        let nodes = vec![node(0.9, false), node(0.0, true)];
        let plan = solve(&m, 150.0, &nodes);
        // Suspect throttled despite being (momentarily) idle.
        assert!(plan.states[1] < PState(12));
    }

    /// §5.3 consistency: on a single suspect node with a homogeneous
    /// resident class, Algorithm 1's node-level search must pick the
    /// same throttle level as the Eq-1 request-control solver given the
    /// equivalent one-class problem — they are the same optimization at
    /// different granularity.
    #[test]
    fn dpm_agrees_with_request_control_on_one_node() {
        use crate::request_control::{class_from_profile, solve as rc_solve};
        let m = model();
        let (intensity, gamma, beta) = (0.95, 0.85, 0.9);
        for budget in [95.0, 88.0, 80.0, 72.0, 60.0] {
            let nodes = vec![NodeState {
                utilization: 1.0,
                intensity,
                gamma,
                beta,
                current: PState(12),
                suspect: true,
            }];
            let plan = solve(&m, budget, &nodes);
            // Equivalent Eq-1 instance: one class of one full-node
            // request bundle whose power includes the node's idle floor.
            let mut class = class_from_profile(1.0, &m.table, 60.0, intensity, gamma, beta);
            for (i, p) in m.table.states().enumerate() {
                class.power_per_level_w[i] += m.idle_power(p);
            }
            let assignment = rc_solve(budget, &[class]);
            assert_eq!(
                plan.states[0].0 as usize, assignment.levels[0],
                "budget {budget}: dpm {:?} vs eq1 level {}",
                plan.states[0], assignment.levels[0]
            );
        }
    }

    proptest! {
        /// The plan never exceeds the budget unless it reports a battery
        /// bridge, and bridge + budget always covers predicted power.
        #[test]
        fn prop_plan_accounting(
            budget in 100.0f64..450.0,
            utils in proptest::collection::vec(0.0f64..1.0, 4),
        ) {
            let m = model();
            let nodes: Vec<NodeState> = utils
                .iter()
                .enumerate()
                .map(|(i, &u)| node(u, i == 3))
                .collect();
            let plan = solve(&m, budget, &nodes);
            prop_assert!(plan.predicted_w <= budget + plan.battery_bridge_w + 1e-6);
            if plan.battery_bridge_w > 0.0 {
                prop_assert!(plan.states.iter().all(|&s| s == PState(0)));
            }
        }

        /// Innocent nodes are untouched whenever the suspect pool alone
        /// satisfies the budget.
        #[test]
        fn prop_suspect_first(budget_frac in 0.8f64..1.0) {
            let m = model();
            let nodes = rack();
            let planning_full = {
                let planned: Vec<NodeState> = nodes.iter().map(|n| {
                    let mut c = *n;
                    if c.suspect { c.utilization = c.utilization.max(0.9); }
                    c
                }).collect();
                ThrottlePlan::predicted(&m, &planned, &[PState(12); 4])
            };
            let plan = solve(&m, planning_full * budget_frac, &nodes);
            if !plan.spilled_to_innocent {
                for (i, s) in plan.states.iter().enumerate() {
                    if !nodes[i].suspect {
                        prop_assert_eq!(*s, PState(12));
                    }
                }
            }
        }
    }
}
