//! `Token` — the power-denominated token bucket baseline.
//!
//! "A modified network traffic controlling algorithm to ensure power
//! limits" (Table 2): the NLB holds a bucket refilled at the cluster's
//! *dynamic* power budget (supply minus the idle floor) and charges each
//! admitted request its offline-profiled energy estimate. Requests that
//! find the bucket empty are offloaded (dropped). Pure admission control:
//! no DVFS, no battery — power stays bounded, but under attack the
//! bucket starves and "more than 60 % of the packages" are abandoned,
//! legitimate ones included.

use super::{Action, ControlInput, PowerScheme};
use crate::config::ClusterConfig;
use netsim::request::{Request, UrlId};
use netsim::token_bucket::PowerTokenBucket;
use simcore::SimTime;
use std::collections::HashMap;
use workloads::floods::{FloodKind, CONN_TABLE_URL, DNS_URL, KERNEL_PATH_URL};
use workloads::service::ServiceKind;

/// Offline-profiled per-request energy estimates, joules by URL.
pub fn energy_table(core_ghz: f64, headroom_w: f64) -> HashMap<UrlId, f64> {
    let mut t = HashMap::new();
    for kind in ServiceKind::ALL {
        t.insert(
            kind.url(),
            kind.profile().energy_estimate_j(core_ghz, headroom_w),
        );
    }
    // Flood pseudo-URLs priced from their demand parameters.
    for (url, kind) in [
        (KERNEL_PATH_URL, FloodKind::SynFlood),
        (DNS_URL, FloodKind::DnsFlood),
        (CONN_TABLE_URL, FloodKind::Slowloris),
    ] {
        let p = kind.params();
        t.insert(url, p.intensity * headroom_w * (p.work_gcycles / core_ghz));
    }
    t
}

/// The power token bucket scheme.
pub struct TokenScheme {
    bucket: PowerTokenBucket,
    energy: HashMap<UrlId, f64>,
    /// Fallback cost for unprofiled URLs (median service energy).
    default_cost_j: f64,
    /// Feedback gate: the bucket only charges admissions while measured
    /// power is at/over the budget (with hysteresis). Without the gate a
    /// statically-priced bucket sheds traffic even when power is fine —
    /// per-request energy estimates assume unshared execution, which
    /// overstates cost on a saturated (power-capped-by-physics) node.
    gated: bool,
    supply_w: f64,
}

impl TokenScheme {
    /// Build for a cluster: the bucket refills at the dynamic budget
    /// (supply − aggregate idle floor) and can burst 2 seconds.
    pub fn new(config: &ClusterConfig) -> Self {
        let idle_floor = config.servers as f64 * 40.0;
        let dynamic_budget = (config.supply_w() - idle_floor).max(1.0);
        let energy = energy_table(2.4, 60.0);
        let mut costs: Vec<f64> = energy.values().copied().collect();
        costs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let default_cost_j = costs[costs.len() / 2];
        TokenScheme {
            bucket: PowerTokenBucket::new(SimTime::ZERO, dynamic_budget, 2.0),
            energy,
            default_cost_j,
            gated: false,
            supply_w: config.supply_w(),
        }
    }

    /// The bucket's denial rate so far.
    pub fn denial_rate(&self) -> f64 {
        self.bucket.denial_rate()
    }
}

impl PowerScheme for TokenScheme {
    fn name(&self) -> &'static str {
        "Token"
    }

    fn admit(&mut self, now: SimTime, req: &Request) -> bool {
        if !self.gated {
            // Power is comfortably under the limit: keep the bucket
            // topped up but admit everything.
            let _ = self.bucket.available_j(now);
            return true;
        }
        let cost = self
            .energy
            .get(&req.url)
            .copied()
            .unwrap_or(self.default_cost_j);
        self.bucket.admit(now, cost)
    }

    fn denied(&self) -> u64 {
        self.bucket.denied()
    }

    fn control(&mut self, input: &ControlInput, _actions: &mut Vec<Action>) {
        // Admission-only scheme: the per-slot job is updating the
        // feedback gate from the measured power.
        if input.demand_w >= self.supply_w {
            self.gated = true;
        } else if input.demand_w < self.supply_w * 0.92 {
            self.gated = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::input;
    use super::*;
    use netsim::request::{RequestBuilder, SourceId};
    use powercap::budget::BudgetLevel;

    fn req(b: &mut RequestBuilder, kind: ServiceKind, at: SimTime) -> Request {
        let p = kind.profile();
        b.build(
            kind.url(),
            SourceId(0),
            at,
            p.mean_work_gcycles,
            p.beta,
            p.intensity,
            p.gamma,
            false,
        )
    }

    #[test]
    fn energy_table_orders_kernels() {
        let t = energy_table(2.4, 60.0);
        let km = t[&ServiceKind::KMeans.url()];
        let tc = t[&ServiceKind::TextCont.url()];
        assert!(km > 3.0 * tc, "K-means {km} vs Text-Cont {tc}");
        // Kernel-path packets are effectively free.
        assert!(t[&KERNEL_PATH_URL] < 1e-3);
    }

    fn gate(s: &mut TokenScheme, demand: f64, budget: BudgetLevel) {
        let mut actions = Vec::new();
        let inp = input(demand, budget, [1.0; 4]);
        s.control(&inp, &mut actions);
        assert!(actions.is_empty());
    }

    #[test]
    fn light_traffic_flows_freely() {
        let cfg = ClusterConfig::paper_rack(BudgetLevel::Medium);
        let mut s = TokenScheme::new(&cfg);
        let mut b = RequestBuilder::new();
        // 100 Text-Cont requests/s: ~0.17 J each against a 180 W dynamic
        // budget.
        let mut denied = 0;
        for i in 0..1000 {
            let at = SimTime::from_millis(i * 10);
            if !s.admit(at, &req(&mut b, ServiceKind::TextCont, at)) {
                denied += 1;
            }
        }
        assert_eq!(denied, 0, "light traffic must not be shed");
    }

    #[test]
    fn heavy_flood_is_shed_hard() {
        let cfg = ClusterConfig::paper_rack(BudgetLevel::Low);
        let mut s = TokenScheme::new(&cfg);
        gate(&mut s, 390.0, BudgetLevel::Low); // measured power over 320 W
        let mut b = RequestBuilder::new();
        // 500 K-means requests/s: ~2.5 J each = 1.2 kW demanded from a
        // 160 W dynamic budget → most must be dropped.
        for i in 0..5000 {
            let at = SimTime::from_millis(i * 2);
            s.admit(at, &req(&mut b, ServiceKind::KMeans, at));
        }
        assert!(
            s.denial_rate() > 0.6,
            "paper: Token abandons >60% — got {}",
            s.denial_rate()
        );
    }

    #[test]
    fn admitted_power_respects_budget() {
        let cfg = ClusterConfig::paper_rack(BudgetLevel::Medium);
        let dynamic_budget = cfg.supply_w() - 160.0; // 180 W
        let mut s = TokenScheme::new(&cfg);
        gate(&mut s, 380.0, BudgetLevel::Medium);
        let mut b = RequestBuilder::new();
        let table = energy_table(2.4, 60.0);
        let mut admitted_j = 0.0;
        let horizon_s = 20.0;
        let mut i = 0u64;
        loop {
            let at = SimTime::from_micros(i * 500);
            if at.as_secs_f64() > horizon_s {
                break;
            }
            let r = req(&mut b, ServiceKind::CollaFilt, at);
            if s.admit(at, &r) {
                admitted_j += table[&r.url];
            }
            i += 1;
        }
        // Burst allowance is 2 s of budget.
        assert!(
            admitted_j <= dynamic_budget * (horizon_s + 2.0) + 1e-6,
            "admitted {admitted_j} J over {horizon_s}s"
        );
    }

    #[test]
    fn control_issues_no_actuation() {
        let cfg = ClusterConfig::paper_rack(BudgetLevel::Low);
        let mut s = TokenScheme::new(&cfg);
        let mut actions = Vec::new();
        s.control(&input(500.0, BudgetLevel::Low, [1.0; 4]), &mut actions);
        assert!(actions.is_empty());
    }

    #[test]
    fn gate_hysteresis() {
        let cfg = ClusterConfig::paper_rack(BudgetLevel::Medium); // 340 W
        let mut s = TokenScheme::new(&cfg);
        assert!(!s.gated);
        gate(&mut s, 345.0, BudgetLevel::Medium);
        assert!(s.gated);
        // Just under budget: still gated (hysteresis band).
        gate(&mut s, 330.0, BudgetLevel::Medium);
        assert!(s.gated);
        // Well under: gate opens.
        gate(&mut s, 300.0, BudgetLevel::Medium);
        assert!(!s.gated);
    }

    #[test]
    fn ungated_admits_expensive_requests() {
        let cfg = ClusterConfig::paper_rack(BudgetLevel::Low);
        let mut s = TokenScheme::new(&cfg);
        let mut b = RequestBuilder::new();
        for i in 0..2000 {
            let at = SimTime::from_millis(i);
            assert!(s.admit(at, &req(&mut b, ServiceKind::KMeans, at)));
        }
        assert_eq!(s.denied(), 0);
    }

    #[test]
    fn unknown_url_uses_default_cost() {
        let cfg = ClusterConfig::paper_rack(BudgetLevel::Medium);
        let mut s = TokenScheme::new(&cfg);
        gate(&mut s, 380.0, BudgetLevel::Medium);
        let mut b = RequestBuilder::new();
        let r = b.build(
            UrlId(250),
            SourceId(0),
            SimTime::ZERO,
            1.0,
            0.5,
            0.5,
            0.5,
            false,
        );
        // Should not panic, and should consume the median cost.
        let before = s.bucket.available_j(SimTime::ZERO);
        assert!(s.admit(SimTime::ZERO, &r));
        let after = s.bucket.available_j(SimTime::ZERO);
        assert!((before - after - s.default_cost_j).abs() < 1e-9);
    }
}
