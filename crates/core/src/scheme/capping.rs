//! `Capping` — the DVFS-only baseline.
//!
//! "Represents the traditional data center designs that only use
//! performance scaling mechanisms to cap power peaks" (Table 2). On a
//! budget violation it lowers a single *uniform* P-state across every
//! node — blind to which requests caused the peak — and recovers one
//! step at a time after a hysteresis window.

use super::{Action, ControlInput, PowerScheme, RECOVERY_GUARD, RECOVERY_SLOTS};
use powercap::capper::{ServerLoad, UniformCapper};
use powercap::monitor::PowerCondition;
use powercap::pstate::PState;

/// The uniform-DVFS capping baseline.
#[derive(Debug)]
pub struct CappingScheme {
    capper: UniformCapper,
    /// Current uniform level commanded to all nodes.
    level: PState,
    /// Consecutive comfortable slots (for recovery hysteresis).
    calm_slots: u32,
    top: PState,
}

impl Default for CappingScheme {
    fn default() -> Self {
        Self::new()
    }
}

impl CappingScheme {
    /// New capper at nominal frequency.
    pub fn new() -> Self {
        let model = powercap::server_power::ServerPowerModel::paper_default();
        let top = model.table.max_state();
        CappingScheme {
            capper: UniformCapper::new(model),
            level: top,
            calm_slots: 0,
            top,
        }
    }

    fn loads(input: &ControlInput) -> Vec<ServerLoad> {
        input
            .nodes
            .iter()
            .map(|n| ServerLoad {
                // Plan with a utilization floor: a momentarily-drained
                // node refills within the slot during an attack.
                utilization: n.utilization.max(0.5),
                intensity: if n.intensity > 0.0 { n.intensity } else { 0.9 },
                gamma: if n.gamma > 0.0 { n.gamma } else { 0.8 },
            })
            .collect()
    }

    fn command_all(&self, input: &ControlInput, actions: &mut Vec<Action>, level: PState) {
        for (i, n) in input.nodes.iter().enumerate() {
            if n.target != level {
                actions.push(Action::SetPState {
                    node: i,
                    target: level,
                });
            }
        }
    }
}

impl PowerScheme for CappingScheme {
    fn name(&self) -> &'static str {
        "Capping"
    }

    fn control(&mut self, input: &ControlInput, actions: &mut Vec<Action>) {
        match input.condition {
            PowerCondition::Emergency | PowerCondition::Transient => {
                self.calm_slots = 0;
                let loads = Self::loads(input);
                let target = self.capper.state_for_budget(input.supply_w, &loads);
                // Only ever move down in an emergency.
                if target < self.level {
                    self.level = target;
                }
                self.command_all(input, actions, self.level);
            }
            PowerCondition::NearBudget => {
                self.calm_slots = 0;
                self.command_all(input, actions, self.level);
            }
            PowerCondition::Nominal => {
                if self.level < self.top {
                    self.calm_slots += 1;
                    if self.calm_slots >= RECOVERY_SLOTS {
                        // Step up one level if the predicted power at the
                        // next level keeps a guard margin.
                        let next = powercap::pstate::PState(self.level.0 + 1);
                        let predicted =
                            self.capper.aggregate_power(next, &Self::loads(input));
                        if predicted <= input.supply_w * (1.0 - RECOVERY_GUARD) {
                            self.level = next;
                            self.calm_slots = 0;
                        }
                    }
                }
                self.command_all(input, actions, self.level);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::input;
    use super::*;
    use powercap::budget::BudgetLevel;

    fn run_slot(s: &mut CappingScheme, demand: f64, level: BudgetLevel) -> Vec<Action> {
        let mut actions = Vec::new();
        s.control(&input(demand, level, [1.0; 4]), &mut actions);
        actions
    }

    #[test]
    fn under_budget_stays_nominal() {
        let mut s = CappingScheme::new();
        let actions = run_slot(&mut s, 250.0, BudgetLevel::Medium);
        assert!(actions.is_empty(), "no commands needed: {actions:?}");
        assert_eq!(s.level, PState(12));
    }

    #[test]
    fn violation_caps_everyone_uniformly() {
        let mut s = CappingScheme::new();
        let actions = run_slot(&mut s, 395.0, BudgetLevel::Medium); // supply 340
        assert_eq!(actions.len(), 4, "all nodes commanded");
        let levels: Vec<PState> = actions
            .iter()
            .map(|a| match a {
                Action::SetPState { target, .. } => *target,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert!(levels.iter().all(|&l| l == levels[0]), "non-uniform");
        assert!(levels[0] < PState(12));
    }

    #[test]
    fn recovery_needs_hysteresis() {
        let mut s = CappingScheme::new();
        run_slot(&mut s, 395.0, BudgetLevel::Medium);
        let capped = s.level;
        // Calm slots with genuinely light load (snapshots must agree
        // with the low demand, as they do in a real run).
        let calm = |s: &mut CappingScheme| {
            let mut actions = Vec::new();
            s.control(&input(200.0, BudgetLevel::Medium, [0.3; 4]), &mut actions);
        };
        // One calm slot is not enough.
        calm(&mut s);
        assert_eq!(s.level, capped);
        calm(&mut s);
        calm(&mut s);
        assert_eq!(s.level, PState(capped.0 + 1), "stepped up after {RECOVERY_SLOTS} calm slots");
    }

    #[test]
    fn near_budget_freezes_level() {
        let mut s = CappingScheme::new();
        run_slot(&mut s, 395.0, BudgetLevel::Medium);
        let capped = s.level;
        for _ in 0..10 {
            run_slot(&mut s, 335.0, BudgetLevel::Medium); // in guard band
        }
        assert_eq!(s.level, capped, "must not step up inside the guard band");
    }

    #[test]
    fn level_never_rises_during_emergency() {
        let mut s = CappingScheme::new();
        run_slot(&mut s, 500.0, BudgetLevel::Low);
        let deep = s.level;
        run_slot(&mut s, 345.0, BudgetLevel::Low); // still over 320 W supply
        assert!(s.level <= deep);
    }

    #[test]
    fn never_commands_battery() {
        let mut s = CappingScheme::new();
        let actions = run_slot(&mut s, 500.0, BudgetLevel::Low);
        assert!(actions
            .iter()
            .all(|a| matches!(a, Action::SetPState { .. })));
    }
}
