//! Ablation variants of Anti-DOPE: each half of the framework alone.
//!
//! * [`PdfOnlyScheme`] — Power-Driven Forwarding without RPM: suspect
//!   flows are isolated on the suspect pool, but nothing reacts to a
//!   budget violation. Shows how much of Anti-DOPE's benefit is pure
//!   traffic placement.
//! * [`RpmOnlyScheme`] — RPM/DPM without PDF: vanilla round-robin
//!   forwarding, with the differentiated (per-node marginal-greedy)
//!   throttling plan reacting to violations. Shows what differentiated
//!   throttling buys *without* isolation — since attack and legitimate
//!   requests share every node, DPM degenerates toward smart capping.

use super::anti_dope::AntiDopeScheme;
use super::{Action, ControlInput, PowerScheme};
use crate::config::ClusterConfig;
use netsim::nlb::ForwardingPolicy;

/// PDF forwarding with no power control at all.
pub struct PdfOnlyScheme;

impl PdfOnlyScheme {
    /// Build (stateless).
    pub fn new(config: &ClusterConfig) -> Self {
        config
            .validate()
            .expect("PdfOnly requires a valid cluster config");
        PdfOnlyScheme
    }
}

impl PowerScheme for PdfOnlyScheme {
    fn name(&self) -> &'static str {
        "PDF-only"
    }

    fn forwarding_policy(&self, config: &ClusterConfig) -> ForwardingPolicy {
        crate::pdf::pdf_policy(
            config.servers,
            config.suspect_pool_size,
            crate::pdf::DEFAULT_SUSPECT_THRESHOLD,
        )
        .expect("default threshold is valid")
    }

    fn control(&mut self, _input: &ControlInput, _actions: &mut Vec<Action>) {}
}

/// RPM/DPM control with vanilla round-robin forwarding.
pub struct RpmOnlyScheme {
    inner: AntiDopeScheme,
}

impl RpmOnlyScheme {
    /// Build over the full RPM controller.
    pub fn new(config: &ClusterConfig) -> Self {
        RpmOnlyScheme {
            inner: AntiDopeScheme::new(config),
        }
    }
}

impl PowerScheme for RpmOnlyScheme {
    fn name(&self) -> &'static str {
        "RPM-only"
    }

    // Default forwarding policy: RoundRobin (no PDF).

    fn control(&mut self, input: &ControlInput, actions: &mut Vec<Action>) {
        self.inner.control(input, actions);
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::input;
    use super::*;
    use powercap::budget::BudgetLevel;

    #[test]
    fn pdf_only_isolates_but_never_actuates() {
        let cfg = ClusterConfig::paper_rack(BudgetLevel::Low);
        let mut s = PdfOnlyScheme::new(&cfg);
        assert!(matches!(
            s.forwarding_policy(&cfg),
            ForwardingPolicy::UrlSplit { .. }
        ));
        let mut actions = Vec::new();
        s.control(&input(500.0, BudgetLevel::Low, [1.0; 4]), &mut actions);
        assert!(actions.is_empty());
    }

    #[test]
    fn rpm_only_throttles_without_isolating() {
        let cfg = ClusterConfig::paper_rack(BudgetLevel::Low);
        let mut s = RpmOnlyScheme::new(&cfg);
        assert!(matches!(
            s.forwarding_policy(&cfg),
            ForwardingPolicy::RoundRobin
        ));
        let mut actions = Vec::new();
        s.control(&input(390.0, BudgetLevel::Low, [1.0; 4]), &mut actions);
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, Action::SetPState { .. })),
            "{actions:?}"
        );
    }
}
