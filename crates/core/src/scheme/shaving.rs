//! `Shaving` — UPS-based peak shaving.
//!
//! "Triggers DVFS only if the UPS used for peak shaving runs out of
//! energy" (Table 2), following battery-provisioned designs [Govindan
//! et al., Wang et al.]. During a budget violation the load is switched
//! onto the UPS — a double-conversion UPS carries the *whole* demand
//! while shaving, which is why the paper's 2-minute battery "exhausts
//! ... as soon as" under a sustained DOPE peak (Fig 18). Once stored
//! energy can no longer carry a full slot, the scheme falls back to
//! uniform DVFS exactly like `Capping`. Under budget, the battery
//! recharges from headroom.

use super::{Action, ControlInput, PowerScheme, RECOVERY_GUARD, RECOVERY_SLOTS};
use powercap::capper::{ServerLoad, UniformCapper};
use powercap::monitor::PowerCondition;
use powercap::pstate::PState;

/// UPS-first peak shaving with DVFS fallback.
#[derive(Debug)]
pub struct ShavingScheme {
    capper: UniformCapper,
    level: PState,
    calm_slots: u32,
    top: PState,
}

impl Default for ShavingScheme {
    fn default() -> Self {
        Self::new()
    }
}

impl ShavingScheme {
    /// New scheme at nominal frequency with an idle battery.
    pub fn new() -> Self {
        let model = powercap::server_power::ServerPowerModel::paper_default();
        let top = model.table.max_state();
        ShavingScheme {
            capper: UniformCapper::new(model),
            level: top,
            calm_slots: 0,
            top,
        }
    }

    fn loads(input: &ControlInput) -> Vec<ServerLoad> {
        input
            .nodes
            .iter()
            .map(|n| ServerLoad {
                utilization: n.utilization.max(0.5),
                intensity: if n.intensity > 0.0 { n.intensity } else { 0.9 },
                gamma: if n.gamma > 0.0 { n.gamma } else { 0.8 },
            })
            .collect()
    }
}

impl PowerScheme for ShavingScheme {
    fn name(&self) -> &'static str {
        "Shaving"
    }

    fn control(&mut self, input: &ControlInput, actions: &mut Vec<Action>) {
        let deficit = input.deficit_w();
        if deficit > 0.0 {
            self.calm_slots = 0;
            // The UPS carries the whole demand while shaving. It can do
            // so for at least one more slot if it holds one slot's worth
            // of demand-energy.
            let battery_can = input.battery_stored_j > input.demand_w
                && input.battery_max_discharge_w >= input.demand_w;
            if battery_can && self.level == self.top {
                actions.push(Action::BatteryDischarge {
                    watts: input.demand_w,
                });
                return;
            }
            // Battery exhausted (or already in DVFS mode): uniform
            // capping; any residual charge still shaves the deficit.
            let residual = if input.battery_stored_j > 1.0 {
                input
                    .battery_max_discharge_w
                    .min(deficit)
                    .min(input.battery_stored_j)
            } else {
                0.0
            };
            actions.push(Action::BatteryDischarge { watts: residual });
            let effective_budget = input.supply_w + residual;
            let target = self
                .capper
                .state_for_budget(effective_budget, &Self::loads(input));
            if target < self.level {
                self.level = target;
            }
            for (i, n) in input.nodes.iter().enumerate() {
                if n.target != self.level {
                    actions.push(Action::SetPState {
                        node: i,
                        target: self.level,
                    });
                }
            }
        } else {
            // Under budget: stop discharging, recharge from headroom.
            if input.battery_discharging_w > 0.0 {
                actions.push(Action::BatteryDischarge { watts: 0.0 });
            }
            let headroom = input.headroom_w();
            if input.battery_soc < 1.0 && headroom > 1.0 {
                actions.push(Action::BatteryCharge {
                    watts: headroom.min(input.battery_max_charge_w),
                });
            }
            // DVFS recovery with the same hysteresis as Capping.
            if self.level < self.top && input.condition == PowerCondition::Nominal {
                self.calm_slots += 1;
                if self.calm_slots >= RECOVERY_SLOTS {
                    let next = PState(self.level.0 + 1);
                    let predicted = self.capper.aggregate_power(next, &Self::loads(input));
                    if predicted <= input.supply_w * (1.0 - RECOVERY_GUARD) {
                        self.level = next;
                        self.calm_slots = 0;
                        for (i, n) in input.nodes.iter().enumerate() {
                            if n.target != self.level {
                                actions.push(Action::SetPState {
                                    node: i,
                                    target: self.level,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::input;
    use super::*;
    use powercap::budget::BudgetLevel;

    #[test]
    fn violation_switches_full_load_onto_ups() {
        let mut s = ShavingScheme::new();
        let mut actions = Vec::new();
        s.control(&input(380.0, BudgetLevel::Medium, [1.0; 4]), &mut actions);
        // Double-conversion shaving: the UPS carries all 380 W, no DVFS.
        assert_eq!(actions, vec![Action::BatteryDischarge { watts: 380.0 }]);
        assert_eq!(s.level, PState(12));
    }

    #[test]
    fn empty_battery_falls_back_to_dvfs() {
        let mut s = ShavingScheme::new();
        let mut inp = input(380.0, BudgetLevel::Medium, [1.0; 4]);
        inp.battery_stored_j = 0.0;
        inp.battery_soc = 0.0;
        let mut actions = Vec::new();
        s.control(&inp, &mut actions);
        assert!(matches!(
            actions[0],
            Action::BatteryDischarge { watts } if watts == 0.0
        ));
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, Action::SetPState { .. })),
            "expected DVFS fallback: {actions:?}"
        );
        assert!(s.level < PState(12));
    }

    #[test]
    fn nearly_empty_battery_shaves_residually_while_throttling() {
        let mut s = ShavingScheme::new();
        let mut inp = input(400.0, BudgetLevel::Low, [1.0; 4]); // deficit 80 W
        inp.battery_stored_j = 30.0; // < one slot of demand → fallback
        inp.battery_soc = 30.0 / 48_000.0;
        let mut actions = Vec::new();
        s.control(&inp, &mut actions);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::BatteryDischarge { watts } if (*watts - 30.0).abs() < 1e-9)));
        assert!(actions.iter().any(|a| matches!(a, Action::SetPState { .. })));
    }

    #[test]
    fn recharges_under_budget() {
        let mut s = ShavingScheme::new();
        let mut inp = input(250.0, BudgetLevel::Medium, [0.5; 4]); // headroom 90
        inp.battery_soc = 0.4;
        inp.battery_stored_j = 19_200.0;
        let mut actions = Vec::new();
        s.control(&inp, &mut actions);
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, Action::BatteryCharge { watts } if (*watts - 90.0).abs() < 1e-9)),
            "{actions:?}"
        );
    }

    #[test]
    fn charge_capped_by_battery_rate() {
        let mut s = ShavingScheme::new();
        let mut inp = input(100.0, BudgetLevel::Medium, [0.1; 4]); // headroom 240
        inp.battery_soc = 0.1;
        inp.battery_max_charge_w = 50.0;
        let mut actions = Vec::new();
        s.control(&inp, &mut actions);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::BatteryCharge { watts } if (*watts - 50.0).abs() < 1e-9)));
    }

    #[test]
    fn stops_discharge_when_deficit_clears() {
        let mut s = ShavingScheme::new();
        let mut inp = input(250.0, BudgetLevel::Medium, [0.5; 4]);
        inp.battery_discharging_w = 340.0;
        let mut actions = Vec::new();
        s.control(&inp, &mut actions);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::BatteryDischarge { watts } if *watts == 0.0)));
    }

    #[test]
    fn full_battery_not_recharged() {
        let mut s = ShavingScheme::new();
        let inp = input(250.0, BudgetLevel::Medium, [0.5; 4]); // soc 1.0
        let mut actions = Vec::new();
        s.control(&inp, &mut actions);
        assert!(actions
            .iter()
            .all(|a| !matches!(a, Action::BatteryCharge { .. })));
    }

    #[test]
    fn dvfs_recovers_after_calm_slots() {
        let mut s = ShavingScheme::new();
        let mut drained = input(380.0, BudgetLevel::Medium, [1.0; 4]);
        drained.battery_stored_j = 0.0;
        drained.battery_soc = 0.0;
        let mut actions = Vec::new();
        s.control(&drained, &mut actions);
        let capped = s.level;
        assert!(capped < PState(12));
        for _ in 0..3 {
            let mut calm = input(200.0, BudgetLevel::Medium, [0.3; 4]);
            calm.battery_soc = 0.0;
            calm.battery_stored_j = 0.0;
            let mut a = Vec::new();
            s.control(&calm, &mut a);
        }
        assert_eq!(s.level, PState(capped.0 + 1));
    }

    #[test]
    fn once_in_dvfs_mode_battery_only_covers_deficit() {
        let mut s = ShavingScheme::new();
        // Force DVFS mode via an empty battery…
        let mut drained = input(380.0, BudgetLevel::Medium, [1.0; 4]);
        drained.battery_stored_j = 0.0;
        drained.battery_soc = 0.0;
        s.control(&drained, &mut Vec::new());
        assert!(s.level < PState(12));
        // …then, with some charge back, a violation uses the battery for
        // the deficit (not the full demand) alongside throttling.
        let mut inp = input(380.0, BudgetLevel::Medium, [1.0; 4]);
        inp.battery_stored_j = 5_000.0;
        inp.battery_soc = 5_000.0 / 48_000.0;
        let mut actions = Vec::new();
        s.control(&inp, &mut actions);
        let discharge = actions.iter().find_map(|a| match a {
            Action::BatteryDischarge { watts } => Some(*watts),
            _ => None,
        });
        assert_eq!(discharge, Some(40.0)); // the deficit, not 380
    }
}
