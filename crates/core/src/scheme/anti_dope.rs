//! `Anti-DOPE` — the paper's proposal: PDF + RPM.
//!
//! * **PDF** is installed once at construction: the NLB runs URL-split
//!   forwarding over the offline-profiled suspect list, isolating
//!   high-power flows on the suspect pool (see [`crate::pdf`]).
//! * **RPM** runs here each control slot: on a deficit, batteries bridge
//!   the DVFS transition window ("the transformation media"), then the
//!   DPM throttling plan (Algorithm 1, [`crate::dpm`]) reclaims power
//!   from suspect nodes first, spilling to innocents only when
//!   unavoidable. Under budget, suspect nodes recover with hysteresis
//!   and the battery recharges from headroom.

use super::{Action, ControlInput, PowerScheme, RECOVERY_GUARD, RECOVERY_SLOTS};
use crate::config::ClusterConfig;
use crate::dpm::{self, NodeState};
use crate::pdf;
use netsim::nlb::ForwardingPolicy;
use netsim::request::UrlId;
use powercap::pstate::PState;
use powercap::server_power::ServerPowerModel;

/// The Anti-DOPE scheme (PDF forwarding + RPM/DPM control).
pub struct AntiDopeScheme {
    model: ServerPowerModel,
    /// Suspicion threshold used when building the forwarding policy.
    threshold: f64,
    /// Use the adaptive (online-profiled) forwarding policy instead of
    /// the offline suspect list.
    adaptive: bool,
    /// Extra oracle profiles folded into the offline list (ablations
    /// that grant the offline profiler impossible knowledge).
    oracle_profiles: Vec<(UrlId, f64)>,
    /// Hysteresis counter for recovery.
    calm_slots: u32,
    /// Whether we are currently enforcing a throttling plan.
    throttling: bool,
}

impl AntiDopeScheme {
    /// Build for a cluster (pool sizing is read from the config at
    /// forwarding-policy time; control needs only the power model).
    /// When the config enables the online profiler, the forwarding
    /// policy comes up adaptive (learned at runtime) instead of backed
    /// by the offline suspect list.
    pub fn new(config: &ClusterConfig) -> Self {
        Self::with_threshold(config, pdf::DEFAULT_SUSPECT_THRESHOLD)
    }

    /// Build with extra oracle profiles folded into the offline suspect
    /// list — the "oracle" ablation arm, which knows URL intensities the
    /// offline bench could never have measured (e.g. an attacker's
    /// rotation range). Panics on invalid inputs.
    pub fn with_oracle_profiles(config: &ClusterConfig, extra: Vec<(UrlId, f64)>) -> Self {
        let mut s = Self::with_threshold(config, pdf::DEFAULT_SUSPECT_THRESHOLD);
        for &(_, intensity) in &extra {
            assert!(
                (0.0..=1.0).contains(&intensity),
                "oracle intensity {intensity} outside [0, 1]"
            );
        }
        s.adaptive = false; // the oracle arm uses the static list
        s.oracle_profiles = extra;
        s
    }

    /// Build with a custom suspicion threshold (ablation studies).
    /// Panics on an invalid config or threshold; use
    /// [`AntiDopeScheme::try_with_threshold`] to handle errors.
    pub fn with_threshold(config: &ClusterConfig, threshold: f64) -> Self {
        Self::try_with_threshold(config, threshold)
            .expect("with_threshold: invalid cluster config or threshold")
    }

    /// Fallible constructor with a custom suspicion threshold.
    pub fn try_with_threshold(
        config: &ClusterConfig,
        threshold: f64,
    ) -> Result<Self, crate::config::ConfigError> {
        config.validate()?;
        if !(0.0..=1.0).contains(&threshold) || !threshold.is_finite() {
            return Err(crate::config::ConfigError::Threshold { value: threshold });
        }
        Ok(AntiDopeScheme {
            model: ServerPowerModel::paper_default(),
            threshold,
            adaptive: config.profiler.is_some(),
            oracle_profiles: Vec::new(),
            calm_slots: 0,
            throttling: false,
        })
    }

    fn node_states(&self, input: &ControlInput) -> Vec<NodeState> {
        input
            .nodes
            .iter()
            .map(|n| NodeState {
                utilization: n.utilization,
                intensity: if n.intensity > 0.0 { n.intensity } else { 0.9 },
                gamma: if n.gamma > 0.0 { n.gamma } else { 0.8 },
                beta: if n.beta > 0.0 { n.beta } else { 0.8 },
                current: n.target,
                suspect: n.suspect,
            })
            .collect()
    }
}

impl PowerScheme for AntiDopeScheme {
    fn name(&self) -> &'static str {
        "Anti-DOPE"
    }

    fn forwarding_policy(&self, config: &ClusterConfig) -> ForwardingPolicy {
        if self.adaptive {
            return pdf::adaptive_pdf_policy(config.servers, config.suspect_pool_size);
        }
        pdf::pdf_policy_with(
            config.servers,
            config.suspect_pool_size,
            self.threshold,
            &self.oracle_profiles,
        )
        .expect("threshold and oracle profiles validated at construction")
    }

    fn control(&mut self, input: &ControlInput, actions: &mut Vec<Action>) {
        let deficit = input.deficit_w();
        if deficit > 0.0 {
            self.calm_slots = 0;
            self.throttling = true;
            // Algorithm 1: plan differentiated throttling against the
            // supply. The plan is computed on the model's predicted
            // power; fold in the measurement error (measured demand vs
            // model prediction at the current targets) so the plan binds
            // against *measured* reality, not just the model.
            let nodes = self.node_states(input);
            let predicted_current: f64 = nodes
                .iter()
                .map(|n| {
                    self.model
                        .power(n.current, n.utilization, n.intensity, n.gamma)
                })
                .sum();
            let correction = (input.demand_w - predicted_current).max(0.0);
            let effective_budget = (input.supply_w - correction).max(0.0);
            let plan = dpm::solve(&self.model, effective_budget, &nodes);
            for (i, (&target, node)) in plan.states.iter().zip(&input.nodes).enumerate() {
                if node.target != target {
                    actions.push(Action::SetPState { node: i, target });
                }
            }
            // Battery bridges the transition window (the deficit persists
            // until the new V/F settles) plus any residual the plan could
            // not reach. Both are bounded by what the battery can give.
            let bridge = (deficit + plan.battery_bridge_w)
                .min(input.battery_max_discharge_w);
            if input.battery_stored_j > 1.0 {
                actions.push(Action::BatteryDischarge { watts: bridge });
            }
        } else {
            // Under budget: stop bridging immediately ("batteries are
            // recharged again immediately" once V/F settles, §6.4).
            if input.battery_discharging_w > 0.0 {
                actions.push(Action::BatteryDischarge { watts: 0.0 });
            }
            let headroom = input.headroom_w();
            if input.battery_soc < 1.0 && headroom > 1.0 {
                actions.push(Action::BatteryCharge {
                    watts: headroom.min(input.battery_max_charge_w),
                });
            }
            // Recovery: raise the deepest-throttled node one step per
            // hysteresis window while margin holds.
            if self.throttling {
                self.calm_slots += 1;
                if self.calm_slots >= RECOVERY_SLOTS {
                    self.calm_slots = 0;
                    let top = self.model.table.max_state();
                    let lowest = input
                        .nodes
                        .iter()
                        .enumerate()
                        .filter(|(_, n)| n.target < top)
                        .min_by_key(|(_, n)| n.target);
                    match lowest {
                        Some((i, n)) => {
                            let next = PState(n.target.0 + 1);
                            // Margin check: stepping up costs at most the
                            // node's worst-case power delta.
                            let delta = self.model.full_load_power(
                                next,
                                n.intensity.max(0.9),
                                n.gamma.max(0.5),
                            ) - self.model.full_load_power(
                                n.target,
                                n.intensity.max(0.9),
                                n.gamma.max(0.5),
                            );
                            if input.headroom_w()
                                >= delta + input.supply_w * RECOVERY_GUARD
                            {
                                actions.push(Action::SetPState {
                                    node: i,
                                    target: next,
                                });
                            }
                        }
                        None => self.throttling = false,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::input;
    use super::*;
    use powercap::budget::BudgetLevel;

    fn scheme() -> AntiDopeScheme {
        AntiDopeScheme::new(&ClusterConfig::paper_rack(BudgetLevel::Medium))
    }

    #[test]
    fn forwarding_policy_is_url_split() {
        let s = scheme();
        let cfg = ClusterConfig::paper_rack(BudgetLevel::Medium);
        assert!(matches!(
            s.forwarding_policy(&cfg),
            ForwardingPolicy::UrlSplit { .. }
        ));
    }

    #[test]
    fn profiler_config_switches_to_adaptive_forwarding() {
        let mut cfg = ClusterConfig::paper_rack(BudgetLevel::Medium);
        cfg.profiler = Some(profiler::ProfilerConfig::default());
        let s = AntiDopeScheme::new(&cfg);
        assert!(matches!(
            s.forwarding_policy(&cfg),
            ForwardingPolicy::AdaptiveSplit { .. }
        ));
    }

    #[test]
    fn oracle_profiles_extend_the_offline_list() {
        let cfg = ClusterConfig::paper_rack(BudgetLevel::Medium);
        let s = AntiDopeScheme::with_oracle_profiles(&cfg, vec![(UrlId(700), 0.97)]);
        let ForwardingPolicy::UrlSplit { list, .. } = s.forwarding_policy(&cfg) else {
            panic!("expected UrlSplit");
        };
        assert!(list.is_suspect(UrlId(700)));
    }

    #[test]
    fn deficit_throttles_suspects_and_bridges_with_battery() {
        let mut s = scheme();
        let mut actions = Vec::new();
        // Demand 380 on 340 supply; suspect node (index 3) is hot.
        s.control(&input(380.0, BudgetLevel::Medium, [0.7, 0.7, 0.7, 1.0]), &mut actions);
        // Suspect node commanded down.
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, Action::SetPState { node: 3, .. })),
            "{actions:?}"
        );
        // Innocent nodes untouched for a 40 W deficit.
        assert!(actions
            .iter()
            .all(|a| !matches!(a, Action::SetPState { node, .. } if *node < 3)));
        // Battery bridges the transition.
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::BatteryDischarge { watts } if *watts > 0.0)));
    }

    #[test]
    fn bridge_capped_by_battery_rate() {
        let mut s = scheme();
        let mut inp = input(380.0, BudgetLevel::Medium, [0.7, 0.7, 0.7, 1.0]);
        inp.battery_max_discharge_w = 15.0;
        let mut actions = Vec::new();
        s.control(&inp, &mut actions);
        let bridge = actions.iter().find_map(|a| match a {
            Action::BatteryDischarge { watts } => Some(*watts),
            _ => None,
        });
        assert_eq!(bridge, Some(15.0));
    }

    #[test]
    fn empty_battery_still_produces_plan() {
        let mut s = scheme();
        let mut inp = input(380.0, BudgetLevel::Medium, [0.7, 0.7, 0.7, 1.0]);
        inp.battery_stored_j = 0.0;
        inp.battery_soc = 0.0;
        let mut actions = Vec::new();
        s.control(&inp, &mut actions);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::SetPState { .. })));
        assert!(actions
            .iter()
            .all(|a| !matches!(a, Action::BatteryDischarge { watts } if *watts > 0.0)));
    }

    #[test]
    fn under_budget_recharges_and_recovers() {
        let mut s = scheme();
        // First cause a throttle.
        let mut a0 = Vec::new();
        s.control(&input(380.0, BudgetLevel::Medium, [0.7, 0.7, 0.7, 1.0]), &mut a0);
        // Then go calm; after RECOVERY_SLOTS slots one step-up lands.
        let mut calm = input(200.0, BudgetLevel::Medium, [0.3, 0.3, 0.3, 0.3]);
        calm.nodes[3].target = PState(6); // pretend the suspect is throttled
        calm.battery_soc = 0.5;
        calm.battery_stored_j = 24_000.0;
        let mut stepped = false;
        for _ in 0..4 {
            let mut a = Vec::new();
            s.control(&calm, &mut a);
            assert!(a
                .iter()
                .any(|x| matches!(x, Action::BatteryCharge { watts } if *watts > 0.0)));
            if a.iter().any(|x| {
                matches!(x, Action::SetPState { node: 3, target } if *target == PState(7))
            }) {
                stepped = true;
            }
        }
        assert!(stepped, "suspect node should step back up");
    }

    #[test]
    fn stops_discharge_when_calm() {
        let mut s = scheme();
        let mut calm = input(200.0, BudgetLevel::Medium, [0.3; 4]);
        calm.battery_discharging_w = 30.0;
        let mut a = Vec::new();
        s.control(&calm, &mut a);
        assert!(a
            .iter()
            .any(|x| matches!(x, Action::BatteryDischarge { watts } if *watts == 0.0)));
    }

    #[test]
    fn deep_deficit_spills_to_innocents() {
        let mut s = scheme();
        let mut actions = Vec::new();
        // Low-PB (320 W supply) with everything at full tilt plus an
        // unrealistically hot snapshot: demand 480 W.
        s.control(&input(480.0, BudgetLevel::Low, [1.0; 4]), &mut actions);
        let innocent_throttled = actions
            .iter()
            .any(|a| matches!(a, Action::SetPState { node, target } if *node < 3 && *target < PState(12)));
        assert!(innocent_throttled, "{actions:?}");
    }
}
