//! The power-management schemes of Table 2 behind one trait.
//!
//! Each scheme interacts with the cluster through two hooks:
//!
//! * [`PowerScheme::admit`] — called per request at the NLB, *after* the
//!   perimeter firewall (only `Token` says no here);
//! * [`PowerScheme::control`] — called once per control slot with a
//!   cluster snapshot; the scheme returns [`Action`]s (P-state commands,
//!   battery discharge/charge) that the simulator enacts.
//!
//! Keeping schemes pure decision functions over snapshots makes them
//! individually testable without a full simulation.

mod ablation;
mod anti_dope;
mod capping;
mod shaving;
mod token;

pub use ablation::{PdfOnlyScheme, RpmOnlyScheme};
pub use anti_dope::AntiDopeScheme;
pub use capping::CappingScheme;
pub use shaving::ShavingScheme;
pub use token::TokenScheme;

use crate::config::{ClusterConfig, SchemeKind};
use netsim::nlb::ForwardingPolicy;
use netsim::request::Request;
use powercap::monitor::PowerCondition;
use powercap::pstate::PState;
use simcore::SimTime;

/// Per-node snapshot handed to `control`.
#[derive(Debug, Clone, Copy)]
pub struct NodeSnapshot {
    /// Busy-core fraction.
    pub utilization: f64,
    /// Resident-mix power intensity.
    pub intensity: f64,
    /// Resident-mix DVFS power sensitivity.
    pub gamma: f64,
    /// Resident-mix CPU-boundedness.
    pub beta: f64,
    /// Currently commanded P-state.
    pub target: PState,
    /// Member of the suspect pool?
    pub suspect: bool,
    /// Requests in flight.
    pub inflight: usize,
}

/// Cluster snapshot for one control slot.
#[derive(Debug, Clone)]
pub struct ControlInput {
    /// Slot timestamp.
    pub now: SimTime,
    /// Supplied (budgeted) power, watts.
    pub supply_w: f64,
    /// Measured aggregate load power, watts.
    pub demand_w: f64,
    /// Monitor verdict for this slot.
    pub condition: PowerCondition,
    /// Per-node snapshots.
    pub nodes: Vec<NodeSnapshot>,
    /// Battery state of charge `[0, 1]`.
    pub battery_soc: f64,
    /// Battery stored energy, joules.
    pub battery_stored_j: f64,
    /// Battery maximum discharge power, watts.
    pub battery_max_discharge_w: f64,
    /// Battery maximum charge power, watts.
    pub battery_max_charge_w: f64,
    /// Watts the battery is currently discharging.
    pub battery_discharging_w: f64,
    /// Fraction of nodes whose power telemetry was fresh this slot
    /// (`1.0` when the fault layer is disabled). Schemes may throttle
    /// more conservatively when partially blind.
    pub telemetry_coverage: f64,
}

impl ControlInput {
    /// Current deficit (0 when under budget).
    pub fn deficit_w(&self) -> f64 {
        (self.demand_w - self.supply_w).max(0.0)
    }

    /// Current headroom (0 when over budget).
    pub fn headroom_w(&self) -> f64 {
        (self.supply_w - self.demand_w).max(0.0)
    }
}

/// An actuation the simulator performs on the scheme's behalf.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Command node `node` to P-state `target` (takes DVFS latency).
    SetPState {
        /// Node index.
        node: usize,
        /// Target state.
        target: PState,
    },
    /// Set (or clear) a RAPL watt limit on a node.
    SetPowerLimit {
        /// Node index.
        node: usize,
        /// Watt limit; `None` removes the cap.
        limit_w: Option<f64>,
    },
    /// Discharge the battery at the given watts (0 stops).
    BatteryDischarge {
        /// Requested discharge power, watts.
        watts: f64,
    },
    /// Charge the battery, offering the given watts from headroom
    /// (0 stops).
    BatteryCharge {
        /// Offered charge power, watts.
        watts: f64,
    },
}

/// A power-management scheme.
pub trait PowerScheme: Send {
    /// Display name (Table 2).
    fn name(&self) -> &'static str;

    /// The NLB forwarding policy this scheme requires.
    fn forwarding_policy(&self, config: &ClusterConfig) -> ForwardingPolicy {
        let _ = config;
        ForwardingPolicy::RoundRobin
    }

    /// Admission decision at the NLB (after the firewall).
    fn admit(&mut self, now: SimTime, req: &Request) -> bool {
        let (_, _) = (now, req);
        true
    }

    /// Requests this scheme denied at admission.
    fn denied(&self) -> u64 {
        0
    }

    /// Per-slot control decision.
    fn control(&mut self, input: &ControlInput, actions: &mut Vec<Action>);
}

/// A scheme that does nothing — the unmanaged reference cluster.
#[derive(Debug, Default)]
pub struct NoneScheme;

impl PowerScheme for NoneScheme {
    fn name(&self) -> &'static str {
        "None"
    }

    fn control(&mut self, _input: &ControlInput, _actions: &mut Vec<Action>) {}
}

/// Instantiate a scheme by kind for the given cluster.
pub fn build_scheme(kind: SchemeKind, config: &ClusterConfig) -> Box<dyn PowerScheme> {
    match kind {
        SchemeKind::None => Box::new(NoneScheme),
        SchemeKind::Capping => Box::new(CappingScheme::new()),
        SchemeKind::Shaving => Box::new(ShavingScheme::new()),
        SchemeKind::Token => Box::new(TokenScheme::new(config)),
        SchemeKind::AntiDope => Box::new(AntiDopeScheme::new(config)),
        SchemeKind::PdfOnly => Box::new(PdfOnlyScheme::new(config)),
        SchemeKind::RpmOnly => Box::new(RpmOnlyScheme::new(config)),
    }
}

/// Shared recovery hysteresis: schemes step frequency back up only after
/// this many consecutive under-budget slots with real margin, to avoid
/// cap/uncap flapping against a persistent attack.
pub(crate) const RECOVERY_SLOTS: u32 = 3;

/// Fraction of supply kept as margin before stepping back up.
pub(crate) const RECOVERY_GUARD: f64 = 0.05;

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use powercap::budget::{BudgetLevel, PowerBudget};
    use powercap::monitor::PowerMonitor;

    /// Build a 4-node snapshot (3 innocent + 1 suspect) with the given
    /// demand and supply; the condition is derived from a fresh monitor.
    pub fn input(demand_w: f64, supply_frac: BudgetLevel, utils: [f64; 4]) -> ControlInput {
        let budget = PowerBudget::for_cluster(400.0, supply_frac);
        let mut monitor = PowerMonitor::new(budget, 5, 1).unwrap();
        let condition = monitor.observe(SimTime::from_secs(1), demand_w);
        ControlInput {
            now: SimTime::from_secs(1),
            supply_w: budget.supply_w,
            demand_w,
            condition,
            nodes: utils
                .iter()
                .enumerate()
                .map(|(i, &u)| NodeSnapshot {
                    utilization: u,
                    intensity: if u > 0.0 { 0.95 } else { 0.0 },
                    gamma: if u > 0.0 { 0.85 } else { 0.0 },
                    beta: if u > 0.0 { 0.9 } else { 0.0 },
                    target: PState(12),
                    suspect: i == 3,
                    inflight: (u * 8.0) as usize,
                })
                .collect(),
            battery_soc: 1.0,
            battery_stored_j: 48_000.0,
            battery_max_discharge_w: 400.0,
            battery_max_charge_w: 100.0,
            battery_discharging_w: 0.0,
            telemetry_coverage: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::input;
    use super::*;
    use powercap::budget::BudgetLevel;

    #[test]
    fn none_scheme_is_inert() {
        let mut s = NoneScheme;
        let mut actions = Vec::new();
        s.control(&input(500.0, BudgetLevel::Low, [1.0; 4]), &mut actions);
        assert!(actions.is_empty());
        assert_eq!(s.name(), "None");
        assert_eq!(s.denied(), 0);
    }

    #[test]
    fn control_input_helpers() {
        let i = input(350.0, BudgetLevel::Medium, [1.0; 4]); // supply 340
        assert!((i.deficit_w() - 10.0).abs() < 1e-9);
        assert_eq!(i.headroom_w(), 0.0);
        let i = input(300.0, BudgetLevel::Medium, [1.0; 4]);
        assert_eq!(i.deficit_w(), 0.0);
        assert!((i.headroom_w() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn build_all_schemes() {
        let cfg = crate::config::ClusterConfig::paper_rack(BudgetLevel::Medium);
        for kind in [
            SchemeKind::None,
            SchemeKind::Capping,
            SchemeKind::Shaving,
            SchemeKind::Token,
            SchemeKind::AntiDope,
        ] {
            let s = build_scheme(kind, &cfg);
            assert_eq!(s.name(), kind.name());
        }
    }
}
