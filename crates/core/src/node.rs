//! A compute node: processor-sharing queue + DVFS + RAPL + power model.
//!
//! Couples the substrates: the queue's speed follows the DVFS effective
//! state, and the node's instantaneous power follows the queue's resident
//! load character through the server power model.

use netsim::queueing::{PsServer, PushOutcome};
use netsim::request::{Request, RequestId};
use powercap::dvfs::DvfsController;
use powercap::pstate::{PState, PStateTable};
use powercap::rapl::Rapl;
use powercap::server_power::ServerPowerModel;
use simcore::{SimDuration, SimTime};

/// One server: queue, frequency actuator, power model.
#[derive(Debug, Clone)]
pub struct ComputeNode {
    queue: PsServer,
    dvfs: DvfsController,
    rapl: Rapl,
    model: ServerPowerModel,
}

impl ComputeNode {
    /// Build a node with the paper's 100 W power model.
    pub fn new(
        start: SimTime,
        cores: usize,
        max_inflight: usize,
        dvfs_latency: SimDuration,
    ) -> Self {
        let model = ServerPowerModel::paper_default();
        let table = model.table.clone();
        let core_ghz = table.max_freq_ghz();
        ComputeNode {
            queue: PsServer::new(start, cores, core_ghz, max_inflight),
            dvfs: DvfsController::new(table, dvfs_latency),
            rapl: Rapl::new(model.clone()),
            model,
        }
    }

    /// The node's power model.
    pub fn model(&self) -> &ServerPowerModel {
        &self.model
    }

    /// The DVFS ladder.
    pub fn table(&self) -> &PStateTable {
        &self.model.table
    }

    /// Requests in flight.
    pub fn inflight(&self) -> usize {
        self.queue.len()
    }

    /// Queue epoch (see [`PsServer::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.queue.epoch()
    }

    /// Lifetime completions.
    pub fn completed(&self) -> u64 {
        self.queue.completed()
    }

    /// Lifetime rejections.
    pub fn rejected(&self) -> u64 {
        self.queue.rejected()
    }

    /// The effective P-state as of the last advance.
    pub fn effective_pstate(&self) -> PState {
        self.dvfs.effective()
    }

    /// The commanded target P-state.
    pub fn target_pstate(&self) -> PState {
        self.dvfs.target()
    }

    /// V/F reduction steps below nominal (Fig 6's y-axis).
    pub fn vf_reduction_steps(&self) -> u8 {
        self.dvfs.vf_reduction_steps()
    }

    /// Lifetime DVFS transitions commanded.
    pub fn dvfs_transitions(&self) -> u64 {
        self.dvfs.transitions()
    }

    /// Resident load character `(utilization, intensity, gamma)`.
    pub fn load_character(&self) -> (f64, f64, f64) {
        self.queue.load_character()
    }

    /// Mean CPU-boundedness of the resident mix.
    pub fn mean_beta(&self) -> f64 {
        self.queue.mean_beta()
    }

    /// Instantaneous node power, watts.
    pub fn power_w(&self) -> f64 {
        let (u, i, g) = self.queue.load_character();
        self.model.power(self.dvfs.effective(), u, i, g)
    }

    /// The power this node would still draw at the deepest P-state with
    /// its current resident mix — the floor DVFS cannot throttle below.
    /// A memory-bound mix (low γ) keeps most of its dynamic power here;
    /// the gap between [`ComputeNode::power_w`] and this floor is the
    /// only headroom a capping-style defense can actually reclaim.
    pub fn unreclaimable_power_w(&self) -> f64 {
        let (u, i, g) = self.queue.load_character();
        self.model.power(self.table().min_state(), u, i, g)
    }

    /// Offer a request to the queue.
    pub fn push(&mut self, now: SimTime, req: Request) -> PushOutcome {
        self.queue.push(now, req)
    }

    /// Predict the next completion (advance first).
    pub fn next_completion(&mut self, now: SimTime) -> Option<(SimTime, RequestId)> {
        self.queue.advance(now);
        self.queue.next_completion()
    }

    /// Attempt a completion (see [`PsServer::try_complete`]).
    pub fn try_complete(&mut self, now: SimTime, id: RequestId) -> Option<(Request, SimDuration)> {
        self.queue.try_complete(now, id)
    }

    /// Command a P-state directly; returns the settle instant.
    pub fn command_pstate(&mut self, now: SimTime, target: PState) -> SimTime {
        self.dvfs.command(now, target)
    }

    /// [`ComputeNode::command_pstate`] with an extra actuation delay
    /// (fault injection: the command reaches the governor late).
    pub fn command_pstate_after(
        &mut self,
        now: SimTime,
        target: PState,
        extra: SimDuration,
    ) -> SimTime {
        self.dvfs.command_delayed(now, target, extra)
    }

    /// Command via a RAPL watt limit resolved against the resident load;
    /// returns `(chosen state, settle instant)`.
    pub fn command_power_limit(&mut self, now: SimTime, limit_w: Option<f64>) -> (PState, SimTime) {
        self.command_power_limit_after(now, limit_w, SimDuration::ZERO)
    }

    /// [`ComputeNode::command_power_limit`] with an extra actuation delay
    /// (fault injection).
    pub fn command_power_limit_after(
        &mut self,
        now: SimTime,
        limit_w: Option<f64>,
        extra: SimDuration,
    ) -> (PState, SimTime) {
        let (i, g) = self.limit_mix();
        let state = self
            .rapl
            .set_limit_delayed(now, &mut self.dvfs, limit_w, i, g, extra);
        let settle = self.dvfs.pending_settle().unwrap_or(now);
        (state, settle)
    }

    /// The P-state a watt limit would resolve to right now, without
    /// commanding anything — the controller records this as its actuation
    /// intent for read-back verification.
    pub fn resolve_power_limit(&self, limit_w: Option<f64>) -> PState {
        let (i, g) = self.limit_mix();
        self.rapl.resolve(limit_w, i, g)
    }

    /// The `(intensity, gamma)` mix limits resolve against. An idle node
    /// reports zero intensity; resolve against a worst-case resident mix
    /// so the cap still binds when load lands mid-slot.
    fn limit_mix(&self) -> (f64, f64) {
        let (_, intensity, gamma) = self.queue.load_character();
        if intensity == 0.0 {
            (1.0, 0.9)
        } else {
            (intensity, gamma)
        }
    }

    /// Apply any matured DVFS transition to the queue speed. Call at the
    /// settle instant (and it is harmless to call at any other time).
    pub fn apply_dvfs(&mut self, now: SimTime) {
        self.dvfs.advance(now);
        let rel = self.dvfs.rel_freq();
        if (self.queue.rel_freq() - rel).abs() > 1e-12 {
            self.queue.set_rel_freq(now, rel);
        } else {
            self.queue.advance(now);
        }
    }

    /// Drain the queue (power loss), delivering each lost request to
    /// `visit`. Allocation-free (see [`PsServer::drain_with`]).
    pub fn drain_with(&mut self, now: SimTime, visit: impl FnMut(Request)) {
        self.queue.drain_with(now, visit)
    }

    /// Drain the queue (power loss) into a fresh `Vec`.
    pub fn drain(&mut self, now: SimTime) -> Vec<Request> {
        self.queue.drain(now)
    }

    /// Visit every overdue in-flight request without allocating (see
    /// [`PsServer::for_each_overdue`]).
    pub fn for_each_overdue(&self, now: SimTime, visit: impl FnMut(RequestId, SimDuration)) {
        self.queue.for_each_overdue(now, visit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::request::{RequestBuilder, SourceId, UrlId};

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    fn node() -> ComputeNode {
        ComputeNode::new(SimTime::ZERO, 4, 64, SimDuration::from_millis(10))
    }

    fn req(b: &mut RequestBuilder, work: f64, beta: f64, intensity: f64) -> Request {
        b.build(
            UrlId(0),
            SourceId(0),
            SimTime::ZERO,
            work,
            beta,
            intensity,
            0.9,
            false,
        )
    }

    #[test]
    fn idle_node_draws_idle_power() {
        let n = node();
        assert!((n.power_w() - 40.0).abs() < 1e-9);
        assert_eq!(n.vf_reduction_steps(), 0);
    }

    #[test]
    fn power_rises_with_load() {
        let mut n = node();
        let mut b = RequestBuilder::new();
        n.push(SimTime::ZERO, req(&mut b, 2.4, 1.0, 1.0));
        // 1 of 4 cores busy at intensity 1: 40 + √0.25·60 = 70 W
        // (concave utilization curve).
        assert!((n.power_w() - 70.0).abs() < 1e-9);
        for _ in 0..3 {
            n.push(SimTime::ZERO, req(&mut b, 2.4, 1.0, 1.0));
        }
        assert!((n.power_w() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_mix_pins_the_unreclaimable_floor() {
        let mut cpu = node();
        let mut mem = node();
        let mut b = RequestBuilder::new();
        for _ in 0..4 {
            cpu.push(
                SimTime::ZERO,
                b.build(UrlId(0), SourceId(0), SimTime::ZERO, 2.4, 1.0, 1.0, 0.9, false),
            );
            // The MemoryBound attack profile: β 0.15, intensity 1, γ 0.2.
            mem.push(
                SimTime::ZERO,
                b.build(UrlId(1), SourceId(1), SimTime::ZERO, 2.4, 0.15, 1.0, 0.2, true),
            );
        }
        // Identical draw at the nominal P-state...
        assert!((cpu.power_w() - mem.power_w()).abs() < 1e-9);
        // ...but the deepest P-state reclaims far less from the memory
        // mix: most of its dynamic power ignores the V/F curve.
        assert!(
            mem.unreclaimable_power_w() > cpu.unreclaimable_power_w() + 20.0,
            "mem floor {} vs cpu floor {}",
            mem.unreclaimable_power_w(),
            cpu.unreclaimable_power_w()
        );
        assert!(mem.unreclaimable_power_w() <= mem.power_w() + 1e-9);
    }

    #[test]
    fn dvfs_lowers_power_and_speed_after_settle() {
        let mut n = node();
        let mut b = RequestBuilder::new();
        for _ in 0..4 {
            n.push(SimTime::ZERO, req(&mut b, 2.4, 1.0, 1.0));
        }
        let settle = n.command_pstate(SimTime::ZERO, PState(0));
        assert_eq!(settle, SimTime::from_millis(10));
        // Before settle: unchanged.
        assert!((n.power_w() - 100.0).abs() < 1e-9);
        n.apply_dvfs(settle);
        let p = n.power_w();
        assert!(p < 60.0, "power after floor throttle: {p}");
        // Queue speed followed.
        let (eta, _) = n.next_completion(settle).unwrap();
        assert!(eta > s(1)); // originally 1 s of work, now slower
    }

    #[test]
    fn power_limit_resolves_against_resident_mix() {
        let mut n = node();
        let mut b = RequestBuilder::new();
        for _ in 0..4 {
            n.push(SimTime::ZERO, req(&mut b, 2.4, 1.0, 1.0));
        }
        let (state, settle) = n.command_power_limit(SimTime::ZERO, Some(70.0));
        assert!(state < PState(12));
        n.apply_dvfs(settle);
        assert!(n.power_w() <= 70.0 + 1e-6, "power={}", n.power_w());
    }

    #[test]
    fn power_limit_on_idle_node_uses_worst_case() {
        let mut n = node();
        let (state, _) = n.command_power_limit(SimTime::ZERO, Some(70.0));
        // Same state as a fully-loaded CPU-bound node would get.
        let m = ServerPowerModel::paper_default();
        assert_eq!(state, m.state_for_cap(70.0, 1.0, 0.9));
    }

    #[test]
    fn delayed_commands_settle_late() {
        let mut n = node();
        let settle = n.command_pstate_after(SimTime::ZERO, PState(3), SimDuration::from_secs(2));
        assert_eq!(settle, SimTime::from_millis(2_010));
        n.apply_dvfs(SimTime::from_secs(1));
        assert_eq!(n.effective_pstate(), PState(12));
        n.apply_dvfs(settle);
        assert_eq!(n.effective_pstate(), PState(3));
        // resolve_power_limit matches what the delayed command picks.
        let want = n.resolve_power_limit(Some(70.0));
        let (state, _) =
            n.command_power_limit_after(settle, Some(70.0), SimDuration::from_millis(500));
        assert_eq!(state, want);
    }

    #[test]
    fn completion_roundtrip() {
        let mut n = node();
        let mut b = RequestBuilder::new();
        let r = req(&mut b, 2.4, 1.0, 0.8);
        let id = r.id;
        n.push(SimTime::ZERO, r);
        let (eta, got) = n.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(got, id);
        let (done, sojourn) = n.try_complete(eta, id).unwrap();
        assert_eq!(done.id, id);
        assert_eq!(sojourn.as_secs(), 1);
        assert_eq!(n.completed(), 1);
        assert!((n.power_w() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn uncapping_restores_nominal() {
        let mut n = node();
        n.command_pstate(SimTime::ZERO, PState(0));
        n.apply_dvfs(SimTime::from_millis(10));
        assert_eq!(n.vf_reduction_steps(), 12);
        let (_, settle) = n.command_power_limit(SimTime::from_secs(1), None);
        n.apply_dvfs(settle);
        assert_eq!(n.vf_reduction_steps(), 0);
    }
}
