//! Shared experiment builders for tests and benches.
//!
//! One canonical copy of the scenario pieces that the unit tests, the
//! workspace integration tests, and the benches all need: the standard
//! normal-user population, the Colla-Filt http-load flood, and a
//! short-window experiment config. Kept in the library (not a
//! `tests/common` module) so both in-crate `#[cfg(test)]` code and
//! external test binaries share byte-identical builders — the golden
//! report harness depends on every caller constructing *exactly* the
//! same sources.

use crate::config::{ClusterConfig, ExperimentConfig, SchemeKind};
use powercap::budget::BudgetLevel;
use simcore::{SimDuration, SimTime};
use workloads::attacker::AttackTool;
use workloads::scenario::{ScenarioBuilder, SeedPin};
use workloads::service::ServiceKind;
use workloads::source::TrafficSource;

/// The standard normal-user population: AliOS service mix over a small
/// synthesized Alibaba utilization trace, 1000 users across 60 front
/// ends, peaking at `peak_rate` requests/s.
///
/// Assembled through [`ScenarioBuilder`] with the historical placement
/// pinned (address 1000, id-space 0, raw seed), so reports stay
/// byte-identical to the hand-rolled original.
pub fn normal_source(seed: u64, horizon: SimTime, peak_rate: f64) -> Box<dyn TrafficSource> {
    ScenarioBuilder::new()
        .with_normal_users(peak_rate, 60)
        .pinned(1_000, 0, SeedPin::Raw)
        .build(seed, horizon)
        .pop()
        .expect("builder holds exactly one ingredient")
}

/// The standard flood: http-load against the Colla-Filt service at
/// `rate` requests/s total, spread over 40 bots (stealthy per-source
/// rates), active on `[start, stop)`. Pinned to the historical
/// placement (address 50 000, id-space `1 << 40`, raw seed).
pub fn attack_source(seed: u64, rate: f64, start: SimTime, stop: SimTime) -> Box<dyn TrafficSource> {
    ScenarioBuilder::new()
        .with_attack_spanning(
            AttackTool::HttpLoad { rate },
            ServiceKind::CollaFilt,
            40,
            start,
            Some(stop),
        )
        .pinned(50_000, 1 << 40, SeedPin::Raw)
        .build(seed, stop)
        .pop()
        .expect("builder holds exactly one ingredient")
}

/// A paper-rack experiment shortened to `secs` — the standard cell for
/// quick fixed-seed tests.
pub fn quick_exp(scheme: SchemeKind, budget: BudgetLevel, secs: u64, seed: u64) -> ExperimentConfig {
    let mut exp = ExperimentConfig::paper_window(ClusterConfig::paper_rack(budget), scheme, seed);
    exp.duration = SimDuration::from_secs(secs);
    exp
}
