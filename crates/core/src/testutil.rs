//! Shared experiment builders for tests and benches.
//!
//! One canonical copy of the scenario pieces that the unit tests, the
//! workspace integration tests, and the benches all need: the standard
//! normal-user population, the Colla-Filt http-load flood, and a
//! short-window experiment config. Kept in the library (not a
//! `tests/common` module) so both in-crate `#[cfg(test)]` code and
//! external test binaries share byte-identical builders — the golden
//! report harness depends on every caller constructing *exactly* the
//! same sources.

use crate::config::{ClusterConfig, ExperimentConfig, SchemeKind};
use powercap::budget::BudgetLevel;
use simcore::{SimDuration, SimTime};
use workloads::alibaba::{AlibabaTraceConfig, UtilizationTrace};
use workloads::attacker::{AttackTool, FloodSource};
use workloads::normal::NormalUsers;
use workloads::service::{ServiceKind, ServiceMix};
use workloads::source::TrafficSource;

/// The standard normal-user population: AliOS service mix over a small
/// synthesized Alibaba utilization trace, 1000 users across 60 front
/// ends, peaking at `peak_rate` requests/s.
pub fn normal_source(seed: u64, horizon: SimTime, peak_rate: f64) -> Box<dyn TrafficSource> {
    let trace = UtilizationTrace::synthesize(&AlibabaTraceConfig::small(seed));
    Box::new(NormalUsers::new(
        trace,
        ServiceMix::alios_normal(),
        peak_rate,
        1000,
        60,
        0,
        horizon,
        seed,
    ))
}

/// The standard flood: http-load against the Colla-Filt service at
/// `rate` requests/s total, spread over 40 bots (stealthy per-source
/// rates), active on `[start, stop)`.
pub fn attack_source(seed: u64, rate: f64, start: SimTime, stop: SimTime) -> Box<dyn TrafficSource> {
    Box::new(FloodSource::against_service(
        AttackTool::HttpLoad { rate },
        ServiceKind::CollaFilt,
        50_000,
        40,
        1 << 40,
        start,
        stop,
        seed,
    ))
}

/// A paper-rack experiment shortened to `secs` — the standard cell for
/// quick fixed-seed tests.
pub fn quick_exp(scheme: SchemeKind, budget: BudgetLevel, secs: u64, seed: u64) -> ExperimentConfig {
    let mut exp = ExperimentConfig::paper_window(ClusterConfig::paper_rack(budget), scheme, seed);
    exp.duration = SimDuration::from_secs(secs);
    exp
}
