//! End-to-end tests of the full cluster simulator (dataplane + staged
//! control plane), ported from the old in-module `cluster::tests` when
//! the control plane was split out into `antidope::control`.

use antidope::config::SchemeKind;
use antidope::results::FaultReport;
use antidope::{testutil, ClusterSim};
use powercap::budget::BudgetLevel;
use simcore::faults::{CrashEvent, FaultConfig};
use simcore::{SimDuration, SimTime};
use workloads::attacker::{AttackTool, FloodSource};
use workloads::service::ServiceKind;
use workloads::source::TrafficSource;

use antidope::testutil::quick_exp;

fn normal_source(seed: u64, horizon_s: u64, peak_rate: f64) -> Box<dyn TrafficSource> {
    testutil::normal_source(seed, SimTime::from_secs(horizon_s), peak_rate)
}

fn attack_source(seed: u64, rate: f64, start_s: u64, stop_s: u64) -> Box<dyn TrafficSource> {
    testutil::attack_source(
        seed,
        rate,
        SimTime::from_secs(start_s),
        SimTime::from_secs(stop_s),
    )
}

#[test]
fn idle_cluster_draws_idle_power() {
    let exp = quick_exp(SchemeKind::None, BudgetLevel::Normal, 10, 1);
    let report = ClusterSim::run(&exp, vec![]);
    assert_eq!(report.traffic.offered, 0);
    // 4 nodes × 40 W idle.
    assert!((report.power.peak_w - 160.0).abs() < 1e-6);
    assert!((report.energy.utility_j - 1600.0).abs() < 1.0);
    assert_eq!(report.normal_sla.total(), 0);
}

#[test]
fn normal_traffic_served_fast_at_normal_pb() {
    let exp = quick_exp(SchemeKind::Capping, BudgetLevel::Normal, 60, 2);
    let report = ClusterSim::run(&exp, vec![normal_source(2, 60, 100.0)]);
    assert!(report.traffic.offered > 1000);
    assert!(report.availability() > 0.95, "{}", report.oneline());
    // Paper: below 40 ms at Normal-PB.
    assert!(
        report.normal_latency.mean_ms < 40.0,
        "{}",
        report.oneline()
    );
    assert_eq!(report.power.violations, 0);
}

#[test]
fn unmanaged_attack_violates_budget() {
    let exp = quick_exp(SchemeKind::None, BudgetLevel::Medium, 60, 3);
    let report = ClusterSim::run(
        &exp,
        vec![normal_source(3, 60, 80.0), attack_source(3, 600.0, 5, 60)],
    );
    assert!(report.power.violations > 0, "{}", report.oneline());
    assert!(report.power.peak_w > 340.0);
}

#[test]
fn capping_holds_power_but_hurts_latency() {
    let exp = quick_exp(SchemeKind::Capping, BudgetLevel::Medium, 90, 4);
    let capped = ClusterSim::run(
        &exp,
        vec![normal_source(4, 90, 80.0), attack_source(4, 600.0, 5, 90)],
    );
    let exp_none = quick_exp(SchemeKind::None, BudgetLevel::Medium, 90, 4);
    let unmanaged = ClusterSim::run(
        &exp_none,
        vec![normal_source(4, 90, 80.0), attack_source(4, 600.0, 5, 90)],
    );
    // Far fewer violating slots than unmanaged…
    assert!(
        capped.power.violation_fraction < unmanaged.power.violation_fraction * 0.6,
        "capped {} vs unmanaged {}",
        capped.power.violation_fraction,
        unmanaged.power.violation_fraction
    );
    // …at the cost of V/F reduction.
    assert!(capped.vf.max_reduction_steps > 0);
    assert!(capped.normal_latency.p90_ms > unmanaged.normal_latency.p90_ms * 0.8);
}

#[test]
fn deterministic_runs() {
    let exp = quick_exp(SchemeKind::AntiDope, BudgetLevel::Medium, 30, 7);
    let a = ClusterSim::run(
        &exp,
        vec![normal_source(7, 30, 60.0), attack_source(7, 300.0, 5, 30)],
    );
    let b = ClusterSim::run(
        &exp,
        vec![normal_source(7, 30, 60.0), attack_source(7, 300.0, 5, 30)],
    );
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn antidope_routes_suspects_to_pool() {
    let exp = quick_exp(SchemeKind::AntiDope, BudgetLevel::Medium, 30, 8);
    let report = ClusterSim::run(
        &exp,
        vec![normal_source(8, 30, 60.0), attack_source(8, 300.0, 2, 30)],
    );
    assert!(
        report.traffic.to_suspect_pool > 1000,
        "{:?}",
        report.traffic
    );
}

#[test]
fn token_sheds_load_under_attack() {
    let exp = quick_exp(SchemeKind::Token, BudgetLevel::Low, 60, 9);
    let report = ClusterSim::run(
        &exp,
        vec![normal_source(9, 60, 80.0), attack_source(9, 800.0, 2, 60)],
    );
    assert!(
        report.traffic.scheme_denied > 0,
        "token must deny requests"
    );
    assert!(report.traffic.drop_rate > 0.3, "{}", report.oneline());
}

#[test]
fn shaving_uses_battery_before_dvfs() {
    let exp = quick_exp(SchemeKind::Shaving, BudgetLevel::Medium, 45, 10);
    let report = ClusterSim::run(
        &exp,
        vec![normal_source(10, 45, 80.0), attack_source(10, 600.0, 2, 45)],
    );
    assert!(report.battery.episodes > 0);
    assert!(report.battery.discharged_j > 0.0);
    assert!(report.battery.min_soc < 1.0);
}

#[test]
fn energy_accounting_consistent() {
    let exp = quick_exp(SchemeKind::Shaving, BudgetLevel::Low, 45, 11);
    let report = ClusterSim::run(
        &exp,
        vec![normal_source(11, 45, 80.0), attack_source(11, 500.0, 2, 45)],
    );
    // Load energy = utility − charge + battery. All positive, and
    // load ≥ idle floor over the window.
    assert!(report.energy.load_j > 160.0 * 40.0);
    assert!(report.energy.utility_j > 0.0);
    assert!(report.energy.normalized_utility > 0.0 && report.energy.normalized_utility < 1.5);
}

#[test]
fn sustained_overload_trips_breaker_and_outage_follows() {
    let mut exp = quick_exp(SchemeKind::None, BudgetLevel::Medium, 120, 21);
    exp.cluster.breaker = true;
    exp.cluster.breaker_rating_factor = 1.05; // trips at 357 W
    exp.cluster.breaker_trip_delay = SimDuration::from_secs(30);
    let report = ClusterSim::run(
        &exp,
        vec![normal_source(21, 120, 80.0), attack_source(21, 600.0, 5, 120)],
    );
    let outage = report.power.outage_at_s.expect("breaker should trip");
    // The attack starts at 5 s and the trip delay is 30 s.
    assert!((30.0..90.0).contains(&outage), "outage at {outage}");
    // Power flatlines after the trip.
    let after: Vec<f64> = report
        .power
        .series
        .iter()
        .filter(|&&(t, _)| t > outage + 2.0)
        .map(|&(_, w)| w)
        .collect();
    assert!(!after.is_empty());
    assert!(after.iter().all(|&w| w == 0.0), "power after outage: {after:?}");
    // Requests arriving during the outage are all dropped.
    assert!(report.normal_sla.drop_rate() > 0.2, "{}", report.oneline());
}

#[test]
fn antidope_prevents_the_outage() {
    let mut exp = quick_exp(SchemeKind::AntiDope, BudgetLevel::Medium, 120, 21);
    exp.cluster.breaker = true;
    exp.cluster.breaker_rating_factor = 1.05;
    exp.cluster.breaker_trip_delay = SimDuration::from_secs(30);
    let report = ClusterSim::run(
        &exp,
        vec![normal_source(21, 120, 80.0), attack_source(21, 600.0, 5, 120)],
    );
    assert_eq!(report.power.outage_at_s, None, "{}", report.oneline());
}

#[test]
fn breaker_disabled_by_default() {
    let exp = quick_exp(SchemeKind::None, BudgetLevel::Medium, 60, 22);
    let report = ClusterSim::run(
        &exp,
        vec![normal_source(22, 60, 80.0), attack_source(22, 600.0, 5, 60)],
    );
    assert_eq!(report.power.outage_at_s, None);
    assert!(report.power.violations > 0);
}

/// A minimal RAPL-style scheme: per-node watt limits instead of
/// explicit P-states — exercises `Action::SetPowerLimit` end to end.
struct RaplCapper {
    per_node_limit_w: f64,
}

impl antidope::scheme::PowerScheme for RaplCapper {
    fn name(&self) -> &'static str {
        "RaplCapper"
    }
    fn control(
        &mut self,
        input: &antidope::scheme::ControlInput,
        actions: &mut Vec<antidope::scheme::Action>,
    ) {
        for i in 0..input.nodes.len() {
            actions.push(antidope::scheme::Action::SetPowerLimit {
                node: i,
                limit_w: Some(self.per_node_limit_w),
            });
        }
    }
}

#[test]
fn rapl_limit_actions_enforce_per_node_caps() {
    let exp = quick_exp(SchemeKind::None, BudgetLevel::Medium, 60, 31);
    let scheme = Box::new(RaplCapper {
        per_node_limit_w: 80.0,
    });
    let report = ClusterSim::run_with_scheme(
        &exp,
        scheme,
        vec![normal_source(31, 60, 80.0), attack_source(31, 600.0, 5, 60)],
    );
    // 4 nodes capped at 80 W each: the cluster stays at/below 320 W
    // (within one slot of enforcement slack at the attack onset).
    let over: usize = report
        .power
        .series
        .iter()
        .filter(|&&(t, w)| t > 10.0 && w > 321.0)
        .count();
    assert_eq!(over, 0, "per-node RAPL caps must bound the cluster");
    assert!(report.vf.max_reduction_steps > 0);
}

#[test]
fn thermal_prochot_clamps_hot_nodes() {
    let mut exp = quick_exp(SchemeKind::None, BudgetLevel::Normal, 240, 25);
    exp.cluster.thermal = true;
    let report = ClusterSim::run(
        &exp,
        vec![normal_source(25, 240, 80.0), attack_source(25, 600.0, 5, 240)],
    );
    // Sustained near-nameplate power heats past the 75 °C PROCHOT
    // threshold within a few thermal time constants.
    assert!(report.thermal.peak_temp_c > 75.0, "{:?}", report.thermal);
    assert!(report.thermal.prochot_events > 0);
    assert_eq!(report.thermal.tripped_nodes, 0, "trip needs > 95 °C");
    // The hardware clamp reduced frequency somewhere.
    assert!(report.vf.max_reduction_steps >= 8);
}

#[test]
fn thermal_disabled_reports_zeros() {
    let exp = quick_exp(SchemeKind::None, BudgetLevel::Normal, 30, 26);
    let report = ClusterSim::run(&exp, vec![attack_source(26, 600.0, 0, 30)]);
    assert_eq!(report.thermal.peak_temp_c, 0.0);
    assert_eq!(report.thermal.prochot_events, 0);
}

#[test]
fn antidope_keeps_innocent_nodes_cool() {
    let mut exp = quick_exp(SchemeKind::AntiDope, BudgetLevel::Normal, 240, 27);
    exp.cluster.thermal = true;
    let report = ClusterSim::run(
        &exp,
        vec![normal_source(27, 240, 80.0), attack_source(27, 600.0, 5, 240)],
    );
    let none_exp = {
        let mut e = quick_exp(SchemeKind::None, BudgetLevel::Normal, 240, 27);
        e.cluster.thermal = true;
        e
    };
    let unmanaged = ClusterSim::run(
        &none_exp,
        vec![normal_source(27, 240, 80.0), attack_source(27, 600.0, 5, 240)],
    );
    // Isolation confines the heat to the suspect node: far fewer
    // PROCHOT assertions than with the attack spread everywhere.
    assert!(
        report.thermal.prochot_events < unmanaged.thermal.prochot_events,
        "anti {} !< unmanaged {}",
        report.thermal.prochot_events,
        unmanaged.thermal.prochot_events
    );
}

#[test]
fn firewall_blocks_loud_attackers() {
    // One source at 5000 rps over only 5 bots = 1000 rps/bot: way
    // over the 150 rps threshold.
    let exp = quick_exp(SchemeKind::Capping, BudgetLevel::Normal, 30, 12);
    let loud: Box<dyn TrafficSource> = Box::new(FloodSource::against_service(
        AttackTool::HttpLoad { rate: 5000.0 },
        ServiceKind::TextCont,
        90_000,
        5,
        1 << 42,
        SimTime::ZERO,
        SimTime::from_secs(30),
        12,
    ));
    let report = ClusterSim::run(&exp, vec![loud]);
    assert!(
        report.traffic.firewall_blocked > 10_000,
        "{:?}",
        report.traffic
    );
}

// ---- fault-injection layer ----

#[test]
fn noop_fault_plan_changes_only_the_report() {
    let mut exp = quick_exp(SchemeKind::AntiDope, BudgetLevel::Medium, 30, 41);
    let base = ClusterSim::run(
        &exp,
        vec![normal_source(41, 30, 60.0), attack_source(41, 300.0, 5, 30)],
    );
    exp.cluster.faults = Some(FaultConfig::default());
    let mut chaotic = ClusterSim::run(
        &exp,
        vec![normal_source(41, 30, 60.0), attack_source(41, 300.0, 5, 30)],
    );
    let fr = chaotic.faults.take().expect("fault report present");
    assert_eq!(fr, FaultReport::default(), "no-op plan must inject nothing");
    // With the report's faults field removed, a no-op plan is
    // byte-identical to running without the fault layer at all.
    assert_eq!(format!("{base:?}"), format!("{chaotic:?}"));
}

#[test]
fn crashed_node_reboots_and_returns() {
    let mut exp = quick_exp(SchemeKind::Capping, BudgetLevel::Normal, 60, 42);
    exp.cluster.faults = Some(FaultConfig {
        crashes: vec![CrashEvent {
            node: 1,
            at: SimTime::from_secs(10),
        }],
        reboot_after: SimDuration::from_secs(15),
        ..FaultConfig::default()
    });
    let report = ClusterSim::run(&exp, vec![normal_source(42, 60, 200.0)]);
    let faults = report.faults.as_ref().expect("fault report");
    assert_eq!(faults.crashes, 1);
    assert_eq!(faults.reboots, 1);
    assert!(faults.lost_to_crash > 0, "{faults:?}");
    // The NLB routes around the dead node: service continues.
    assert!(report.availability() > 0.9, "{}", report.oneline());
}

#[test]
fn crash_without_reboot_stays_down() {
    let mut exp = quick_exp(SchemeKind::Capping, BudgetLevel::Normal, 30, 46);
    exp.cluster.faults = Some(FaultConfig {
        crashes: vec![CrashEvent {
            node: 0,
            at: SimTime::from_secs(5),
        }],
        // reboot_after stays ZERO: the node never comes back.
        ..FaultConfig::default()
    });
    let report = ClusterSim::run(&exp, vec![normal_source(46, 30, 150.0)]);
    let faults = report.faults.as_ref().expect("fault report");
    assert_eq!(faults.crashes, 1);
    assert_eq!(faults.reboots, 0);
    assert!(report.availability() > 0.9, "{}", report.oneline());
}

#[test]
fn telemetry_blackout_engages_watchdog_and_recovers() {
    let mut exp = quick_exp(SchemeKind::AntiDope, BudgetLevel::Medium, 60, 43);
    exp.cluster.faults = Some(FaultConfig {
        blackouts: vec![(SimTime::from_secs(15), SimTime::from_secs(30))],
        ..FaultConfig::default()
    });
    let report = ClusterSim::run(
        &exp,
        vec![normal_source(43, 60, 80.0), attack_source(43, 600.0, 5, 60)],
    );
    let faults = report.faults.as_ref().expect("fault report");
    assert!(faults.blackout_samples > 0);
    assert!(faults.degraded_slots > 0, "{faults:?}");
    assert_eq!(faults.degraded_episodes, 1, "{faults:?}");
    assert!(faults.mttr_s > 0.0, "watchdog must disengage after the window");
    assert!(faults.time_degraded_s >= 15.0, "{faults:?}");
    // Degraded mode is safe, not dead: the run still completes with
    // most legitimate traffic served.
    assert!(report.availability() > 0.5, "{}", report.oneline());
}

#[test]
fn failed_charger_blocks_recharge() {
    let mut exp = quick_exp(SchemeKind::Shaving, BudgetLevel::Medium, 45, 44);
    exp.cluster.faults = Some(FaultConfig {
        charger_fails_at: Some(SimTime::ZERO),
        ..FaultConfig::default()
    });
    let report = ClusterSim::run(
        &exp,
        vec![normal_source(44, 45, 80.0), attack_source(44, 600.0, 2, 20)],
    );
    let faults = report.faults.as_ref().expect("fault report");
    assert!(faults.charger_blocked_slots > 0, "{faults:?}");
    assert_eq!(report.battery.charge_drawn_j, 0.0);
}

#[test]
fn battery_fade_derates_capacity() {
    let mut exp = quick_exp(SchemeKind::Shaving, BudgetLevel::Medium, 10, 45);
    let base_cap = ClusterSim::run(&exp, vec![]).battery.capacity_j;
    exp.cluster.faults = Some(FaultConfig {
        battery_fade: 0.5,
        ..FaultConfig::default()
    });
    let faded_cap = ClusterSim::run(&exp, vec![]).battery.capacity_j;
    assert!(
        (faded_cap - base_cap * 0.5).abs() < 1e-6,
        "{faded_cap} vs half of {base_cap}"
    );
}

// -------------------------------------------------------------------
// Control-plane trace recording (the live-plane record/replay surface)
// -------------------------------------------------------------------

#[test]
fn recording_leaves_the_legacy_run_byte_identical() {
    let mut exp = quick_exp(SchemeKind::AntiDope, BudgetLevel::Medium, 30, 51);
    exp.cluster.faults = Some(FaultConfig {
        sensor_dropout_p: 0.2,
        actuator_loss_p: 0.3,
        crashes: vec![CrashEvent {
            node: 1,
            at: SimTime::from_secs(10),
        }],
        reboot_after: SimDuration::from_secs(8),
        ..FaultConfig::default()
    });
    let sources = || vec![normal_source(51, 30, 60.0), attack_source(51, 300.0, 5, 30)];
    let plain = ClusterSim::run(&exp, sources());
    let (recorded, trace) = ClusterSim::run_recorded(&exp, sources());
    assert_eq!(
        format!("{plain:?}"),
        format!("{recorded:?}"),
        "recording must not perturb the simulation"
    );
    assert_eq!(trace.slots.len(), 30, "one record per control slot");
    assert!(trace.footer.peak_true_w > 0.0);
    // The trace must survive the JSONL round trip bit-exactly.
    let jsonl = trace.to_jsonl();
    let back = antidope::ControlTrace::from_jsonl_str(&jsonl).expect("well-formed trace");
    assert_eq!(format!("{trace:?}"), format!("{back:?}"));
}

#[test]
fn recording_leaves_the_sharded_run_byte_identical() {
    use antidope::ShardedClusterSim;
    let mut exp = quick_exp(SchemeKind::AntiDope, BudgetLevel::Medium, 30, 52);
    exp.cluster.shards = 2;
    exp.cluster.faults = Some(FaultConfig {
        sensor_dropout_p: 0.2,
        actuator_loss_p: 0.3,
        blackouts: vec![(SimTime::from_secs(8), SimTime::from_secs(16))],
        ..FaultConfig::default()
    });
    let sources = || vec![normal_source(52, 30, 60.0), attack_source(52, 300.0, 5, 30)];
    let plain = ShardedClusterSim::run(&exp, sources());
    let (recorded, trace) = ShardedClusterSim::run_recorded(&exp, sources());
    assert_eq!(
        format!("{plain:?}"),
        format!("{recorded:?}"),
        "recording must not perturb the sharded simulation"
    );
    assert_eq!(trace.slots.len(), 30);
    let jsonl = trace.to_jsonl();
    let back = antidope::ControlTrace::from_jsonl_str(&jsonl).expect("well-formed trace");
    assert_eq!(format!("{trace:?}"), format!("{back:?}"));
}
