//! Hot-path cost of adaptive (profiler-driven) classification.
//!
//! The online profiler must not tax the forwarding fast path: routing a
//! request under `AdaptiveSplit` is one `FxHashMap` lookup, just like the
//! static offline `UrlSplit`. This bench pins that claim — results feed
//! `BENCH_profiler.json` at the repo root. All three variants route the
//! same request stream; none allocates per request.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use netsim::nlb::{ForwardingPolicy, Nlb};
use netsim::request::{Request, RequestBuilder, SourceId, UrlId};
use netsim::suspect::{FlowClass, SuspectList};
use profiler::{AdaptiveSuspectList, PowerProfiler, ProfilerConfig};
use simcore::{FxHashMap, SimTime};

const URLS: u16 = 32;
const STREAM: usize = 100_000;

/// A request stream cycling over `URLS` distinct URLs.
fn request_stream() -> Vec<Request> {
    let mut b = RequestBuilder::new();
    (0..STREAM)
        .map(|i| {
            b.build(
                UrlId((i as u16) % URLS),
                SourceId(0),
                SimTime::ZERO,
                1.0,
                0.5,
                0.5,
                0.5,
                false,
            )
        })
        .collect()
}

/// Train a real profiler until it has classified all `URLS` URLs, and
/// hand back its published list — the artifact the hot path consults.
fn trained_list() -> AdaptiveSuspectList {
    let cfg = ProfilerConfig::default();
    let mut engine = PowerProfiler::new(cfg.clone());
    for _tick in 0..8 {
        for u in 0..URLS {
            let intensity = if u % 4 == 0 { 0.95 } else { 0.30 };
            let utilization = 0.6f64;
            let power =
                cfg.idle_w + cfg.dynamic_scale_w * utilization.powf(cfg.util_exponent) * intensity;
            engine.observe_node(Some(power), utilization, true, &[(UrlId(u), 1)]);
        }
        engine.end_tick();
    }
    assert_eq!(engine.list().classified(), URLS as usize);
    engine.list().clone()
}

fn static_nlb() -> Nlb {
    let mut list = SuspectList::new(0.7, FlowClass::Innocent).expect("valid threshold");
    for u in 0..URLS {
        let intensity = if u % 4 == 0 { 0.95 } else { 0.30 };
        list.set_profile(UrlId(u), intensity).expect("valid intensity");
    }
    Nlb::new(
        4,
        ForwardingPolicy::UrlSplit {
            list,
            suspect_pool: vec![3],
            innocent_pool: vec![0, 1, 2],
        },
    )
    .expect("valid pools")
}

fn adaptive_nlb() -> Nlb {
    // Same classification as `static_nlb`, but expressed as the class map
    // an online profiler would publish.
    let mut classes = FxHashMap::default();
    for u in 0..URLS {
        let class = if u % 4 == 0 {
            FlowClass::Suspect
        } else {
            FlowClass::Innocent
        };
        classes.insert(UrlId(u), class);
    }
    Nlb::new(
        4,
        ForwardingPolicy::AdaptiveSplit {
            classes,
            default_class: FlowClass::Innocent,
            suspect_pool: vec![3],
            innocent_pool: vec![0, 1, 2],
        },
    )
    .expect("valid pools")
}

fn bench_classify_hot_path(c: &mut Criterion) {
    let stream = request_stream();
    let mut g = c.benchmark_group("classify_hot_path");
    g.throughput(Throughput::Elements(STREAM as u64));

    // Floor: a bare FxHashMap lookup per request, no routing at all.
    let mut raw = FxHashMap::default();
    for u in 0..URLS {
        raw.insert(UrlId(u), u % 4 == 0);
    }
    g.bench_function("raw_fxhashmap_lookup_100k", |b| {
        b.iter(|| {
            let mut suspects = 0u64;
            for r in &stream {
                if raw.get(&r.url).copied().unwrap_or(false) {
                    suspects += 1;
                }
            }
            black_box(suspects)
        })
    });

    // The offline baseline: UrlSplit over a static SuspectList.
    g.bench_function("static_url_split_route_100k", |b| {
        let mut nlb = static_nlb();
        b.iter(|| {
            let mut acc = 0usize;
            for r in &stream {
                acc = acc.wrapping_add(nlb.route(r));
            }
            black_box(acc)
        })
    });

    // The profiler-driven path: AdaptiveSplit over a published class map.
    g.bench_function("adaptive_split_route_100k", |b| {
        let mut nlb = adaptive_nlb();
        b.iter(|| {
            let mut acc = 0usize;
            for r in &stream {
                acc = acc.wrapping_add(nlb.route(r));
            }
            black_box(acc)
        })
    });

    // Direct classification through the profiler's own list type (what
    // the learning loop consults off the hot path).
    g.bench_function("adaptive_list_classify_100k", |b| {
        let list = trained_list();
        b.iter(|| {
            let mut suspects = 0u64;
            for r in &stream {
                if list.classify(r.url) == FlowClass::Suspect {
                    suspects += 1;
                }
            }
            black_box(suspects)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_classify_hot_path);
criterion_main!(benches);
