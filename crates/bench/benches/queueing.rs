//! Benchmarks of the network substrate hot paths: processor-sharing
//! queue churn, token buckets, and firewall inspection.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netsim::firewall::{Firewall, FirewallConfig};
use netsim::queueing::reference::ReferencePsServer;
use netsim::queueing::PsServer;
use netsim::request::{RequestBuilder, SourceId, UrlId};
use netsim::token_bucket::{PowerTokenBucket, TokenBucket};
use simcore::SimTime;

fn bench_ps_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("ps_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("push_complete_cycle_10k", |b| {
        b.iter(|| {
            let mut srv = PsServer::new(SimTime::ZERO, 4, 2.4, 64);
            let mut builder = RequestBuilder::new();
            let mut now = SimTime::ZERO;
            let mut done = 0u64;
            for i in 0..10_000u64 {
                let arrival = SimTime::from_micros(i * 100);
                let req = builder.build(
                    UrlId(0),
                    SourceId(0),
                    arrival,
                    0.0002, // light request: keeps the queue shallow
                    0.8,
                    0.8,
                    0.8,
                    false,
                );
                now = arrival.max(now);
                srv.push(now, req);
                while let Some((eta, id)) = srv.next_completion() {
                    if eta > arrival {
                        break;
                    }
                    if srv.try_complete(eta, id).is_some() {
                        done += 1;
                        now = eta.max(now);
                    }
                }
            }
            black_box(done)
        })
    });
    g.finish();
}

/// Steady-state churn ops per measurement iteration.
const FLOOD_CHURN: u64 = 1_000;

/// Flood-occupancy churn against the virtual-time queue: prefill
/// `occupancy` heavy resident requests, then measure
/// push → predict → complete cycles of light requests through the
/// standing flood.
fn flood_churn_vt(cores: usize, occupancy: usize) -> u64 {
    let mut srv = PsServer::new(SimTime::ZERO, cores, 2.4, occupancy + 2);
    let mut b = RequestBuilder::new();
    let mut now = SimTime::ZERO;
    for _ in 0..occupancy {
        srv.push(now, b.build(UrlId(0), SourceId(0), now, 1e9, 0.8, 0.8, 0.8, true));
    }
    let mut done = 0u64;
    for _ in 0..FLOOD_CHURN {
        let req = b.build(UrlId(1), SourceId(1), now, 1e-7, 0.8, 0.8, 0.8, false);
        srv.push(now, req);
        let (eta, id) = srv.next_completion().expect("queue is non-empty");
        if srv.try_complete(eta, id).is_some() {
            done += 1;
        }
        now = eta.max(now);
    }
    done
}

/// Same churn against the O(n)-per-event reference implementation.
fn flood_churn_reference(cores: usize, occupancy: usize) -> u64 {
    let mut srv = ReferencePsServer::new(SimTime::ZERO, cores, 2.4, occupancy + 2);
    let mut b = RequestBuilder::new();
    let mut now = SimTime::ZERO;
    for _ in 0..occupancy {
        srv.push(now, b.build(UrlId(0), SourceId(0), now, 1e9, 0.8, 0.8, 0.8, true));
    }
    let mut done = 0u64;
    for _ in 0..FLOOD_CHURN {
        let req = b.build(UrlId(1), SourceId(1), now, 1e-7, 0.8, 0.8, 0.8, false);
        srv.push(now, req);
        let (eta, id) = srv.next_completion().expect("queue is non-empty");
        if srv.try_complete(eta, id).is_some() {
            done += 1;
        }
        now = eta.max(now);
    }
    done
}

/// The asymptotic separation the virtual-time rewrite buys: results feed
/// `BENCH_queueing.json` at the repo root.
fn bench_queueing_flood(c: &mut Criterion) {
    let mut g = c.benchmark_group("queueing_flood");
    g.throughput(Throughput::Elements(FLOOD_CHURN));
    g.sample_size(10);
    for &cores in &[1usize, 16] {
        for &occupancy in &[100usize, 10_000] {
            let label = format!("c{cores}_n{occupancy}");
            g.bench_with_input(
                BenchmarkId::new("virtual_time", &label),
                &(cores, occupancy),
                |b, &(cores, occupancy)| b.iter(|| black_box(flood_churn_vt(cores, occupancy))),
            );
            g.bench_with_input(
                BenchmarkId::new("reference", &label),
                &(cores, occupancy),
                |b, &(cores, occupancy)| {
                    b.iter(|| black_box(flood_churn_reference(cores, occupancy)))
                },
            );
        }
    }
    g.finish();
}

fn bench_token_buckets(c: &mut Criterion) {
    let mut g = c.benchmark_group("token_bucket");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("classic_100k", |b| {
        b.iter(|| {
            let mut tb = TokenBucket::new(SimTime::ZERO, 1000.0, 100.0);
            let mut ok = 0u64;
            for i in 0..100_000u64 {
                if tb.try_consume(SimTime::from_micros(i * 10), 1.0) {
                    ok += 1;
                }
            }
            black_box(ok)
        })
    });
    g.bench_function("power_100k", |b| {
        b.iter(|| {
            let mut tb = PowerTokenBucket::new(SimTime::ZERO, 240.0, 2.0);
            let mut ok = 0u64;
            for i in 0..100_000u64 {
                if tb.admit(SimTime::from_micros(i * 10), 2.2) {
                    ok += 1;
                }
            }
            black_box(ok)
        })
    });
    g.finish();
}

fn bench_firewall(c: &mut Criterion) {
    let mut g = c.benchmark_group("firewall");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("inspect_100k_64_sources", |b| {
        b.iter(|| {
            let mut fw = Firewall::new(SimTime::ZERO, FirewallConfig::default());
            let mut passed = 0u64;
            for i in 0..100_000u64 {
                let src = SourceId((i % 64) as u32);
                let t = SimTime::from_micros(i * 20);
                if fw.inspect(t, src) == netsim::firewall::FirewallVerdict::Pass {
                    passed += 1;
                }
            }
            black_box(passed)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ps_queue,
    bench_queueing_flood,
    bench_token_buckets,
    bench_firewall
);
criterion_main!(benches);
