//! Benchmarks of the network substrate hot paths: processor-sharing
//! queue churn, token buckets, and firewall inspection.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use netsim::firewall::{Firewall, FirewallConfig};
use netsim::queueing::PsServer;
use netsim::request::{RequestBuilder, SourceId, UrlId};
use netsim::token_bucket::{PowerTokenBucket, TokenBucket};
use simcore::SimTime;

fn bench_ps_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("ps_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("push_complete_cycle_10k", |b| {
        b.iter(|| {
            let mut srv = PsServer::new(SimTime::ZERO, 4, 2.4, 64);
            let mut builder = RequestBuilder::new();
            let mut now = SimTime::ZERO;
            let mut done = 0u64;
            for i in 0..10_000u64 {
                let arrival = SimTime::from_micros(i * 100);
                let req = builder.build(
                    UrlId(0),
                    SourceId(0),
                    arrival,
                    0.0002, // light request: keeps the queue shallow
                    0.8,
                    0.8,
                    0.8,
                    false,
                );
                now = arrival.max(now);
                srv.push(now, req);
                while let Some((eta, id)) = srv.next_completion() {
                    if eta > arrival {
                        break;
                    }
                    if srv.try_complete(eta, id).is_some() {
                        done += 1;
                        now = eta.max(now);
                    }
                }
            }
            black_box(done)
        })
    });
    g.finish();
}

fn bench_token_buckets(c: &mut Criterion) {
    let mut g = c.benchmark_group("token_bucket");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("classic_100k", |b| {
        b.iter(|| {
            let mut tb = TokenBucket::new(SimTime::ZERO, 1000.0, 100.0);
            let mut ok = 0u64;
            for i in 0..100_000u64 {
                if tb.try_consume(SimTime::from_micros(i * 10), 1.0) {
                    ok += 1;
                }
            }
            black_box(ok)
        })
    });
    g.bench_function("power_100k", |b| {
        b.iter(|| {
            let mut tb = PowerTokenBucket::new(SimTime::ZERO, 240.0, 2.0);
            let mut ok = 0u64;
            for i in 0..100_000u64 {
                if tb.admit(SimTime::from_micros(i * 10), 2.2) {
                    ok += 1;
                }
            }
            black_box(ok)
        })
    });
    g.finish();
}

fn bench_firewall(c: &mut Criterion) {
    let mut g = c.benchmark_group("firewall");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("inspect_100k_64_sources", |b| {
        b.iter(|| {
            let mut fw = Firewall::new(SimTime::ZERO, FirewallConfig::default());
            let mut passed = 0u64;
            for i in 0..100_000u64 {
                let src = SourceId((i % 64) as u32);
                let t = SimTime::from_micros(i * 20);
                if fw.inspect(t, src) == netsim::firewall::FirewallVerdict::Pass {
                    passed += 1;
                }
            }
            black_box(passed)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ps_queue, bench_token_buckets, bench_firewall);
criterion_main!(benches);
