//! Microbenchmarks of the DES substrate: event queue and engine
//! dispatch throughput — the floor under every experiment's runtime.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simcore::{Engine, EventQueue, Scheduler, SimDuration, SimModel, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for &n in &[1_000usize, 100_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::with_capacity(n);
                // Pseudorandom times via a multiplicative hash — no RNG
                // in the hot loop.
                for i in 0..n {
                    let t = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % 1_000_000;
                    q.push(SimTime::from_micros(t), i as u32);
                }
                let mut sum = 0u64;
                while let Some(ev) = q.pop() {
                    sum = sum.wrapping_add(ev.event as u64);
                }
                black_box(sum)
            })
        });
    }
    g.finish();
}

struct Ticker {
    period: SimDuration,
    count: u64,
}

impl SimModel for Ticker {
    type Event = ();
    fn handle(&mut self, _now: SimTime, _ev: (), sched: &mut Scheduler<()>) {
        self.count += 1;
        sched.after(self.period, ());
    }
}

fn bench_engine_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(1_000_000));
    g.bench_function("dispatch_1M_events", |b| {
        b.iter(|| {
            let mut e = Engine::new(Ticker {
                period: SimDuration::from_micros(1),
                count: 0,
            });
            e.schedule(SimTime::ZERO, ());
            e.run(SimTime::from_secs(10), 1_000_000);
            black_box(e.model().count)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_engine_dispatch);
criterion_main!(benches);
