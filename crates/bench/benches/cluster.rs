//! End-to-end macro benchmarks: full cluster simulation throughput per
//! scheme (one group per evaluation table), plus trace synthesis.
//!
//! These are the numbers that determine how long the paper-scale figure
//! regeneration takes: simulated-seconds-per-wall-second for each
//! scheme's control loop.

use antidope::{run_experiment, ExperimentConfig, SchemeKind};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dope_bench::scenarios;
use powercap::BudgetLevel;
use simcore::SimTime;
use workloads::alibaba::{AlibabaTraceConfig, UtilizationTrace};
use workloads::service::ServiceKind;

fn bench_full_sim_per_scheme(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_sim_10s");
    g.sample_size(10);
    for scheme in [
        SchemeKind::None,
        SchemeKind::Capping,
        SchemeKind::Shaving,
        SchemeKind::Token,
        SchemeKind::AntiDope,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    black_box(scenarios::run_standard(
                        scheme,
                        BudgetLevel::Medium,
                        ServiceKind::CollaFilt,
                        600.0,
                        10,
                        42,
                        true,
                    ))
                })
            },
        );
    }
    g.finish();
}

fn bench_trace_synthesis(c: &mut Criterion) {
    c.bench_function("alibaba_trace_synthesize_paper", |b| {
        b.iter(|| {
            black_box(UtilizationTrace::synthesize(
                &AlibabaTraceConfig::paper_default(),
            ))
        })
    });
}

fn bench_arrival_generation(c: &mut Criterion) {
    c.bench_function("normal_users_generate_60s", |b| {
        b.iter(|| {
            let mut src = scenarios::normal_users(7, SimTime::from_secs(60));
            let mut n = 0u64;
            let mut last = SimTime::ZERO;
            while let Some(r) = workloads::source::TrafficSource::next_request(&mut *src, last) {
                last = r.arrival;
                n += 1;
            }
            black_box(n)
        })
    });
}

fn bench_matrix_cell(c: &mut Criterion) {
    // One (scheme, budget) evaluation cell at figure fidelity but a
    // short window — the unit the fig16/17/19 matrix parallelizes over.
    let mut g = c.benchmark_group("eval_matrix_cell_30s");
    g.sample_size(10);
    g.bench_function("antidope_medium", |b| {
        let exp = scenarios::experiment(SchemeKind::AntiDope, BudgetLevel::Medium, 30, 42, true);
        b.iter(|| {
            black_box(run_experiment(&exp, &|e: &ExperimentConfig| {
                let horizon = SimTime::ZERO + e.duration;
                vec![
                    scenarios::normal_users(e.seed, horizon),
                    scenarios::service_attack(ServiceKind::CollaFilt, 600.0, e.seed, horizon),
                ]
            }))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_full_sim_per_scheme,
    bench_trace_synthesis,
    bench_arrival_generation,
    bench_matrix_cell
);
criterion_main!(benches);
