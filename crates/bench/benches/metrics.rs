//! Microbenchmarks of the metrics substrate: the histogram and quantile
//! estimators every per-request record path touches.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dcmetrics::{Ecdf, LatencyHistogram, OnlineSummary, P2Quantile};
use simcore::rng::SimRng;

fn samples(n: usize) -> Vec<f64> {
    let mut rng = SimRng::new(7);
    (0..n).map(|_| 1e-3 + rng.unit_f64() * 0.5).collect()
}

fn bench_histogram(c: &mut Criterion) {
    let xs = samples(100_000);
    let mut g = c.benchmark_group("metrics");
    g.throughput(Throughput::Elements(xs.len() as u64));
    g.bench_function("latency_histogram_record_100k", |b| {
        b.iter(|| {
            let mut h = LatencyHistogram::for_latency_secs();
            for &x in &xs {
                h.record(x);
            }
            black_box(h.p90())
        })
    });
    g.bench_function("p2_quantile_record_100k", |b| {
        b.iter(|| {
            let mut q = P2Quantile::new(0.9);
            for &x in &xs {
                q.record(x);
            }
            black_box(q.estimate())
        })
    });
    g.bench_function("welford_record_100k", |b| {
        b.iter(|| {
            let mut s = OnlineSummary::new();
            for &x in &xs {
                s.record(x);
            }
            black_box(s.std_dev())
        })
    });
    g.bench_function("ecdf_build_and_query_10k", |b| {
        let small = &xs[..10_000];
        b.iter(|| {
            let mut e = Ecdf::from_samples(small.iter().copied());
            black_box(e.curve(0.0, 0.6, 64))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_histogram);
criterion_main!(benches);
