//! Benchmarks of the power-management decision paths: the server power
//! model, the DPM throttling search (Algorithm 1), and the Eq (1)
//! request-control solver — the per-slot cost of each scheme.

use antidope::dpm::{self, NodeState};
use antidope::request_control::{class_from_profile, solve};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use powercap::capper::{ServerLoad, UniformCapper};
use powercap::pstate::PState;
use powercap::server_power::ServerPowerModel;

fn bench_power_model(c: &mut Criterion) {
    let m = ServerPowerModel::paper_default();
    c.bench_function("server_power_eval", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..13u8 {
                acc += m.power(black_box(PState(i)), 0.8, 0.9, 0.7);
            }
            black_box(acc)
        })
    });
    c.bench_function("state_for_cap", |b| {
        b.iter(|| black_box(m.state_for_cap(black_box(72.5), 0.95, 0.6)))
    });
}

fn nodes(n: usize) -> Vec<NodeState> {
    (0..n)
        .map(|i| NodeState {
            utilization: 0.3 + 0.6 * (i as f64 / n as f64),
            intensity: 0.9,
            gamma: if i % 2 == 0 { 0.85 } else { 0.4 },
            beta: if i % 2 == 0 { 0.9 } else { 0.4 },
            current: PState(12),
            suspect: i >= n - n / 4 - 1,
        })
        .collect()
}

fn bench_dpm(c: &mut Criterion) {
    let m = ServerPowerModel::paper_default();
    let mut g = c.benchmark_group("dpm_solve");
    for &n in &[4usize, 16, 64, 256] {
        let ns = nodes(n);
        let budget = n as f64 * 70.0; // forces a real search
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(dpm::solve(&m, budget, &ns)))
        });
    }
    g.finish();
}

fn bench_request_control(c: &mut Criterion) {
    let table = powercap::PStateTable::paper_default();
    let classes: Vec<_> = (0..8)
        .map(|i| {
            class_from_profile(
                5.0 + i as f64,
                &table,
                60.0,
                0.5 + 0.05 * i as f64,
                0.3 + 0.08 * i as f64,
                0.2 + 0.09 * i as f64,
            )
        })
        .collect();
    c.bench_function("request_control_solve_8cls", |b| {
        b.iter(|| black_box(solve(black_box(180.0), &classes)))
    });
}

fn bench_uniform_capper(c: &mut Criterion) {
    let capper = UniformCapper::new(ServerPowerModel::paper_default());
    let loads: Vec<ServerLoad> = (0..64)
        .map(|i| ServerLoad {
            utilization: (i as f64 / 64.0),
            intensity: 0.9,
            gamma: 0.8,
        })
        .collect();
    c.bench_function("uniform_capper_64_nodes", |b| {
        b.iter(|| black_box(capper.state_for_budget(black_box(4200.0), &loads)))
    });
}

criterion_group!(
    benches,
    bench_power_model,
    bench_dpm,
    bench_request_control,
    bench_uniform_capper
);
criterion_main!(benches);
