//! Table 1 — the evaluated workload zoo, with the calibrated parameters
//! this reproduction assigns to each entry.

use crate::RunMode;
use dcmetrics::export::Table;
use workloads::floods::FloodKind;
use workloads::service::ServiceKind;

/// Render the workload catalog.
pub fn run(_mode: RunMode) -> Vec<Table> {
    let mut victims = Table::new(
        "Table 1 (victims): EC service kernels and calibrated parameters",
        &[
            "name",
            "character",
            "mean_service_ms",
            "beta",
            "intensity",
            "gamma",
            "energy_per_req_J",
        ],
    );
    for kind in ServiceKind::ALL {
        let p = kind.profile();
        let character = match kind {
            ServiceKind::CollaFilt => "computing-intensive",
            ServiceKind::KMeans => "memory-intensive",
            ServiceKind::WordCount => "disk-read heavy",
            ServiceKind::TextCont => "text delivery",
        };
        victims.push_row(vec![
            kind.name().to_string(),
            character.to_string(),
            format!("{:.1}", p.mean_service_time(2.4).as_secs_f64() * 1e3),
            format!("{:.2}", p.beta),
            format!("{:.2}", p.intensity),
            format!("{:.2}", p.gamma),
            format!("{:.3}", p.energy_estimate_j(2.4, 60.0)),
        ]);
    }

    let mut tools = Table::new(
        "Table 1 (DoS tools & normal model)",
        &["name", "kind", "behaviour"],
    );
    tools.push_row(vec![
        "http-load".into(),
        "DoS".into(),
        "open-loop HTTP flood at a configured aggregate rate over a botnet".into(),
    ]);
    tools.push_row(vec![
        "ApacheBench".into(),
        "DoS".into(),
        "closed-loop: holds a fixed number of concurrent requests outstanding".into(),
    ]);
    tools.push_row(vec![
        "AliOS".into(),
        "Normal".into(),
        "NHPP arrivals modulated by an Alibaba-trace-shaped utilization signal".into(),
    ]);
    for kind in FloodKind::ALL {
        tools.push_row(vec![
            kind.name().into(),
            format!("{:?}-layer flood", kind.layer()),
            format!(
                "typical max rate {:.0}/s, {:.1} µs CPU per packet/query",
                kind.typical_max_rate(),
                kind.params().work_gcycles / 2.4 * 1e6
            ),
        ]);
    }
    vec![victims, tools]
}
