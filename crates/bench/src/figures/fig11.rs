//! Figure 11 — the DOPE operating region.
//!
//! Sweep aggregate attack rate (spread over a 40-agent botnet, so
//! per-source rates stay modest) and classify each point: does the
//! firewall see it? does it violate the Medium-PB power budget on an
//! unmanaged cluster? The DOPE region is `detected = no ∧ violates =
//! yes` — requests "close to the normal while far smaller than the
//! DoS-detecting network capacity" that still break the power budget.

use crate::scenarios::{run_standard, BOTS};
use crate::RunMode;
use antidope::SchemeKind;
use dcmetrics::export::Table;
use powercap::BudgetLevel;
use rayon::prelude::*;
use workloads::service::ServiceKind;

/// Generate the Fig 11 data.
pub fn run(mode: RunMode) -> Vec<Table> {
    let rates: Vec<f64> = if mode.quick {
        vec![50.0, 200.0, 800.0]
    } else {
        vec![25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0]
    };
    let kinds = [ServiceKind::CollaFilt, ServiceKind::TextCont];
    let cells: Vec<(ServiceKind, f64)> = kinds
        .iter()
        .flat_map(|&k| rates.iter().map(move |&r| (k, r)))
        .collect();
    let reports: Vec<_> = cells
        .par_iter()
        .map(|&(k, r)| {
            (
                k,
                r,
                run_standard(
                    SchemeKind::None,
                    BudgetLevel::Medium,
                    k,
                    r,
                    mode.cell_secs(),
                    mode.seed,
                    true, // firewall armed: detection is part of the map
                ),
            )
        })
        .collect();

    let mut t = Table::new(
        "Fig 11: DOPE operating region (Medium-PB, unmanaged, deflate@150 req/s, 40 bots)",
        &[
            "service",
            "rate_rps",
            "per_bot_rps",
            "detected",
            "violates_budget",
            "region",
        ],
    );
    for (k, r, rep) in &reports {
        let detected = rep.traffic.firewall_blocked > 0;
        let violates = rep.power.violation_fraction > 0.05;
        let region = match (detected, violates) {
            (false, true) => "DOPE",
            (true, _) => "classic DoS (visible)",
            (false, false) => "harmless",
        };
        t.push_row(vec![
            k.name().into(),
            Table::fmt_f64(*r),
            Table::fmt_f64(*r / BOTS as f64),
            detected.to_string(),
            violates.to_string(),
            region.into(),
        ]);
    }
    vec![t]
}
