//! Figure 4 — higher traffic rate causes higher power.
//!
//! (a) mean power vs attack rate per victim service;
//! (b) the CDF of per-second power samples at several rates.

use crate::scenarios::run_standard;
use crate::RunMode;
use antidope::{SchemeKind, SimReport};
use dcmetrics::export::Table;
use dcmetrics::Ecdf;
use powercap::BudgetLevel;
use rayon::prelude::*;
use workloads::service::ServiceKind;

fn rates(mode: RunMode) -> Vec<f64> {
    if mode.quick {
        vec![10.0, 100.0, 500.0]
    } else {
        vec![10.0, 50.0, 100.0, 200.0, 500.0, 1000.0]
    }
}

fn cell(kind: ServiceKind, rate: f64, mode: RunMode) -> SimReport {
    run_standard(
        SchemeKind::None,
        BudgetLevel::Normal,
        kind,
        rate,
        mode.cell_secs(),
        mode.seed,
        false,
    )
}

/// Generate the Fig 4 data.
pub fn run(mode: RunMode) -> Vec<Table> {
    let rates = rates(mode);
    let cells: Vec<(ServiceKind, f64)> = ServiceKind::ALL
        .iter()
        .flat_map(|&k| rates.iter().map(move |&r| (k, r)))
        .collect();
    let reports: Vec<(ServiceKind, f64, SimReport)> = cells
        .par_iter()
        .map(|&(k, r)| (k, r, cell(k, r, mode)))
        .collect();

    let mut a = Table::new(
        "Fig 4-a: mean power vs traffic rate per service (unmanaged rack)",
        &["service", "rate_rps", "mean_power_W", "peak_power_W"],
    );
    for (k, r, rep) in &reports {
        a.push_row(vec![
            k.name().into(),
            Table::fmt_f64(*r),
            Table::fmt_f64(rep.power.avg_w),
            Table::fmt_f64(rep.power.peak_w),
        ]);
    }

    // (b): power CDFs at three rates, Colla-Filt attack, normalized to
    // the rack nameplate as in the paper.
    let cdf_rates: Vec<f64> = if mode.quick {
        vec![10.0, 500.0]
    } else {
        vec![50.0, 200.0, 1000.0]
    };
    let mut b = Table::new(
        "Fig 4-b: CDF of power at several traffic rates (Colla-Filt)",
        &["rate_rps", "power_norm", "cdf"],
    );
    for &rate in &cdf_rates {
        let rep = reports
            .iter()
            .find(|(k, r, _)| *k == ServiceKind::CollaFilt && *r == rate)
            .map(|(_, _, rep)| rep.clone())
            .unwrap_or_else(|| cell(ServiceKind::CollaFilt, rate, mode));
        let mut cdf = Ecdf::from_samples(rep.power.series.iter().map(|&(_, w)| w / 400.0));
        for (x, p) in cdf.curve(0.3, 1.05, 26) {
            b.push_row(vec![
                Table::fmt_f64(rate),
                Table::fmt_f64(x),
                Table::fmt_f64(p),
            ]);
        }
    }
    vec![a, b]
}
