//! Figure 5 — power per traffic type at rate 100: volume-based requests
//! have low power intensity.
//!
//! (a) power CDF per traffic type (the paper's subvertical, rightmost
//! Colla-Filt curve);
//! (b) average power and energy per request type — K-means tops the
//! per-request energy ranking.

use crate::scenarios::run_standard;
use crate::RunMode;
use antidope::{SchemeKind, SimReport};
use dcmetrics::export::Table;
use dcmetrics::{Ecdf, OnlineSummary};
use powercap::BudgetLevel;
use rayon::prelude::*;
use workloads::service::ServiceKind;

/// Generate the Fig 5 data.
pub fn run(mode: RunMode) -> Vec<Table> {
    let rate = 100.0;
    let reports: Vec<(ServiceKind, SimReport)> = ServiceKind::ALL
        .par_iter()
        .map(|&k| {
            (
                k,
                run_standard(
                    SchemeKind::None,
                    BudgetLevel::Normal,
                    k,
                    rate,
                    mode.cell_secs().max(60),
                    mode.seed,
                    false,
                ),
            )
        })
        .collect();

    let mut a = Table::new(
        "Fig 5-a: CDF of power per traffic type at 100 req/s (normalized to nameplate)",
        &["service", "power_norm", "cdf"],
    );
    for (k, rep) in &reports {
        // Skip the pre-attack warmup (first 5 s) so the CDF reflects the
        // attack steady state, as the paper's measurement does.
        let mut cdf = Ecdf::from_samples(
            rep.power
                .series
                .iter()
                .filter(|&&(t, _)| t >= 5.0)
                .map(|&(_, w)| w / 400.0),
        );
        for (x, p) in cdf.curve(0.3, 1.05, 26) {
            a.push_row(vec![
                k.name().into(),
                Table::fmt_f64(x),
                Table::fmt_f64(p),
            ]);
        }
    }

    let mut b = Table::new(
        "Fig 5-b: average power and per-request energy by type at 100 req/s",
        &[
            "service",
            "avg_power_W",
            "power_stability_cv",
            "energy_per_request_J",
        ],
    );
    for (k, rep) in &reports {
        let mut stats = OnlineSummary::new();
        for &(t, w) in &rep.power.series {
            if t >= 5.0 {
                stats.record(w);
            }
        }
        // Per-request dynamic energy: attack energy injected / requests
        // served (idle floor subtracted).
        let idle_j = 160.0 * rep.duration_s;
        let served = (rep.attack_sla.on_time() + rep.attack_sla.late()).max(1);
        let energy_per_req = (rep.energy.load_j - idle_j).max(0.0) / served as f64;
        b.push_row(vec![
            k.name().into(),
            Table::fmt_f64(stats.mean()),
            Table::fmt_f64(stats.cv()),
            Table::fmt_f64(energy_per_req),
        ]);
    }
    vec![a, b]
}
