//! Figures 16, 17 and 19 — the evaluation matrix: mean response time,
//! 90th-percentile tail latency, and normalized energy for all four
//! schemes at all four provisioning levels, under the standard
//! AliOS + Colla-Filt DOPE scenario. The three figures share one run
//! matrix, so the harness produces them together.

use crate::scenarios::eval_matrix;
use crate::RunMode;
use dcmetrics::export::Table;

/// Generate Figs 16, 17, 19 plus the headline improvement numbers.
pub fn run(mode: RunMode) -> Vec<Table> {
    let reports = eval_matrix(mode.window_secs(), mode.seed);
    // reports are scheme-major over SchemeKind::EVALUATED × BudgetLevel::ALL.
    let schemes = ["Capping", "Shaving", "Token", "Anti-DOPE"];
    let budgets = ["Normal-PB", "High-PB", "Medium-PB", "Low-PB"];
    let get = |s: usize, b: usize| &reports[s * budgets.len() + b];

    let mut fig16 = Table::new(
        "Fig 16: mean response time of normal users, ms",
        &["scheme", "Normal-PB", "High-PB", "Medium-PB", "Low-PB"],
    );
    for (si, s) in schemes.iter().enumerate() {
        let mut row = vec![s.to_string()];
        for bi in 0..budgets.len() {
            row.push(Table::fmt_f64(get(si, bi).normal_latency.mean_ms));
        }
        fig16.push_row(row);
    }

    let mut fig17 = Table::new(
        "Fig 17: 90th-percentile tail latency of normal users, ms",
        &["scheme", "Normal-PB", "High-PB", "Medium-PB", "Low-PB"],
    );
    for (si, s) in schemes.iter().enumerate() {
        let mut row = vec![s.to_string()];
        for bi in 0..budgets.len() {
            row.push(Table::fmt_f64(get(si, bi).normal_latency.p90_ms));
        }
        fig17.push_row(row);
    }

    let mut fig19 = Table::new(
        "Fig 19: energy normalized to supplied utility energy (supply × window)",
        &["scheme", "Normal-PB", "High-PB", "Medium-PB", "Low-PB"],
    );
    for (si, s) in schemes.iter().enumerate() {
        let mut row = vec![s.to_string()];
        for bi in 0..budgets.len() {
            row.push(Table::fmt_f64(get(si, bi).energy.normalized_utility));
        }
        fig19.push_row(row);
    }

    // Steady-state view: a battery left drained at the end of the window
    // is deferred utility energy (it must be recharged at ~90 %
    // round-trip efficiency), so add that debt back in.
    let mut fig19_adj = Table::new(
        "Fig 19 (battery-debt adjusted): normalized utility energy incl. recharge debt",
        &["scheme", "Normal-PB", "High-PB", "Medium-PB", "Low-PB"],
    );
    for (si, s) in schemes.iter().enumerate() {
        let mut row = vec![s.to_string()];
        for bi in 0..budgets.len() {
            let r = get(si, bi);
            let debt_j = (1.0 - r.battery.final_soc) * r.battery.capacity_j / 0.9;
            let supply_j = r.power.supply_w * r.duration_s;
            row.push(Table::fmt_f64(
                (r.energy.utility_j + debt_j) / supply_j.max(1e-9),
            ));
        }
        fig19_adj.push_row(row);
    }

    let mut battery = Table::new(
        "Fig 19 (battery split): energy delivered by batteries, kJ",
        &["scheme", "Normal-PB", "High-PB", "Medium-PB", "Low-PB"],
    );
    for (si, s) in schemes.iter().enumerate() {
        let mut row = vec![s.to_string()];
        for bi in 0..budgets.len() {
            row.push(Table::fmt_f64(get(si, bi).battery.discharged_j / 1e3));
        }
        battery.push_row(row);
    }

    // Headline numbers: Anti-DOPE (row 3) vs the mean of the power
    // control baselines Capping (0) and Shaving (1), averaged over the
    // under-provisioned budgets (High/Medium/Low), matching the
    // abstract's "44 % shorter average response time … 90th percentile
    // tail latency by 68.1 %".
    let mut mean_impr = 0.0;
    let mut p90_impr = 0.0;
    for bi in 1..4 {
        let base_mean =
            (get(0, bi).normal_latency.mean_ms + get(1, bi).normal_latency.mean_ms) / 2.0;
        let base_p90 =
            (get(0, bi).normal_latency.p90_ms + get(1, bi).normal_latency.p90_ms) / 2.0;
        mean_impr += 1.0 - get(3, bi).normal_latency.mean_ms / base_mean;
        p90_impr += 1.0 - get(3, bi).normal_latency.p90_ms / base_p90;
    }
    mean_impr /= 3.0;
    p90_impr /= 3.0;
    let mut headline = Table::new(
        "Headline: Anti-DOPE vs power-control baselines (mean of Capping & Shaving, under-provisioned budgets)",
        &["metric", "paper", "measured"],
    );
    headline.push_row(vec![
        "mean response time improvement".into(),
        "44%".into(),
        format!("{:.1}%", mean_impr * 100.0),
    ]);
    headline.push_row(vec![
        "p90 tail latency improvement".into(),
        "68.1%".into(),
        format!("{:.1}%", p90_impr * 100.0),
    ]);

    // Token context: its latency is bought with drops.
    let mut drops = Table::new(
        "Context: drop rate of all offered traffic",
        &["scheme", "Normal-PB", "High-PB", "Medium-PB", "Low-PB"],
    );
    for (si, s) in schemes.iter().enumerate() {
        let mut row = vec![s.to_string()];
        for bi in 0..budgets.len() {
            row.push(format!("{:.1}%", get(si, bi).traffic.drop_rate * 100.0));
        }
        drops.push_row(row);
    }

    vec![fig16, fig17, fig19, fig19_adj, battery, headline, drops]
}
