//! Figure 15 — Anti-DOPE allocates power within the supply with slight
//! degradation for normal users.
//!
//! (a) the power trace: original (no attack), under DOPE with no
//! management, and under DOPE with Anti-DOPE — the managed trace stays
//! at/below the budget;
//! (b) normal-user response-time percentiles: good-user Normal-PB
//! baseline vs Anti-DOPE under attack at Medium-PB.

use crate::scenarios::run_standard;
use crate::RunMode;
use antidope::{SchemeKind, SimReport};
use dcmetrics::export::Table;
use powercap::BudgetLevel;
use rayon::prelude::*;
use workloads::service::ServiceKind;

/// Generate the Fig 15 data.
pub fn run(mode: RunMode) -> Vec<Table> {
    let secs = mode.window_secs();
    let cells: Vec<(&str, SchemeKind, BudgetLevel, f64)> = vec![
        ("original(no attack)", SchemeKind::None, BudgetLevel::Medium, 0.0),
        ("DOPE unmanaged", SchemeKind::None, BudgetLevel::Medium, 600.0),
        ("DOPE + Anti-DOPE", SchemeKind::AntiDope, BudgetLevel::Medium, 600.0),
        ("baseline good user", SchemeKind::AntiDope, BudgetLevel::Normal, 0.0),
    ];
    let reports: Vec<(&str, SimReport)> = cells
        .par_iter()
        .map(|&(label, scheme, budget, rate)| {
            (
                label,
                run_standard(
                    scheme,
                    budget,
                    ServiceKind::CollaFilt,
                    rate,
                    secs,
                    mode.seed,
                    true,
                ),
            )
        })
        .collect();

    let mut a = Table::new(
        "Fig 15-a: power trace (Medium-PB supply = 340 W)",
        &["t_s", "scenario", "power_W"],
    );
    for (label, rep) in reports.iter().take(3) {
        for &(t, w) in &rep.power.series {
            a.push_row(vec![
                Table::fmt_f64(t),
                (*label).into(),
                Table::fmt_f64(w),
            ]);
        }
    }

    let mut summary = Table::new(
        "Fig 15-a (summary)",
        &["scenario", "avg_W", "peak_W", "violation_fraction"],
    );
    for (label, rep) in reports.iter().take(3) {
        summary.push_row(vec![
            (*label).into(),
            Table::fmt_f64(rep.power.avg_w),
            Table::fmt_f64(rep.power.peak_w),
            Table::fmt_f64(rep.power.violation_fraction),
        ]);
    }

    let mut b = Table::new(
        "Fig 15-b: normal-user response-time percentiles, ms",
        &["scenario", "min", "mean", "p50", "p90", "p95", "p99", "max"],
    );
    for (label, rep) in [&reports[3], &reports[2]] {
        let l = &rep.normal_latency;
        b.push_row(vec![
            (*label).into(),
            Table::fmt_f64(l.min_ms),
            Table::fmt_f64(l.mean_ms),
            Table::fmt_f64(l.p50_ms),
            Table::fmt_f64(l.p90_ms),
            Table::fmt_f64(l.p95_ms),
            Table::fmt_f64(l.p99_ms),
            Table::fmt_f64(l.max_ms),
        ]);
    }
    vec![summary, a, b]
}
