//! Figure 18 — batteries' behaviour per power-management scheme.
//!
//! Two scenarios:
//! * sustained Colla-Filt DOPE (the paper's blue line: Shaving drains the
//!   battery "as soon as");
//! * the attack-switching scenario (dark line): Colla-Filt → K-means →
//!   Word-Count rotating every 2 minutes.
//!
//! Divergence note (also in EXPERIMENTS.md): the paper's Anti-DOPE
//! discharges briefly at every attack change because its testbed
//! re-profiles during the transition; our PDF isolates suspect URLs
//! statically, so the cluster never develops the transient deficit and
//! Anti-DOPE's battery stays essentially full — a strictly stronger
//! version of "batteries as the transition medium".

use crate::scenarios::{normal_users, service_attack};
use crate::RunMode;
use antidope::{run_experiment, ExperimentConfig, SchemeKind, SimReport};
use dcmetrics::export::Table;
use powercap::BudgetLevel;
use rayon::prelude::*;
use simcore::SimTime;
use workloads::attacker::{AttackTool, FloodSource};
use workloads::service::ServiceKind;
use workloads::source::TrafficSource;

fn sustained(scheme: SchemeKind, secs: u64, mode: RunMode) -> SimReport {
    let exp = crate::scenarios::experiment(scheme, BudgetLevel::Low, secs, mode.seed, true);
    run_experiment(&exp, &move |e: &ExperimentConfig| {
        let horizon = SimTime::ZERO + e.duration;
        vec![
            normal_users(e.seed, horizon),
            service_attack(ServiceKind::CollaFilt, 700.0, e.seed, horizon),
        ]
    })
}

fn switching(scheme: SchemeKind, secs: u64, mode: RunMode) -> SimReport {
    let exp = crate::scenarios::experiment(scheme, BudgetLevel::Low, secs, mode.seed, true);
    run_experiment(&exp, &move |e: &ExperimentConfig| {
        let horizon = SimTime::ZERO + e.duration;
        let mut v: Vec<Box<dyn TrafficSource>> = vec![normal_users(e.seed, horizon)];
        let kinds = [
            ServiceKind::CollaFilt,
            ServiceKind::KMeans,
            ServiceKind::WordCount,
        ];
        let phase = (e.duration.as_secs() / kinds.len() as u64).max(1);
        for (i, kind) in kinds.iter().enumerate() {
            v.push(Box::new(FloodSource::against_service(
                AttackTool::HttpLoad { rate: 700.0 },
                *kind,
                50_000 + 1_000 * i as u32,
                crate::scenarios::BOTS,
                (1 + i as u64) << 40,
                SimTime::from_secs(5 + phase * i as u64),
                SimTime::from_secs(5 + phase * (i as u64 + 1)).min(horizon),
                e.seed ^ (i as u64 + 1),
            )));
        }
        v
    })
}

/// Generate the Fig 18 data.
pub fn run(mode: RunMode) -> Vec<Table> {
    // Long enough for the Low-PB deficit (≤80 W) to drain the 48 kJ
    // battery under Shaving.
    let secs = if mode.quick { 120 } else { 700 };
    let schemes = [SchemeKind::Shaving, SchemeKind::AntiDope, SchemeKind::Capping];
    let sustained_runs: Vec<(SchemeKind, SimReport)> = schemes
        .par_iter()
        .map(|&s| (s, sustained(s, secs, mode)))
        .collect();
    let switching_runs: Vec<(SchemeKind, SimReport)> = [SchemeKind::Shaving, SchemeKind::AntiDope]
        .par_iter()
        .map(|&s| (s, switching(s, secs, mode)))
        .collect();

    let mut series = Table::new(
        "Fig 18: battery state of charge vs time (Low-PB, sustained 700 req/s Colla-Filt DOPE)",
        &["t_s", "scheme", "soc"],
    );
    for (s, rep) in &sustained_runs {
        for &(t, soc) in &rep.battery.series {
            series.push_row(vec![
                Table::fmt_f64(t),
                s.name().into(),
                Table::fmt_f64(soc),
            ]);
        }
    }

    let mut summary = Table::new(
        "Fig 18 (summary)",
        &[
            "scenario",
            "scheme",
            "min_soc",
            "final_soc",
            "episodes",
            "discharged_kJ",
        ],
    );
    for (label, runs) in [
        ("sustained", &sustained_runs),
        ("switching", &switching_runs),
    ] {
        for (s, rep) in runs.iter() {
            summary.push_row(vec![
                label.into(),
                s.name().into(),
                Table::fmt_f64(rep.battery.min_soc),
                Table::fmt_f64(rep.battery.final_soc),
                rep.battery.episodes.to_string(),
                Table::fmt_f64(rep.battery.discharged_j / 1e3),
            ]);
        }
    }

    let mut switching_series = Table::new(
        "Fig 18 (switching scenario series): soc vs time",
        &["t_s", "scheme", "soc"],
    );
    for (s, rep) in &switching_runs {
        for &(t, soc) in &rep.battery.series {
            switching_series.push_row(vec![
                Table::fmt_f64(t),
                s.name().into(),
                Table::fmt_f64(soc),
            ]);
        }
    }

    vec![summary, series, switching_series]
}
