//! Figure 12 — the DOPE attack algorithm in action.
//!
//! The algorithm's feedback loop involves only the attacker and the
//! perimeter defense, so we drive the [`DopeAttacker`] directly against
//! a deflate-style [`Firewall`]: pull its requests, inspect each, feed
//! blocks back, and record the rate staircase — probing overshoot,
//! detection, agent rotation, convergence below the threshold.

use crate::RunMode;
use dcmetrics::export::Table;
use netsim::firewall::{Firewall, FirewallConfig, FirewallVerdict};
use simcore::{SimDuration, SimTime};
use workloads::dope::{DopeAttacker, DopeConfig, DopePhase};
use workloads::source::{SourceEvent, TrafficSource};
use workloads::service::ServiceKind;

/// Generate the Fig 12 data.
pub fn run(mode: RunMode) -> Vec<Table> {
    let secs = if mode.quick { 120 } else { 300 };
    let horizon = SimTime::from_secs(secs);
    let bots = 4u32; // loud: probing must overshoot 150 req/s per agent
    let mut attacker = DopeAttacker::new(
        DopeConfig {
            victim: ServiceKind::CollaFilt,
            initial_rate: 100.0,
            bots,
            max_rate: 4000.0,
            ..DopeConfig::default()
        },
        50_000,
        1 << 40,
        SimTime::ZERO,
        horizon,
        mode.seed ^ 0xD09E,
    );
    let mut firewall = Firewall::new(SimTime::ZERO, FirewallConfig::default());

    let mut now = SimTime::ZERO;
    let mut sent: u64 = 0;
    while let Some(req) = attacker.next_request(now) {
        now = req.arrival;
        sent += 1;
        if firewall.inspect(now, req.source) == FirewallVerdict::Blocked {
            attacker.feedback(now, SourceEvent::Blocked(req.source));
        }
    }
    // One final poll to settle counters.
    firewall.poll(horizon + SimDuration::from_secs(1));

    let mut t = Table::new(
        "Fig 12: DOPE attack algorithm rate staircase (4 bots, deflate@150 req/s)",
        &["t_s", "aggregate_rps", "per_bot_rps", "detected_this_period"],
    );
    for h in attacker.history() {
        t.push_row(vec![
            Table::fmt_f64(h.at.as_secs_f64()),
            Table::fmt_f64(h.rate),
            Table::fmt_f64(h.rate / bots as f64),
            h.detected.to_string(),
        ]);
    }

    let mut s = Table::new(
        "Fig 12 (outcome)",
        &[
            "requests_sent",
            "blocked_at_perimeter",
            "bans_issued",
            "final_rate_rps",
            "final_per_bot_rps",
            "converged",
        ],
    );
    s.push_row(vec![
        sent.to_string(),
        firewall.blocked_requests().to_string(),
        firewall.bans_issued().to_string(),
        Table::fmt_f64(attacker.rate()),
        Table::fmt_f64(attacker.per_bot_rate()),
        (attacker.phase() == DopePhase::Converged).to_string(),
    ]);
    vec![t, s]
}
