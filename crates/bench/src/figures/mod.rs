//! One module per paper table/figure. Each exposes
//! `run(mode) -> Vec<Table>`; the returned tables are what the paper
//! plots, as data.

pub mod ablations;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig15;
pub mod fig16_17_19;
pub mod fig18;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7_9;
pub mod fig8;
pub mod table1;
pub mod table2;

use crate::RunMode;
use dcmetrics::export::Table;

/// Every paper experiment id, in paper order.
pub const ALL_IDS: [&str; 16] = [
    "table1", "table2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12", "fig15", "fig16", "fig17", "fig18",
];
// fig19 shares its runs with fig16/fig17 and is produced by "fig16",
// "fig17", or "fig19" (all dispatch into fig16_17_19).

/// Ablation studies beyond the paper (DESIGN.md §8).
pub const ABLATION_IDS: [&str; 14] = [
    "abl-framework",
    "abl-threshold",
    "abl-pool",
    "abl-slot",
    "abl-firewall",
    "abl-scale",
    "abl-tools",
    "abl-breaker",
    "abl-thermal",
    "abl-faults",
    "abl-seeds",
    "abl-online-profiler",
    "abl-resilience",
    "abl-hierarchy",
];

/// Dispatch one experiment id. Returns `None` for an unknown id.
pub fn run(id: &str, mode: RunMode) -> Option<Vec<Table>> {
    Some(match id {
        "table1" => table1::run(mode),
        "table2" => table2::run(mode),
        "fig3" => fig3::run(mode),
        "fig4" => fig4::run(mode),
        "fig5" => fig5::run(mode),
        "fig6" => fig6::run(mode),
        "fig7" => fig7_9::run_fig7(mode),
        "fig8" => fig8::run(mode),
        "fig9" => fig7_9::run_fig9(mode),
        "fig10" => fig10::run(mode),
        "fig11" => fig11::run(mode),
        "fig12" => fig12::run(mode),
        "fig15" => fig15::run(mode),
        "fig16" | "fig17" | "fig19" => fig16_17_19::run(mode),
        "fig18" => fig18::run(mode),
        "abl-framework" => ablations::framework(mode),
        "abl-threshold" => ablations::threshold(mode),
        "abl-pool" => ablations::pool(mode),
        "abl-slot" => ablations::slot(mode),
        "abl-firewall" => ablations::firewall(mode),
        "abl-scale" => ablations::scale(mode),
        "abl-tools" => ablations::tools(mode),
        "abl-breaker" => ablations::breaker(mode),
        "abl-thermal" => ablations::thermal(mode),
        "abl-faults" => ablations::faults(mode),
        "abl-seeds" => ablations::seeds(mode),
        "abl-online-profiler" => ablations::online_profiler(mode),
        "abl-resilience" => ablations::resilience(mode),
        "abl-hierarchy" => ablations::hierarchy(mode),
        _ => return None,
    })
}
