//! Figure 3 — power profile of typical cyber-attacks.
//!
//! One run per flood kind at its tool's characteristic rate against the
//! unmanaged, unfirewalled cluster, over the paper's 600 s window. The
//! output reproduces the figure's grouping: application-layer attacks
//! (HTTP/DNS) ride high near nameplate; network-layer volume floods
//! (SYN/UDP/ICMP) barely move the needle.

use crate::scenarios::{self, layer_flood, normal_users};
use crate::RunMode;
use antidope::{run_experiment, ExperimentConfig, SchemeKind, SimReport};
use dcmetrics::export::Table;
use powercap::BudgetLevel;
use rayon::prelude::*;
use simcore::SimTime;
use workloads::floods::FloodKind;

fn run_flood(kind: FloodKind, mode: RunMode) -> SimReport {
    let secs = mode.window_secs();
    // Cap the volume floods' packet rates so the event count stays
    // tractable; their per-packet CPU cost is microseconds, so their
    // power contribution has already flattened far below the cap.
    let rate = kind.typical_max_rate().min(5_000.0);
    let exp = scenarios::experiment(SchemeKind::None, BudgetLevel::Normal, secs, mode.seed, false);
    run_experiment(&exp, &move |e: &ExperimentConfig| {
        let horizon = SimTime::ZERO + e.duration;
        vec![
            normal_users(e.seed, horizon),
            layer_flood(kind, rate, 200, e.seed, horizon),
        ]
    })
}

/// Generate the Fig 3 data.
pub fn run(mode: RunMode) -> Vec<Table> {
    let reports: Vec<(FloodKind, SimReport)> = FloodKind::ALL
        .par_iter()
        .map(|&k| (k, run_flood(k, mode)))
        .collect();

    let mut summary = Table::new(
        "Fig 3: power profile of typical cyber-attacks (4-node rack, 400 W nameplate)",
        &["attack", "layer", "mean_power_W", "peak_power_W", "band"],
    );
    for (kind, r) in &reports {
        let band = if r.power.avg_w > 300.0 {
            "high"
        } else if r.power.avg_w > 220.0 {
            "medium"
        } else {
            "low"
        };
        summary.push_row(vec![
            kind.name().into(),
            format!("{:?}", kind.layer()),
            Table::fmt_f64(r.power.avg_w),
            Table::fmt_f64(r.power.peak_w),
            band.into(),
        ]);
    }

    // The time series the figure actually plots.
    let mut series = Table::new(
        "Fig 3 (series): power vs time per attack",
        &["t_s", "attack", "power_W"],
    );
    for (kind, r) in &reports {
        for &(t, w) in &r.power.series {
            series.push_row(vec![
                Table::fmt_f64(t),
                kind.name().into(),
                Table::fmt_f64(w),
            ]);
        }
    }
    vec![summary, series]
}
