//! Ablation studies beyond the paper — the design-choice sweeps
//! DESIGN.md §8 calls out. Each isolates one knob of Anti-DOPE or its
//! operating environment.

use crate::scenarios::{self, normal_users, service_attack};
use crate::RunMode;
use antidope::cluster::ClusterSim;
use antidope::scheme::{AntiDopeScheme, PowerScheme};
use profiler::ProfilerConfig;
use antidope::{run_experiment, ClusterConfig, ExperimentConfig, SchemeKind, SimReport};
use dcmetrics::export::Table;
use powercap::BudgetLevel;
use rayon::prelude::*;
use simcore::faults::FaultConfig;
use simcore::{SimDuration, SimTime};
use workloads::attacker::{AttackTool, FloodSource};
use workloads::dope::{DopeAttacker, DopeConfig};
use workloads::service::ServiceKind;
use workloads::source::TrafficSource;

fn standard_sources(exp: &ExperimentConfig, attack_rate: f64) -> Vec<Box<dyn TrafficSource>> {
    let horizon = SimTime::ZERO + exp.duration;
    vec![
        normal_users(exp.seed, horizon),
        service_attack(ServiceKind::CollaFilt, attack_rate, exp.seed, horizon),
    ]
}

fn report_row(t: &mut Table, label: &str, r: &SimReport) {
    t.push_row(vec![
        label.to_string(),
        Table::fmt_f64(r.normal_latency.mean_ms),
        Table::fmt_f64(r.normal_latency.p90_ms),
        format!("{:.1}%", r.availability() * 100.0),
        format!("{:.1}%", r.normal_sla.drop_rate() * 100.0),
        Table::fmt_f64(r.power.peak_w),
        r.power.violations.to_string(),
    ]);
}

fn result_header(title: &str) -> Table {
    Table::new(
        title,
        &[
            "variant",
            "mean_ms",
            "p90_ms",
            "availability",
            "legit_drop",
            "peak_W",
            "violations",
        ],
    )
}

/// `abl-framework`: which half of Anti-DOPE carries the benefit?
pub fn framework(mode: RunMode) -> Vec<Table> {
    let secs = mode.cell_secs().max(120);
    let kinds = [
        SchemeKind::Capping,
        SchemeKind::PdfOnly,
        SchemeKind::RpmOnly,
        SchemeKind::AntiDope,
    ];
    let reports: Vec<(SchemeKind, SimReport)> = kinds
        .par_iter()
        .map(|&k| {
            let exp = scenarios::experiment(k, BudgetLevel::Medium, secs, mode.seed, true);
            (k, run_experiment(&exp, &|e: &ExperimentConfig| standard_sources(e, 390.0)))
        })
        .collect();
    let mut t = result_header(
        "Ablation: PDF-only vs RPM-only vs full Anti-DOPE (Medium-PB, 390 req/s Colla-Filt)",
    );
    for (k, r) in &reports {
        report_row(&mut t, k.name(), r);
    }
    vec![t]
}

/// `abl-threshold`: suspicion-threshold sweep — classification scope vs
/// collateral damage.
pub fn threshold(mode: RunMode) -> Vec<Table> {
    let secs = mode.cell_secs().max(120);
    let thresholds = [0.30, 0.50, 0.70, 0.80, 0.95];
    let reports: Vec<(f64, SimReport, u64)> = thresholds
        .par_iter()
        .map(|&th| {
            let exp = scenarios::experiment(
                SchemeKind::AntiDope,
                BudgetLevel::Medium,
                secs,
                mode.seed,
                true,
            );
            let scheme = Box::new(AntiDopeScheme::with_threshold(&exp.cluster, th));
            let r = ClusterSim::run_with_scheme(&exp, scheme, standard_sources(&exp, 390.0));
            let to_pool = r.traffic.to_suspect_pool;
            (th, r, to_pool)
        })
        .collect();
    let mut t = Table::new(
        "Ablation: suspect-threshold sweep (Anti-DOPE, Medium-PB)",
        &[
            "threshold",
            "to_suspect_pool",
            "mean_ms",
            "p90_ms",
            "availability",
            "violations",
        ],
    );
    for (th, r, pool) in &reports {
        t.push_row(vec![
            format!("{th:.2}"),
            pool.to_string(),
            Table::fmt_f64(r.normal_latency.mean_ms),
            Table::fmt_f64(r.normal_latency.p90_ms),
            format!("{:.1}%", r.availability() * 100.0),
            r.power.violations.to_string(),
        ]);
    }
    vec![t]
}

/// `abl-pool`: suspect-pool size on the 16-node scaled cluster —
/// isolation capacity vs innocent capacity.
pub fn pool(mode: RunMode) -> Vec<Table> {
    let secs = mode.cell_secs().max(120);
    let sizes = [1usize, 2, 4, 6, 8];
    let reports: Vec<(usize, SimReport)> = sizes
        .par_iter()
        .map(|&size| {
            let mut cluster = ClusterConfig::scaled(BudgetLevel::Medium);
            cluster.suspect_pool_size = size;
            let mut exp =
                ExperimentConfig::paper_window(cluster, SchemeKind::AntiDope, mode.seed);
            exp.duration = SimDuration::from_secs(secs);
            // Attack scaled to the 16-node cluster (4× the rack attack).
            (
                size,
                run_experiment(&exp, &|e: &ExperimentConfig| standard_sources(e, 1560.0)),
            )
        })
        .collect();
    let mut t = result_header(
        "Ablation: suspect-pool size on a 16-node cluster (Anti-DOPE, Medium-PB, 1560 req/s)",
    );
    for (size, r) in &reports {
        report_row(&mut t, &format!("{size} of 16 nodes"), r);
    }
    vec![t]
}

/// `abl-slot`: control-slot length — responsiveness vs overhead.
pub fn slot(mode: RunMode) -> Vec<Table> {
    let secs = mode.cell_secs().max(120);
    let slots_ms = [200u64, 500, 1000, 2000, 5000];
    let cells: Vec<(SchemeKind, u64)> = [SchemeKind::Capping, SchemeKind::AntiDope]
        .iter()
        .flat_map(|&s| slots_ms.iter().map(move |&m| (s, m)))
        .collect();
    let reports: Vec<(SchemeKind, u64, SimReport)> = cells
        .par_iter()
        .map(|&(scheme, ms)| {
            let mut exp =
                scenarios::experiment(scheme, BudgetLevel::Medium, secs, mode.seed, true);
            exp.cluster.control_slot = SimDuration::from_millis(ms);
            (
                scheme,
                ms,
                run_experiment(&exp, &|e: &ExperimentConfig| standard_sources(e, 390.0)),
            )
        })
        .collect();
    let mut t = Table::new(
        "Ablation: control-slot length (Medium-PB, 390 req/s)",
        &[
            "scheme",
            "slot_ms",
            "p90_ms",
            "violations",
            "violation_fraction",
            "dvfs_transitions",
        ],
    );
    for (scheme, ms, r) in &reports {
        t.push_row(vec![
            scheme.name().to_string(),
            ms.to_string(),
            Table::fmt_f64(r.normal_latency.p90_ms),
            r.power.violations.to_string(),
            Table::fmt_f64(r.power.violation_fraction),
            r.vf.transitions.to_string(),
        ]);
    }
    vec![t]
}

/// `abl-firewall`: perimeter threshold vs the width of the DOPE region
/// (maximum undetected aggregate rate for a 40-bot attacker).
pub fn firewall(mode: RunMode) -> Vec<Table> {
    let secs = mode.cell_secs();
    let thresholds = [50.0, 100.0, 150.0, 300.0, 600.0];
    let rates = [200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0];
    let cells: Vec<(f64, f64)> = thresholds
        .iter()
        .flat_map(|&t| rates.iter().map(move |&r| (t, r)))
        .collect();
    let reports: Vec<(f64, f64, SimReport)> = cells
        .par_iter()
        .map(|&(th, rate)| {
            let mut exp =
                scenarios::experiment(SchemeKind::None, BudgetLevel::Medium, secs, mode.seed, true);
            exp.cluster.firewall_threshold_rps = th;
            (
                th,
                rate,
                run_experiment(&exp, &move |e: &ExperimentConfig| standard_sources(e, rate)),
            )
        })
        .collect();
    let mut t = Table::new(
        "Ablation: firewall threshold vs DOPE region (40 bots, unmanaged, Medium-PB)",
        &["threshold_rps", "max_undetected_rps", "min_violating_rps", "region_width"],
    );
    for &th in &thresholds {
        let max_undetected = reports
            .iter()
            .filter(|(t2, _, r)| *t2 == th && r.traffic.firewall_blocked == 0)
            .map(|(_, rate, _)| *rate)
            .fold(0.0, f64::max);
        let min_violating = reports
            .iter()
            .filter(|(t2, _, r)| *t2 == th && r.power.violation_fraction > 0.05)
            .map(|(_, rate, _)| *rate)
            .fold(f64::INFINITY, f64::min);
        let width = if max_undetected >= min_violating {
            format!("{:.0}–{:.0} rps", min_violating, max_undetected)
        } else {
            "closed".to_string()
        };
        t.push_row(vec![
            format!("{th:.0}"),
            format!("{max_undetected:.0}"),
            if min_violating.is_finite() {
                format!("{min_violating:.0}")
            } else {
                "-".into()
            },
            width,
        ]);
    }
    vec![t]
}

/// `abl-scale`: the headline comparison on a 16-node cluster.
pub fn scale(mode: RunMode) -> Vec<Table> {
    let secs = mode.cell_secs().max(120);
    let reports: Vec<(SchemeKind, SimReport)> = SchemeKind::EVALUATED
        .par_iter()
        .map(|&k| {
            let mut exp = ExperimentConfig::paper_window(
                ClusterConfig::scaled(BudgetLevel::Medium),
                k,
                mode.seed,
            );
            exp.duration = SimDuration::from_secs(secs);
            (
                k,
                run_experiment(&exp, &|e: &ExperimentConfig| {
                    let horizon = SimTime::ZERO + e.duration;
                    vec![
                        // 4× the rack's normal population and attack.
                        Box::new(workloads::normal::NormalUsers::new(
                            workloads::alibaba::UtilizationTrace::synthesize(
                                &workloads::alibaba::AlibabaTraceConfig::small(e.seed),
                            ),
                            workloads::service::ServiceMix::alios_normal(),
                            320.0,
                            1_000,
                            240,
                            0,
                            horizon,
                            e.seed,
                        )) as Box<dyn TrafficSource>,
                        service_attack(ServiceKind::CollaFilt, 1560.0, e.seed, horizon),
                    ]
                }),
            )
        })
        .collect();
    let mut t = result_header(
        "Ablation: 16-node cluster, Medium-PB, 1560 req/s Colla-Filt DOPE",
    );
    for (k, r) in &reports {
        report_row(&mut t, k.name(), r);
    }
    vec![t]
}

/// `abl-tools`: attack-tool comparison — open-loop http-load vs
/// closed-loop ApacheBench vs the adaptive DOPE attacker.
pub fn tools(mode: RunMode) -> Vec<Table> {
    let secs = mode.cell_secs().max(120);
    let mk_sources = |tool: &'static str,
                      exp: &ExperimentConfig|
     -> Vec<Box<dyn TrafficSource>> {
        let horizon = SimTime::ZERO + exp.duration;
        let mut v = vec![normal_users(exp.seed, horizon)];
        let attack: Box<dyn TrafficSource> = match tool {
            "http-load" => Box::new(FloodSource::against_service(
                AttackTool::HttpLoad { rate: 390.0 },
                ServiceKind::CollaFilt,
                50_000,
                scenarios::BOTS,
                1 << 40,
                SimTime::from_secs(5),
                horizon,
                exp.seed ^ 0x5EED,
            )),
            "apache-bench" => Box::new(FloodSource::against_service(
                // Closed loop: ~14 outstanding ≈ 390 req/s at 35 ms each
                // when the victim is healthy; self-throttles when not.
                AttackTool::ApacheBench { concurrency: 14 },
                ServiceKind::CollaFilt,
                50_000,
                scenarios::BOTS,
                1 << 40,
                SimTime::from_secs(5),
                horizon,
                exp.seed ^ 0x5EED,
            )),
            "dope-adaptive" => Box::new(DopeAttacker::new(
                DopeConfig {
                    victim: ServiceKind::CollaFilt,
                    initial_rate: 50.0,
                    bots: scenarios::BOTS,
                    max_rate: 800.0,
                    ..DopeConfig::default()
                },
                50_000,
                1 << 40,
                SimTime::from_secs(5),
                horizon,
                exp.seed ^ 0xD09E,
            )),
            _ => unreachable!(),
        };
        v.push(attack);
        v
    };
    let tools = ["http-load", "apache-bench", "dope-adaptive"];
    let reports: Vec<(&str, SimReport)> = tools
        .par_iter()
        .map(|&tool| {
            let exp = scenarios::experiment(
                SchemeKind::Capping,
                BudgetLevel::Medium,
                secs,
                mode.seed,
                true,
            );
            (
                tool,
                run_experiment(&exp, &move |e: &ExperimentConfig| mk_sources(tool, e)),
            )
        })
        .collect();
    let mut t = Table::new(
        "Ablation: attack tools (Capping, Medium-PB)",
        &[
            "tool",
            "attack_served",
            "normal_p90_ms",
            "peak_W",
            "violations",
            "firewall_blocked",
        ],
    );
    for (tool, r) in &reports {
        t.push_row(vec![
            tool.to_string(),
            (r.attack_sla.on_time() + r.attack_sla.late()).to_string(),
            Table::fmt_f64(r.normal_latency.p90_ms),
            Table::fmt_f64(r.power.peak_w),
            r.power.violations.to_string(),
            r.traffic.firewall_blocked.to_string(),
        ]);
    }
    vec![t]
}

/// `abl-thermal`: the cooling layer — DOPE heats the room even when
/// power never violates. At Normal-PB no power scheme intervenes, so
/// thermal protection is the only backstop: the attack drives PROCHOT
/// cycling on every node it reaches; Anti-DOPE confines the heat to the
/// suspect pool.
pub fn thermal(mode: RunMode) -> Vec<Table> {
    let secs = mode.cell_secs().max(240); // a few thermal time constants
    let kinds = [SchemeKind::None, SchemeKind::Capping, SchemeKind::AntiDope];
    let reports: Vec<(SchemeKind, SimReport)> = kinds
        .par_iter()
        .map(|&k| {
            let mut exp = scenarios::experiment(k, BudgetLevel::Normal, secs, mode.seed, true);
            exp.cluster.thermal = true;
            (
                k,
                run_experiment(&exp, &|e: &ExperimentConfig| standard_sources(e, 600.0)),
            )
        })
        .collect();
    let mut t = Table::new(
        "Ablation: thermal protection under DOPE (Normal-PB — power never violates)",
        &[
            "scheme",
            "peak_temp_C",
            "prochot_events",
            "tripped_nodes",
            "normal_p90_ms",
        ],
    );
    for (k, r) in &reports {
        t.push_row(vec![
            k.name().to_string(),
            Table::fmt_f64(r.thermal.peak_temp_c),
            r.thermal.prochot_events.to_string(),
            r.thermal.tripped_nodes.to_string(),
            Table::fmt_f64(r.normal_latency.p90_ms),
        ]);
    }
    vec![t]
}

/// `abl-seeds`: seed-robustness of the headline conclusion — the Fig
/// 16/17 orderings must hold for any seed, not one lucky draw.
pub fn seeds(mode: RunMode) -> Vec<Table> {
    let secs = mode.cell_secs().max(120);
    let seeds = [2019u64, 7, 42, 1337, 90210];
    let rows: Vec<(u64, f64, f64, bool)> = seeds
        .par_iter()
        .map(|&seed| {
            let reports = crate::scenarios::eval_matrix(secs, seed);
            // scheme-major: Capping=0, Shaving=1, Token=2, Anti-DOPE=3;
            // budgets Normal..Low = 0..3.
            let get = |s: usize, b: usize| &reports[s * 4 + b];
            let mut mean_impr = 0.0;
            let mut p90_impr = 0.0;
            let mut ordering_holds = true;
            for bi in 1..4 {
                let base_mean = (get(0, bi).normal_latency.mean_ms
                    + get(1, bi).normal_latency.mean_ms)
                    / 2.0;
                let base_p90 =
                    (get(0, bi).normal_latency.p90_ms + get(1, bi).normal_latency.p90_ms) / 2.0;
                mean_impr += 1.0 - get(3, bi).normal_latency.mean_ms / base_mean;
                p90_impr += 1.0 - get(3, bi).normal_latency.p90_ms / base_p90;
                // The paper's qualitative ordering per budget: Anti-DOPE
                // beats Capping on p90.
                if get(3, bi).normal_latency.p90_ms >= get(0, bi).normal_latency.p90_ms {
                    ordering_holds = false;
                }
            }
            (seed, mean_impr / 3.0, p90_impr / 3.0, ordering_holds)
        })
        .collect();
    let mut t = Table::new(
        "Ablation: headline robustness across seeds (Anti-DOPE vs Capping/Shaving mean)",
        &["seed", "mean_improvement", "p90_improvement", "p90_ordering_holds"],
    );
    for (seed, m, p, ok) in &rows {
        t.push_row(vec![
            seed.to_string(),
            format!("{:.1}%", m * 100.0),
            format!("{:.1}%", p * 100.0),
            ok.to_string(),
        ]);
    }
    vec![t]
}

/// `abl-faults`: graceful degradation under telemetry decay — sweep the
/// per-sample sensor-dropout probability and check whether the hardened
/// control plane preserves the paper's headline ordering (Anti-DOPE's
/// p90 below Capping's) as the controller goes progressively blind.
pub fn faults(mode: RunMode) -> Vec<Table> {
    let secs = mode.cell_secs().max(120);
    let dropouts = [0.0, 0.05, 0.10, 0.20];
    let cells: Vec<(SchemeKind, f64)> = [SchemeKind::Capping, SchemeKind::AntiDope]
        .iter()
        .flat_map(|&s| dropouts.iter().map(move |&p| (s, p)))
        .collect();
    let reports: Vec<(SchemeKind, f64, SimReport)> = cells
        .par_iter()
        .map(|&(scheme, p)| {
            let mut exp =
                scenarios::experiment(scheme, BudgetLevel::Low, secs, mode.seed, true);
            if p > 0.0 {
                exp.cluster.faults = Some(FaultConfig {
                    sensor_dropout_p: p,
                    ..FaultConfig::default()
                });
            }
            (
                scheme,
                p,
                run_experiment(&exp, &|e: &ExperimentConfig| standard_sources(e, 390.0)),
            )
        })
        .collect();
    let mut t = Table::new(
        "Ablation: sensor dropout sweep (Low-PB, 390 req/s Colla-Filt)",
        &[
            "scheme",
            "dropout",
            "p90_ms",
            "availability",
            "peak_W",
            "violations",
            "degraded_slots",
            "actuator_giveups",
        ],
    );
    for (k, p, r) in &reports {
        let f = r.faults.clone().unwrap_or_default();
        t.push_row(vec![
            k.name().to_string(),
            format!("{:.0}%", p * 100.0),
            Table::fmt_f64(r.normal_latency.p90_ms),
            format!("{:.1}%", r.availability() * 100.0),
            Table::fmt_f64(r.power.peak_w),
            r.power.violations.to_string(),
            f.degraded_slots.to_string(),
            f.actuator_giveups.to_string(),
        ]);
    }
    vec![t]
}

/// `abl-online-profiler`: suspect-list provenance under a URL-rotating
/// attack at Low-PB. The rotating attacker floods Colla-Filt-heavy work
/// behind URLs the offline profile has never seen, hopping every 20 s:
///
/// * **oracle** — Anti-DOPE handed the true profile of *every* rotation
///   URL up front (impossible knowledge; upper bound).
/// * **online** — Anti-DOPE with the streaming power-attribution
///   profiler, learning the map at runtime from per-node power and
///   in-flight mixes.
/// * **stale-offline** — Anti-DOPE with only the offline service
///   profiles: every rotated URL defaults to Innocent, so PDF isolates
///   nothing and the defense degrades toward Capping-like behaviour.
pub fn online_profiler(mode: RunMode) -> Vec<Table> {
    let secs = mode.cell_secs().max(240);
    let arms = ["oracle", "online", "stale-offline"];
    let reports: Vec<(&str, SimReport)> = arms
        .par_iter()
        .map(|&arm| {
            let mut exp =
                scenarios::experiment(SchemeKind::AntiDope, BudgetLevel::Low, secs, mode.seed, true);
            if arm == "online" {
                exp.cluster.profiler = Some(ProfilerConfig::default());
            }
            let horizon = SimTime::ZERO + exp.duration;
            let attack = scenarios::rotating_attack(390.0, exp.seed, horizon);
            let scheme: Box<dyn PowerScheme> = if arm == "oracle" {
                Box::new(AntiDopeScheme::with_oracle_profiles(
                    &exp.cluster,
                    attack.oracle_profiles(),
                ))
            } else {
                Box::new(AntiDopeScheme::new(&exp.cluster))
            };
            let sources: Vec<Box<dyn TrafficSource>> =
                vec![normal_users(exp.seed, horizon), Box::new(attack)];
            (arm, ClusterSim::run_with_scheme(&exp, scheme, sources))
        })
        .collect();
    let mut t = Table::new(
        "Ablation: suspect-list provenance under a URL-rotating attack (Anti-DOPE, Low-PB, 390 req/s)",
        &[
            "variant",
            "p99_ms",
            "mean_ms",
            "availability",
            "violation_fraction",
            "to_suspect_pool",
            "profiler",
        ],
    );
    for (arm, r) in &reports {
        let prof = r
            .profiler
            .as_ref()
            .map(|p| {
                format!(
                    "tracked={} suspects={} drifts={} reclass={}",
                    p.tracked_urls, p.suspect_urls, p.drift_events, p.reclassifications
                )
            })
            .unwrap_or_else(|| "-".into());
        t.push_row(vec![
            arm.to_string(),
            Table::fmt_f64(r.normal_latency.p99_ms),
            Table::fmt_f64(r.normal_latency.mean_ms),
            format!("{:.1}%", r.availability() * 100.0),
            Table::fmt_f64(r.power.violation_fraction),
            r.traffic.to_suspect_pool.to_string(),
            prof,
        ]);
    }
    vec![t]
}

/// `abl-resilience`: end-to-end request resilience when a rack breaker
/// trip takes a quarter of the cluster down mid-flood. The scaled
/// 16-node cluster runs 4 shards; at a quarter of the horizon all four
/// nodes of shard 1 crash and stay down (`reboot_after: ZERO`). With a
/// retry policy configured the NLB is *not* oracle-notified of the
/// deaths — failure is discovered end-to-end, through timeouts:
///
/// * **no-retry** — `max_attempts: 1`: every request routed into the
///   dead rack is lost for good; sustained goodput loss for the rest of
///   the run.
/// * **retry** — bounded retries with exponential backoff re-enter the
///   balancer and eventually land on a surviving node, but each rescue
///   first burns a timeout against the black-holed rack.
/// * **retry+breaker** — per-pool circuit breakers trip after a streak
///   of failures and re-route dispatches to surviving pools up front,
///   restoring ≥ 90% goodput.
pub fn resilience(mode: RunMode) -> Vec<Table> {
    use netsim::RetryConfig;

    let secs = mode.cell_secs().max(120);
    let trip_at = secs / 4;
    let no_breaker = SimDuration::ZERO;
    let arms: [(&str, RetryConfig); 3] = [
        (
            "no-retry",
            RetryConfig {
                max_attempts: 1,
                breaker_cooldown: no_breaker,
                ..RetryConfig::default()
            },
        ),
        (
            "retry",
            RetryConfig {
                max_attempts: 4,
                breaker_cooldown: no_breaker,
                ..RetryConfig::default()
            },
        ),
        (
            "retry+breaker",
            RetryConfig {
                max_attempts: 4,
                ..RetryConfig::default()
            },
        ),
    ];
    let reports: Vec<(&str, SimReport)> = arms
        .par_iter()
        .map(|(arm, retry)| {
            let mut exp = ExperimentConfig::paper_window(
                ClusterConfig::scaled(BudgetLevel::Medium),
                SchemeKind::AntiDope,
                mode.seed,
            );
            exp.duration = SimDuration::from_secs(secs);
            exp.cluster.shards = 4;
            // Rack trip: shard 1 (nodes 4..8 of 16) goes dark for good.
            exp.cluster.faults = Some(FaultConfig {
                crashes: (4..8)
                    .map(|node| simcore::faults::CrashEvent {
                        node,
                        at: SimTime::from_secs(trip_at),
                    })
                    .collect(),
                reboot_after: SimDuration::ZERO,
                ..FaultConfig::default()
            });
            exp.cluster.retry = Some(retry.clone());
            (
                *arm,
                run_experiment(&exp, &|e: &ExperimentConfig| standard_sources(e, 390.0)),
            )
        })
        .collect();
    let mut t = Table::new(
        "Ablation: request resilience after a rack trip (16 nodes / 4 shards, shard 1 down for good, Medium-PB, 390 req/s Colla-Filt)",
        &[
            "variant",
            "goodput",
            "availability",
            "p90_ms",
            "attempts",
            "recovered",
            "exhausted",
            "breaker_trips",
            "rerouted",
        ],
    );
    for (arm, r) in &reports {
        let retry = r.retry.clone().unwrap_or_default();
        t.push_row(vec![
            arm.to_string(),
            format!("{:.1}%", r.normal_sla.completion_rate() * 100.0),
            format!("{:.1}%", r.availability() * 100.0),
            Table::fmt_f64(r.normal_latency.p90_ms),
            retry.attempts.to_string(),
            retry.recovered.to_string(),
            retry.exhausted.to_string(),
            retry.breaker_trips.to_string(),
            retry.rerouted.to_string(),
        ]);
    }
    vec![t]
}

/// `abl-breaker`: the Fig-1 motivation end-to-end — with a real breaker,
/// unmanaged DOPE becomes an unplanned outage; Anti-DOPE prevents it.
pub fn breaker(mode: RunMode) -> Vec<Table> {
    let secs = mode.cell_secs().max(120);
    let kinds = [SchemeKind::None, SchemeKind::Capping, SchemeKind::AntiDope];
    let reports: Vec<(SchemeKind, SimReport)> = kinds
        .par_iter()
        .map(|&k| {
            let mut exp =
                scenarios::experiment(k, BudgetLevel::Medium, secs, mode.seed, true);
            exp.cluster.breaker = true;
            exp.cluster.breaker_rating_factor = 1.05;
            exp.cluster.breaker_trip_delay = SimDuration::from_secs(30);
            (
                k,
                run_experiment(&exp, &|e: &ExperimentConfig| standard_sources(e, 600.0)),
            )
        })
        .collect();
    let mut t = Table::new(
        "Ablation: circuit breaker armed (Medium-PB, 600 req/s DOPE, trip delay 30 s)",
        &["scheme", "outage_at_s", "availability", "peak_W", "violations"],
    );
    for (k, r) in &reports {
        t.push_row(vec![
            k.name().to_string(),
            r.power
                .outage_at_s
                .map(|t| format!("{t:.0}"))
                .unwrap_or_else(|| "survived".into()),
            format!("{:.1}%", r.availability() * 100.0),
            Table::fmt_f64(r.power.peak_w),
            r.power.violations.to_string(),
        ]);
    }
    vec![t]
}

/// `abl-hierarchy`: what does the power *tree* buy over one facility
/// meter? A rack-concentrated flood against a 16-node / 4-rack cluster:
/// flat telemetry never sees it, the observe-only hierarchy localizes
/// the breach but lets the rack breaker trip, and the per-rack guard
/// defuses it in place.
pub fn hierarchy(mode: RunMode) -> Vec<Table> {
    use workloads::attacker::ConcentratingFloodSource;

    const RACKS: usize = 4;
    const PDUS: usize = 2;
    let secs = mode.cell_secs().max(120);
    let topology = |defend: bool| {
        let mut t = antidope::TopologyConfig::with_racks(RACKS, PDUS);
        t.rack_oversub = 1.0;
        t.pdu_oversub = 1.0;
        t.row_oversub = 1.0;
        t.defend = defend;
        Some(t)
    };
    // (label, topology, attack rate)
    let arms: [(&str, Option<antidope::TopologyConfig>, f64); 4] = [
        ("no attack", topology(false), 0.0),
        ("flat (facility only)", None, 420.0),
        ("hier observe-only", topology(false), 420.0),
        ("hier + rack guard", topology(true), 420.0),
    ];
    let reports: Vec<(&str, SimReport)> = arms
        .par_iter()
        .map(|(arm, topo, rate)| {
            let mut cluster = ClusterConfig::scaled(BudgetLevel::Low);
            cluster.topology = *topo;
            let mut exp = ExperimentConfig::paper_window(cluster, SchemeKind::None, mode.seed);
            exp.duration = SimDuration::from_secs(secs);
            let rate = *rate;
            let factory = move |e: &ExperimentConfig| {
                let horizon = SimTime::ZERO + e.duration;
                let mut v = vec![normal_users(e.seed, horizon)];
                if rate > 0.0 {
                    v.push(Box::new(ConcentratingFloodSource::against_service(
                        rate,
                        ServiceKind::CollaFilt,
                        RACKS,
                        900,
                        e.duration, // never re-aims inside the window
                        50_000,
                        40,
                        1 << 40,
                        SimTime::from_secs(5),
                        horizon,
                        e.seed ^ 0x5EED,
                    )) as Box<dyn TrafficSource>);
                }
                v
            };
            (*arm, run_experiment(&exp, &factory))
        })
        .collect();
    let mut t = Table::new(
        "Ablation: hierarchical power topology vs a rack-concentrated flood \
         (16 nodes / 4 racks / 2 PDUs, Low-PB, oversub 1.0, 420 req/s Colla-Filt on one rack)",
        &[
            "variant",
            "goodput",
            "facility_peak_W",
            "facility_viol",
            "rack_breach",
            "rack_trip_at_s",
            "hottest_rack",
            "guard_slots",
        ],
    );
    for (arm, r) in &reports {
        let (breach, trip, hottest, guard) = match &r.topology {
            Some(tr) => (
                tr.rack_breach_slots.iter().sum::<u64>().to_string(),
                tr.rack_trip_at_s
                    .iter()
                    .flatten()
                    .map(|at| format!("{at:.0}"))
                    .next()
                    .unwrap_or_else(|| "none".into()),
                tr.hottest_rack.to_string(),
                tr.guard_slots.to_string(),
            ),
            None => ("-".into(), "-".into(), "-".into(), "-".into()),
        };
        t.push_row(vec![
            arm.to_string(),
            format!("{:.1}%", r.normal_sla.completion_rate() * 100.0),
            Table::fmt_f64(r.power.peak_w),
            r.power.violations.to_string(),
            breach,
            trip,
            hottest,
            guard,
        ]);
    }
    vec![t]
}
