//! Figure 8 — service time per traffic type under capping: Colla-Filt
//! and K-means arouse the most serious degradation.

use crate::scenarios::run_standard;
use crate::RunMode;
use antidope::SchemeKind;
use dcmetrics::export::Table;
use powercap::BudgetLevel;
use rayon::prelude::*;
use workloads::service::ServiceKind;

/// Generate the Fig 8 data.
pub fn run(mode: RunMode) -> Vec<Table> {
    let rate = 500.0;
    let budgets = [BudgetLevel::Medium, BudgetLevel::Low];
    let cells: Vec<(ServiceKind, BudgetLevel)> = ServiceKind::ALL
        .iter()
        .flat_map(|&k| budgets.iter().map(move |&b| (k, b)))
        .collect();
    let reports: Vec<_> = cells
        .par_iter()
        .map(|&(k, b)| {
            (
                k,
                b,
                run_standard(
                    SchemeKind::Capping,
                    b,
                    k,
                    rate,
                    mode.cell_secs(),
                    mode.seed,
                    false,
                ),
            )
        })
        .collect();

    let mut t = Table::new(
        "Fig 8: normal-user service time by attack traffic type (Capping, 500 req/s)",
        &["attack_type", "budget", "mean_ms", "p90_ms", "mean_vf_steps"],
    );
    for (k, b, rep) in &reports {
        t.push_row(vec![
            k.name().into(),
            b.name().into(),
            Table::fmt_f64(rep.normal_latency.mean_ms),
            Table::fmt_f64(rep.normal_latency.p90_ms),
            Table::fmt_f64(rep.vf.mean_reduction_steps),
        ]);
    }
    vec![t]
}
