//! Table 2 — the evaluated power-management schemes.

use crate::RunMode;
use antidope::SchemeKind;
use dcmetrics::export::Table;

/// Render the scheme catalog.
pub fn run(_mode: RunMode) -> Vec<Table> {
    let mut t = Table::new(
        "Table 2: evaluated power management schemes",
        &["scheme", "feature", "description"],
    );
    let rows: [(SchemeKind, &str, &str); 4] = [
        (
            SchemeKind::Capping,
            "performance scaling only",
            "uniform DVFS across all nodes whenever aggregate power violates the budget",
        ),
        (
            SchemeKind::Shaving,
            "UPS-based peak shaving",
            "the UPS carries the load during violations; uniform DVFS only once it empties",
        ),
        (
            SchemeKind::Token,
            "power-based token bucket",
            "NLB admission bucket refilled at the dynamic power budget; requests are charged their profiled energy",
        ),
        (
            SchemeKind::AntiDope,
            "request-aware (this paper)",
            "PDF: URL-split forwarding isolates suspect flows; RPM/DPM throttles suspect nodes first, battery bridges transitions",
        ),
    ];
    for (kind, feature, desc) in rows {
        t.push_row(vec![kind.name().into(), feature.into(), desc.into()]);
    }
    vec![t]
}
