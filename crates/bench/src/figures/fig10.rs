//! Figure 10 — CDF of power with and without firewalls per traffic type.
//!
//! A *loud* attacker (few bots, per-source rate far above the 150 req/s
//! deflate rule) is eventually banned — but the detection lag lets the
//! early power spikes through, and the lag itself differs by traffic
//! type (heavier requests take longer to attribute).

use crate::scenarios::normal_users;
use crate::RunMode;
use antidope::{run_experiment, ExperimentConfig, SchemeKind, SimReport};
use dcmetrics::export::Table;
use dcmetrics::Ecdf;
use powercap::BudgetLevel;
use rayon::prelude::*;
use simcore::SimTime;
use workloads::attacker::{AttackTool, FloodSource};
use workloads::service::ServiceKind;

fn run_one(kind: ServiceKind, firewall: bool, mode: RunMode) -> SimReport {
    let exp = crate::scenarios::experiment(
        SchemeKind::None,
        BudgetLevel::Normal,
        mode.cell_secs().max(60),
        mode.seed,
        firewall,
    );
    run_experiment(&exp, &move |e: &ExperimentConfig| {
        let horizon = SimTime::ZERO + e.duration;
        vec![
            normal_users(e.seed, horizon),
            // 1000 req/s over 4 bots = 250 req/s per source: over the
            // threshold, so the firewall catches it after its lag.
            Box::new(FloodSource::against_service(
                AttackTool::HttpLoad { rate: 1000.0 },
                kind,
                50_000,
                4,
                1 << 40,
                SimTime::from_secs(5),
                horizon,
                e.seed ^ 0x5EED,
            )),
        ]
    })
}

/// Generate the Fig 10 data.
pub fn run(mode: RunMode) -> Vec<Table> {
    let cells: Vec<(ServiceKind, bool)> = ServiceKind::ALL
        .iter()
        .flat_map(|&k| [(k, false), (k, true)])
        .collect();
    let reports: Vec<(ServiceKind, bool, SimReport)> = cells
        .par_iter()
        .map(|&(k, fw)| (k, fw, run_one(k, fw, mode)))
        .collect();

    let mut summary = Table::new(
        "Fig 10 (summary): firewall effect on a loud 1000 req/s attack (4 bots)",
        &[
            "attack_type",
            "firewall",
            "mean_power_W",
            "peak_power_W",
            "blocked_requests",
        ],
    );
    for (k, fw, rep) in &reports {
        summary.push_row(vec![
            k.name().into(),
            if *fw { "on" } else { "off" }.into(),
            Table::fmt_f64(rep.power.avg_w),
            Table::fmt_f64(rep.power.peak_w),
            rep.traffic.firewall_blocked.to_string(),
        ]);
    }

    let mut cdfs = Table::new(
        "Fig 10 (CDFs): power with/without firewall",
        &["attack_type", "firewall", "power_norm", "cdf"],
    );
    for (k, fw, rep) in &reports {
        let mut cdf = Ecdf::from_samples(rep.power.series.iter().map(|&(_, w)| w / 400.0));
        for (x, p) in cdf.curve(0.3, 1.05, 26) {
            cdfs.push_row(vec![
                k.name().into(),
                if *fw { "on" } else { "off" }.into(),
                Table::fmt_f64(x),
                Table::fmt_f64(p),
            ]);
        }
    }
    vec![summary, cdfs]
}
