//! Figure 6 — the effect of HTTP DoS attack on power capping.
//!
//! (a) V/F reduction vs traffic rate per victim service under Medium-PB
//! capping — Colla-Filt trips DVFS at the lowest rate;
//! (b) V/F reduction per request type at 1000 req/s — K-means forces the
//! deepest cut because its power barely responds to frequency.

use crate::scenarios::run_standard;
use crate::RunMode;
use antidope::{SchemeKind, SimReport};
use dcmetrics::export::Table;
use powercap::BudgetLevel;
use rayon::prelude::*;
use workloads::service::ServiceKind;

fn cell(kind: ServiceKind, rate: f64, mode: RunMode) -> SimReport {
    run_standard(
        SchemeKind::Capping,
        BudgetLevel::Medium,
        kind,
        rate,
        mode.cell_secs(),
        mode.seed,
        false,
    )
}

/// Generate the Fig 6 data.
pub fn run(mode: RunMode) -> Vec<Table> {
    let rates: Vec<f64> = if mode.quick {
        vec![50.0, 200.0, 1000.0]
    } else {
        vec![25.0, 50.0, 100.0, 200.0, 500.0, 1000.0]
    };
    let cells: Vec<(ServiceKind, f64)> = ServiceKind::ALL
        .iter()
        .flat_map(|&k| rates.iter().map(move |&r| (k, r)))
        .collect();
    let reports: Vec<(ServiceKind, f64, SimReport)> = cells
        .par_iter()
        .map(|&(k, r)| (k, r, cell(k, r, mode)))
        .collect();

    let mut a = Table::new(
        "Fig 6-a: V/F reduction vs traffic rate (Medium-PB, Capping)",
        &["service", "rate_rps", "mean_vf_steps", "max_vf_steps"],
    );
    for (k, r, rep) in &reports {
        a.push_row(vec![
            k.name().into(),
            Table::fmt_f64(*r),
            Table::fmt_f64(rep.vf.mean_reduction_steps),
            rep.vf.max_reduction_steps.to_string(),
        ]);
    }

    let mut b = Table::new(
        "Fig 6-b: V/F reduction per request type at 1000 req/s",
        &["service", "mean_vf_steps", "max_vf_steps", "dvfs_transitions"],
    );
    let top_rate = *rates.last().expect("non-empty");
    for (k, r, rep) in &reports {
        if *r == top_rate {
            b.push_row(vec![
                k.name().into(),
                Table::fmt_f64(rep.vf.mean_reduction_steps),
                rep.vf.max_reduction_steps.to_string(),
                rep.vf.transitions.to_string(),
            ]);
        }
    }
    vec![a, b]
}
