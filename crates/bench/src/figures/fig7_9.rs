//! Figures 7 and 9 — service quality and availability vs attack rate in
//! an aggressively power-insufficient cluster (Low-PB, Capping).
//!
//! Fig 7: mean and 90th-percentile response time of *normal* users blow
//! up once the attack rate passes the knee (paper: ≈7.4× mean, ≈8.9×
//! p90 past ~100 req/s).
//! Fig 9: availability (on-time fraction of legitimate requests)
//! collapses over the same sweep.

use crate::scenarios::run_standard;
use crate::RunMode;
use antidope::{SchemeKind, SimReport};
use dcmetrics::export::Table;
use powercap::BudgetLevel;
use rayon::prelude::*;
use workloads::service::ServiceKind;

fn sweep(mode: RunMode) -> Vec<(f64, SimReport)> {
    let rates: Vec<f64> = if mode.quick {
        vec![0.0, 100.0, 500.0]
    } else {
        vec![0.0, 25.0, 50.0, 100.0, 200.0, 400.0, 800.0]
    };
    rates
        .par_iter()
        .map(|&r| {
            (
                r,
                run_standard(
                    SchemeKind::Capping,
                    BudgetLevel::Low,
                    ServiceKind::CollaFilt,
                    r,
                    mode.cell_secs(),
                    mode.seed,
                    false,
                ),
            )
        })
        .collect()
}

/// Fig 7: latency vs attack rate.
pub fn run_fig7(mode: RunMode) -> Vec<Table> {
    let reports = sweep(mode);
    let baseline = &reports[0].1;
    let base_mean = baseline.normal_latency.mean_ms.max(1e-9);
    let base_p90 = baseline.normal_latency.p90_ms.max(1e-9);
    let mut t = Table::new(
        "Fig 7: normal-user latency vs attack rate (Low-PB, Capping)",
        &[
            "attack_rps",
            "mean_ms",
            "p90_ms",
            "mean_vs_noattack",
            "p90_vs_noattack",
        ],
    );
    for (r, rep) in &reports {
        t.push_row(vec![
            Table::fmt_f64(*r),
            Table::fmt_f64(rep.normal_latency.mean_ms),
            Table::fmt_f64(rep.normal_latency.p90_ms),
            format!("{:.1}x", rep.normal_latency.mean_ms / base_mean),
            format!("{:.1}x", rep.normal_latency.p90_ms / base_p90),
        ]);
    }
    vec![t]
}

/// Fig 9: availability vs attack rate.
pub fn run_fig9(mode: RunMode) -> Vec<Table> {
    let reports = sweep(mode);
    let mut t = Table::new(
        "Fig 9: service availability vs attack rate (Low-PB, Capping)",
        &[
            "attack_rps",
            "availability",
            "completion_rate",
            "drop_rate",
            "mean_vf_steps",
        ],
    );
    for (r, rep) in &reports {
        t.push_row(vec![
            Table::fmt_f64(*r),
            Table::fmt_f64(rep.normal_sla.availability()),
            Table::fmt_f64(rep.normal_sla.completion_rate()),
            Table::fmt_f64(rep.normal_sla.drop_rate()),
            Table::fmt_f64(rep.vf.mean_reduction_steps),
        ]);
    }
    vec![t]
}
