//! # dope-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's characterization
//! (Section 3) and evaluation (Section 6). Each figure lives in its own
//! module under [`figures`]; the `experiments` binary dispatches on the
//! figure id, writes one CSV per plotted series under `--out`, and prints
//! the aligned table the paper reports.
//!
//! Shared scenario construction is in [`scenarios`] so Criterion benches
//! exercise exactly the code paths the figures measure.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod figures;
pub mod grid;
pub mod plots;
pub mod scenarios;

use dcmetrics::export::Table;
use std::path::Path;

/// Harness-wide run mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunMode {
    /// Shorter windows and fewer sweep points (CI-friendly).
    pub quick: bool,
    /// Master seed forwarded to every scenario.
    pub seed: u64,
}

impl RunMode {
    /// The paper-fidelity mode (600 s windows).
    pub fn full(seed: u64) -> Self {
        RunMode { quick: false, seed }
    }

    /// CI mode: 60 s windows, coarser sweeps.
    pub fn quick(seed: u64) -> Self {
        RunMode { quick: true, seed }
    }

    /// The observation window for trace-style figures.
    pub fn window_secs(&self) -> u64 {
        if self.quick {
            60
        } else {
            600
        }
    }

    /// Window for sweep cells (many sims per figure).
    pub fn cell_secs(&self) -> u64 {
        if self.quick {
            30
        } else {
            120
        }
    }
}

/// Write and print the tables produced by one figure.
pub fn emit(out_dir: &Path, id: &str, tables: &[Table]) {
    for (i, t) in tables.iter().enumerate() {
        let name = if tables.len() == 1 {
            format!("{id}.csv")
        } else {
            format!("{id}_{}.csv", i + 1)
        };
        let path = out_dir.join(&name);
        t.write_csv(&path)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        if t.len() <= 60 {
            println!("{}", t.to_text());
        } else {
            println!("## {} — {} rows, see CSV", t.title(), t.len());
        }
        println!("[csv] {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_modes() {
        let full = RunMode::full(1);
        assert_eq!(full.window_secs(), 600);
        assert_eq!(full.cell_secs(), 120);
        let quick = RunMode::quick(1);
        assert_eq!(quick.window_secs(), 60);
        assert_eq!(quick.cell_secs(), 30);
        assert_eq!(quick.seed, 1);
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(figures::run("fig99", RunMode::quick(1)).is_none());
        assert!(figures::run("", RunMode::quick(1)).is_none());
    }

    #[test]
    fn catalog_tables_generate_instantly() {
        let t1 = figures::run("table1", RunMode::quick(1)).unwrap();
        assert_eq!(t1.len(), 2);
        assert_eq!(t1[0].len(), 4); // four victim kernels
        let t2 = figures::run("table2", RunMode::quick(1)).unwrap();
        assert_eq!(t2[0].len(), 4); // four schemes
    }

    #[test]
    fn fig12_converges_in_quick_mode() {
        let tables = figures::run("fig12", RunMode::quick(7)).unwrap();
        // Staircase + outcome.
        assert_eq!(tables.len(), 2);
        assert!(tables[0].len() >= 5, "staircase too short");
        assert_eq!(tables[1].len(), 1);
    }

    #[test]
    fn emit_writes_csvs() {
        let dir = std::env::temp_dir().join(format!("dope_bench_emit_{}", std::process::id()));
        let tables = figures::run("table2", RunMode::quick(1)).unwrap();
        emit(&dir, "table2", &tables);
        assert!(dir.join("table2.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_listed_id_dispatches() {
        // Dispatch-table completeness: every advertised id must resolve
        // (we only *run* the cheap ones above; here we just check the
        // match arms exist by probing the id set against the dispatcher
        // via the catalog path). Unknown ids must not panic.
        for id in figures::ALL_IDS.iter().chain(figures::ABLATION_IDS.iter()) {
            // The ids that launch simulations are exercised by the
            // `experiments --quick` CI step; here assert they are known
            // names (dispatch returns Some only for known ids, so probe
            // with a cheap proxy: the name must be non-empty and ascii).
            assert!(!id.is_empty() && id.is_ascii());
        }
    }
}
