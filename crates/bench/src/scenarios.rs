//! Shared scenario construction for figures and benches.

use antidope::{run_experiment, ClusterConfig, ExperimentConfig, SchemeKind, SimReport};
use powercap::BudgetLevel;
use simcore::{SimDuration, SimTime};
use workloads::attacker::{AttackTool, RotatingFloodSource};
use workloads::floods::FloodKind;
use workloads::scenario::{ScenarioBuilder, SeedPin};
use workloads::service::ServiceKind;
use workloads::source::TrafficSource;

/// Peak arrival rate of the normal population in every scenario,
/// requests/s at trace utilization 1.0.
pub const NORMAL_PEAK_RATE: f64 = 80.0;

/// Standard botnet size: per-bot rates stay under the firewall threshold
/// for every aggregate rate the figures sweep.
pub const BOTS: u32 = 40;

/// Build the normal-user source (Alibaba-trace-shaped AliOS population).
///
/// The canonical builder lives in [`antidope::testutil`] (itself a
/// pinned [`workloads::ScenarioBuilder`] assembly); the bench peak rate
/// is fixed here.
pub fn normal_users(seed: u64, horizon: SimTime) -> Box<dyn TrafficSource> {
    antidope::testutil::normal_source(seed, horizon, NORMAL_PEAK_RATE)
}

/// An http-load attack on a service kernel at `rate` requests/s,
/// starting at t = 5 s. Pinned to the historical placement (address
/// 50 000, id-space `1 << 40`, `seed ^ 0x5EED`).
pub fn service_attack(
    victim: ServiceKind,
    rate: f64,
    seed: u64,
    horizon: SimTime,
) -> Box<dyn TrafficSource> {
    ScenarioBuilder::new()
        .with_attack_spanning(
            AttackTool::HttpLoad { rate },
            victim,
            BOTS,
            SimTime::from_secs(5),
            None,
        )
        .pinned(50_000, 1 << 40, SeedPin::Xor(0x5EED))
        .build(seed, horizon)
        .pop()
        .expect("builder holds exactly one ingredient")
}

/// First URL of the rotating attacker's range — deliberately outside
/// every [`ServiceKind`] URL, so the offline profile has never seen it.
pub const ROTATION_URL_BASE: u16 = 800;
/// Number of URLs the rotating attacker hops over.
pub const ROTATION_URL_SPACE: u16 = 6;
/// Seconds between URL rotations.
pub const ROTATION_PERIOD_S: u64 = 20;

/// A URL-rotating adaptive attack: heavy Colla-Filt work behind URLs the
/// offline profile has never seen, hopping every [`ROTATION_PERIOD_S`].
/// Returned concretely so callers can extract
/// [`RotatingFloodSource::oracle_profiles`] for the oracle arm.
pub fn rotating_attack(rate: f64, seed: u64, horizon: SimTime) -> RotatingFloodSource {
    RotatingFloodSource::against_service(
        rate,
        ServiceKind::CollaFilt,
        ROTATION_URL_BASE,
        ROTATION_URL_SPACE,
        SimDuration::from_secs(ROTATION_PERIOD_S),
        50_000,
        BOTS,
        1 << 40,
        SimTime::from_secs(5),
        horizon,
        seed ^ 0x707A7E,
    )
}

/// A layered flood (Fig 3 taxonomy) at `rate`, over `bots` agents.
pub fn layer_flood(
    kind: FloodKind,
    rate: f64,
    bots: u32,
    seed: u64,
    horizon: SimTime,
) -> Box<dyn TrafficSource> {
    ScenarioBuilder::new()
        .with_flood(kind, rate, bots, 5)
        .pinned(50_000, 1 << 40, SeedPin::Xor(0xF100D))
        .build(seed, horizon)
        .pop()
        .expect("builder holds exactly one ingredient")
}

/// An experiment config with an optional firewall override.
pub fn experiment(
    scheme: SchemeKind,
    budget: BudgetLevel,
    duration_s: u64,
    seed: u64,
    firewall: bool,
) -> ExperimentConfig {
    let mut cluster = ClusterConfig::paper_rack(budget);
    cluster.firewall = firewall;
    let mut exp = ExperimentConfig::paper_window(cluster, scheme, seed);
    exp.duration = SimDuration::from_secs(duration_s);
    exp
}

/// Run the standard "AliOS + kernel attack" scenario.
pub fn run_standard(
    scheme: SchemeKind,
    budget: BudgetLevel,
    victim: ServiceKind,
    attack_rate: f64,
    duration_s: u64,
    seed: u64,
    firewall: bool,
) -> SimReport {
    let exp = experiment(scheme, budget, duration_s, seed, firewall);
    run_experiment(&exp, &move |e: &ExperimentConfig| {
        let horizon = SimTime::ZERO + e.duration;
        let mut v = vec![normal_users(e.seed, horizon)];
        if attack_rate > 0.0 {
            v.push(service_attack(victim, attack_rate, e.seed, horizon));
        }
        v
    })
}

/// The evaluation matrix scenario of Figs 16/17/19: AliOS plus a
/// sustained Colla-Filt DOPE flood.
pub fn eval_matrix(duration_s: u64, seed: u64) -> Vec<SimReport> {
    antidope::run_matrix(
        &SchemeKind::EVALUATED,
        &BudgetLevel::ALL,
        &ClusterConfig::paper_rack(BudgetLevel::Normal),
        SimDuration::from_secs(duration_s),
        seed,
        &|e: &ExperimentConfig| {
            let horizon = SimTime::ZERO + e.duration;
            vec![
                normal_users(e.seed, horizon),
                service_attack(ServiceKind::CollaFilt, 390.0, e.seed, horizon),
            ]
        },
    )
}
