//! The attacker × defense co-evolution grid CLI.
//!
//! ```text
//! scenario_grid [--smoke] [--out DIR] [--seed N] [--duration S] [--shards N]
//!
//!   --smoke     3×3 CI grid (burst/memory/rotating × open/dvfs/stacked)
//!               with hard assertions on the expected physics
//!   --out       output directory for the CSV [default: target/experiments]
//!   --seed      master seed                  [default: 2019]
//!   --duration  seconds per cell             [default: 120, smoke: 60]
//!   --shards    dataplane shards per cell    [default: 1]
//! ```
//!
//! Prints the matrix figure (markdown) and writes `scenario_grid.csv`.

use dope_bench::grid::{
    cells_table, matrix_markdown, run_grid, AttackRow, DefenseStack, GridConfig,
};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = PathBuf::from("target/experiments");
    let mut seed = 2019u64;
    let mut duration: Option<u64> = None;
    let mut shards = 1usize;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                };
                out = PathBuf::from(dir);
            }
            "--seed" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse().ok()) else {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                };
                seed = v;
            }
            "--duration" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse().ok()) else {
                    eprintln!("--duration needs seconds");
                    return ExitCode::FAILURE;
                };
                duration = Some(v);
            }
            "--shards" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse().ok()) else {
                    eprintln!("--shards needs a count");
                    return ExitCode::FAILURE;
                };
                shards = v;
            }
            "--help" | "-h" => {
                println!(
                    "usage: scenario_grid [--smoke] [--out DIR] [--seed N] [--duration S] [--shards N]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let mut cfg = if smoke {
        GridConfig::smoke(seed)
    } else {
        GridConfig::full(seed)
    };
    if let Some(d) = duration {
        cfg.duration_s = d;
    }
    cfg.shards = shards;

    let (rows, cols): (&[AttackRow], &[DefenseStack]) = if smoke {
        (&AttackRow::SMOKE, &DefenseStack::SMOKE)
    } else {
        (&AttackRow::ALL, &DefenseStack::ALL)
    };

    let started = std::time::Instant::now();
    let cells = run_grid(&cfg, rows, cols);
    println!("{}", matrix_markdown(&cells, cols));

    let table = cells_table(&cells);
    println!("{}", table.to_text());
    let path = out.join("scenario_grid.csv");
    if let Err(e) = table.write_csv(&path) {
        eprintln!("writing {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("[csv] {}", path.display());
    eprintln!(
        "{} cells in {:.1}s",
        cells.len(),
        started.elapsed().as_secs_f64()
    );

    if smoke && !smoke_assertions(&cells) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Hard CI assertions on the smoke grid's physics. Returns false (and
/// explains) when any expectation is broken.
fn smoke_assertions(cells: &[dope_bench::grid::GridCell]) -> bool {
    let find = |vector_tag: &str, defense: &str| {
        cells
            .iter()
            .find(|c| c.vector.contains(vector_tag) && c.defense == defense)
    };
    let mut ok = true;
    let mut check = |what: &str, pass: bool| {
        if pass {
            println!("[smoke] ok: {what}");
        } else {
            eprintln!("[smoke] FAILED: {what}");
            ok = false;
        }
    };

    for c in cells {
        check(
            &format!("{} vs {} report is finite", c.vector, c.defense),
            c.report.power.peak_w.is_finite() && c.report.traffic.offered > 0,
        );
    }

    // The undefended memory-resource flood breaches the budget; the
    // stacked CAPoW + Anti-DOPE arm holds it.
    if let (Some(open), Some(stacked)) = (find("mem-", "open"), find("mem-", "stacked")) {
        check("memory flood violates the open arm", open.violated());
        check(
            "stacked arm holds the memory flood",
            !stacked.violated(),
        );
    } else {
        check("memory-flood row present", false);
    }

    // The rotating attacker against the profiler yields a finite,
    // positive regret signal.
    if let Some(rot) = find("rotating-", "stacked") {
        check(
            "rotating × stacked regret is finite",
            rot.regret_slots.is_some_and(|r| r.is_finite() && r >= 0.0),
        );
    } else {
        check("rotating row present", false);
    }

    ok
}
