//! The experiment harness CLI.
//!
//! ```text
//! experiments [IDS...] [--out DIR] [--quick] [--seed N] [--list]
//!
//!   IDS      experiment ids (table1 table2 fig3 ... fig19), or "all"
//!   --out    output directory for CSVs   [default: target/experiments]
//!   --quick  shorter windows / coarser sweeps (CI mode)
//!   --seed   master seed                 [default: 2019]
//!   --list   print known ids and exit
//! ```
//!
//! Every figure prints its tables to stdout and writes one CSV per
//! plotted series under `--out`.

use dope_bench::{emit, figures, RunMode};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut out = PathBuf::from("target/experiments");
    let mut quick = false;
    let mut plots = false;
    let mut seed = 2019u64;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                };
                out = PathBuf::from(dir);
            }
            "--quick" => quick = true,
            "--plots" => plots = true,
            "--seed" => {
                i += 1;
                let Some(s) = args.get(i) else {
                    eprintln!("--seed needs a value");
                    return ExitCode::FAILURE;
                };
                match s.parse() {
                    Ok(v) => seed = v,
                    Err(_) => {
                        eprintln!("bad seed: {s}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--list" => {
                for id in figures::ALL_IDS {
                    println!("{id}");
                }
                println!("fig19 (alias of fig16: shared run matrix)");
                for id in figures::ABLATION_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [IDS...|all|ablations] [--out DIR] [--quick] [--plots] [--seed N] [--list]"
                );
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }

    if ids.is_empty() || ids.iter().any(|s| s == "all") {
        ids = figures::ALL_IDS.iter().map(|s| s.to_string()).collect();
        // fig17 shares fig16's generator; drop the duplicate run.
        ids.retain(|s| s != "fig17");
    }
    if let Some(pos) = ids.iter().position(|s| s == "ablations") {
        ids.remove(pos);
        ids.extend(figures::ABLATION_IDS.iter().map(|s| s.to_string()));
    }

    let mode = if quick {
        RunMode::quick(seed)
    } else {
        RunMode::full(seed)
    };

    let started = std::time::Instant::now();
    for id in &ids {
        println!("==> {id} ({})", if quick { "quick" } else { "full" });
        match figures::run(id, mode) {
            Some(tables) => {
                emit(&out, id, &tables);
                if plots {
                    match dope_bench::plots::write_gnuplot(&out, id) {
                        Ok(Some(p)) => println!("[gnuplot] {}", p.display()),
                        Ok(None) => {}
                        Err(e) => eprintln!("plot script for {id} failed: {e}"),
                    }
                }
            }
            None => {
                eprintln!("unknown experiment id: {id} (try --list)");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "completed {} experiment(s) in {:.1}s, CSVs under {}",
        ids.len(),
        started.elapsed().as_secs_f64(),
        out.display()
    );
    ExitCode::SUCCESS
}
