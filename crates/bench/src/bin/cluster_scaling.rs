//! Cluster-scaling macro-benchmark: throughput of the sharded parallel
//! engine against the legacy event-driven engine on a large cluster.
//!
//! ```text
//! cluster_scaling [--quick] [--assert-speedup X] [--out FILE]
//!
//!   --quick            10 s horizon instead of 60 s (CI smoke)
//!   --assert-speedup X exit non-zero unless the 4-shard engine beats
//!                      the 1-shard (legacy) engine by at least X×
//!   --out FILE         where to write the JSON record
//!                      [default: BENCH_cluster.json]
//! ```
//!
//! The scenario is a 1000-node cluster under a 100 000-user population
//! plus the standard Colla-Filt flood, run at shard counts 1, 2, 4 and
//! 8 in two layouts: flat (no power topology) and multi-rack (25 racks
//! / 5 PDUs with per-level budgets, rack breakers and the rack guard).
//! In the flat layout `shards: 1` dispatches to the original
//! event-driven engine — whose power accounting rescans all n nodes on
//! every event — so that row is the true baseline users get today; any
//! multi-rack run uses the sharded engine. The sharded rows measure the
//! data-oriented engine: O(1) incremental power sums, slot-batched
//! control, and (with a real thread pool) parallel shard advancement;
//! the multi-rack rows add the hierarchical allocator's per-slot cost.
//! The headline metric is simulated requests per second of wall time.

use antidope::config::{ClusterConfig, ExperimentConfig, SchemeKind};
use antidope::results::SimReport;
use antidope::run_experiment;
use powercap::BudgetLevel;
use simcore::{SimDuration, SimTime};
use std::process::ExitCode;
use std::time::Instant;
use workloads::source::TrafficSource;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// (racks, pdus) layouts to sweep: flat, then a 25-rack / 5-PDU tree.
const LAYOUTS: [(usize, usize); 2] = [(1, 1), (25, 5)];

/// The 1000-node scaling cluster.
fn big_cluster(shards: usize, racks: usize, pdus: usize) -> ClusterConfig {
    let mut cluster = ClusterConfig::scaled(BudgetLevel::Medium);
    cluster.servers = 1000;
    cluster.suspect_pool_size = 50;
    cluster.shards = shards;
    if racks > 1 {
        cluster.topology = Some(antidope::TopologyConfig::with_racks(racks, pdus));
    }
    cluster
}

/// 100k-user population plus the standard flood.
fn sources(exp: &ExperimentConfig) -> Vec<Box<dyn TrafficSource>> {
    let horizon = SimTime::ZERO + exp.duration;
    let trace = workloads::alibaba::UtilizationTrace::synthesize(
        &workloads::alibaba::AlibabaTraceConfig::small(exp.seed),
    );
    vec![
        Box::new(workloads::normal::NormalUsers::new(
            trace,
            workloads::service::ServiceMix::alios_normal(),
            2_000.0, // cluster-wide peak req/s
            1_000,   // client address base
            100_000, // distinct clients
            0,
            horizon,
            exp.seed,
        )),
        Box::new(workloads::attacker::FloodSource::against_service(
            workloads::attacker::AttackTool::HttpLoad { rate: 1_000.0 },
            workloads::service::ServiceKind::CollaFilt,
            500_000, // botnet address base
            200,     // bots (stealthy per-source rates)
            1 << 40,
            SimTime::from_secs(2),
            horizon,
            exp.seed ^ 0x5EED,
        )),
    ]
}

struct Row {
    racks: usize,
    shards: usize,
    wall_s: f64,
    offered: u64,
    events: u64,
    req_per_s: f64,
    speedup: f64,
}

fn run_once(shards: usize, racks: usize, pdus: usize, secs: u64, seed: u64) -> (f64, SimReport) {
    let mut exp = ExperimentConfig::paper_window(
        big_cluster(shards, racks, pdus),
        SchemeKind::AntiDope,
        seed,
    );
    exp.duration = SimDuration::from_secs(secs);
    exp.label = format!("cluster-scaling-{racks}rack-{shards}shard");
    let t0 = Instant::now();
    let report = run_experiment(&exp, &sources);
    (t0.elapsed().as_secs_f64(), report)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut assert_speedup: Option<f64> = None;
    let mut out = String::from("BENCH_cluster.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--assert-speedup" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse().ok()) else {
                    eprintln!("--assert-speedup needs a number");
                    return ExitCode::FAILURE;
                };
                assert_speedup = Some(v);
            }
            "--out" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                };
                out = v.clone();
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let secs = if quick { 10 } else { 60 };
    let seed = 2019u64;
    println!(
        "cluster_scaling: 1000 nodes, 100k users + flood, {secs} s horizon, \
         shards {SHARD_COUNTS:?}, layouts {LAYOUTS:?} (racks, pdus)\n"
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut base_rps = 0.0;
    for &(racks, pdus) in &LAYOUTS {
        for &shards in &SHARD_COUNTS {
            let (wall_s, report) = run_once(shards, racks, pdus, secs, seed);
            let req_per_s = report.traffic.offered as f64 / wall_s.max(1e-9);
            if racks == 1 && shards == 1 {
                base_rps = req_per_s;
            }
            let speedup = req_per_s / base_rps.max(1e-9);
            println!(
                "  racks={racks:<3} shards={shards:<2} wall {wall_s:>7.2} s  offered {:>8}  events {:>9}  {:>10.0} req/s  ({speedup:.2}x)",
                report.traffic.offered, report.events, req_per_s
            );
            rows.push(Row {
                racks,
                shards,
                wall_s,
                offered: report.traffic.offered,
                events: report.events,
                req_per_s,
                speedup,
            });
        }
    }

    let results: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"racks\": {},\n      \"shards\": {},\n      \"wall_s\": {:.3},\n      \"offered_requests\": {},\n      \"events\": {},\n      \"simulated_requests_per_sec\": {:.0},\n      \"speedup_vs_flat_1_shard\": {:.2}\n    }}",
                r.racks, r.shards, r.wall_s, r.offered, r.events, r.req_per_s, r.speedup
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"cluster_scaling\",\n  \"description\": \"End-to-end simulated-requests/sec on a 1000-node, 100k-user, flood-attacked cluster at increasing shard counts, in a flat layout and a 25-rack / 5-PDU hierarchical power topology. racks=1 shards=1 is the legacy event-driven engine (O(n) power rescan per event); every other row is the sharded data-oriented engine (O(1) incremental power sums, slot-batched control, per-shard event loops that a multi-core thread pool advances in parallel). Multi-rack rows add the per-slot hierarchical budget allocator, per-rack breach/breaker accounting, and rack-affine load balancing.\",\n  \"scenario\": \"1000 x 100 W nodes, Medium-PB, Anti-DOPE scheme, 2000 req/s normal peak over 100k clients + 1000 req/s Colla-Filt flood over 200 bots, {secs} s horizon, seed {seed}\",\n  \"harness\": \"cargo run --release -p dope-bench --bin cluster_scaling{}\",\n  \"results\": [\n{}\n  ]\n}}\n",
        if quick { " -- --quick" } else { "" },
        results.join(",\n")
    );
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {out}");

    if let Some(min) = assert_speedup {
        let four = rows
            .iter()
            .find(|r| r.racks == 1 && r.shards == 4)
            .expect("flat 4-shard row always runs");
        if four.speedup < min {
            eprintln!(
                "FAIL: 4-shard speedup {:.2}x below required {min:.2}x",
                four.speedup
            );
            return ExitCode::FAILURE;
        }
        println!("speedup gate passed: {:.2}x >= {min:.2}x at 4 shards", four.speedup);
    }
    ExitCode::SUCCESS
}
