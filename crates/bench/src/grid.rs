//! The attacker × defense co-evolution grid.
//!
//! Sweeps composed [`AttackVectorSpec`] rows against defense-stack
//! columns over fixed seeds, one simulation per cell, and scores each
//! cell on power-budget integrity, drop accounting, and — for moving
//! attackers against the online profiler — a regret-style convergence
//! lag: how many control slots each attacker move stayed off the
//! suspect list.
//!
//! Every row derives its own named RNG stream from the master seed and
//! the vector's composed name, so adding or reordering rows never
//! perturbs another row's bytes, and the same cell is byte-identical at
//! any shard count (the engines already guarantee shard-invariance; the
//! grid guarantees the inputs).

use antidope::{
    run_experiment, AdmissionConfig, ClusterConfig, ExperimentConfig, SchemeKind, SimReport,
};
use dcmetrics::export::Table;
use powercap::BudgetLevel;
use profiler::ProfilerConfig;
use simcore::{SimDuration, SimTime};
use workloads::scenario::{ScenarioBuilder, SeedPin};
use workloads::service::ServiceKind;
use workloads::vector::{AttackVectorSpec, Envelope, ResourceProfile, SourcePlan, TargetPlan};

use crate::scenarios::NORMAL_PEAK_RATE;

/// Attack start (seconds into the run) for every grid row.
pub const ATTACK_START_S: u64 = 5;

/// Grid-wide run parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridConfig {
    /// Simulated seconds per cell.
    pub duration_s: u64,
    /// Master seed; each row folds its vector name into it.
    pub seed: u64,
    /// Aggregate attack rate, requests/s.
    pub attack_rate: f64,
    /// Power provisioning level.
    pub budget: BudgetLevel,
    /// Dataplane shard count for every cell.
    pub shards: usize,
}

impl GridConfig {
    /// The CI smoke configuration: short cells at the paper's most
    /// oversubscribed budget, where an unmanaged flood must violate.
    pub fn smoke(seed: u64) -> Self {
        GridConfig {
            duration_s: 60,
            seed,
            attack_rate: 390.0,
            budget: BudgetLevel::Low,
            shards: 1,
        }
    }

    /// The full-fidelity configuration (paper windows).
    pub fn full(seed: u64) -> Self {
        GridConfig {
            duration_s: 120,
            ..GridConfig::smoke(seed)
        }
    }
}

/// One attacker archetype — a named point in the vector algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackRow {
    /// The legacy constant-rate botnet flood.
    Constant,
    /// ON/OFF bursting sized to slip a finite-ban firewall.
    Burst,
    /// Low-and-slow ramp: under every trigger early, 2× late.
    LowSlow,
    /// Memory/IO-bound resource shape DVFS cannot reclaim.
    Memory,
    /// URL-rotating flood racing the online profiler.
    Rotating,
}

impl AttackRow {
    /// The full grid's rows.
    pub const ALL: [AttackRow; 5] = [
        AttackRow::Constant,
        AttackRow::Burst,
        AttackRow::LowSlow,
        AttackRow::Memory,
        AttackRow::Rotating,
    ];

    /// The CI smoke rows (ISSUE acceptance: burst / memory / rotating).
    pub const SMOKE: [AttackRow; 3] = [AttackRow::Burst, AttackRow::Memory, AttackRow::Rotating];

    /// The composed vector spec for this row at `rate` req/s.
    pub fn spec(self, rate: f64) -> AttackVectorSpec {
        let base = AttackVectorSpec::open_loop(ServiceKind::CollaFilt, rate)
            .sources(SourcePlan::Botnet { bots: 40 });
        match self {
            AttackRow::Constant => base,
            AttackRow::Burst => base
                .envelope(Envelope::OnOffBurst {
                    period: SimDuration::from_secs(40),
                    duty: 0.1,
                })
                .sources(SourcePlan::EvadingBotnet { threshold_rps: 150.0 }),
            AttackRow::LowSlow => base.envelope(Envelope::LowAndSlow),
            AttackRow::Memory => base.resources(ResourceProfile::MemoryBound),
            AttackRow::Rotating => base.target(TargetPlan::Rotating {
                url_base: 800,
                url_space: 6,
                period: SimDuration::from_secs(20),
            }),
        }
    }
}

/// One defense-stack column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefenseStack {
    /// No power management, no perimeter: the vulnerability baseline.
    Open,
    /// DVFS-only uniform capping, no perimeter.
    DvfsOnly,
    /// Perimeter firewall alone (finite 30 s bans), no power control.
    FirewallOnly,
    /// Everything on: Anti-DOPE + firewall + CAPoW cost-to-serve
    /// pricing + the online profiler (convergence tracking on).
    Stacked,
}

impl DefenseStack {
    /// The full grid's columns.
    pub const ALL: [DefenseStack; 4] = [
        DefenseStack::Open,
        DefenseStack::DvfsOnly,
        DefenseStack::FirewallOnly,
        DefenseStack::Stacked,
    ];

    /// The CI smoke columns (ISSUE acceptance: none / dvfs / stacked).
    pub const SMOKE: [DefenseStack; 3] = [
        DefenseStack::Open,
        DefenseStack::DvfsOnly,
        DefenseStack::Stacked,
    ];

    /// Column label.
    pub fn name(self) -> &'static str {
        match self {
            DefenseStack::Open => "open",
            DefenseStack::DvfsOnly => "dvfs-only",
            DefenseStack::FirewallOnly => "firewall-only",
            DefenseStack::Stacked => "stacked",
        }
    }

    /// Configure `cluster` for this stack and return the scheme to run.
    pub fn apply(self, cluster: &mut ClusterConfig) -> SchemeKind {
        match self {
            DefenseStack::Open => {
                cluster.firewall = false;
                SchemeKind::None
            }
            DefenseStack::DvfsOnly => {
                cluster.firewall = false;
                SchemeKind::Capping
            }
            DefenseStack::FirewallOnly => {
                cluster.admission = Some(AdmissionConfig {
                    firewall_ban_s: Some(30.0),
                    ..AdmissionConfig::default()
                });
                SchemeKind::None
            }
            DefenseStack::Stacked => {
                // Calibrated to the rack: normal traffic costs ~10
                // units/s (80 req/s × 0.084 Gcy × 0.98 × 1.2 surcharge),
                // a 390 req/s flood 40–95 units/s depending on resource
                // shape — the gate passes the former and starves the
                // latter. The burst window is kept shorter than one
                // control slot so the gate binds at flood onset, before
                // the power plane's first action. The library default
                // (1000/s) is a no-op at this scale.
                cluster.admission = Some(AdmissionConfig {
                    cost_to_serve: Some(netsim::CostToServeConfig {
                        budget_per_s: 30.0,
                        burst_s: 0.1,
                        mem_surcharge: 2.0,
                    }),
                    firewall_ban_s: Some(30.0),
                });
                cluster.profiler = Some(ProfilerConfig {
                    track_convergence: true,
                    ..ProfilerConfig::default()
                });
                SchemeKind::AntiDope
            }
        }
    }
}

/// One completed grid cell.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// The attacker's composed vector name.
    pub vector: String,
    /// The defense column label.
    pub defense: &'static str,
    /// Mean convergence lag in control slots per attacker move (only
    /// for moving attackers under a profiler-bearing stack).
    pub regret_slots: Option<f64>,
    /// The full simulation report.
    pub report: SimReport,
}

impl GridCell {
    /// Did the cell breach the power budget at any point?
    pub fn violated(&self) -> bool {
        self.report.power.violations > 0
    }
}

/// Fold a vector's name into the master seed: the row's named RNG
/// stream (FNV-1a, stable across platforms and runs).
pub fn stream_seed(master: u64, name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    master ^ h
}

/// The scenario for one cell: the pinned standard normal population
/// plus the row's vector at index 1.
fn cell_builder(spec: &AttackVectorSpec) -> ScenarioBuilder {
    ScenarioBuilder::new()
        .with_normal_users(NORMAL_PEAK_RATE, 60)
        .pinned(1_000, 0, SeedPin::Raw)
        .with_vector(spec.clone(), ATTACK_START_S)
}

/// Run one `(row, column)` cell on the standard paper rack.
pub fn run_cell(cfg: &GridConfig, row: AttackRow, col: DefenseStack) -> GridCell {
    run_cell_on(cfg, row, col, &|_| {})
}

/// Run one cell with a caller hook over the cluster config, applied
/// before the defense stack — scaling studies and shard-identity tests
/// resize the rack (or attach a topology) without forking the harness.
pub fn run_cell_on(
    cfg: &GridConfig,
    row: AttackRow,
    col: DefenseStack,
    mutate: &dyn Fn(&mut ClusterConfig),
) -> GridCell {
    let spec = row.spec(cfg.attack_rate);
    let vector = spec.name();
    let seed = stream_seed(cfg.seed, &vector);
    let mut cluster = ClusterConfig::paper_rack(cfg.budget);
    cluster.shards = cfg.shards;
    mutate(&mut cluster);
    let scheme = col.apply(&mut cluster);
    let mut exp = ExperimentConfig::paper_window(cluster, scheme, seed);
    exp.duration = SimDuration::from_secs(cfg.duration_s);
    exp.label = format!("{vector} vs {}", col.name());
    let builder = cell_builder(&spec);
    let horizon_builder = builder.clone();
    let report = run_experiment(&exp, &move |e: &ExperimentConfig| {
        horizon_builder.build(e.seed, SimTime::ZERO + e.duration)
    });
    let regret_slots = regret(&builder, &spec, seed, &exp, &report);
    GridCell {
        vector,
        defense: col.name(),
        regret_slots,
        report,
    }
}

/// Mean slots-to-reconvergence per attacker move: replay the vector's
/// move plan (byte-identical rebuild via the builder's placement)
/// against the profiler's recorded suspect timeline. A move never
/// re-detected scores the remaining window — evasion is expensive, not
/// free.
fn regret(
    builder: &ScenarioBuilder,
    spec: &AttackVectorSpec,
    seed: u64,
    exp: &ExperimentConfig,
    report: &SimReport,
) -> Option<f64> {
    let timeline = &report.profiler.as_ref()?.suspect_timeline;
    let horizon = SimTime::ZERO + exp.duration;
    let (addr_base, id_base, sub_seed) = builder.placement(1, seed);
    let vector = spec.build(
        addr_base,
        id_base,
        SimTime::from_secs(ATTACK_START_S),
        horizon,
        sub_seed,
    );
    let plan = vector.planned_moves(horizon);
    if plan.len() < 2 {
        return None; // a fixed target has no moves to regret
    }
    let slot_s = exp.cluster.control_slot.as_secs_f64();
    let horizon_slot = (horizon.as_secs_f64() / slot_s).ceil();
    let mut total = 0.0;
    for &(at, url) in &plan {
        let move_slot = (at.as_secs_f64() / slot_s).ceil();
        let detected = timeline
            .iter()
            .find(|(tick, suspects)| *tick as f64 >= move_slot && suspects.contains(&url));
        total += match detected {
            Some((tick, _)) => *tick as f64 - move_slot,
            None => horizon_slot - move_slot,
        };
    }
    Some(total / plan.len() as f64)
}

/// Run a whole grid (row-major order).
pub fn run_grid(cfg: &GridConfig, rows: &[AttackRow], cols: &[DefenseStack]) -> Vec<GridCell> {
    let mut cells = Vec::with_capacity(rows.len() * cols.len());
    for &row in rows {
        for &col in cols {
            cells.push(run_cell(cfg, row, col));
        }
    }
    cells
}

/// Flatten completed cells into the harness CSV table.
pub fn cells_table(cells: &[GridCell]) -> Table {
    let mut t = Table::new(
        "scenario grid — attacker × defense",
        &[
            "vector",
            "defense",
            "violations",
            "violation_frac",
            "peak_w",
            "supply_w",
            "drop_rate",
            "firewall_blocked",
            "admission_denied",
            "regret_slots",
        ],
    );
    for c in cells {
        let denied = c
            .report
            .admission
            .as_ref()
            .map(|a| a.stages.iter().map(|s| s.denied).sum::<u64>())
            .unwrap_or(0);
        t.push_row(vec![
            c.vector.clone(),
            c.defense.to_string(),
            c.report.power.violations.to_string(),
            Table::fmt_f64(c.report.power.violation_fraction),
            Table::fmt_f64(c.report.power.peak_w),
            Table::fmt_f64(c.report.power.supply_w),
            Table::fmt_f64(c.report.traffic.drop_rate),
            c.report.traffic.firewall_blocked.to_string(),
            denied.to_string(),
            c.regret_slots.map(Table::fmt_f64).unwrap_or_else(|| "-".into()),
        ]);
    }
    t
}

/// Render the matrix figure: one row per vector, one column per
/// defense, each cell `OK`/`VIOL` plus the regret where it applies.
pub fn matrix_markdown(cells: &[GridCell], cols: &[DefenseStack]) -> String {
    let mut out = String::from("| attack vector |");
    for c in cols {
        out.push_str(&format!(" {} |", c.name()));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in cols {
        out.push_str("---|");
    }
    out.push('\n');
    let mut row_names: Vec<&str> = Vec::new();
    for c in cells {
        if !row_names.contains(&c.vector.as_str()) {
            row_names.push(&c.vector);
        }
    }
    for name in row_names {
        out.push_str(&format!("| `{name}` |"));
        for col in cols {
            let cell = cells
                .iter()
                .find(|c| c.vector == name && c.defense == col.name())
                .expect("grid is rectangular");
            let verdict = if cell.violated() { "VIOL" } else { "ok" };
            match cell.regret_slots {
                Some(r) => out.push_str(&format!(" {verdict} (regret {r:.1}) |")),
                None => out.push_str(&format!(" {verdict} |")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_seeds_are_stable_and_distinct() {
        let a = stream_seed(7, "burst-evader-http-load@Colla-Filt");
        let b = stream_seed(7, "mem-http-load@Colla-Filt");
        assert_eq!(a, stream_seed(7, "burst-evader-http-load@Colla-Filt"));
        assert_ne!(a, b);
    }

    #[test]
    fn row_specs_compose_the_advertised_axes() {
        let burst = AttackRow::Burst.spec(390.0);
        assert!(matches!(burst.envelope, Envelope::OnOffBurst { .. }));
        assert!(matches!(burst.plan, SourcePlan::EvadingBotnet { .. }));
        let mem = AttackRow::Memory.spec(390.0);
        assert!(matches!(mem.profile, ResourceProfile::MemoryBound));
        let rot = AttackRow::Rotating.spec(390.0);
        assert!(matches!(rot.target, TargetPlan::Rotating { .. }));
    }

    #[test]
    fn defense_columns_configure_distinct_stacks() {
        let mut open = ClusterConfig::paper_rack(BudgetLevel::Low);
        assert_eq!(DefenseStack::Open.apply(&mut open), SchemeKind::None);
        assert!(!open.firewall && open.admission.is_none());

        let mut stacked = ClusterConfig::paper_rack(BudgetLevel::Low);
        assert_eq!(DefenseStack::Stacked.apply(&mut stacked), SchemeKind::AntiDope);
        assert!(stacked.firewall);
        let adm = stacked.admission.as_ref().expect("stacked runs the pipeline");
        assert!(adm.cost_to_serve.is_some());
        assert_eq!(adm.firewall_ban_s, Some(30.0));
        assert!(stacked.profiler.as_ref().expect("profiler on").track_convergence);
        stacked.validate().expect("stacked config validates");
    }

    #[test]
    fn one_cell_runs_and_tabulates() {
        let cfg = GridConfig {
            duration_s: 10,
            ..GridConfig::smoke(11)
        };
        let cell = run_cell(&cfg, AttackRow::Constant, DefenseStack::Open);
        assert!(cell.report.power.peak_w.is_finite());
        assert!(cell.report.traffic.offered > 0);
        let t = cells_table(std::slice::from_ref(&cell));
        assert_eq!(t.len(), 1);
        let md = matrix_markdown(std::slice::from_ref(&cell), &[DefenseStack::Open]);
        assert!(md.contains("http-load@Colla-Filt"));
    }
}
