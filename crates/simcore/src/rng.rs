//! Self-contained deterministic PRNG: SplitMix64 seeding + xoshiro256**.
//!
//! We implement the generator in-crate (rather than relying on
//! `rand::rngs::SmallRng`) because `SmallRng`'s algorithm is explicitly
//! unspecified and may change between `rand` releases; a reproduction
//! repository must produce the same numbers next year. The generator
//! implements [`rand::RngCore`] so the whole `rand`/`rand_distr`
//! distribution toolbox works on top of it.
//!
//! [`RngFactory`] derives independent named sub-streams by hashing a
//! string label into the seed (FNV-1a), so every simulation component
//! (arrival process, workload sampler, attacker, ...) owns its own stream:
//! adding a component or reordering draws in one component never perturbs
//! another component's randomness.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64 step: used to expand a 64-bit seed into xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a label, used to derive per-component seed offsets.
#[inline]
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// xoshiro256** — a fast, high-quality, 256-bit-state PRNG.
///
/// Reference implementation by Blackman & Vigna (public domain); this is
/// a direct transcription.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seed from a single `u64` via SplitMix64 expansion, as recommended
    /// by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // The all-zero state is the one invalid state; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            SimRng { s: [1, 2, 3, 4] }
        } else {
            SimRng { s }
        }
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`, using the top 53 bits.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.step() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. Panics if `lo >= hi` or not finite.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite());
        lo + (hi - lo) * self.unit_f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift rejection.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Unbiased bounded generation (Lemire 2019).
        let mut x = self.step();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.step();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// Exponential variate with the given rate (mean `1/rate`), via
    /// inverse transform. Used for Poisson inter-arrival times.
    #[inline]
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exp rate must be positive");
        // 1 - unit_f64() is in (0, 1], so ln() is finite.
        -(1.0 - self.unit_f64()).ln() / rate
    }
}

impl RngCore for SimRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.step().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.step().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SimRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SimRng::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        SimRng::new(state)
    }
}

/// Derives independent, reproducible PRNG streams from a master seed and
/// a string label.
///
/// ```
/// use simcore::RngFactory;
/// let f = RngFactory::new(42);
/// let mut arrivals = f.stream("arrivals");
/// let mut attacker = f.stream("attacker");
/// // Streams are independent: drawing from one never affects the other,
/// // and the same (seed, label) pair always yields the same stream.
/// let a = arrivals.unit_f64();
/// let b = f.stream("arrivals").unit_f64();
/// assert_eq!(a, b);
/// let _ = attacker.unit_f64();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    master: u64,
}

impl RngFactory {
    /// Create a factory from a master seed.
    pub fn new(master: u64) -> Self {
        RngFactory { master }
    }

    /// The master seed this factory was built with.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Derive the stream named `label`.
    pub fn stream(&self, label: &str) -> SimRng {
        SimRng::new(self.master ^ fnv1a(label))
    }

    /// Derive an indexed stream, e.g. one per server: `stream_n("server", 7)`.
    pub fn stream_n(&self, label: &str, index: u64) -> SimRng {
        let mut s = index.wrapping_add(0xA076_1D64_78BD_642F);
        SimRng::new(self.master ^ fnv1a(label) ^ splitmix64(&mut s))
    }

    /// Derive a sub-factory (for components that themselves own multiple
    /// streams).
    pub fn subfactory(&self, label: &str) -> RngFactory {
        RngFactory {
            master: self.master ^ fnv1a(label).rotate_left(17),
        }
    }

    /// Derive the per-shard factory for dataplane shard `index`.
    ///
    /// Each shard of the parallel cluster engine owns its own stream
    /// space so that randomness drawn inside one shard never perturbs
    /// another shard regardless of event interleaving. The derivation is
    /// a pure function of `(master, index)`, so the same seed and shard
    /// layout always reproduce the same streams.
    pub fn shard(&self, index: u64) -> RngFactory {
        let mut s = index.wrapping_add(0x9E37_79B9_7F4A_7C15);
        RngFactory {
            master: self.master ^ splitmix64(&mut s).rotate_left(23),
        }
    }
}

/// Well-known stream labels shared across crates.
///
/// Components that draw from a [`RngFactory`] stream should name the
/// stream through a constant here rather than an ad-hoc string literal:
/// two components accidentally sharing a label would share a stream, and
/// typo'd labels silently decouple a replay from the run it is supposed
/// to reproduce.
pub mod streams {
    /// Fault-injection draws (sensor dropout, actuator stalls, crashes).
    pub const FAULTS: &str = "faults";
    /// URL-rotation schedule of the adaptive attacker (kept separate
    /// from its arrival/jitter stream so rotating more or less often
    /// never perturbs the arrival process).
    pub const ATTACK_ROTATION: &str = "attack-rotation";
    /// Backoff jitter of the NLB retry path (kept separate from every
    /// other stream so enabling retries never perturbs arrivals, faults,
    /// or the attacker).
    pub const RETRY: &str = "retry";
    /// Rack-target schedule of the concentrating flood attacker (kept
    /// separate from its arrival/jitter stream so re-aiming the flood
    /// never perturbs the arrival process).
    pub const ATTACK_FOCUS: &str = "attack-focus";
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn xoshiro_reference_vector() {
        // Determinism check pinned at first authorship: if this changes,
        // every experiment in EXPERIMENTS.md changes too.
        let mut rng = SimRng::new(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut rng2 = SimRng::new(0);
        let second: Vec<u64> = (0..4).map(|_| rng2.next_u64()).collect();
        assert_eq!(first, second);
        assert!(first.iter().any(|&x| x != 0));
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<u64> = {
            let mut r = SimRng::new(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SimRng::new(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_f64_mean_near_half() {
        let mut rng = SimRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.unit_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut rng = SimRng::new(3);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exp_mean_matches_rate() {
        let mut rng = SimRng::new(5);
        let rate = 4.0;
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exp(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(9);
        assert!(!(0..1000).any(|_| rng.chance(0.0)));
        assert!((0..1000).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn well_known_stream_labels_are_distinct() {
        let f = RngFactory::new(7);
        assert_ne!(
            f.stream(streams::FAULTS).next_u64(),
            f.stream(streams::ATTACK_ROTATION).next_u64()
        );
    }

    #[test]
    fn factory_streams_independent_and_reproducible() {
        let f = RngFactory::new(1234);
        let mut a1 = f.stream("a");
        let mut b = f.stream("b");
        // Interleave draws; stream "a" must be unaffected by "b".
        let mut reference = f.stream("a");
        for _ in 0..100 {
            let _ = b.next_u64();
            assert_eq!(a1.next_u64(), reference.next_u64());
        }
    }

    #[test]
    fn indexed_streams_differ() {
        let f = RngFactory::new(99);
        let x = f.stream_n("server", 0).next_u64();
        let y = f.stream_n("server", 1).next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn subfactory_differs_from_parent() {
        let f = RngFactory::new(5);
        let sub = f.subfactory("child");
        assert_ne!(f.stream("x").next_u64(), sub.stream("x").next_u64());
    }

    #[test]
    fn shard_factories_are_distinct_and_reproducible() {
        let f = RngFactory::new(2019);
        let a = f.shard(0).stream("arrivals").next_u64();
        let b = f.shard(1).stream("arrivals").next_u64();
        let c = f.shard(2).stream("arrivals").next_u64();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
        // Shard streams never collide with the parent's own streams.
        assert_ne!(a, f.stream("arrivals").next_u64());
        // Pure function of (master, index): rebuilding reproduces.
        assert_eq!(a, RngFactory::new(2019).shard(0).stream("arrivals").next_u64());
    }

    #[test]
    fn works_with_rand_traits() {
        let mut rng = SimRng::new(21);
        let x: f64 = rng.gen_range(0.0..10.0);
        assert!((0.0..10.0).contains(&x));
        let y: u8 = rng.gen();
        let _ = y;
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
    }

    #[test]
    fn fill_bytes_deterministic() {
        let mut a = SimRng::new(77);
        let mut b = SimRng::new(77);
        let mut ba = [0u8; 33];
        let mut bb = [0u8; 33];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
    }
}
