//! # simcore — deterministic discrete-event simulation engine
//!
//! This crate is the substrate every other crate in the Anti-DOPE
//! reproduction builds on. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — a microsecond-resolution simulated
//!   clock with explicit, overflow-checked arithmetic.
//! * [`EventQueue`] — a binary-heap event queue with a monotonically
//!   increasing sequence number as tiebreaker, so events scheduled at the
//!   same timestamp are delivered in scheduling order. This makes every
//!   simulation **bit-deterministic** for a fixed seed.
//! * [`rng`] — a self-contained `SplitMix64`/`xoshiro256**` PRNG with
//!   label-derived sub-streams ([`rng::RngFactory`]), so each simulation
//!   component draws from its own independent, reproducible stream and
//!   adding a component never perturbs the randomness seen by others.
//! * [`faults`] — deterministic fault injection ([`FaultPlan`]):
//!   scheduled events plus seeded stochastic sensor / actuator / node /
//!   battery faults drawn from a dedicated sub-stream, so chaos
//!   experiments keep the same-seed ⇒ same-report contract.
//! * [`Engine`] — a run loop that owns the clock and the queue and
//!   dispatches events to a user [`SimModel`], with stop conditions on
//!   simulated time and event count.
//! * [`trace`] — a bounded ring-buffer event trace for post-mortem
//!   debugging of simulations.
//! * [`fxhash`] — deterministic FxHash-style hashing
//!   ([`fxhash::FxHashMap`]) for hot simulator-internal maps, replacing
//!   `RandomState`'s SipHash + per-process random seeding.
//!
//! ## Example
//!
//! ```
//! use simcore::{Engine, SimModel, SimTime, SimDuration, Scheduler};
//!
//! /// Counts ticks of a periodic timer.
//! struct Ticker { period: SimDuration, ticks: u64 }
//!
//! #[derive(Debug, Clone, PartialEq)]
//! enum Ev { Tick }
//!
//! impl SimModel for Ticker {
//!     type Event = Ev;
//!     fn handle(&mut self, now: SimTime, _ev: Ev, sched: &mut Scheduler<Ev>) {
//!         self.ticks += 1;
//!         sched.at(now + self.period, Ev::Tick);
//!     }
//! }
//!
//! let mut engine = Engine::new(Ticker { period: SimDuration::from_secs(1), ticks: 0 });
//! engine.schedule(SimTime::from_secs(1), Ev::Tick);
//! engine.run_until(SimTime::from_secs(10));
//! assert_eq!(engine.model().ticks, 10); // ticks at t = 1..=10 s inclusive
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod event;
pub mod faults;
pub mod fxhash;
pub mod rng;
pub mod time;
pub mod trace;

pub use engine::{Engine, RunOutcome, Scheduler, SimModel};
pub use event::{EventQueue, Scheduled};
pub use faults::{ActuationFault, CrashEvent, FaultConfig, FaultCounts, FaultError, FaultPlan};
pub use fxhash::{FxHashMap, FxHashSet};
pub use rng::{RngFactory, SimRng};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceBuffer, TraceEntry};
