//! Simulated time: microsecond-resolution instants and durations.
//!
//! The simulation clock is a plain `u64` count of microseconds since the
//! start of the simulation. We use newtypes rather than `std::time`
//! because simulated time must be cheap to copy, totally ordered, and
//! serializable, and because mixing wall-clock and simulated time is a
//! classic source of bugs in simulators.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// Microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;
/// Microseconds in one millisecond.
pub const MICROS_PER_MILLI: u64 = 1_000;

/// An instant on the simulated clock, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * MICROS_PER_MILLI)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds. Panics on negative or
    /// non-finite input — simulated time never runs backwards.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid SimTime seconds: {s}");
        SimTime((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / MICROS_PER_MILLI
    }

    /// Whole seconds (truncating).
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`. Panics if `earlier` is later than
    /// `self`; use [`SimTime::checked_since`] when that can happen.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier is after self"),
        )
    }

    /// Time elapsed since `earlier`, or `None` if `earlier > self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Round down to the start of the enclosing slot of length `slot`.
    /// Used by slotted power-management controllers.
    #[inline]
    pub fn align_down(self, slot: SimDuration) -> SimTime {
        assert!(slot.0 > 0, "slot length must be positive");
        SimTime(self.0 - self.0 % slot.0)
    }

    /// Round up to the next slot boundary (identity if already aligned).
    #[inline]
    pub fn align_up(self, slot: SimDuration) -> SimTime {
        assert!(slot.0 > 0, "slot length must be positive");
        let rem = self.0 % slot.0;
        if rem == 0 {
            self
        } else {
            SimTime(self.0 + (slot.0 - rem))
        }
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * MICROS_PER_MILLI)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Construct from whole minutes.
    #[inline]
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds. Panics on negative or
    /// non-finite input.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid SimDuration seconds: {s}");
        SimDuration((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / MICROS_PER_MILLI
    }

    /// Whole seconds (truncating).
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// True if the duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by a non-negative factor, rounding to the nearest microsecond.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k.is_finite() && k >= 0.0, "invalid duration scale: {k}");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(d.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(other.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(other.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(k).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// How many whole `other` spans fit in `self`.
    #[inline]
    fn div(self, other: SimDuration) -> u64 {
        self.0 / other.0
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn rem(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 % other.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrip() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_mins(2).as_secs(), 120);
        assert_eq!(SimTime::from_secs_f64(1.5).as_millis(), 1500);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_micros(), 250_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!((t + d).as_secs(), 14);
        assert_eq!((t - d).as_secs(), 6);
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
        assert_eq!(SimDuration::from_secs(10) / d, 2);
        assert_eq!(SimDuration::from_secs(10) % d, SimDuration::from_secs(2));
    }

    #[test]
    fn since_and_checked() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(8);
        assert_eq!(b.since(a).as_secs(), 3);
        assert_eq!(a.checked_since(b), None);
        assert_eq!(b.checked_since(a), Some(SimDuration::from_secs(3)));
    }

    #[test]
    #[should_panic(expected = "earlier is after self")]
    fn since_panics_backwards() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn alignment() {
        let slot = SimDuration::from_secs(1);
        let t = SimTime::from_micros(2_700_000);
        assert_eq!(t.align_down(slot), SimTime::from_secs(2));
        assert_eq!(t.align_up(slot), SimTime::from_secs(3));
        assert_eq!(SimTime::from_secs(2).align_up(slot), SimTime::from_secs(2));
        assert_eq!(SimTime::ZERO.align_down(slot), SimTime::ZERO);
    }

    #[test]
    fn float_conversions() {
        let t = SimTime::from_secs_f64(1.234567);
        assert!((t.as_secs_f64() - 1.234567).abs() < 1e-9);
        let d = SimDuration::from_secs(10).mul_f64(0.5);
        assert_eq!(d.as_secs(), 5);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "t=1.500000s");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "0.250000s");
    }

    #[test]
    #[should_panic(expected = "invalid SimTime seconds")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimTime::from_secs_f64(-1.0);
    }
}
