//! Deterministic, non-cryptographic hashing for simulator-internal maps.
//!
//! `std::collections::HashMap`'s default `RandomState` costs two things the
//! simulator cannot afford: SipHash cycles on every lookup of a hot
//! per-request path, and per-process random seeding — pure waste in a
//! bit-deterministic simulator whose keys are internal integer ids, not
//! attacker-controlled input. [`DetHasher`] replaces it with an FxHash-style
//! multiply-xor-shift mixer (the SplitMix64 finalizer applied per word),
//! which is a few instructions per 8-byte key and produces the same table
//! iteration-independent behavior on every run.
//!
//! Use [`FxHashMap`] / [`FxHashSet`] anywhere the keys are internal ids.
//! Do **not** use it for untrusted external input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A deterministic word-at-a-time hasher (SplitMix64-finalizer rounds).
///
/// Quality is ample for integer-id keys: the finalizer is a full-avalanche
/// bijection on each 64-bit word, so sequential ids (the common case —
/// `RequestId`s count up from per-source bases) spread uniformly across
/// buckets.
#[derive(Debug, Default, Clone)]
pub struct DetHasher {
    state: u64,
}

impl DetHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        let mut z = self.state ^ word.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.state = z ^ (z >> 31);
    }
}

impl Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Fold the length in so "ab" and "ab\0" hash differently.
            self.mix(u64::from_le_bytes(buf) ^ ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `BuildHasher` for [`DetHasher`]; zero-sized, no per-map seed.
pub type DetBuildHasher = BuildHasherDefault<DetHasher>;

/// A `HashMap` with deterministic FxHash-style hashing.
pub type FxHashMap<K, V> = HashMap<K, V, DetBuildHasher>;

/// A `HashSet` with deterministic FxHash-style hashing.
pub type FxHashSet<T> = HashSet<T, DetBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        DetBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"flood"), hash_of(&"flood"));
    }

    #[test]
    fn sequential_ids_spread() {
        // Sequential ids (incl. ids based at 1 << 40) must not collide in
        // low bits — that's what the table indexes on.
        let base = 1u64 << 40;
        let mut low7 = FxHashSet::default();
        for i in 0..128u64 {
            low7.insert(hash_of(&(base + i)) & 0x7f);
        }
        // A uniform hash leaves ~81 of 128 buckets occupied (birthday
        // collisions); a poor mixer (e.g. identity) would leave far
        // fewer — or exactly 128, betraying no avalanche at all.
        assert!(
            (64..=110).contains(&low7.len()),
            "low-bit spread not uniform-like: {}",
            low7.len()
        );
    }

    #[test]
    fn length_distinguishes_prefixes() {
        assert_ne!(hash_of(&b"ab".as_slice()), hash_of(&b"ab\0".as_slice()));
    }

    #[test]
    fn map_works_as_drop_in() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1 << 40, "a");
        m.insert((1 << 40) + 1, "b");
        assert_eq!(m.get(&(1 << 40)), Some(&"a"));
        assert_eq!(m.len(), 2);
        m.remove(&(1 << 40));
        assert_eq!(m.get(&(1 << 40)), None);
    }
}
