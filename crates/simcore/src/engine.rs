//! The simulation run loop.
//!
//! An [`Engine`] owns the clock, the event queue, and a user-supplied
//! [`SimModel`]. The model handles one event at a time and schedules
//! follow-up events through a [`Scheduler`] handle. Keeping scheduling
//! behind a handle (rather than giving the model `&mut Engine`) means the
//! borrow checker allows the model to mutate itself freely while
//! scheduling, and it lets the engine enforce the "no scheduling in the
//! past" invariant in exactly one place.

use crate::event::EventQueue;
use crate::time::SimTime;

/// A simulation model: application state plus an event handler.
pub trait SimModel {
    /// The event payload type this model exchanges with the engine.
    type Event;

    /// Handle one event delivered at simulated instant `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Handle through which a model schedules future events during `handle`.
pub struct Scheduler<E> {
    now: SimTime,
    pending: Vec<(SimTime, E)>,
}

impl<E> Scheduler<E> {
    fn new(now: SimTime) -> Self {
        Scheduler {
            now,
            pending: Vec::new(),
        }
    }

    /// Build a detached scheduler for exercising model logic outside an
    /// [`Engine`] (e.g. unit tests of control-plane stages). Events
    /// staged on a detached scheduler are dropped, never executed.
    pub fn detached(now: SimTime) -> Self {
        Scheduler::new(now)
    }

    /// The current simulated instant.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute instant `time`. Panics if `time` is
    /// in the past — a model that needs "immediately" should schedule at
    /// `self.now()`.
    #[inline]
    pub fn at(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "attempt to schedule into the past: {time} < {}",
            self.now
        );
        self.pending.push((time, event));
    }

    /// Schedule `event` after `delay` from now.
    #[inline]
    pub fn after(&mut self, delay: crate::time::SimDuration, event: E) {
        self.pending.push((self.now + delay, event));
    }

    /// Schedule `event` for immediate delivery (same timestamp, after all
    /// events already queued for this instant).
    #[inline]
    pub fn now_event(&mut self, event: E) {
        self.pending.push((self.now, event));
    }

    /// Number of events staged in this handler invocation.
    pub fn staged(&self) -> usize {
        self.pending.len()
    }

    /// Drain every staged `(time, event)` pair, leaving the scheduler
    /// empty. Coordinators that reuse model logic outside an [`Engine`]
    /// (e.g. the sharded cluster engine running control-plane stages at
    /// slot boundaries) use this to translate staged events into their
    /// own queues instead of silently dropping them.
    pub fn drain_staged(&mut self) -> std::vec::Drain<'_, (SimTime, E)> {
        self.pending.drain(..)
    }
}

/// Why [`Engine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    QueueEmpty,
    /// The time horizon was reached (remaining events are later than it).
    HorizonReached,
    /// The event-count budget was exhausted.
    EventBudgetExhausted,
}

/// The discrete-event engine: clock + queue + model.
pub struct Engine<M: SimModel> {
    model: M,
    queue: EventQueue<M::Event>,
    now: SimTime,
    events_processed: u64,
}

impl<M: SimModel> Engine<M> {
    /// Wrap `model` with a fresh clock at `t = 0` and an empty queue.
    pub fn new(model: M) -> Self {
        Engine {
            model,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            events_processed: 0,
        }
    }

    /// Current simulated time (delivery time of the last handled event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events handled so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events still pending.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Shared access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model (e.g. to install probes between runs).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consume the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Schedule an event from outside the run loop (initial conditions).
    /// Panics if `time` is before the current clock.
    pub fn schedule(&mut self, time: SimTime, event: M::Event) {
        assert!(
            time >= self.now,
            "attempt to schedule into the past: {time} < {}",
            self.now
        );
        self.queue.push(time, event);
    }

    /// Run until the queue empties, `horizon` is passed, or `max_events`
    /// is hit — whichever comes first.
    ///
    /// Events stamped exactly at `horizon` ARE processed; the first event
    /// strictly later is left pending and the clock is advanced to
    /// `horizon`, so consecutive `run` calls compose seamlessly.
    pub fn run(&mut self, horizon: SimTime, max_events: u64) -> RunOutcome {
        let mut budget = max_events;
        loop {
            if budget == 0 {
                return RunOutcome::EventBudgetExhausted;
            }
            match self.queue.peek_time() {
                None => {
                    // Advance to the horizon so time-integrated observers
                    // (power monitors, energy meters) see the full window.
                    if horizon > self.now {
                        self.now = horizon;
                    }
                    return RunOutcome::QueueEmpty;
                }
                Some(t) if t > horizon => {
                    self.now = horizon;
                    return RunOutcome::HorizonReached;
                }
                Some(_) => {
                    let ev = self.queue.pop().expect("peeked event vanished");
                    debug_assert!(ev.time >= self.now, "event queue went backwards");
                    self.now = ev.time;
                    let mut sched = Scheduler::new(self.now);
                    self.model.handle(self.now, ev.event, &mut sched);
                    for (t, e) in sched.pending {
                        self.queue.push(t, e);
                    }
                    self.events_processed += 1;
                    budget -= 1;
                }
            }
        }
    }

    /// Run until `horizon` with an effectively unlimited event budget.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        self.run(horizon, u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    struct Recorder {
        log: Vec<(SimTime, u32)>,
        respawn: Option<(SimDuration, u32)>,
    }

    impl SimModel for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
            self.log.push((now, ev));
            if let Some((period, tag)) = self.respawn {
                if ev == tag {
                    sched.after(period, tag);
                }
            }
        }
    }

    fn recorder() -> Recorder {
        Recorder {
            log: Vec::new(),
            respawn: None,
        }
    }

    #[test]
    fn delivers_in_order() {
        let mut e = Engine::new(recorder());
        e.schedule(SimTime::from_secs(2), 2);
        e.schedule(SimTime::from_secs(1), 1);
        e.schedule(SimTime::from_secs(3), 3);
        let out = e.run_until(SimTime::from_secs(10));
        assert_eq!(out, RunOutcome::QueueEmpty);
        let evs: Vec<u32> = e.model().log.iter().map(|&(_, v)| v).collect();
        assert_eq!(evs, vec![1, 2, 3]);
        // Queue drained: clock advanced to the horizon.
        assert_eq!(e.now(), SimTime::from_secs(10));
    }

    #[test]
    fn horizon_is_inclusive() {
        let mut e = Engine::new(recorder());
        e.schedule(SimTime::from_secs(5), 1);
        e.schedule(SimTime::from_micros(5_000_001), 2);
        let out = e.run_until(SimTime::from_secs(5));
        assert_eq!(out, RunOutcome::HorizonReached);
        assert_eq!(e.model().log.len(), 1);
        assert_eq!(e.now(), SimTime::from_secs(5));
        assert_eq!(e.pending_events(), 1);
    }

    #[test]
    fn runs_compose_across_horizons() {
        let mut e = Engine::new(Recorder {
            log: Vec::new(),
            respawn: Some((SimDuration::from_secs(1), 7)),
        });
        e.schedule(SimTime::from_secs(1), 7);
        e.run_until(SimTime::from_secs(5));
        let first = e.model().log.len();
        e.run_until(SimTime::from_secs(10));
        assert_eq!(first, 5);
        assert_eq!(e.model().log.len(), 10);
    }

    #[test]
    fn event_budget_stops_early() {
        let mut e = Engine::new(Recorder {
            log: Vec::new(),
            respawn: Some((SimDuration::from_millis(1), 1)),
        });
        e.schedule(SimTime::ZERO, 1);
        let out = e.run(SimTime::from_secs(1000), 50);
        assert_eq!(out, RunOutcome::EventBudgetExhausted);
        assert_eq!(e.events_processed(), 50);
    }

    #[test]
    #[should_panic(expected = "schedule into the past")]
    fn scheduling_past_panics() {
        let mut e = Engine::new(recorder());
        e.schedule(SimTime::from_secs(5), 1);
        e.run_until(SimTime::from_secs(6));
        e.schedule(SimTime::from_secs(1), 2);
    }

    #[test]
    fn now_event_runs_same_timestamp_fifo() {
        struct Chain;
        impl SimModel for Chain {
            type Event = u32;
            fn handle(&mut self, _now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
                if ev < 3 {
                    sched.now_event(ev + 1);
                }
            }
        }
        let mut e = Engine::new(Chain);
        e.schedule(SimTime::from_secs(1), 0);
        e.run_until(SimTime::from_secs(1));
        assert_eq!(e.events_processed(), 4);
        assert_eq!(e.now(), SimTime::from_secs(1));
    }

    #[test]
    fn empty_run_advances_clock() {
        let mut e = Engine::new(recorder());
        assert_eq!(e.run_until(SimTime::from_secs(3)), RunOutcome::QueueEmpty);
        assert_eq!(e.now(), SimTime::from_secs(3));
    }

    #[test]
    fn detached_scheduler_drains_staged_events() {
        let mut s: Scheduler<u32> = Scheduler::detached(SimTime::from_secs(5));
        s.now_event(1);
        s.after(SimDuration::from_secs(2), 2);
        s.at(SimTime::from_secs(10), 3);
        assert_eq!(s.staged(), 3);
        let drained: Vec<_> = s.drain_staged().collect();
        assert_eq!(
            drained,
            vec![
                (SimTime::from_secs(5), 1),
                (SimTime::from_secs(7), 2),
                (SimTime::from_secs(10), 3),
            ]
        );
        assert_eq!(s.staged(), 0);
    }
}
