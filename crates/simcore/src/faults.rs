//! Deterministic fault injection for simulations.
//!
//! A [`FaultPlan`] turns a declarative [`FaultConfig`] into a runtime
//! fault process: scheduled events (telemetry blackout windows, node
//! crashes) fire at exact instants with no randomness, while stochastic
//! faults (sensor dropout, actuator command loss, …) draw from a single
//! dedicated PRNG stream handed in by the caller. Because the plan owns
//! its stream, the same `(seed, FaultConfig)` pair always produces the
//! same fault sequence, and enabling faults never perturbs the
//! randomness any *other* component draws — the same-seed ⇒ same-report
//! contract survives chaos.
//!
//! The fault classes model what real oversubscribed fleets lose first:
//!
//! * **Power sensors** — sample dropout, stuck-at readings, stale
//!   telemetry, additive noise, and scheduled full-telemetry blackouts.
//! * **DVFS/RAPL actuators** — command loss, delayed apply, and a wedged
//!   (stuck) actuator that ignores commands for a while.
//! * **Nodes** — crash (in-flight work lost) with optional reboot.
//! * **Battery** — capacity fade and a charger that fails permanently at
//!   a scheduled instant.

use crate::rng::{streams, RngFactory, SimRng};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A scheduled node crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashEvent {
    /// Index of the node that crashes.
    pub node: usize,
    /// When it crashes.
    pub at: SimTime,
}

/// Declarative fault model. The default is a complete no-op: every
/// probability zero, no scheduled events — a plan built from it injects
/// nothing and draws nothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct FaultConfig {
    /// Per-sample probability a node's power sensor returns nothing.
    pub sensor_dropout_p: f64,
    /// Half-width of uniform additive noise on good samples, watts.
    pub sensor_noise_w: f64,
    /// Per-sample probability a sensor wedges at its last reading.
    pub sensor_stuck_p: f64,
    /// How long a wedged sensor stays stuck.
    pub sensor_stuck_for: SimDuration,
    /// Per-sample probability a sensor re-delivers its previous reading.
    pub sensor_stale_p: f64,
    /// Scheduled `[start, end)` windows during which *all* sensors are
    /// dark (a telemetry-network blackout).
    pub blackouts: Vec<(SimTime, SimTime)>,
    /// Per-command probability a DVFS/RAPL write is silently lost.
    pub actuator_loss_p: f64,
    /// Per-command probability a write lands late.
    pub actuator_delay_p: f64,
    /// Extra apply latency for delayed writes.
    pub actuator_delay: SimDuration,
    /// Per-command probability the actuator wedges (ignores commands).
    pub actuator_stuck_p: f64,
    /// How long a wedged actuator ignores commands.
    pub actuator_stuck_for: SimDuration,
    /// Scheduled node crashes.
    pub crashes: Vec<CrashEvent>,
    /// Per-node per-slot probability of a spontaneous crash.
    pub crash_p: f64,
    /// Time from crash to reboot; `ZERO` means crashed nodes stay down.
    pub reboot_after: SimDuration,
    /// Fraction of battery capacity lost to age, in `[0, 1)`.
    pub battery_fade: f64,
    /// Instant at which the battery charger fails for good, if ever.
    pub charger_fails_at: Option<SimTime>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            sensor_dropout_p: 0.0,
            sensor_noise_w: 0.0,
            sensor_stuck_p: 0.0,
            sensor_stuck_for: SimDuration::from_secs(10),
            sensor_stale_p: 0.0,
            blackouts: Vec::new(),
            actuator_loss_p: 0.0,
            actuator_delay_p: 0.0,
            actuator_delay: SimDuration::from_millis(500),
            actuator_stuck_p: 0.0,
            actuator_stuck_for: SimDuration::from_secs(10),
            crashes: Vec::new(),
            crash_p: 0.0,
            reboot_after: SimDuration::ZERO,
            battery_fade: 0.0,
            charger_fails_at: None,
        }
    }
}

impl FaultConfig {
    /// True when the config can never inject anything.
    pub fn is_noop(&self) -> bool {
        self.sensor_dropout_p == 0.0
            && self.sensor_noise_w == 0.0
            && self.sensor_stuck_p == 0.0
            && self.sensor_stale_p == 0.0
            && self.blackouts.is_empty()
            && self.actuator_loss_p == 0.0
            && self.actuator_delay_p == 0.0
            && self.actuator_stuck_p == 0.0
            && self.crashes.is_empty()
            && self.crash_p == 0.0
            && self.battery_fade == 0.0
            && self.charger_fails_at.is_none()
    }

    /// Check the config against the number of nodes it will drive.
    pub fn validate(&self, n_nodes: usize) -> Result<(), FaultError> {
        let probs = [
            ("sensor_dropout_p", self.sensor_dropout_p),
            ("sensor_stuck_p", self.sensor_stuck_p),
            ("sensor_stale_p", self.sensor_stale_p),
            ("actuator_loss_p", self.actuator_loss_p),
            ("actuator_delay_p", self.actuator_delay_p),
            ("actuator_stuck_p", self.actuator_stuck_p),
            ("crash_p", self.crash_p),
        ];
        for (field, p) in probs {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(FaultError::Probability { field, value: p });
            }
        }
        if !self.sensor_noise_w.is_finite() || self.sensor_noise_w < 0.0 {
            return Err(FaultError::Noise(self.sensor_noise_w));
        }
        if !(0.0..1.0).contains(&self.battery_fade) {
            return Err(FaultError::Fade(self.battery_fade));
        }
        for &(start, end) in &self.blackouts {
            if start >= end {
                return Err(FaultError::Window { start, end });
            }
        }
        for ev in &self.crashes {
            if ev.node >= n_nodes {
                return Err(FaultError::NodeIndex {
                    node: ev.node,
                    n_nodes,
                });
            }
        }
        Ok(())
    }
}

/// Why a [`FaultConfig`] was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A probability field was outside `[0, 1]`.
    Probability {
        /// Field name.
        field: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Sensor noise half-width was negative or non-finite.
    Noise(f64),
    /// Battery fade was outside `[0, 1)`.
    Fade(f64),
    /// A blackout window was empty or inverted.
    Window {
        /// Window start.
        start: SimTime,
        /// Window end.
        end: SimTime,
    },
    /// A scheduled crash named a node the cluster does not have.
    NodeIndex {
        /// Offending node index.
        node: usize,
        /// Number of nodes in the cluster.
        n_nodes: usize,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Probability { field, value } => {
                write!(f, "fault probability {field} = {value} is outside [0, 1]")
            }
            FaultError::Noise(w) => {
                write!(f, "sensor_noise_w = {w} must be finite and non-negative")
            }
            FaultError::Fade(x) => write!(f, "battery_fade = {x} must lie in [0, 1)"),
            FaultError::Window { start, end } => {
                write!(f, "blackout window [{start}, {end}) is empty or inverted")
            }
            FaultError::NodeIndex { node, n_nodes } => {
                write!(f, "scheduled crash names node {node}, cluster has {n_nodes}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// What happened to an actuator command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActuationFault {
    /// The command reaches the hardware normally.
    Clean,
    /// The command is silently dropped.
    Lost,
    /// The command lands after the given extra delay.
    Delayed(SimDuration),
    /// The actuator is wedged; the command is ignored.
    Stuck,
}

/// Per-fault-class lifetime counters, for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounts {
    /// Sensor samples dropped.
    pub sensor_dropouts: u64,
    /// Sensor samples frozen by a stuck sensor.
    pub sensor_stuck: u64,
    /// Sensor samples that re-delivered a stale reading.
    pub sensor_stale: u64,
    /// Sensor samples lost to scheduled blackout windows.
    pub blackout_samples: u64,
    /// Actuator commands silently lost.
    pub actuator_lost: u64,
    /// Actuator commands applied late.
    pub actuator_delayed: u64,
    /// Actuator commands ignored by a wedged actuator.
    pub actuator_stuck: u64,
    /// Node crashes injected.
    pub crashes: u64,
    /// Node reboots completed.
    pub reboots: u64,
}

impl FaultCounts {
    /// Fold another counter set into this one (all fields are `u64`
    /// sums, so merging is associative and layout-independent — the
    /// sharded engine merges per-shard counters in shard order).
    pub fn merge(&mut self, other: &FaultCounts) {
        self.sensor_dropouts += other.sensor_dropouts;
        self.sensor_stuck += other.sensor_stuck;
        self.sensor_stale += other.sensor_stale;
        self.blackout_samples += other.blackout_samples;
        self.actuator_lost += other.actuator_lost;
        self.actuator_delayed += other.actuator_delayed;
        self.actuator_stuck += other.actuator_stuck;
        self.crashes += other.crashes;
        self.reboots += other.reboots;
    }
}

/// Per-node runtime fault state.
#[derive(Debug, Clone)]
struct NodeFaultState {
    /// A stuck sensor repeats `stuck_w` until this instant.
    sensor_stuck_until: SimTime,
    stuck_w: f64,
    /// Last value this sensor actually reported (for stale re-delivery).
    reported_w: Option<f64>,
    /// A wedged actuator ignores commands until this instant.
    actuator_stuck_until: SimTime,
}

impl NodeFaultState {
    fn new() -> Self {
        NodeFaultState {
            sensor_stuck_until: SimTime::ZERO,
            stuck_w: 0.0,
            reported_w: None,
            actuator_stuck_until: SimTime::ZERO,
        }
    }
}

/// True while any scheduled blackout window in `cfg` covers `now`.
fn blackout_covers(cfg: &FaultConfig, now: SimTime) -> bool {
    cfg.blackouts
        .iter()
        .any(|&(start, end)| start <= now && now < end)
}

/// One node's sensor read through the stochastic fault process. The
/// blackout check stays with the caller: it is schedule-driven and must
/// consume no randomness. Shared by [`FaultPlan`] (one stream for the
/// whole cluster) and [`ShardFaultPlan`] (one stream per node), so both
/// apply identical guarded-draw logic — a zero-probability fault class
/// consumes no randomness and never re-times another class.
fn sense_node(
    cfg: &FaultConfig,
    rng: &mut SimRng,
    st: &mut NodeFaultState,
    counts: &mut FaultCounts,
    now: SimTime,
    true_w: f64,
) -> Option<f64> {
    if now < st.sensor_stuck_until {
        counts.sensor_stuck += 1;
        return Some(st.stuck_w);
    }
    if cfg.sensor_dropout_p > 0.0 && rng.chance(cfg.sensor_dropout_p) {
        counts.sensor_dropouts += 1;
        return None;
    }
    if cfg.sensor_stuck_p > 0.0 && rng.chance(cfg.sensor_stuck_p) {
        st.sensor_stuck_until = now + cfg.sensor_stuck_for;
        st.stuck_w = st.reported_w.unwrap_or(true_w);
        // The wedged value is what the sensor *displays*, so a later
        // episode re-wedges at it rather than at a never-seen truth.
        st.reported_w = Some(st.stuck_w);
        counts.sensor_stuck += 1;
        return Some(st.stuck_w);
    }
    if cfg.sensor_stale_p > 0.0 && rng.chance(cfg.sensor_stale_p) {
        if let Some(old) = st.reported_w {
            counts.sensor_stale += 1;
            return Some(old);
        }
    }
    let mut w = true_w;
    if cfg.sensor_noise_w > 0.0 {
        w = (w + rng.range_f64(-cfg.sensor_noise_w, cfg.sensor_noise_w)).max(0.0);
    }
    st.reported_w = Some(w);
    Some(w)
}

/// One actuator command through the stochastic fault process. Shared by
/// both plan flavors; see [`sense_node`].
fn actuate_node(
    cfg: &FaultConfig,
    rng: &mut SimRng,
    st: &mut NodeFaultState,
    counts: &mut FaultCounts,
    now: SimTime,
) -> ActuationFault {
    if now < st.actuator_stuck_until {
        counts.actuator_stuck += 1;
        return ActuationFault::Stuck;
    }
    if cfg.actuator_stuck_p > 0.0 && rng.chance(cfg.actuator_stuck_p) {
        st.actuator_stuck_until = now + cfg.actuator_stuck_for;
        counts.actuator_stuck += 1;
        return ActuationFault::Stuck;
    }
    if cfg.actuator_loss_p > 0.0 && rng.chance(cfg.actuator_loss_p) {
        counts.actuator_lost += 1;
        return ActuationFault::Lost;
    }
    if cfg.actuator_delay_p > 0.0 && rng.chance(cfg.actuator_delay_p) {
        counts.actuator_delayed += 1;
        return ActuationFault::Delayed(cfg.actuator_delay);
    }
    ActuationFault::Clean
}

/// The runtime fault process: a validated [`FaultConfig`] plus its
/// dedicated PRNG stream and per-node state.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: SimRng,
    nodes: Vec<NodeFaultState>,
    /// Which scheduled crashes already fired.
    fired: Vec<bool>,
    counts: FaultCounts,
}

impl FaultPlan {
    /// Build a plan for `n_nodes` nodes drawing from `rng` (hand it a
    /// dedicated stream, e.g. `RngFactory::stream("faults")`).
    pub fn new(cfg: FaultConfig, n_nodes: usize, rng: SimRng) -> Result<Self, FaultError> {
        cfg.validate(n_nodes)?;
        let fired = vec![false; cfg.crashes.len()];
        Ok(FaultPlan {
            cfg,
            rng,
            nodes: (0..n_nodes).map(|_| NodeFaultState::new()).collect(),
            fired,
            counts: FaultCounts::default(),
        })
    }

    /// The config this plan runs.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Lifetime fault counters.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// True while a scheduled blackout window covers `now`.
    pub fn in_blackout(&self, now: SimTime) -> bool {
        blackout_covers(&self.cfg, now)
    }

    /// Read node `i`'s power sensor: the true draw filtered through the
    /// sensor fault process. `None` means no sample arrived this slot.
    pub fn sense(&mut self, now: SimTime, node: usize, true_w: f64) -> Option<f64> {
        if self.in_blackout(now) {
            self.counts.blackout_samples += 1;
            return None;
        }
        let FaultPlan {
            cfg,
            rng,
            nodes,
            counts,
            ..
        } = self;
        sense_node(cfg, rng, &mut nodes[node], counts, now, true_w)
    }

    /// Filter one actuator command to node `i` through the fault process.
    pub fn actuate(&mut self, now: SimTime, node: usize) -> ActuationFault {
        let FaultPlan {
            cfg,
            rng,
            nodes,
            counts,
            ..
        } = self;
        actuate_node(cfg, rng, &mut nodes[node], counts, now)
    }

    /// Whether node `i` crashes at this slot. Call exactly once per
    /// (alive) node per slot; scheduled crashes fire the first slot at or
    /// after their instant, stochastic crashes draw `crash_p` per call.
    pub fn crash_due(&mut self, now: SimTime, node: usize) -> bool {
        let mut crash = false;
        for (i, ev) in self.cfg.crashes.iter().enumerate() {
            if !self.fired[i] && ev.node == node && ev.at <= now {
                self.fired[i] = true;
                crash = true;
            }
        }
        if !crash && self.cfg.crash_p > 0.0 && self.rng.chance(self.cfg.crash_p) {
            crash = true;
        }
        if crash {
            self.counts.crashes += 1;
        }
        crash
    }

    /// Record a completed node reboot.
    pub fn record_reboot(&mut self) {
        self.counts.reboots += 1;
    }

    /// Remaining battery capacity as a fraction of nameplate.
    pub fn battery_capacity_factor(&self) -> f64 {
        1.0 - self.cfg.battery_fade
    }

    /// True once the charger has failed.
    pub fn charger_failed(&self, now: SimTime) -> bool {
        self.cfg.charger_fails_at.is_some_and(|t| now >= t)
    }
}

/// Fault process for one dataplane shard of the parallel cluster
/// engine, covering the contiguous global node range
/// `[start, start + len)`.
///
/// Unlike [`FaultPlan`], which serializes every stochastic draw through
/// one stream (fine for a single-threaded engine with a fixed query
/// order), each node here owns its own PRNG stream derived from its
/// *global* index ([`RngFactory::stream_n`] with [`streams::FAULTS`]).
/// Draw order between nodes is therefore irrelevant and no draw ever
/// crosses a shard boundary, so the same seed produces byte-identical
/// fault sequences at any shard count. The per-node guarded-draw logic
/// is shared verbatim with [`FaultPlan`]; the per-node streams are a
/// deliberate, documented semantic delta versus the legacy single
/// stream.
#[derive(Debug, Clone)]
pub struct ShardFaultPlan {
    cfg: FaultConfig,
    /// First global node index this plan covers.
    start: usize,
    /// One dedicated stream per covered node, indexed by local offset.
    rngs: Vec<SimRng>,
    nodes: Vec<NodeFaultState>,
    /// Which scheduled crashes already fired (full `cfg.crashes` length;
    /// entries naming out-of-range nodes simply never fire here).
    fired: Vec<bool>,
    counts: FaultCounts,
}

impl ShardFaultPlan {
    /// Build the plan for the shard owning global nodes
    /// `[start, start + len)` of a `n_nodes_total`-node cluster. All
    /// public methods take *global* node indices.
    pub fn new(
        cfg: FaultConfig,
        n_nodes_total: usize,
        start: usize,
        len: usize,
        factory: &RngFactory,
    ) -> Result<Self, FaultError> {
        cfg.validate(n_nodes_total)?;
        assert!(
            start + len <= n_nodes_total,
            "shard range [{start}, {}) exceeds cluster size {n_nodes_total}",
            start + len
        );
        let fired = vec![false; cfg.crashes.len()];
        Ok(ShardFaultPlan {
            cfg,
            start,
            rngs: (start..start + len)
                .map(|g| factory.stream_n(streams::FAULTS, g as u64))
                .collect(),
            nodes: (0..len).map(|_| NodeFaultState::new()).collect(),
            fired,
            counts: FaultCounts::default(),
        })
    }

    /// The config this plan runs.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Lifetime fault counters for this shard's nodes.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// First global node index covered.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the plan covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether this plan covers global node index `node`.
    pub fn covers(&self, node: usize) -> bool {
        node >= self.start && node < self.start + self.nodes.len()
    }

    /// True while a scheduled blackout window covers `now`.
    pub fn in_blackout(&self, now: SimTime) -> bool {
        blackout_covers(&self.cfg, now)
    }

    /// Read global node `node`'s power sensor through the fault process.
    pub fn sense(&mut self, now: SimTime, node: usize, true_w: f64) -> Option<f64> {
        if blackout_covers(&self.cfg, now) {
            self.counts.blackout_samples += 1;
            return None;
        }
        let local = node - self.start;
        sense_node(
            &self.cfg,
            &mut self.rngs[local],
            &mut self.nodes[local],
            &mut self.counts,
            now,
            true_w,
        )
    }

    /// Filter one actuator command to global node `node`.
    pub fn actuate(&mut self, now: SimTime, node: usize) -> ActuationFault {
        let local = node - self.start;
        actuate_node(
            &self.cfg,
            &mut self.rngs[local],
            &mut self.nodes[local],
            &mut self.counts,
            now,
        )
    }

    /// Whether global node `node` crashes at this slot; same contract as
    /// [`FaultPlan::crash_due`]. Stochastic draws come from the node's
    /// own stream, so query order across nodes is irrelevant.
    pub fn crash_due(&mut self, now: SimTime, node: usize) -> bool {
        let local = node - self.start;
        let mut crash = false;
        for (i, ev) in self.cfg.crashes.iter().enumerate() {
            if !self.fired[i] && ev.node == node && ev.at <= now {
                self.fired[i] = true;
                crash = true;
            }
        }
        if !crash && self.cfg.crash_p > 0.0 && self.rngs[local].chance(self.cfg.crash_p) {
            crash = true;
        }
        if crash {
            self.counts.crashes += 1;
        }
        crash
    }

    /// Record a completed node reboot.
    pub fn record_reboot(&mut self) {
        self.counts.reboots += 1;
    }

    /// Remaining battery capacity as a fraction of nameplate.
    pub fn battery_capacity_factor(&self) -> f64 {
        1.0 - self.cfg.battery_fade
    }

    /// True once the charger has failed.
    pub fn charger_failed(&self, now: SimTime) -> bool {
        self.cfg.charger_fails_at.is_some_and(|t| now >= t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    fn plan(cfg: FaultConfig) -> FaultPlan {
        FaultPlan::new(cfg, 4, SimRng::new(42)).unwrap()
    }

    #[test]
    fn default_config_is_noop() {
        let cfg = FaultConfig::default();
        assert!(cfg.is_noop());
        let mut p = plan(cfg);
        for t in 0..100 {
            for n in 0..4 {
                assert_eq!(p.sense(s(t), n, 123.0), Some(123.0));
                assert_eq!(p.actuate(s(t), n), ActuationFault::Clean);
                assert!(!p.crash_due(s(t), n));
            }
        }
        assert_eq!(p.counts(), FaultCounts::default());
        assert_eq!(p.battery_capacity_factor(), 1.0);
        assert!(!p.charger_failed(SimTime::MAX));
    }

    #[test]
    fn dropout_rate_tracks_probability() {
        let mut p = plan(FaultConfig {
            sensor_dropout_p: 0.3,
            ..FaultConfig::default()
        });
        let n = 10_000;
        let dropped = (0..n)
            .filter(|&t| p.sense(s(t), 0, 100.0).is_none())
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate={rate}");
        assert_eq!(p.counts().sensor_dropouts, dropped as u64);
    }

    #[test]
    fn stuck_sensor_freezes_reading() {
        let mut p = plan(FaultConfig {
            sensor_stuck_p: 1.0,
            sensor_stuck_for: SimDuration::from_secs(5),
            ..FaultConfig::default()
        });
        // First sample wedges at the true value (no prior reading).
        assert_eq!(p.sense(s(0), 0, 100.0), Some(100.0));
        // Subsequent samples repeat it regardless of the true power.
        assert_eq!(p.sense(s(2), 0, 250.0), Some(100.0));
        assert_eq!(p.sense(s(4), 0, 10.0), Some(100.0));
        // After the window, it wedges again — at the stale reading.
        assert_eq!(p.sense(s(6), 0, 300.0), Some(100.0));
        assert!(p.counts().sensor_stuck >= 3);
    }

    #[test]
    fn stale_redelivers_previous_sample() {
        let mut p = plan(FaultConfig {
            sensor_stale_p: 1.0,
            ..FaultConfig::default()
        });
        // No previous sample: falls through to a good reading.
        assert_eq!(p.sense(s(0), 1, 100.0), Some(100.0));
        assert_eq!(p.sense(s(1), 1, 200.0), Some(100.0));
        assert_eq!(p.counts().sensor_stale, 1);
    }

    #[test]
    fn noise_stays_bounded_and_non_negative() {
        let mut p = plan(FaultConfig {
            sensor_noise_w: 10.0,
            ..FaultConfig::default()
        });
        for t in 0..1000 {
            let w = p.sense(s(t), 0, 5.0).unwrap();
            assert!((0.0..=15.0).contains(&w), "w={w}");
        }
    }

    #[test]
    fn blackout_window_darkens_all_sensors() {
        let mut p = plan(FaultConfig {
            blackouts: vec![(s(10), s(20))],
            ..FaultConfig::default()
        });
        assert_eq!(p.sense(s(9), 0, 100.0), Some(100.0));
        for t in 10..20 {
            for n in 0..4 {
                assert_eq!(p.sense(s(t), n, 100.0), None);
            }
        }
        assert_eq!(p.sense(s(20), 0, 100.0), Some(100.0));
        assert_eq!(p.counts().blackout_samples, 40);
    }

    #[test]
    fn actuator_faults_fire() {
        let mut p = plan(FaultConfig {
            actuator_loss_p: 1.0,
            ..FaultConfig::default()
        });
        assert_eq!(p.actuate(s(0), 0), ActuationFault::Lost);

        let mut p = plan(FaultConfig {
            actuator_delay_p: 1.0,
            actuator_delay: SimDuration::from_millis(500),
            ..FaultConfig::default()
        });
        assert_eq!(
            p.actuate(s(0), 0),
            ActuationFault::Delayed(SimDuration::from_millis(500))
        );

        let mut p = plan(FaultConfig {
            actuator_stuck_p: 1.0,
            actuator_stuck_for: SimDuration::from_secs(3),
            ..FaultConfig::default()
        });
        assert_eq!(p.actuate(s(0), 2), ActuationFault::Stuck);
        assert_eq!(p.actuate(s(2), 2), ActuationFault::Stuck);
        assert_eq!(p.counts().actuator_stuck, 2);
    }

    #[test]
    fn scheduled_crash_fires_once() {
        let mut p = plan(FaultConfig {
            crashes: vec![CrashEvent { node: 2, at: s(7) }],
            ..FaultConfig::default()
        });
        assert!(!p.crash_due(s(6), 2));
        assert!(!p.crash_due(s(7), 1));
        assert!(p.crash_due(s(7), 2));
        assert!(!p.crash_due(s(8), 2));
        assert_eq!(p.counts().crashes, 1);
    }

    #[test]
    fn battery_helpers() {
        let p = plan(FaultConfig {
            battery_fade: 0.25,
            charger_fails_at: Some(s(30)),
            ..FaultConfig::default()
        });
        assert!((p.battery_capacity_factor() - 0.75).abs() < 1e-12);
        assert!(!p.charger_failed(s(29)));
        assert!(p.charger_failed(s(30)));
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let cfg = FaultConfig {
            sensor_dropout_p: 0.2,
            sensor_stuck_p: 0.05,
            sensor_stuck_for: SimDuration::from_secs(3),
            sensor_noise_w: 5.0,
            actuator_loss_p: 0.1,
            crash_p: 0.01,
            ..FaultConfig::default()
        };
        let run = |seed: u64| {
            let mut p = FaultPlan::new(cfg.clone(), 4, SimRng::new(seed)).unwrap();
            let mut log = Vec::new();
            for t in 0..200 {
                for n in 0..4 {
                    log.push(format!("{:?}", p.sense(s(t), n, 100.0 + t as f64)));
                    log.push(format!("{:?}", p.actuate(s(t), n)));
                    log.push(format!("{}", p.crash_due(s(t), n)));
                }
            }
            (log, p.counts())
        };
        let (a, ca) = run(7);
        let (b, cb) = run(7);
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        let (c, _) = run(8);
        assert_ne!(a, c);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let n = 4;
        let bad_p = FaultConfig {
            sensor_dropout_p: 1.5,
            ..FaultConfig::default()
        };
        assert!(matches!(
            bad_p.validate(n),
            Err(FaultError::Probability { field: "sensor_dropout_p", .. })
        ));
        let bad_win = FaultConfig {
            blackouts: vec![(s(5), s(5))],
            ..FaultConfig::default()
        };
        assert!(matches!(bad_win.validate(n), Err(FaultError::Window { .. })));
        let bad_node = FaultConfig {
            crashes: vec![CrashEvent { node: 9, at: s(1) }],
            ..FaultConfig::default()
        };
        assert!(matches!(bad_node.validate(n), Err(FaultError::NodeIndex { .. })));
        let bad_fade = FaultConfig {
            battery_fade: 1.0,
            ..FaultConfig::default()
        };
        assert!(matches!(bad_fade.validate(n), Err(FaultError::Fade(_))));
        assert!(FaultConfig::default().validate(n).is_ok());
        // Errors render a human-readable message naming the field.
        let msg = format!("{}", bad_p.validate(n).unwrap_err());
        assert!(msg.contains("sensor_dropout_p"));
    }

    fn chaos_cfg() -> FaultConfig {
        FaultConfig {
            sensor_dropout_p: 0.2,
            sensor_stuck_p: 0.05,
            sensor_stuck_for: SimDuration::from_secs(3),
            sensor_stale_p: 0.1,
            sensor_noise_w: 5.0,
            actuator_loss_p: 0.1,
            actuator_delay_p: 0.05,
            actuator_stuck_p: 0.02,
            crash_p: 0.002,
            crashes: vec![CrashEvent { node: 1, at: s(40) }],
            blackouts: vec![(s(50), s(60))],
            ..FaultConfig::default()
        }
    }

    /// Drive every node of a sharding through the same query schedule
    /// and log each outcome keyed by global node index.
    fn drive_sharded(ranges: &[(usize, usize)], n_total: usize) -> (String, FaultCounts) {
        let factory = RngFactory::new(2019);
        let mut plans: Vec<ShardFaultPlan> = ranges
            .iter()
            .map(|&(start, len)| {
                ShardFaultPlan::new(chaos_cfg(), n_total, start, len, &factory).unwrap()
            })
            .collect();
        let mut log = vec![String::new(); n_total];
        for t in 0..100u64 {
            for p in plans.iter_mut() {
                let (start, len) = (p.start(), p.len());
                for (g, entry) in log.iter_mut().enumerate().skip(start).take(len) {
                    entry.push_str(&format!(
                        "{:?}/{:?}/{} ",
                        p.sense(s(t), g, 100.0 + t as f64),
                        p.actuate(s(t), g),
                        p.crash_due(s(t), g),
                    ));
                }
            }
        }
        let mut counts = FaultCounts::default();
        for p in &plans {
            counts.merge(&p.counts());
        }
        (log.join("\n"), counts)
    }

    #[test]
    fn shard_plan_is_layout_independent() {
        let n = 8;
        let whole = drive_sharded(&[(0, 8)], n);
        let halves = drive_sharded(&[(0, 4), (4, 4)], n);
        let uneven = drive_sharded(&[(0, 3), (3, 3), (6, 2)], n);
        assert_eq!(whole, halves);
        assert_eq!(whole, uneven);
        // The chaos config really fires: counters are non-trivial.
        assert!(whole.1.sensor_dropouts > 0);
        assert!(whole.1.blackout_samples > 0);
        assert!(whole.1.crashes >= 1);
    }

    #[test]
    fn shard_plan_query_order_between_nodes_is_irrelevant() {
        let factory = RngFactory::new(7);
        let cfg = FaultConfig {
            sensor_dropout_p: 0.3,
            sensor_noise_w: 2.0,
            ..FaultConfig::default()
        };
        let mut fwd = ShardFaultPlan::new(cfg.clone(), 4, 0, 4, &factory).unwrap();
        let mut rev = ShardFaultPlan::new(cfg, 4, 0, 4, &factory).unwrap();
        let mut a = Vec::new();
        let mut b = vec![Vec::new(); 4];
        for t in 0..50u64 {
            for g in 0..4 {
                a.push((g, format!("{:?}", fwd.sense(s(t), g, 90.0))));
            }
            for g in (0..4).rev() {
                b[g].push(format!("{:?}", rev.sense(s(t), g, 90.0)));
            }
        }
        for (g, rev_node) in b.iter().enumerate() {
            let fwd_g: Vec<&String> =
                a.iter().filter(|(n, _)| *n == g).map(|(_, v)| v).collect();
            let rev_g: Vec<&String> = rev_node.iter().collect();
            assert_eq!(fwd_g, rev_g, "node {g} stream depends on query order");
        }
    }

    #[test]
    fn shard_plan_scheduled_crash_fires_only_in_owner_range() {
        let factory = RngFactory::new(1);
        let cfg = FaultConfig {
            crashes: vec![CrashEvent { node: 5, at: s(3) }],
            ..FaultConfig::default()
        };
        let mut left = ShardFaultPlan::new(cfg.clone(), 8, 0, 4, &factory).unwrap();
        let mut right = ShardFaultPlan::new(cfg, 8, 4, 4, &factory).unwrap();
        for t in 0..10u64 {
            for g in 0..4 {
                assert!(!left.crash_due(s(t), g));
            }
        }
        assert!(!right.crash_due(s(2), 5));
        assert!(right.crash_due(s(3), 5));
        assert!(!right.crash_due(s(4), 5));
        assert_eq!(left.counts().crashes, 0);
        assert_eq!(right.counts().crashes, 1);
    }

    #[test]
    fn fault_counts_merge_sums_fields() {
        let a = FaultCounts {
            sensor_dropouts: 1,
            crashes: 2,
            reboots: 3,
            ..FaultCounts::default()
        };
        let mut b = FaultCounts {
            sensor_dropouts: 10,
            actuator_lost: 5,
            ..FaultCounts::default()
        };
        b.merge(&a);
        assert_eq!(b.sensor_dropouts, 11);
        assert_eq!(b.crashes, 2);
        assert_eq!(b.reboots, 3);
        assert_eq!(b.actuator_lost, 5);
    }
}
