//! The event queue: a binary heap ordered by `(time, seq)`.
//!
//! The sequence number breaks ties between events scheduled for the same
//! instant: they pop in the order they were pushed. Without this, heap
//! ordering of equal keys would depend on interior heap layout, and
//! simulations would stop being reproducible the moment two events share a
//! timestamp — which happens constantly with slotted controllers.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event payload together with its delivery time and tiebreak sequence.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// Delivery instant.
    pub time: SimTime,
    /// Monotonic insertion counter; earlier-scheduled events win ties.
    pub seq: u64,
    /// The payload delivered to the model.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// All scheduling in the simulator funnels through this queue. Popping
/// always yields the event with the smallest `(time, seq)` pair.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedule `event` for delivery at `time`. Returns the sequence
    /// number assigned to the event.
    pub fn push(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
        seq
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop()
    }

    /// The delivery time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Drop all pending events (sequence counter keeps advancing so
    /// ordering guarantees survive a clear).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_ties_and_times() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), "t2-first");
        q.push(SimTime::from_secs(1), "t1-first");
        q.push(SimTime::from_secs(2), "t2-second");
        q.push(SimTime::from_secs(1), "t1-second");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(order, vec!["t1-first", "t1-second", "t2-first", "t2-second"]);
    }

    #[test]
    fn peek_time_tracks_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(5), ());
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn counters_and_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
        // New events after clear still get fresh sequence numbers.
        let seq = q.push(SimTime::ZERO, ());
        assert_eq!(seq, 2);
    }

    proptest! {
        /// Popping always yields a non-decreasing (time, seq) sequence,
        /// and for equal times seq strictly increases (FIFO).
        #[test]
        fn prop_pop_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_micros(*t), i);
            }
            let mut prev: Option<(SimTime, u64)> = None;
            while let Some(s) = q.pop() {
                if let Some((pt, ps)) = prev {
                    prop_assert!(s.time >= pt);
                    if s.time == pt {
                        prop_assert!(s.seq > ps);
                    }
                }
                prev = Some((s.time, s.seq));
            }
        }

        /// The queue returns exactly the multiset of events pushed.
        #[test]
        fn prop_conservation(times in proptest::collection::vec(0u64..50, 0..100)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_micros(*t), i);
            }
            let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
        }
    }
}
