//! A bounded ring-buffer trace of simulation events for post-mortem
//! debugging.
//!
//! Full event logging of a multi-hour simulated run is prohibitively
//! large; what you usually need when a run misbehaves is "the last N
//! things that happened". `TraceBuffer` keeps exactly that, with zero
//! allocation per record once warm.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// When the event happened.
    pub time: SimTime,
    /// Emitting component (static string to keep records cheap).
    pub component: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.time, self.component, self.message)
    }
}

/// Fixed-capacity ring buffer of [`TraceEntry`] records.
#[derive(Debug)]
pub struct TraceBuffer {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl TraceBuffer {
    /// Create a buffer holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            enabled: capacity > 0,
        }
    }

    /// A disabled buffer that records nothing (used as the default so hot
    /// paths can call `record` unconditionally).
    pub fn disabled() -> Self {
        TraceBuffer::new(0)
    }

    /// Enable or disable recording at runtime.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled && self.capacity > 0;
    }

    /// True if records are currently being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an already-formatted message.
    pub fn record(&mut self, time: SimTime, component: &'static str, message: String) {
        if !self.enabled {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry {
            time,
            component,
            message,
        });
    }

    /// Record lazily: the closure only runs when tracing is enabled, so a
    /// disabled buffer costs one branch.
    pub fn record_with(
        &mut self,
        time: SimTime,
        component: &'static str,
        f: impl FnOnce() -> String,
    ) {
        if self.enabled {
            self.record(time, component, f());
        }
    }

    /// Records currently held, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no records are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many records were evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the whole buffer, one record per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!("... {} earlier records dropped ...\n", self.dropped));
        }
        for e in &self.entries {
            out.push_str(&format!("{e}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_last_n() {
        let mut t = TraceBuffer::new(3);
        for i in 0..5 {
            t.record(SimTime::from_secs(i), "test", format!("m{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let msgs: Vec<_> = t.entries().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["m2", "m3", "m4"]);
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = TraceBuffer::disabled();
        t.record(SimTime::ZERO, "x", "hello".into());
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn record_with_skips_closure_when_disabled() {
        let mut t = TraceBuffer::disabled();
        let mut called = false;
        t.record_with(SimTime::ZERO, "x", || {
            called = true;
            String::new()
        });
        assert!(!called);

        let mut t = TraceBuffer::new(4);
        t.record_with(SimTime::ZERO, "x", || "lazy".into());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn toggle_enabled() {
        let mut t = TraceBuffer::new(4);
        t.set_enabled(false);
        t.record(SimTime::ZERO, "x", "a".into());
        assert!(t.is_empty());
        t.set_enabled(true);
        t.record(SimTime::ZERO, "x", "b".into());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn dump_mentions_dropped() {
        let mut t = TraceBuffer::new(1);
        t.record(SimTime::ZERO, "c", "first".into());
        t.record(SimTime::from_secs(1), "c", "second".into());
        let d = t.dump();
        assert!(d.contains("1 earlier records dropped"));
        assert!(d.contains("second"));
        assert!(!d.contains("first\n"));
    }

    #[test]
    fn display_format() {
        let e = TraceEntry {
            time: SimTime::from_secs(2),
            component: "nlb",
            message: "forwarded".into(),
        };
        assert_eq!(format!("{e}"), "[t=2.000000s] nlb: forwarded");
    }
}
