//! Token buckets: classic packets-per-second, and the paper's
//! power-denominated variant.
//!
//! The `Token` baseline (Table 2) is "a modified network traffic
//! controlling algorithm to ensure power limits": tokens refill at the
//! *power budget* (joules per second) and each admitted request consumes
//! its estimated energy. When an attack inflates per-request energy, the
//! bucket starves and the NLB sheds load — which holds power but, as the
//! paper observes, "abandons more than 60 % of the packages".

use crate::error::ConfigError;
use simcore::SimTime;

/// Classic token bucket: `rate` tokens/s refill, capacity `burst`.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last_refill: SimTime,
    admitted: u64,
    denied: u64,
}

impl TokenBucket {
    /// A bucket refilling at `rate` tokens/s with capacity `burst`,
    /// starting full. Panics on out-of-range parameters; use
    /// [`TokenBucket::try_new`] to handle them as errors.
    pub fn new(start: SimTime, rate: f64, burst: f64) -> Self {
        Self::try_new(start, rate, burst).expect("invalid TokenBucket parameters")
    }

    /// Fallible constructor: rejects non-positive or non-finite rate and
    /// burst with a typed [`ConfigError`].
    pub fn try_new(start: SimTime, rate: f64, burst: f64) -> Result<Self, ConfigError> {
        for (field, value) in [("rate", rate), ("burst", burst)] {
            if value <= 0.0 || !value.is_finite() {
                return Err(ConfigError::Parameter {
                    component: "TokenBucket",
                    field,
                    value,
                });
            }
        }
        Ok(TokenBucket {
            rate,
            burst,
            tokens: burst,
            last_refill: start,
            admitted: 0,
            denied: 0,
        })
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
    }

    /// Try to take `cost` tokens at `now`.
    pub fn try_consume(&mut self, now: SimTime, cost: f64) -> bool {
        assert!(cost >= 0.0);
        self.refill(now);
        if self.tokens >= cost {
            self.tokens -= cost;
            self.admitted += 1;
            true
        } else {
            self.denied += 1;
            false
        }
    }

    /// Tokens currently available (after refilling to `now`).
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests denied so far.
    pub fn denied(&self) -> u64 {
        self.denied
    }

    /// Fraction of offered requests denied.
    pub fn denial_rate(&self) -> f64 {
        let total = self.admitted + self.denied;
        if total == 0 {
            0.0
        } else {
            self.denied as f64 / total as f64
        }
    }

    /// Update the refill rate (e.g. when the power budget changes).
    pub fn set_rate(&mut self, now: SimTime, rate: f64) {
        assert!(rate > 0.0);
        self.refill(now);
        self.rate = rate;
    }
}

/// Power-denominated token bucket: tokens are joules; each request's cost
/// is its estimated energy at the node.
///
/// The refill rate is the *dynamic* power budget: supply minus the idle
/// floor the cluster burns regardless of admission decisions.
#[derive(Debug, Clone)]
pub struct PowerTokenBucket {
    inner: TokenBucket,
}

impl PowerTokenBucket {
    /// Bucket refilling at `dynamic_budget_w` joules/s, able to burst one
    /// `burst_seconds`-worth of budget. Panics on out-of-range
    /// parameters; use [`PowerTokenBucket::try_new`] to handle them.
    pub fn new(start: SimTime, dynamic_budget_w: f64, burst_seconds: f64) -> Self {
        Self::try_new(start, dynamic_budget_w, burst_seconds)
            .expect("invalid PowerTokenBucket parameters")
    }

    /// Fallible constructor: rejects non-positive budget or burst window.
    pub fn try_new(
        start: SimTime,
        dynamic_budget_w: f64,
        burst_seconds: f64,
    ) -> Result<Self, ConfigError> {
        if burst_seconds <= 0.0 || !burst_seconds.is_finite() {
            return Err(ConfigError::Parameter {
                component: "PowerTokenBucket",
                field: "burst_seconds",
                value: burst_seconds,
            });
        }
        Ok(PowerTokenBucket {
            inner: TokenBucket::try_new(start, dynamic_budget_w, dynamic_budget_w * burst_seconds)?,
        })
    }

    /// Admit a request whose execution is estimated to cost
    /// `energy_estimate_j` joules of dynamic energy.
    pub fn admit(&mut self, now: SimTime, energy_estimate_j: f64) -> bool {
        self.inner.try_consume(now, energy_estimate_j)
    }

    /// Retarget the refill to a new dynamic budget.
    pub fn set_budget(&mut self, now: SimTime, dynamic_budget_w: f64) {
        self.inner.set_rate(now, dynamic_budget_w);
    }

    /// Fraction of offered requests denied — the paper's ">60 % of
    /// packages abandoned" metric for the Token baseline.
    pub fn denial_rate(&self) -> f64 {
        self.inner.denial_rate()
    }

    /// Joules currently banked.
    pub fn available_j(&mut self, now: SimTime) -> f64 {
        self.inner.available(now)
    }

    /// Requests admitted.
    pub fn admitted(&self) -> u64 {
        self.inner.admitted()
    }

    /// Requests denied.
    pub fn denied(&self) -> u64 {
        self.inner.denied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_parameters_are_typed_errors() {
        assert_eq!(
            TokenBucket::try_new(SimTime::ZERO, 0.0, 5.0).unwrap_err(),
            ConfigError::Parameter {
                component: "TokenBucket",
                field: "rate",
                value: 0.0,
            }
        );
        assert!(TokenBucket::try_new(SimTime::ZERO, 10.0, -1.0).is_err());
        assert!(TokenBucket::try_new(SimTime::ZERO, f64::NAN, 1.0).is_err());
        assert_eq!(
            PowerTokenBucket::try_new(SimTime::ZERO, 100.0, 0.0).unwrap_err(),
            ConfigError::Parameter {
                component: "PowerTokenBucket",
                field: "burst_seconds",
                value: 0.0,
            }
        );
        // A zero budget propagates from the inner bucket.
        assert!(PowerTokenBucket::try_new(SimTime::ZERO, 0.0, 1.0).is_err());
    }
    use proptest::prelude::*;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    #[test]
    fn starts_full_and_drains() {
        let mut tb = TokenBucket::new(ms(0), 10.0, 5.0);
        for _ in 0..5 {
            assert!(tb.try_consume(ms(0), 1.0));
        }
        assert!(!tb.try_consume(ms(0), 1.0));
        assert_eq!(tb.admitted(), 5);
        assert_eq!(tb.denied(), 1);
    }

    #[test]
    fn refills_over_time() {
        let mut tb = TokenBucket::new(ms(0), 10.0, 5.0);
        while tb.try_consume(ms(0), 1.0) {}
        // 10 tokens/s → after 300 ms, 3 tokens.
        assert!(tb.try_consume(ms(300), 3.0));
        assert!(!tb.try_consume(ms(300), 0.5));
    }

    #[test]
    fn burst_caps_accumulation() {
        let mut tb = TokenBucket::new(ms(0), 10.0, 5.0);
        assert!((tb.available(SimTime::from_secs(100)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cost_always_admits() {
        let mut tb = TokenBucket::new(ms(0), 1.0, 1.0);
        tb.try_consume(ms(0), 1.0);
        assert!(tb.try_consume(ms(0), 0.0));
    }

    #[test]
    fn denial_rate_tracks() {
        let mut tb = TokenBucket::new(ms(0), 1.0, 2.0);
        tb.try_consume(ms(0), 1.0);
        tb.try_consume(ms(0), 1.0);
        tb.try_consume(ms(0), 1.0);
        tb.try_consume(ms(0), 1.0);
        assert!((tb.denial_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rate_change_applies_forward() {
        let mut tb = TokenBucket::new(ms(0), 10.0, 100.0);
        tb.try_consume(ms(0), 100.0); // empty it
        tb.set_rate(ms(0), 100.0);
        assert!((tb.available(ms(500)) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn power_bucket_starves_under_expensive_requests() {
        // 60 W dynamic budget, 1 s burst. Cheap requests (1 J) flow at
        // 60/s; expensive attack requests (30 J) starve the bucket.
        let mut pb = PowerTokenBucket::new(ms(0), 60.0, 1.0);
        let mut admitted_cheap = 0;
        for i in 0..100 {
            if pb.admit(ms(i * 10), 1.0) {
                admitted_cheap += 1;
            }
        }
        assert_eq!(admitted_cheap, 100); // 1 J every 10 ms < 60 W

        let mut pb = PowerTokenBucket::new(ms(0), 60.0, 1.0);
        let mut admitted_exp = 0;
        for i in 0..100 {
            if pb.admit(ms(i * 10), 30.0) {
                admitted_exp += 1;
            }
        }
        // 30 J every 10 ms = 3 kW demand on a 60 W budget → ~2 % + burst.
        assert!(admitted_exp < 10, "admitted {admitted_exp}");
        assert!(pb.denial_rate() > 0.6, "denial {}", pb.denial_rate());
    }

    proptest! {
        /// Admitted energy never exceeds budget × elapsed + burst.
        #[test]
        fn prop_power_conservation(
            costs in proptest::collection::vec(0.1f64..50.0, 1..200),
            gap_ms in 1u64..50,
        ) {
            let budget = 100.0;
            let burst_s = 0.5;
            let mut pb = PowerTokenBucket::new(ms(0), budget, burst_s);
            let mut admitted_j = 0.0;
            let mut t = 0u64;
            for &c in &costs {
                if pb.admit(ms(t), c) {
                    admitted_j += c;
                }
                t += gap_ms;
            }
            let elapsed_s = t as f64 / 1000.0;
            prop_assert!(admitted_j <= budget * elapsed_s + budget * burst_s + 1e-6,
                "admitted {} J over {} s", admitted_j, elapsed_s);
        }

        /// Token count never negative, never above burst.
        #[test]
        fn prop_tokens_bounded(ops in proptest::collection::vec((0.0f64..20.0, 0u64..1000), 1..100)) {
            let mut tb = TokenBucket::new(ms(0), 50.0, 10.0);
            let mut t = 0u64;
            for (cost, dt) in ops {
                t += dt;
                tb.try_consume(ms(t), cost);
                let avail = tb.available(ms(t));
                prop_assert!((-1e-9..=10.0 + 1e-9).contains(&avail));
            }
        }
    }
}
